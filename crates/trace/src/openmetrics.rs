//! OpenMetrics text exposition and a human-readable summary table for
//! [`crate::metrics::MetricsSnapshot`].
//!
//! [`render`] emits the OpenMetrics text format (the Prometheus
//! exposition format's standardized successor): one `# TYPE` line per
//! metric family, cumulative `_bucket{le="..."}` samples ending in
//! `le="+Inf"`, exact `_count`/`_sum`, counters with the `_total`
//! suffix, and the mandatory `# EOF` terminator. Scrapers and `promtool
//! check metrics` accept the output as-is.
//!
//! [`render_table`] is the `stats`-subcommand face: a fixed-width
//! latency table (count, p50/p95/p99, mean, max — humanized units) plus
//! the counter/gauge/peak registries.

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};

/// Sanitize a registry name into an OpenMetrics metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, with the dots this workspace's metric
/// names use becoming underscores (`knn.query.latency_ns` →
/// `knn_query_latency_ns`).
pub fn metric_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() || out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Format an f64 sample value the way Prometheus clients do: integral
/// values without an exponent, everything else via the shortest `{}`.
fn sample(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn render_histogram(out: &mut String, h: &HistogramSnapshot) {
    let name = metric_name(&h.name);
    out.push_str(&format!("# TYPE {name} histogram\n"));
    let mut cum = 0u64;
    for (le, count) in &h.buckets {
        cum += count;
        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
    out.push_str(&format!("{name}_count {}\n", h.count));
    out.push_str(&format!("{name}_sum {}\n", h.sum_ns));
}

/// Render a snapshot as OpenMetrics text (ends with `# EOF`).
pub fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for h in &snap.histograms {
        render_histogram(&mut out, h);
    }
    for (name, value) in &snap.counters {
        let base = metric_name(name);
        let base = base.strip_suffix("_total").unwrap_or(&base).to_string();
        out.push_str(&format!("# TYPE {base} counter\n"));
        out.push_str(&format!("{base}_total {value}\n"));
    }
    for (name, value) in &snap.gauges {
        let n = metric_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n"));
        out.push_str(&format!("{n} {}\n", sample(*value)));
    }
    for (name, value) in &snap.peaks {
        let n = metric_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n"));
        out.push_str(&format!("{n} {value}\n"));
    }
    for (name, value) in &snap.labels {
        let n = metric_name(name);
        let escaped = value.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!("# TYPE {n} info\n"));
        out.push_str(&format!("{n}_info{{value=\"{escaped}\"}} 1\n"));
    }
    out.push_str("# EOF\n");
    out
}

/// Humanize a nanosecond quantity (`532ns`, `1.24µs`, `88.10ms`,
/// `2.500s`).
pub fn human_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.2}µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2}ms", ns / 1e6)
    } else {
        format!("{:.3}s", ns / 1e9)
    }
}

/// Width of the widest cell in column `i` of `rows` (including the
/// header), counted in *characters* — `µ` is two bytes but one column.
fn col_width<const N: usize>(header: &[&str; N], rows: &[[String; N]], i: usize) -> usize {
    rows.iter()
        .map(|r| r[i].chars().count())
        .chain([header[i].len()])
        .max()
        .unwrap_or(0)
}

/// Append one table: header then rows, first column left-aligned, the
/// rest right-aligned, every column sized to its widest cell so wide
/// counts and long names never shear the layout.
fn push_aligned<const N: usize>(out: &mut String, header: &[&str; N], rows: &[[String; N]]) {
    let widths: Vec<usize> = (0..N).map(|i| col_width(header, rows, i)).collect();
    let mut push_row = |cells: &[&str]| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            let pad = widths[i].saturating_sub(cell.chars().count());
            if i == 0 {
                out.push_str(cell);
                if cells.len() > 1 {
                    out.push_str(&" ".repeat(pad));
                }
            } else {
                out.push_str(&" ".repeat(pad));
                out.push_str(cell);
            }
        }
        out.push('\n');
    };
    push_row(&header.map(|h| h));
    for row in rows {
        let cells: Vec<&str> = row.iter().map(String::as_str).collect();
        push_row(&cells);
    }
}

/// Scalar-metric cell: names ending in `_ns` get an auto-scaled unit
/// suffix so latency totals read as durations, not raw counts.
fn scalar_cell(name: &str, raw: String, as_ns: f64) -> String {
    if name.ends_with("_ns") {
        format!("{raw} ({})", human_ns(as_ns))
    } else {
        raw
    }
}

/// Render a snapshot as an aligned summary table (columns auto-sized,
/// latency values humanized with ns/µs/ms/s units).
pub fn render_table(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("== native wall-clock metrics ==\n");
    let hist_header = ["histogram", "count", "p50", "p95", "p99", "mean", "max"];
    let hist_rows: Vec<[String; 7]> = snap
        .histograms
        .iter()
        .map(|h| {
            [
                h.name.clone(),
                h.count.to_string(),
                human_ns(h.p50_ns),
                human_ns(h.p95_ns),
                human_ns(h.p99_ns),
                human_ns(if h.count == 0 {
                    0.0
                } else {
                    h.sum_ns as f64 / h.count as f64
                }),
                human_ns(h.max_ns as f64),
            ]
        })
        .collect();
    push_aligned(&mut out, &hist_header, &hist_rows);
    if snap.histograms.is_empty() {
        out.push_str("(no histograms recorded)\n");
    }
    let scalar_header = ["name", "value"];
    if !snap.counters.is_empty() {
        out.push_str("\n== counters ==\n");
        let rows: Vec<[String; 2]> = snap
            .counters
            .iter()
            .map(|(name, v)| [name.clone(), scalar_cell(name, v.to_string(), *v as f64)])
            .collect();
        push_aligned(&mut out, &scalar_header, &rows);
    }
    if !snap.gauges.is_empty() {
        out.push_str("\n== gauges ==\n");
        let rows: Vec<[String; 2]> = snap
            .gauges
            .iter()
            .map(|(name, v)| [name.clone(), scalar_cell(name, format!("{v:.3}"), *v)])
            .collect();
        push_aligned(&mut out, &scalar_header, &rows);
    }
    if !snap.peaks.is_empty() {
        out.push_str("\n== peaks (high-water marks) ==\n");
        let rows: Vec<[String; 2]> = snap
            .peaks
            .iter()
            .map(|(name, v)| [name.clone(), scalar_cell(name, v.to_string(), *v as f64)])
            .collect();
        push_aligned(&mut out, &scalar_header, &rows);
    }
    if !snap.labels.is_empty() {
        out.push_str("\n== labels ==\n");
        let rows: Vec<[String; 2]> = snap
            .labels
            .iter()
            .map(|(name, v)| [name.clone(), v.clone()])
            .collect();
        push_aligned(&mut out, &scalar_header, &rows);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    /// Line-by-line structural validation of the OpenMetrics output —
    /// the acceptance test for the exposition format: every line is a
    /// `# TYPE` declaration, a sample, or the final `# EOF`; histogram
    /// buckets carry `le` labels, are cumulative, end with `+Inf`, and
    /// are followed by `_count`/`_sum`.
    #[test]
    fn openmetrics_text_is_structurally_valid() {
        let reg = MetricsRegistry::new();
        for ns in [100u64, 300, 1000, 50_000] {
            reg.observe_ns("knn.query.latency_ns", ns);
        }
        reg.inc("knn.stream.merge_push", 7);
        reg.set_gauge("knn.qps", 1234.5);
        reg.record_peak("knn.peak_distance_bytes", 1 << 20);
        reg.set_label("knn.simd_dispatch", "avx2+fma");
        let text = render(&reg.snapshot());

        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(*lines.last().unwrap(), "# EOF", "must end with # EOF");
        assert!(
            text.ends_with("# EOF\n"),
            "EOF must be the final, newline-terminated line"
        );

        let mut bucket_cum = 0u64;
        let mut saw_inf = false;
        let mut saw_count = false;
        let mut saw_sum = false;
        for line in &lines[..lines.len() - 1] {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().expect("TYPE line names a metric");
                assert!(metric_name(name) == name, "TYPE name must be sanitized");
                let kind = parts.next().expect("TYPE line names a kind");
                assert!(matches!(kind, "histogram" | "counter" | "gauge" | "info"));
                continue;
            }
            // sample line: `name[{labels}] value`
            let (name_part, value_part) = line
                .rsplit_once(' ')
                .expect("sample line has name and value");
            value_part
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("sample value must be numeric: {line}"));
            if let Some((name, labels)) = name_part.split_once('{') {
                assert!(
                    name.ends_with("_bucket") || name.ends_with("_info"),
                    "only buckets and info samples are labelled: {line}"
                );
                if name.ends_with("_info") {
                    assert_eq!(value_part, "1", "info samples are always 1: {line}");
                    continue;
                }
                let le = labels
                    .strip_suffix('}')
                    .and_then(|l| l.strip_prefix("le=\""))
                    .and_then(|l| l.strip_suffix('"'))
                    .unwrap_or_else(|| panic!("bucket line must carry le label: {line}"));
                let cum: u64 = value_part.parse().expect("bucket counts are integers");
                assert!(cum >= bucket_cum, "bucket counts must be cumulative");
                bucket_cum = cum;
                if le == "+Inf" {
                    saw_inf = true;
                } else {
                    le.parse::<u64>().expect("finite le bounds are integers");
                }
            } else if name_part.ends_with("_count") {
                saw_count = true;
                assert_eq!(value_part, "4", "count must be exact");
            } else if name_part.ends_with("_sum") {
                saw_sum = true;
                assert_eq!(value_part, "51400", "sum must be exact");
            }
        }
        assert!(saw_inf && saw_count && saw_sum);
        assert!(text.contains("knn_stream_merge_push_total 7"));
        assert!(text.contains("# TYPE knn_stream_merge_push counter"));
        assert!(text.contains("knn_qps 1234.5"));
        assert!(text.contains("knn_peak_distance_bytes 1048576"));
        assert!(text.contains("# TYPE knn_simd_dispatch info"));
        assert!(text.contains("knn_simd_dispatch_info{value=\"avx2+fma\"} 1"));
    }

    #[test]
    fn metric_names_are_sanitized() {
        assert_eq!(metric_name("knn.query.latency_ns"), "knn_query_latency_ns");
        assert_eq!(metric_name("weird name!"), "weird_name_");
        assert_eq!(metric_name("9lives"), "_9lives");
        assert_eq!(metric_name(""), "_");
    }

    #[test]
    fn empty_snapshot_is_just_eof() {
        assert_eq!(render(&MetricsSnapshot::default()), "# EOF\n");
    }

    #[test]
    fn table_lists_every_metric_kind() {
        let reg = MetricsRegistry::new();
        reg.observe_ns("lat", 5_000);
        reg.inc("pushes", 3);
        reg.set_gauge("qps", 10.0);
        reg.record_peak("bytes", 64);
        reg.set_label("kernel", "avx2+fma");
        let table = render_table(&reg.snapshot());
        for needle in [
            "lat",
            "pushes",
            "qps",
            "bytes",
            "p95",
            "high-water",
            "avx2+fma",
        ] {
            assert!(table.contains(needle), "missing {needle}:\n{table}");
        }
        let empty = render_table(&MetricsSnapshot::default());
        assert!(empty.contains("(no histograms recorded)"));
    }

    #[test]
    fn human_ns_picks_units() {
        assert_eq!(human_ns(532.0), "532ns");
        assert_eq!(human_ns(1_240.0), "1.24µs");
        assert_eq!(human_ns(88_100_000.0), "88.10ms");
        assert_eq!(human_ns(2.5e9), "2.500s");
    }

    /// Column-shear regression test: a count wider than the old fixed
    /// column and a name longer than the old 34/44-char name fields must
    /// still produce perfectly aligned columns.
    #[test]
    fn table_columns_stay_aligned_for_wide_values() {
        let reg = MetricsRegistry::new();
        let long = "knn.stream.tile_select.latency_ns.extremely.long.metric.name";
        for _ in 0..3 {
            reg.observe_ns(long, 1_500);
        }
        reg.observe_ns("lat", 10);
        reg.inc("huge.counter", u64::MAX / 2);
        reg.inc("tiny", 1);
        let table = render_table(&reg.snapshot());
        // every histogram-section line has its count column ending at the
        // same character offset
        let lines: Vec<&str> = table.lines().collect();
        let header = lines[1];
        let count_end = header.find("count").map(|i| i + "count".len()).unwrap();
        for row in &lines[2..4] {
            let prefix: String = row.chars().take(count_end).collect();
            assert!(
                prefix.ends_with(|c: char| c.is_ascii_digit()),
                "count column must end at offset {count_end}: {row:?}"
            );
            assert!(row.chars().nth(count_end) == Some(' '));
        }
        // counter values are right-aligned to a shared edge even when one
        // is 19 digits wide
        let counter_rows: Vec<&&str> = lines
            .iter()
            .filter(|l| l.starts_with("huge.counter") || l.starts_with("tiny"))
            .collect();
        assert_eq!(counter_rows.len(), 2);
        let ends: Vec<usize> = counter_rows.iter().map(|l| l.chars().count()).collect();
        assert_eq!(ends[0], ends[1], "value column must share its right edge");
    }

    /// Latency-named scalars get auto-scaled unit suffixes.
    #[test]
    fn ns_scalars_get_unit_suffixes() {
        let reg = MetricsRegistry::new();
        reg.inc("knn.select.total_ns", 1_240);
        reg.record_peak("knn.stall.max_ns", 2_500_000_000);
        reg.inc("knn.queries", 7);
        let table = render_table(&reg.snapshot());
        assert!(table.contains("1240 (1.24µs)"), "{table}");
        assert!(table.contains("2500000000 (2.500s)"), "{table}");
        // non-latency counters stay raw
        let queries_row = table
            .lines()
            .find(|l| l.starts_with("knn.queries"))
            .unwrap();
        assert!(!queries_row.contains('('), "{queries_row}");
    }
}
