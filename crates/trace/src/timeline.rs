//! Per-worker execution timelines for the parallel pipelines and the
//! serving engine: who claimed which block, when, how long each tile
//! walk took, and how much of the wall-clock span each worker spent
//! busy vs idle.
//!
//! Three layers, mirroring the journal's design:
//!
//! * [`TimelineHooks`] — the zero-cost observation trait the parallel
//!   pipeline is generic over. Every method is a no-op default, so
//!   [`NullTimeline`] monomorphizes the pipeline to exactly the
//!   unobserved code: no clock reads, no bookkeeping, no branches.
//! * [`TimelineRecorder`] — per-worker shards ([`WorkerTimeline`])
//!   collecting [`TrackSpan`]s. **Clock-free by design**: every
//!   nanosecond it stores arrives pre-measured relative to the run's
//!   epoch. The wall-clock-reading implementation of the hooks lives in
//!   `knn::metered` (the one sanctioned clock-reading module of the
//!   native pipelines); the serving engine feeds *simulated* time. This
//!   file is scanned by the `no-wall-clock` lint with no allowlist
//!   entry.
//! * [`TimelineReport`] — the fold: per-worker busy/idle nanoseconds,
//!   blocks claimed, tiles walked, scratch peaks, utilization, and an
//!   imbalance score `max_busy / mean_busy`. Serializes to versioned
//!   JSON (and parses back), embeds as the `timeline` section of a
//!   [`crate::MetricsSnapshot`], and exports as Chrome trace JSON with
//!   one `tid` per worker via [`crate::chrome::timeline_to_chrome_json`].
//!
//! Per-worker idle time is defined as `wall - busy`, so
//! `busy + idle == wall` holds *exactly* for every lane — the
//! conservation property the CI timeline validation asserts.

use std::sync::Mutex;

use serde::{Serialize, Value};

use crate::schema;

/// Version stamped on timeline-report JSON (`schema_version`); see
/// [`crate::schema`] for the compatibility rule applied when parsing.
pub const SCHEMA_VERSION: &str = "1.0";

/// Observation hooks the parallel tile pipeline calls from its worker
/// loop. All defaults are no-ops; implementations (which may read a
/// clock — this trait deliberately carries no timestamps) must be
/// cheap: the hooks fire per block claim and per tile, never per
/// element.
pub trait TimelineHooks: Sync {
    /// Worker `worker` entered the pool and is about to claim blocks.
    #[inline]
    fn worker_started(&self, _worker: usize) {}
    /// Worker `worker` reserved `bytes` of distance scratch for the
    /// run (its per-worker high-water mark).
    #[inline]
    fn scratch_reserved(&self, _worker: usize, _bytes: u64) {}
    /// Worker `worker` won block `block` from the shared cursor.
    #[inline]
    fn block_claimed(&self, _worker: usize, _block: usize) {}
    /// Worker `worker` finished walking tile index `tile` of `block`.
    #[inline]
    fn tile_walked(&self, _worker: usize, _block: usize, _tile: usize) {}
    /// Worker `worker` finished (or abandoned, on cancellation) block
    /// `block` after completing `tiles` tiles.
    #[inline]
    fn block_finished(&self, _worker: usize, _block: usize, _tiles: usize) {}
    /// Worker `worker` ran out of blocks and left the pool.
    #[inline]
    fn worker_finished(&self, _worker: usize) {}
}

/// The zero-cost default: a pipeline generic over [`TimelineHooks`]
/// monomorphizes with `NullTimeline` to exactly the untimed code.
pub struct NullTimeline;

impl TimelineHooks for NullTimeline {}

/// What a [`TrackSpan`] covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// One claimed query block, claim to finish (the busy unit of the
    /// parallel pipeline; tile spans nest inside it).
    Block,
    /// One reference-tile walk inside a block (fill + select + merge).
    Tile,
    /// One serviced unit outside the block scheduler: a request in the
    /// serving engine, or a whole sequential run on the 1-thread path.
    Service,
    /// Time a request spent waiting in the admission queue.
    QueueWait,
}

impl SpanKind {
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Block => "block",
            SpanKind::Tile => "tile",
            SpanKind::Service => "service",
            SpanKind::QueueWait => "queue_wait",
        }
    }

    pub fn parse(s: &str) -> Option<SpanKind> {
        match s {
            "block" => Some(SpanKind::Block),
            "tile" => Some(SpanKind::Tile),
            "service" => Some(SpanKind::Service),
            "queue_wait" => Some(SpanKind::QueueWait),
            _ => None,
        }
    }

    /// Whether spans of this kind count toward a lane's busy time.
    /// Tile spans nest inside their block span (counting both would
    /// double-charge), and queue-wait is the definition of *not* being
    /// served.
    fn is_busy(self) -> bool {
        matches!(self, SpanKind::Block | SpanKind::Service)
    }
}

/// One closed interval on a worker's track, in pre-measured nanoseconds
/// since the run's epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrackSpan {
    pub kind: SpanKind,
    /// Kind-specific identifier: block id, tile index, request seq.
    pub detail: u64,
    pub start_ns: u64,
    pub end_ns: u64,
}

impl TrackSpan {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// One worker's raw event track — the shard a single worker appends to
/// without contending with its peers.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerTimeline {
    pub worker: usize,
    /// Track name shown in exports (`worker 3`, `server`, `queue`).
    pub name: String,
    pub spans: Vec<TrackSpan>,
    /// Instantaneous annotations (`(ns, label)`): brownout decisions,
    /// breaker trips.
    pub marks: Vec<(u64, String)>,
    pub blocks_claimed: u64,
    pub tiles_walked: u64,
    pub scratch_peak_bytes: u64,
    /// `worker_started` / `worker_finished` stamps, when observed.
    pub started_ns: Option<u64>,
    pub finished_ns: Option<u64>,
    /// End of the most recent event, from which the next tile span
    /// starts.
    last_mark_ns: u64,
    /// Claimed-but-unfinished block: `(block id, claim ns)`.
    open_block: Option<(u64, u64)>,
}

impl WorkerTimeline {
    fn new(worker: usize, name: String) -> Self {
        WorkerTimeline {
            worker,
            name,
            spans: Vec::new(),
            marks: Vec::new(),
            blocks_claimed: 0,
            tiles_walked: 0,
            scratch_peak_bytes: 0,
            started_ns: None,
            finished_ns: None,
            last_mark_ns: 0,
            open_block: None,
        }
    }

    /// Sum of busy-kind span durations (see [`SpanKind::is_busy`]).
    pub fn busy_ns(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.kind.is_busy())
            .map(TrackSpan::duration_ns)
            .sum()
    }

    /// Largest `end_ns` on this track (0 when empty).
    fn span_end_ns(&self) -> u64 {
        self.spans
            .iter()
            .map(|s| s.end_ns)
            .chain(self.finished_ns)
            .max()
            .unwrap_or(0)
    }
}

/// Thread-safe collector of per-worker tracks. One mutex per worker, so
/// workers appending to their own shard never contend; the fold
/// ([`TimelineRecorder::report`]) is the only cross-shard reader.
pub struct TimelineRecorder {
    shards: Vec<Mutex<WorkerTimeline>>,
}

impl TimelineRecorder {
    /// `workers` anonymous lanes named `worker 0..`.
    pub fn new(workers: usize) -> Self {
        TimelineRecorder {
            shards: (0..workers.max(1))
                .map(|w| Mutex::new(WorkerTimeline::new(w, format!("worker {w}"))))
                .collect(),
        }
    }

    /// Explicitly named lanes (the serving engine uses
    /// `["server", "queue"]`).
    pub fn with_names(names: &[&str]) -> Self {
        TimelineRecorder {
            shards: names
                .iter()
                .enumerate()
                .map(|(w, n)| Mutex::new(WorkerTimeline::new(w, n.to_string())))
                .collect(),
        }
    }

    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, worker: usize) -> std::sync::MutexGuard<'_, WorkerTimeline> {
        // A poisoned shard only means a worker panicked mid-record; the
        // recorded spans are still coherent.
        self.shards[worker]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    pub fn worker_started(&self, worker: usize, ns: u64) {
        let mut s = self.shard(worker);
        s.started_ns = Some(ns);
        s.last_mark_ns = ns;
    }

    pub fn worker_finished(&self, worker: usize, ns: u64) {
        self.shard(worker).finished_ns = Some(ns);
    }

    pub fn scratch_peak(&self, worker: usize, bytes: u64) {
        let mut s = self.shard(worker);
        s.scratch_peak_bytes = s.scratch_peak_bytes.max(bytes);
    }

    pub fn block_claimed(&self, worker: usize, block: u64, ns: u64) {
        let mut s = self.shard(worker);
        s.blocks_claimed += 1;
        s.open_block = Some((block, ns));
        s.last_mark_ns = ns;
    }

    /// Close the tile that just finished: the span runs from the end of
    /// the previous event on this track (block claim or prior tile).
    pub fn tile_walked(&self, worker: usize, tile: u64, ns: u64) {
        let mut s = self.shard(worker);
        s.tiles_walked += 1;
        let start = s.last_mark_ns.min(ns);
        s.spans.push(TrackSpan {
            kind: SpanKind::Tile,
            detail: tile,
            start_ns: start,
            end_ns: ns,
        });
        s.last_mark_ns = ns;
    }

    pub fn block_finished(&self, worker: usize, block: u64, ns: u64) {
        let mut s = self.shard(worker);
        if let Some((open, claimed_ns)) = s.open_block.take() {
            debug_assert_eq!(open, block, "blocks finish in claim order per worker");
            s.spans.push(TrackSpan {
                kind: SpanKind::Block,
                detail: block,
                start_ns: claimed_ns.min(ns),
                end_ns: ns,
            });
        }
        s.last_mark_ns = ns;
    }

    /// Record an arbitrary pre-measured span (the serving engine's
    /// service and queue-wait intervals).
    pub fn span(&self, worker: usize, kind: SpanKind, detail: u64, start_ns: u64, end_ns: u64) {
        let mut s = self.shard(worker);
        s.spans.push(TrackSpan {
            kind,
            detail,
            start_ns: start_ns.min(end_ns),
            end_ns,
        });
        s.last_mark_ns = s.last_mark_ns.max(end_ns);
    }

    /// Record an instantaneous annotation (brownout step, breaker
    /// trip).
    pub fn mark(&self, worker: usize, ns: u64, label: &str) {
        self.shard(worker).marks.push((ns, label.to_string()));
    }

    /// Fold every shard into a [`TimelineReport`] over a wall-clock
    /// span of `wall_ns` (stretched to cover every recorded span, so
    /// per-lane `busy + idle == wall` holds exactly).
    pub fn report(&self, wall_ns: u64) -> TimelineReport {
        let shards: Vec<WorkerTimeline> = self
            .shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect();
        fold(&shards, wall_ns)
    }
}

/// Merge per-worker shards into the report. `wall_ns` is raised to the
/// latest recorded event so idle time (`wall - busy`) is never forced
/// negative by a caller snapshotting early.
pub fn fold(shards: &[WorkerTimeline], wall_ns: u64) -> TimelineReport {
    let wall_ns = shards
        .iter()
        .map(WorkerTimeline::span_end_ns)
        .fold(wall_ns, u64::max);
    let lanes: Vec<WorkerLane> = shards
        .iter()
        .map(|s| {
            let busy_ns = s.busy_ns().min(wall_ns);
            WorkerLane {
                worker: s.worker,
                name: s.name.clone(),
                busy_ns,
                idle_ns: wall_ns - busy_ns,
                blocks: s.blocks_claimed,
                tiles: s.tiles_walked,
                scratch_peak_bytes: s.scratch_peak_bytes,
                utilization: if wall_ns == 0 {
                    0.0
                } else {
                    busy_ns as f64 / wall_ns as f64
                },
                spans: s.spans.clone(),
                marks: s.marks.clone(),
            }
        })
        .collect();
    let busy_total: u64 = lanes.iter().map(|l| l.busy_ns).sum();
    let max_busy = lanes.iter().map(|l| l.busy_ns).max().unwrap_or(0);
    let mean_busy = if lanes.is_empty() {
        0.0
    } else {
        busy_total as f64 / lanes.len() as f64
    };
    TimelineReport {
        wall_ns,
        blocks_total: lanes.iter().map(|l| l.blocks).sum(),
        busy_ns_total: busy_total,
        utilization: if wall_ns == 0 || lanes.is_empty() {
            0.0
        } else {
            busy_total as f64 / (wall_ns as f64 * lanes.len() as f64)
        },
        imbalance: if mean_busy == 0.0 {
            1.0
        } else {
            max_busy as f64 / mean_busy
        },
        lanes,
    }
}

/// One worker's folded lane in a [`TimelineReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerLane {
    pub worker: usize,
    pub name: String,
    pub busy_ns: u64,
    /// `wall_ns - busy_ns`, exactly — the conservation invariant.
    pub idle_ns: u64,
    pub blocks: u64,
    pub tiles: u64,
    pub scratch_peak_bytes: u64,
    /// `busy_ns / wall_ns`.
    pub utilization: f64,
    pub spans: Vec<TrackSpan>,
    pub marks: Vec<(u64, String)>,
}

/// The merged per-worker timeline: the artifact `--timeline-out`
/// writes, the `timeline` section of a metrics snapshot, and the input
/// of the Chrome-trace export.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimelineReport {
    /// The run's wall-clock span (ns since the epoch), shared by every
    /// lane.
    pub wall_ns: u64,
    /// Blocks claimed across all lanes — each claimed block lands on
    /// exactly one worker's track.
    pub blocks_total: u64,
    pub busy_ns_total: u64,
    /// `busy_ns_total / (wall_ns * lanes)` — pool-wide utilization.
    pub utilization: f64,
    /// `max_busy / mean_busy` across lanes; 1.0 is perfectly balanced.
    pub imbalance: f64,
    pub lanes: Vec<WorkerLane>,
}

impl Serialize for TrackSpan {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("kind".into(), Value::Str(self.kind.as_str().to_string())),
            ("detail".into(), Value::U64(self.detail)),
            ("start_ns".into(), Value::U64(self.start_ns)),
            ("end_ns".into(), Value::U64(self.end_ns)),
        ])
    }
}

impl Serialize for WorkerLane {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("worker".into(), Value::U64(self.worker as u64)),
            ("name".into(), Value::Str(self.name.clone())),
            ("busy_ns".into(), Value::U64(self.busy_ns)),
            ("idle_ns".into(), Value::U64(self.idle_ns)),
            ("blocks".into(), Value::U64(self.blocks)),
            ("tiles".into(), Value::U64(self.tiles)),
            (
                "scratch_peak_bytes".into(),
                Value::U64(self.scratch_peak_bytes),
            ),
            ("utilization".into(), Value::F64(self.utilization)),
            (
                "spans".into(),
                Value::Array(self.spans.iter().map(Serialize::to_value).collect()),
            ),
            (
                "marks".into(),
                Value::Array(
                    self.marks
                        .iter()
                        .map(|(ns, label)| {
                            Value::Object(vec![
                                ("ns".into(), Value::U64(*ns)),
                                ("label".into(), Value::Str(label.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl Serialize for TimelineReport {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "schema_version".into(),
                Value::Str(SCHEMA_VERSION.to_string()),
            ),
            ("wall_ns".into(), Value::U64(self.wall_ns)),
            ("blocks_total".into(), Value::U64(self.blocks_total)),
            ("busy_ns_total".into(), Value::U64(self.busy_ns_total)),
            ("utilization".into(), Value::F64(self.utilization)),
            ("imbalance".into(), Value::F64(self.imbalance)),
            (
                "workers".into(),
                Value::Array(self.lanes.iter().map(Serialize::to_value).collect()),
            ),
        ])
    }
}

fn field_u64(v: &Value, key: &str, what: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .map(|f| f as u64)
        .ok_or_else(|| format!("{what} missing numeric '{key}'"))
}

fn field_f64(v: &Value, key: &str, what: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{what} missing numeric '{key}'"))
}

impl TimelineReport {
    /// Serialize as a JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("timeline report serialization cannot fail")
    }

    /// Parse back from [`TimelineReport::to_json`] output. A missing
    /// `schema_version` is accepted as legacy; an unknown major version
    /// is rejected (see [`crate::schema`]).
    pub fn from_json(text: &str) -> Result<TimelineReport, String> {
        let doc = serde_json::parse_value(text).map_err(|e| e.to_string())?;
        Self::from_value(&doc)
    }

    /// Reconstruct from a parsed [`Value`] tree.
    pub fn from_value(doc: &Value) -> Result<TimelineReport, String> {
        if let Some(v) = doc.get("schema_version") {
            let found = v
                .as_str()
                .ok_or("'schema_version' must be a string".to_string())?;
            schema::ensure_compatible(found, SCHEMA_VERSION, "timeline report")?;
        }
        let lanes_doc = match doc.get("workers") {
            Some(Value::Array(items)) => items,
            _ => return Err("missing or non-array 'workers' field".into()),
        };
        let mut lanes = Vec::with_capacity(lanes_doc.len());
        for l in lanes_doc {
            let mut spans = Vec::new();
            if let Some(Value::Array(ss)) = l.get("spans") {
                for s in ss {
                    let kind = s
                        .get("kind")
                        .and_then(Value::as_str)
                        .and_then(SpanKind::parse)
                        .ok_or("span has no valid 'kind'")?;
                    spans.push(TrackSpan {
                        kind,
                        detail: field_u64(s, "detail", "span")?,
                        start_ns: field_u64(s, "start_ns", "span")?,
                        end_ns: field_u64(s, "end_ns", "span")?,
                    });
                }
            }
            let mut marks = Vec::new();
            if let Some(Value::Array(ms)) = l.get("marks") {
                for m in ms {
                    marks.push((
                        field_u64(m, "ns", "mark")?,
                        m.get("label")
                            .and_then(Value::as_str)
                            .ok_or("mark has no 'label'")?
                            .to_string(),
                    ));
                }
            }
            lanes.push(WorkerLane {
                worker: field_u64(l, "worker", "lane")? as usize,
                name: l
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("lane has no 'name'")?
                    .to_string(),
                busy_ns: field_u64(l, "busy_ns", "lane")?,
                idle_ns: field_u64(l, "idle_ns", "lane")?,
                blocks: field_u64(l, "blocks", "lane")?,
                tiles: field_u64(l, "tiles", "lane")?,
                scratch_peak_bytes: field_u64(l, "scratch_peak_bytes", "lane")?,
                utilization: field_f64(l, "utilization", "lane")?,
                spans,
                marks,
            });
        }
        Ok(TimelineReport {
            wall_ns: field_u64(doc, "wall_ns", "report")?,
            blocks_total: field_u64(doc, "blocks_total", "report")?,
            busy_ns_total: field_u64(doc, "busy_ns_total", "report")?,
            utilization: field_f64(doc, "utilization", "report")?,
            imbalance: field_f64(doc, "imbalance", "report")?,
            lanes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the canonical two-worker recorder used across tests:
    /// worker 0 claims blocks 0 and 2, worker 1 claims block 1.
    fn sample_recorder() -> TimelineRecorder {
        let rec = TimelineRecorder::new(2);
        rec.worker_started(0, 10);
        rec.worker_started(1, 12);
        rec.scratch_peak(0, 4096);
        rec.scratch_peak(1, 4096);
        rec.block_claimed(0, 0, 20);
        rec.tile_walked(0, 0, 50);
        rec.tile_walked(0, 1, 90);
        rec.block_finished(0, 0, 100);
        rec.block_claimed(1, 1, 30);
        rec.tile_walked(1, 0, 60);
        rec.tile_walked(1, 1, 110);
        rec.block_finished(1, 1, 130);
        rec.block_claimed(0, 2, 120);
        rec.tile_walked(0, 0, 150);
        rec.tile_walked(0, 1, 190);
        rec.block_finished(0, 2, 200);
        rec.worker_finished(0, 210);
        rec.worker_finished(1, 140);
        rec
    }

    #[test]
    fn fold_accounts_busy_idle_blocks_and_imbalance() {
        let report = sample_recorder().report(250);
        assert_eq!(report.wall_ns, 250);
        assert_eq!(report.blocks_total, 3);
        assert_eq!(report.lanes.len(), 2);
        let w0 = &report.lanes[0];
        let w1 = &report.lanes[1];
        // worker 0: blocks [20,100] and [120,200] = 160 ns busy
        assert_eq!(w0.busy_ns, 160);
        assert_eq!(w0.idle_ns, 90);
        assert_eq!(w0.blocks, 2);
        assert_eq!(w0.tiles, 4);
        // worker 1: block [30,130] = 100 ns busy
        assert_eq!(w1.busy_ns, 100);
        assert_eq!(w1.idle_ns, 150);
        assert_eq!(w1.blocks, 1);
        assert_eq!(w1.tiles, 2);
        assert_eq!(report.busy_ns_total, 260);
        // utilization = 260 / (250 * 2)
        assert!((report.utilization - 0.52).abs() < 1e-12);
        // imbalance = 160 / 130
        assert!((report.imbalance - 160.0 / 130.0).abs() < 1e-12);
        assert_eq!(w0.scratch_peak_bytes, 4096);
    }

    #[test]
    fn every_claimed_block_lands_on_exactly_one_lane() {
        let report = sample_recorder().report(250);
        let mut seen: Vec<u64> = report
            .lanes
            .iter()
            .flat_map(|l| l.spans.iter())
            .filter(|s| s.kind == SpanKind::Block)
            .map(|s| s.detail)
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
        let claimed: u64 = report.lanes.iter().map(|l| l.blocks).sum();
        assert_eq!(claimed, report.blocks_total);
        assert_eq!(claimed, 3);
    }

    #[test]
    fn busy_plus_idle_is_wall_even_when_wall_lags_the_spans() {
        // Caller snapshots with a stale wall: the fold stretches it to
        // the latest event instead of going negative.
        let report = sample_recorder().report(0);
        assert_eq!(report.wall_ns, 210);
        for lane in &report.lanes {
            assert_eq!(lane.busy_ns + lane.idle_ns, report.wall_ns, "{}", lane.name);
        }
    }

    #[test]
    fn tile_spans_nest_inside_their_block_and_do_not_double_charge() {
        let rec = TimelineRecorder::new(1);
        rec.block_claimed(0, 0, 100);
        rec.tile_walked(0, 0, 150);
        rec.tile_walked(0, 1, 220);
        rec.block_finished(0, 0, 230);
        let report = rec.report(230);
        let lane = &report.lanes[0];
        // busy counts only the block span [100, 230], not the tiles
        assert_eq!(lane.busy_ns, 130);
        let tiles: Vec<&TrackSpan> = lane
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Tile)
            .collect();
        assert_eq!(tiles.len(), 2);
        assert_eq!((tiles[0].start_ns, tiles[0].end_ns), (100, 150));
        assert_eq!((tiles[1].start_ns, tiles[1].end_ns), (150, 220));
        let block = lane
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Block)
            .unwrap();
        for t in tiles {
            assert!(t.start_ns >= block.start_ns && t.end_ns <= block.end_ns);
        }
    }

    #[test]
    fn named_lanes_and_explicit_spans_serve_the_engine() {
        let rec = TimelineRecorder::with_names(&["server", "queue"]);
        rec.span(0, SpanKind::Service, 7, 100, 400);
        rec.span(1, SpanKind::QueueWait, 7, 50, 100);
        rec.mark(0, 250, "degrade:large-tile");
        let report = rec.report(500);
        assert_eq!(report.lanes[0].name, "server");
        assert_eq!(report.lanes[0].busy_ns, 300);
        // queue-wait is not busy time
        assert_eq!(report.lanes[1].busy_ns, 0);
        assert_eq!(report.lanes[1].spans[0].kind, SpanKind::QueueWait);
        assert_eq!(
            report.lanes[0].marks,
            vec![(250, "degrade:large-tile".into())]
        );
    }

    #[test]
    fn empty_recorder_reports_balanced_idle() {
        let report = TimelineRecorder::new(3).report(1000);
        assert_eq!(report.blocks_total, 0);
        assert_eq!(report.busy_ns_total, 0);
        assert_eq!(report.utilization, 0.0);
        assert_eq!(report.imbalance, 1.0);
        for lane in &report.lanes {
            assert_eq!(lane.idle_ns, 1000);
        }
    }

    #[test]
    fn report_json_round_trips() {
        let report = sample_recorder().report(250);
        let json = report.to_json();
        let back = TimelineReport::from_json(&json).expect("report must parse back");
        assert_eq!(back, report);
        assert!(TimelineReport::from_json("{}").is_err());
        assert!(TimelineReport::from_json("not json").is_err());
    }

    #[test]
    fn report_json_is_versioned_and_rejects_unknown_majors() {
        let json = sample_recorder().report(250).to_json();
        assert!(json.contains("\"schema_version\": \"1.0\""), "{json}");
        let future = json.replace("\"schema_version\": \"1.0\"", "\"schema_version\": \"2.0\"");
        let err = TimelineReport::from_json(&future).unwrap_err();
        assert!(err.contains("major version"), "{err}");
        let minor = json.replace("\"schema_version\": \"1.0\"", "\"schema_version\": \"1.9\"");
        assert!(TimelineReport::from_json(&minor).is_ok());
        let legacy = json.replace("\"schema_version\": \"1.0\",", "");
        assert!(TimelineReport::from_json(&legacy).is_ok());
    }

    #[test]
    fn null_timeline_hooks_are_callable_no_ops() {
        let t = NullTimeline;
        t.worker_started(0);
        t.scratch_reserved(0, 1024);
        t.block_claimed(0, 0);
        t.tile_walked(0, 0, 0);
        t.block_finished(0, 0, 1);
        t.worker_finished(0);
    }

    #[test]
    fn recorder_is_usable_from_parallel_workers() {
        let rec = TimelineRecorder::new(4);
        rayon::scope_broadcast(4, |w| {
            rec.worker_started(w, w as u64);
            for b in 0..8u64 {
                let t0 = (w as u64) * 1000 + b * 100;
                rec.block_claimed(w, b * 4 + w as u64, t0);
                rec.tile_walked(w, 0, t0 + 40);
                rec.block_finished(w, b * 4 + w as u64, t0 + 80);
            }
            rec.worker_finished(w, (w as u64) * 1000 + 900);
        });
        let report = rec.report(5000);
        assert_eq!(report.blocks_total, 32);
        let mut blocks: Vec<u64> = report
            .lanes
            .iter()
            .flat_map(|l| l.spans.iter())
            .filter(|s| s.kind == SpanKind::Block)
            .map(|s| s.detail)
            .collect();
        blocks.sort_unstable();
        assert_eq!(blocks, (0..32).collect::<Vec<u64>>());
        for lane in &report.lanes {
            assert_eq!(lane.busy_ns + lane.idle_ns, report.wall_ns);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Per-lane `busy + idle == wall` for arbitrary span soups,
            /// including walls that lag the recorded spans.
            #[test]
            fn busy_plus_idle_always_sums_to_wall(
                spans in proptest::collection::vec(
                    (0u64..3, 0u64..10_000, 0u64..10_000), 0..40),
                wall in 0u64..20_000,
                workers in 1usize..5,
            ) {
                let rec = TimelineRecorder::new(workers);
                for (i, (kind, a, b)) in spans.iter().enumerate() {
                    let kind = match kind {
                        0 => SpanKind::Block,
                        1 => SpanKind::Service,
                        _ => SpanKind::Tile,
                    };
                    let (start, end) = (*a.min(b), *a.max(b));
                    rec.span(i % workers, kind, i as u64, start, end);
                }
                let report = rec.report(wall);
                for lane in &report.lanes {
                    prop_assert_eq!(lane.busy_ns + lane.idle_ns, report.wall_ns);
                    prop_assert!(lane.utilization >= 0.0 && lane.utilization <= 1.0);
                }
                prop_assert!(report.imbalance >= 1.0 - 1e-9);
            }
        }
    }
}
