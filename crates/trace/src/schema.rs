//! Versioning for the crate's serialized artifacts.
//!
//! Both the metrics snapshot JSON ([`crate::metrics`]) and the query
//! journal JSONL ([`crate::journal`]) stamp a `schema_version` string
//! of the form `MAJOR.MINOR`. Compatibility is semver-lite:
//!
//! * same major version — compatible, regardless of minor (newer
//!   minors only *add* fields, and parsers ignore unknown fields);
//! * different major version — incompatible, parsing fails loudly;
//! * missing version — treated as the pre-versioning legacy format and
//!   accepted, so artifacts written before this field existed still load.

/// Split `"MAJOR.MINOR"` into its numeric major component.
fn major_of(version: &str) -> Option<u64> {
    version.split('.').next()?.parse().ok()
}

/// Check a parsed artifact's version against what this build writes.
///
/// `what` names the artifact for the error message (e.g. "journal
/// record", "metrics snapshot").
pub fn ensure_compatible(found: &str, expected: &str, what: &str) -> Result<(), String> {
    let found_major =
        major_of(found).ok_or_else(|| format!("{what}: malformed schema_version '{found}'"))?;
    let expected_major = major_of(expected)
        .ok_or_else(|| format!("{what}: malformed expected version '{expected}'"))?;
    if found_major != expected_major {
        return Err(format!(
            "{what}: unsupported schema major version {found} (this build reads {expected})"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_major_is_compatible_any_minor() {
        assert!(ensure_compatible("1.0", "1.0", "t").is_ok());
        assert!(ensure_compatible("1.9", "1.0", "t").is_ok());
        assert!(ensure_compatible("1.0", "1.3", "t").is_ok());
    }

    #[test]
    fn different_major_is_rejected() {
        let err = ensure_compatible("2.0", "1.0", "metrics snapshot").unwrap_err();
        assert!(err.contains("major version 2.0"));
        assert!(err.contains("metrics snapshot"));
        assert!(ensure_compatible("0.9", "1.0", "t").is_err());
    }

    #[test]
    fn malformed_versions_are_named_errors() {
        assert!(ensure_compatible("", "1.0", "t").is_err());
        assert!(ensure_compatible("one.two", "1.0", "t").is_err());
    }
}
