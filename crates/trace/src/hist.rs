//! Per-position update histograms.

/// Write counts per queue position (index 0 = queue head).
///
/// This is the data structure behind the paper's Fig. 5 analysis: the
/// insertion queue hammers positions near the head, the heap spreads
/// writes across tree levels, and the Merge Queue sits in between. It
/// lives in the trace crate so every queue variant — and any future
/// structure with positional writes — shares one implementation;
/// `kselect::queues::stats::UpdateCounter` is now a thin alias over it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PositionHistogram {
    counts: Vec<u64>,
}

impl PositionHistogram {
    /// Histogram over `k` positions.
    pub fn new(k: usize) -> Self {
        PositionHistogram { counts: vec![0; k] }
    }

    /// Number of tracked positions.
    pub fn positions(&self) -> usize {
        self.counts.len()
    }

    /// Record one write at `pos`.
    #[inline]
    pub fn record(&mut self, pos: usize) {
        self.counts[pos] += 1;
    }

    /// Writes observed at each position.
    pub fn per_position(&self) -> &[u64] {
        &self.counts
    }

    /// Total writes across all positions.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merge another histogram of the same width (e.g. across queries).
    pub fn merge(&mut self, other: &PositionHistogram) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "cannot merge histograms of different widths"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Consume into the raw count vector.
    pub fn into_counts(self) -> Vec<u64> {
        self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_totals() {
        let mut h = PositionHistogram::new(4);
        h.record(0);
        h.record(0);
        h.record(3);
        assert_eq!(h.per_position(), &[2, 0, 0, 1]);
        assert_eq!(h.total(), 3);
        assert_eq!(h.positions(), 4);
    }

    #[test]
    fn merge_adds() {
        let mut a = PositionHistogram::new(2);
        a.record(0);
        let mut b = PositionHistogram::new(2);
        b.record(1);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.per_position(), &[1, 2]);
    }

    #[test]
    #[should_panic]
    fn merge_width_mismatch_panics() {
        let mut a = PositionHistogram::new(2);
        a.merge(&PositionHistogram::new(3));
    }
}
