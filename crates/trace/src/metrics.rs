//! Native runtime metrics: wall-clock histograms, counters, gauges and
//! memory high-water marks for the **real** (non-simulated) hot paths.
//!
//! Everything else in this crate records *simulated* time — the
//! [`crate::Tracer`]'s clock only moves when instrumented code advances
//! it by modelled durations. This module is the complementary face: a
//! thread-safe [`MetricsRegistry`] that measures the native pipeline
//! (`knn_search`, `knn_search_streamed`, the blocked distance kernel)
//! with monotonic host wall clock, usable concurrently from rayon
//! workers.
//!
//! Primitives:
//!
//! * **latency histograms** — log2-bucketed over nanoseconds with exact
//!   count/sum/min/max, so p50/p95/p99 can be estimated without storing
//!   samples ([`Histogram`]);
//! * **monotonic counters** — event totals (merge pushes, rejects);
//! * **gauges** — last-written values (configured tile size, QPS);
//! * **peaks** — high-water marks (`record_peak` keeps the max), used
//!   for distance-scratch working-set bytes.
//!
//! [`MetricsRegistry::snapshot`] freezes everything into a plain-data
//! [`MetricsSnapshot`] that serializes to JSON (and parses back — see
//! [`MetricsSnapshot::from_json`]), renders as OpenMetrics text
//! ([`crate::openmetrics::render`]) or as a fixed-width table
//! ([`crate::openmetrics::render_table`]).
//!
//! This file is deliberately the *only* place in the workspace's
//! observability layer that reads host time; `cargo xtask lint` scans it
//! under the `no-wall-clock` rule with a reviewed allowlist entry, while
//! gpu/simt sources stay banned from `Instant` outright.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use serde::{Serialize, Value};

use crate::schema;

/// Version stamped on snapshot JSON (`schema_version`); see
/// [`crate::schema`] for the compatibility rule applied when parsing.
/// 1.1 added the optional `labels` (string-valued runtime config such
/// as `knn.simd_dispatch`) and `timeline` (per-worker
/// [`crate::timeline::TimelineReport`]) sections; 1.0 documents still
/// parse.
pub const SCHEMA_VERSION: &str = "1.1";

/// Number of log2 buckets: bucket `i` counts observations `v` (in ns)
/// with `v <= 2^i`, assigned to the smallest such `i`. 2^63 ns ≈ 292
/// years, so the top bucket is unreachable in practice and doubles as
/// the overflow bucket.
pub const LOG2_BUCKETS: usize = 64;

/// Index of the bucket an observation lands in (see [`LOG2_BUCKETS`]).
#[inline]
fn bucket_index(ns: u64) -> usize {
    if ns <= 1 {
        0
    } else {
        (64 - (ns - 1).leading_zeros() as usize).min(LOG2_BUCKETS - 1)
    }
}

/// Upper bound (inclusive, in ns) of bucket `i`.
#[inline]
fn bucket_le(i: usize) -> u64 {
    1u64 << i
}

/// Log2-bucketed latency histogram over nanoseconds.
///
/// Exact `count`, `sum`, `min` and `max`; the bucket counts allow
/// quantile *estimation* ([`Histogram::quantile_ns`]) with relative
/// error bounded by the bucket width (a factor of 2), tightened by
/// clamping to the observed min/max.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; LOG2_BUCKETS],
    count: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; LOG2_BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one observation of `ns` nanoseconds.
    pub fn observe(&mut self, ns: u64) {
        self.buckets[bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all observations, ns.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Mean observation, ns (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Smallest observation, ns (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest observation, ns.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`), ns: walk the cumulative
    /// bucket counts to the target rank and interpolate linearly inside
    /// the bucket, clamped to the exact observed min/max.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                let lo = if i == 0 { 0 } else { bucket_le(i - 1) };
                let hi = bucket_le(i);
                let frac = (rank - cum) as f64 / c as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                return est.clamp(self.min_ns as f64, self.max_ns as f64);
            }
            cum += c;
        }
        self.max_ns as f64
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Per-bucket `(le_ns, count)` pairs up to the highest non-empty
    /// bucket (counts are per-bucket, not cumulative).
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        let last = match self.buckets.iter().rposition(|&c| c > 0) {
            Some(i) => i,
            None => return Vec::new(),
        };
        (0..=last)
            .map(|i| (bucket_le(i), self.buckets[i]))
            .collect()
    }
}

#[derive(Default)]
struct Inner {
    hists: BTreeMap<String, Histogram>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    peaks: BTreeMap<String, u64>,
    labels: BTreeMap<String, String>,
}

/// Thread-safe metrics registry.
///
/// All recording methods take `&self`, so one registry can be shared by
/// reference across rayon workers; contention is one short mutex
/// critical section per recorded event (the native pipeline records per
/// query/tile, not per element, so this is far off the hot path).
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned registry only means a worker panicked mid-record;
        // the counts themselves are still coherent u64s.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record `ns` into the named latency histogram.
    pub fn observe_ns(&self, name: &str, ns: u64) {
        self.lock()
            .hists
            .entry(name.to_string())
            .or_default()
            .observe(ns);
    }

    /// Run `f`, recording its monotonic wall-clock duration into the
    /// named histogram.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let out = f();
        self.observe_ns(name, t0.elapsed().as_nanos() as u64);
        out
    }

    /// Start a scoped timer that records into `name` when dropped.
    pub fn scoped(&self, name: impl Into<String>) -> ScopedTimer<'_> {
        ScopedTimer {
            registry: self,
            name: name.into(),
            t0: Instant::now(),
        }
    }

    /// Bump a monotonic counter by `n`.
    pub fn inc(&self, name: &str, n: u64) {
        if n == 0 {
            return;
        }
        *self.lock().counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Set a gauge to `v` (last write wins).
    pub fn set_gauge(&self, name: &str, v: f64) {
        self.lock().gauges.insert(name.to_string(), v);
    }

    /// Set a string-valued label (last write wins): runtime config a
    /// number can't carry, like the dispatched SIMD kernel name.
    pub fn set_label(&self, name: &str, value: &str) {
        self.lock()
            .labels
            .insert(name.to_string(), value.to_string());
    }

    /// Current value of a label (`None` when never set).
    pub fn label(&self, name: &str) -> Option<String> {
        self.lock().labels.get(name).cloned()
    }

    /// Record a high-water mark: the stored value only ever grows.
    pub fn record_peak(&self, name: &str, v: u64) {
        let mut inner = self.lock();
        let slot = inner.peaks.entry(name.to_string()).or_insert(0);
        *slot = (*slot).max(v);
    }

    /// Current value of a counter (0 when never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Current high-water mark of a peak (0 when never recorded).
    pub fn peak(&self, name: &str) -> u64 {
        self.lock().peaks.get(name).copied().unwrap_or(0)
    }

    /// Freeze everything recorded so far into a plain-data snapshot
    /// (with p50/p95/p99 estimated per histogram at snapshot time).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            histograms: inner
                .hists
                .iter()
                .map(|(name, h)| HistogramSnapshot {
                    name: name.clone(),
                    count: h.count(),
                    sum_ns: h.sum_ns(),
                    min_ns: h.min_ns(),
                    max_ns: h.max_ns(),
                    p50_ns: h.quantile_ns(0.50),
                    p95_ns: h.quantile_ns(0.95),
                    p99_ns: h.quantile_ns(0.99),
                    buckets: h.buckets(),
                })
                .collect(),
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            peaks: inner.peaks.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            labels: inner
                .labels
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            timeline: None,
        }
    }
}

/// RAII timer from [`MetricsRegistry::scoped`].
pub struct ScopedTimer<'a> {
    registry: &'a MetricsRegistry,
    name: String,
    t0: Instant,
}

impl Drop for ScopedTimer<'_> {
    fn drop(&mut self) {
        self.registry
            .observe_ns(&self.name, self.t0.elapsed().as_nanos() as u64);
    }
}

/// One histogram, frozen.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    pub p50_ns: f64,
    pub p95_ns: f64,
    pub p99_ns: f64,
    /// `(le_ns, count)` per-bucket (non-cumulative) counts up to the
    /// highest non-empty bucket.
    pub buckets: Vec<(u64, u64)>,
}

/// Everything a registry recorded, frozen as plain data. Name-sorted
/// (BTreeMap order), so two snapshots of the same activity are equal.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub histograms: Vec<HistogramSnapshot>,
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub peaks: Vec<(String, u64)>,
    /// String-valued runtime config (`knn.simd_dispatch`); empty on
    /// legacy (schema 1.0) documents.
    pub labels: Vec<(String, String)>,
    /// Per-worker execution timeline, attached by `--timeline-out`
    /// runs; `None` (and omitted from JSON) otherwise.
    pub timeline: Option<crate::timeline::TimelineReport>,
}

impl Serialize for HistogramSnapshot {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("name".into(), Value::Str(self.name.clone())),
            ("count".into(), Value::U64(self.count)),
            ("sum_ns".into(), Value::U64(self.sum_ns)),
            ("min_ns".into(), Value::U64(self.min_ns)),
            ("max_ns".into(), Value::U64(self.max_ns)),
            ("p50_ns".into(), Value::F64(self.p50_ns)),
            ("p95_ns".into(), Value::F64(self.p95_ns)),
            ("p99_ns".into(), Value::F64(self.p99_ns)),
            (
                "buckets".into(),
                Value::Array(
                    self.buckets
                        .iter()
                        .map(|(le, c)| {
                            Value::Object(vec![
                                ("le_ns".into(), Value::U64(*le)),
                                ("count".into(), Value::U64(*c)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn named_u64s(items: &[(String, u64)]) -> Value {
    Value::Object(
        items
            .iter()
            .map(|(k, v)| (k.clone(), Value::U64(*v)))
            .collect(),
    )
}

impl Serialize for MetricsSnapshot {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            (
                "schema_version".into(),
                Value::Str(SCHEMA_VERSION.to_string()),
            ),
            (
                "histograms".into(),
                Value::Array(self.histograms.iter().map(Serialize::to_value).collect()),
            ),
            ("counters".into(), named_u64s(&self.counters)),
            (
                "gauges".into(),
                Value::Object(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::F64(*v)))
                        .collect(),
                ),
            ),
            ("peaks".into(), named_u64s(&self.peaks)),
            (
                "labels".into(),
                Value::Object(
                    self.labels
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                        .collect(),
                ),
            ),
        ];
        if let Some(tl) = &self.timeline {
            fields.push(("timeline".into(), tl.to_value()));
        }
        Value::Object(fields)
    }
}

fn value_u64(v: &Value, what: &str) -> Result<u64, String> {
    v.as_f64()
        .map(|f| f as u64)
        .ok_or_else(|| format!("{what} is not a number"))
}

fn value_entries<'a>(v: Option<&'a Value>, what: &str) -> Result<&'a [(String, Value)], String> {
    match v {
        Some(Value::Object(fields)) => Ok(fields),
        _ => Err(format!("missing or non-object '{what}' field")),
    }
}

impl MetricsSnapshot {
    /// Serialize as a JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("metrics snapshot serialization cannot fail")
    }

    /// Parse a snapshot back from [`MetricsSnapshot::to_json`] output —
    /// the round-trip half used by `benchdiff`-style tooling and the
    /// serialization tests.
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, String> {
        let doc = serde_json::parse_value(text).map_err(|e| e.to_string())?;
        Self::from_value(&doc)
    }

    /// Reconstruct from a parsed [`Value`] tree.
    ///
    /// A missing `schema_version` is accepted as the pre-versioning
    /// legacy format; an unknown major version is rejected.
    pub fn from_value(doc: &Value) -> Result<MetricsSnapshot, String> {
        if let Some(v) = doc.get("schema_version") {
            let found = v
                .as_str()
                .ok_or("'schema_version' must be a string".to_string())?;
            schema::ensure_compatible(found, SCHEMA_VERSION, "metrics snapshot")?;
        }
        let hists = match doc.get("histograms") {
            Some(Value::Array(items)) => items,
            _ => return Err("missing or non-array 'histograms' field".into()),
        };
        let mut histograms = Vec::with_capacity(hists.len());
        for h in hists {
            let name = h
                .get("name")
                .and_then(Value::as_str)
                .ok_or("histogram missing 'name'")?
                .to_string();
            let get = |k: &str| -> Result<u64, String> {
                value_u64(
                    h.get(k).ok_or_else(|| format!("histogram missing '{k}'"))?,
                    k,
                )
            };
            let getf = |k: &str| -> Result<f64, String> {
                h.get(k)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("histogram missing '{k}'"))
            };
            let mut buckets = Vec::new();
            if let Some(Value::Array(bs)) = h.get("buckets") {
                for b in bs {
                    buckets.push((
                        value_u64(b.get("le_ns").ok_or("bucket missing 'le_ns'")?, "le_ns")?,
                        value_u64(b.get("count").ok_or("bucket missing 'count'")?, "count")?,
                    ));
                }
            }
            histograms.push(HistogramSnapshot {
                name,
                count: get("count")?,
                sum_ns: get("sum_ns")?,
                min_ns: get("min_ns")?,
                max_ns: get("max_ns")?,
                p50_ns: getf("p50_ns")?,
                p95_ns: getf("p95_ns")?,
                p99_ns: getf("p99_ns")?,
                buckets,
            });
        }
        let mut counters = Vec::new();
        for (k, v) in value_entries(doc.get("counters"), "counters")? {
            counters.push((k.clone(), value_u64(v, k)?));
        }
        let mut gauges = Vec::new();
        for (k, v) in value_entries(doc.get("gauges"), "gauges")? {
            gauges.push((k.clone(), v.as_f64().ok_or_else(|| format!("gauge {k}"))?));
        }
        let mut peaks = Vec::new();
        for (k, v) in value_entries(doc.get("peaks"), "peaks")? {
            peaks.push((k.clone(), value_u64(v, k)?));
        }
        // `labels` and `timeline` arrived with schema 1.1; absent on
        // legacy documents.
        let mut labels = Vec::new();
        if let Some(Value::Object(fields)) = doc.get("labels") {
            for (k, v) in fields {
                labels.push((
                    k.clone(),
                    v.as_str()
                        .ok_or_else(|| format!("label {k} is not a string"))?
                        .to_string(),
                ));
            }
        }
        let timeline = match doc.get("timeline") {
            Some(t) => Some(crate::timeline::TimelineReport::from_value(t)?),
            None => None,
        };
        Ok(MetricsSnapshot {
            histograms,
            counters,
            gauges,
            peaks,
            labels,
            timeline,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_with_inclusive_upper_bounds() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        assert_eq!(bucket_index(u64::MAX), LOG2_BUCKETS - 1);
        for ns in [1u64, 2, 3, 7, 8, 9, 1 << 20, (1 << 20) + 1] {
            let i = bucket_index(ns);
            assert!(ns <= bucket_le(i), "{ns} must be <= its bucket's le");
            if i > 0 {
                assert!(ns > bucket_le(i - 1), "{ns} must exceed the bucket below");
            }
        }
    }

    #[test]
    fn histogram_tracks_exact_count_sum_min_max() {
        let mut h = Histogram::new();
        for ns in [100u64, 200, 400, 800, 1600] {
            h.observe(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_ns(), 3100);
        assert_eq!(h.min_ns(), 100);
        assert_eq!(h.max_ns(), 1600);
        assert!((h.mean_ns() - 620.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_ordered_and_clamped_to_observed_range() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.observe(i * 1000); // 1µs .. 1ms
        }
        let (p50, p95, p99) = (h.quantile_ns(0.5), h.quantile_ns(0.95), h.quantile_ns(0.99));
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p50 >= h.min_ns() as f64 && p99 <= h.max_ns() as f64);
        // log2 buckets bound the estimate within a factor of 2
        assert!((250_000.0..=1_000_000.0).contains(&p50), "p50 = {p50}");
        // single observation: every quantile is that observation
        let mut one = Histogram::new();
        one.observe(777);
        assert_eq!(one.quantile_ns(0.5), 777.0);
        assert_eq!(one.quantile_ns(0.99), 777.0);
        // empty histogram yields zeros
        assert_eq!(Histogram::new().quantile_ns(0.5), 0.0);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Histogram::new();
        a.observe(10);
        a.observe(1000);
        let mut b = Histogram::new();
        b.observe(5);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min_ns(), 5);
        assert_eq!(a.max_ns(), 1000);
        assert_eq!(a.sum_ns(), 1015);
    }

    #[test]
    fn registry_records_all_metric_kinds() {
        let reg = MetricsRegistry::new();
        reg.observe_ns("lat", 1000);
        reg.time("lat", || std::hint::black_box(1 + 1));
        {
            let _t = reg.scoped("lat");
        }
        reg.inc("events", 3);
        reg.inc("events", 0); // no-op
        reg.set_gauge("tile", 4096.0);
        reg.record_peak("bytes", 100);
        reg.record_peak("bytes", 50); // peaks never shrink
        let snap = reg.snapshot();
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].count, 3);
        assert_eq!(snap.counters, vec![("events".to_string(), 3)]);
        assert_eq!(snap.gauges, vec![("tile".to_string(), 4096.0)]);
        assert_eq!(snap.peaks, vec![("bytes".to_string(), 100)]);
        assert_eq!(reg.counter("events"), 3);
        assert_eq!(reg.peak("bytes"), 100);
        assert_eq!(reg.counter("missing"), 0);
    }

    #[test]
    fn registry_is_usable_from_parallel_workers() {
        use rayon::prelude::*;
        let reg = MetricsRegistry::new();
        (0..256usize).into_par_iter().for_each(|i| {
            reg.observe_ns("par.lat", (i as u64 + 1) * 10);
            reg.inc("par.events", 1);
            reg.record_peak("par.peak", i as u64);
        });
        let snap = reg.snapshot();
        assert_eq!(snap.histograms[0].count, 256);
        assert_eq!(reg.counter("par.events"), 256);
        assert_eq!(reg.peak("par.peak"), 255);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let reg = MetricsRegistry::new();
        for ns in [120u64, 450, 9_000, 1_000_000] {
            reg.observe_ns("knn.query.latency_ns", ns);
        }
        reg.inc("knn.stream.merge_push", 42);
        reg.set_gauge("knn.tile", 4096.0);
        reg.record_peak("knn.peak_distance_bytes", 1 << 24);
        let snap = reg.snapshot();
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json).expect("snapshot must parse back");
        assert_eq!(back, snap);
        // malformed documents are named errors, not panics
        assert!(MetricsSnapshot::from_json("{}").is_err());
        assert!(MetricsSnapshot::from_json("not json").is_err());
    }

    #[test]
    fn snapshot_json_is_versioned_and_rejects_unknown_majors() {
        let reg = MetricsRegistry::new();
        reg.observe_ns("lat", 100);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"schema_version\": \"1.1\""), "{json}");
        // a future major version must fail loudly...
        let future = json.replace("\"schema_version\": \"1.1\"", "\"schema_version\": \"2.0\"");
        let err = MetricsSnapshot::from_json(&future).unwrap_err();
        assert!(err.contains("major version"), "{err}");
        // ...a newer minor and the pre-versioning legacy shape both load
        let minor = json.replace("\"schema_version\": \"1.1\"", "\"schema_version\": \"1.5\"");
        assert!(MetricsSnapshot::from_json(&minor).is_ok());
        let legacy = json.replace("\"schema_version\": \"1.1\",", "");
        assert!(MetricsSnapshot::from_json(&legacy).is_ok());
    }

    #[test]
    fn labels_round_trip_and_legacy_documents_parse_without_them() {
        let reg = MetricsRegistry::new();
        reg.observe_ns("lat", 100);
        reg.set_label("knn.simd_dispatch", "avx2+fma");
        reg.set_label("knn.simd_dispatch", "scalar8"); // last write wins
        assert_eq!(reg.label("knn.simd_dispatch").as_deref(), Some("scalar8"));
        assert_eq!(reg.label("missing"), None);
        let snap = reg.snapshot();
        assert_eq!(
            snap.labels,
            vec![("knn.simd_dispatch".to_string(), "scalar8".to_string())]
        );
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        // a schema-1.0 document (no labels/timeline keys) still parses
        let legacy =
            r#"{"schema_version":"1.0","histograms":[],"counters":{},"gauges":{},"peaks":{}}"#;
        let parsed = MetricsSnapshot::from_json(legacy).unwrap();
        assert!(parsed.labels.is_empty());
        assert!(parsed.timeline.is_none());
    }

    #[test]
    fn timeline_section_round_trips_and_is_omitted_when_absent() {
        let reg = MetricsRegistry::new();
        reg.observe_ns("lat", 100);
        let bare = reg.snapshot();
        assert!(!bare.to_json().contains("\"timeline\""));

        let rec = crate::timeline::TimelineRecorder::new(2);
        rec.block_claimed(0, 0, 10);
        rec.block_finished(0, 0, 90);
        rec.block_claimed(1, 1, 20);
        rec.block_finished(1, 1, 60);
        let mut snap = reg.snapshot();
        snap.timeline = Some(rec.report(100));
        let json = snap.to_json();
        assert!(json.contains("\"timeline\""), "{json}");
        let back = MetricsSnapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
        let tl = back.timeline.unwrap();
        assert_eq!(tl.blocks_total, 2);
        assert_eq!(tl.lanes.len(), 2);
    }

    #[test]
    fn bucket_listing_trims_trailing_zeros_and_covers_count() {
        let mut h = Histogram::new();
        h.observe(3);
        h.observe(1000);
        let buckets = h.buckets();
        assert_eq!(buckets.last().map(|b| b.0), Some(1024));
        let total: u64 = buckets.iter().map(|b| b.1).sum();
        assert_eq!(total, h.count());
        assert!(Histogram::new().buckets().is_empty());
    }
}
