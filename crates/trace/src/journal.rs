//! Per-query structured event journal with tail-latency exemplars.
//!
//! Aggregate histograms ([`crate::metrics`]) answer "what does the
//! pipeline cost overall"; this module answers the production question
//! they erase: *which individual queries were slow, and why*. Each
//! completed query may emit one [`QueryRecord`] — phase-by-phase
//! nanoseconds, scratch peak, stream-merge push/reject counts, and the
//! retry/fallback outcome from the resilience layer — into an
//! [`EventJournal`]:
//!
//! * **lock-striped bounded buffers** — records land in one of several
//!   independently locked ring buffers (stripe chosen by query id), so
//!   concurrent rayon workers rarely contend; each stripe is bounded
//!   and evicts its oldest record when full (evictions are counted,
//!   never silent);
//! * **head-based probabilistic sampling** — a deterministic hash of
//!   the query id (seeded SplitMix64) decides *up front* whether a
//!   query's record is retained in the ring, so the sampling decision
//!   is reproducible across runs and costs one multiply per query;
//! * **always-keep exemplars** — independent of sampling, the top-E
//!   slowest records (bounded min-heap keyed on total latency) are
//!   always retained, so the tail can never be sampled away.
//!
//! This module deliberately reads **no clocks**: every nanosecond value
//! arrives pre-measured (wall-clock from the cfg-gated `knn::metered`
//! call sites, simulated time from the resilient pipeline). `cargo
//! xtask lint` scans this file under the `no-wall-clock` rule with no
//! allowlist entries.
//!
//! Export is JSONL — one self-describing JSON object per line, each
//! carrying [`SCHEMA_VERSION`] — parsed back by [`parse_jsonl`], which
//! rejects unknown major versions. `knn-cli report` and `cargo xtask
//! slogate` consume this format.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Serialize, Value};

use crate::schema;

/// Version stamped on every journal line (`schema_version`); see
/// [`crate::schema`] for the compatibility rule. 1.1 added the
/// `worker` field (the pipeline worker that serviced the query);
/// 1.0 lines still parse, defaulting `worker` to 0.
pub const SCHEMA_VERSION: &str = "1.1";

/// Phase-name keys the knn pipelines record under. The journal accepts
/// any name; these are the ones `knn-cli report` knows how to group.
pub mod phases {
    /// One query end to end on the materialized row path.
    pub const QUERY: &str = "query";
    /// Distance-row fill (materialized path).
    pub const ROW_FILL: &str = "row_fill";
    /// Full-row k-selection (materialized path).
    pub const ROW_SELECT: &str = "row_select";
    /// Distance fill of one reference tile (streamed path, summed).
    pub const TILE_FILL: &str = "tile_fill";
    /// Per-tile k-selection (streamed path, summed).
    pub const TILE_SELECT: &str = "tile_select";
    /// Distance kernel share (simulated resilient pipeline).
    pub const DISTANCE: &str = "distance";
    /// Selection kernel share (simulated resilient pipeline).
    pub const SELECT: &str = "select";
    /// Retry backoff share (simulated resilient pipeline).
    pub const BACKOFF: &str = "backoff";
    /// Host-fallback transfer share (simulated resilient pipeline).
    pub const FALLBACK: &str = "fallback";
    /// Simulated time a request waited in the admission queue before
    /// service started (serving layer).
    pub const QUEUE_WAIT: &str = "queue_wait";
    /// Input upload over the (possibly faulted) PCIe link (serving
    /// layer).
    pub const UPLOAD: &str = "upload";
}

/// One sampled (or exemplar) query, frozen as plain data.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryRecord {
    /// Journal-global admission sequence number (assigned by
    /// [`EventJournal::record`]; query ids may legitimately repeat
    /// across sweep combinations or campaign seeds).
    pub seq: u64,
    /// Semantic query index within its run.
    pub query: u64,
    /// Queue kind the query was selected with (`merge`/`heap`/...).
    pub queue: String,
    /// Free-form run context (campaign seed, bench label; may be empty).
    pub tag: String,
    /// Streaming tile size (0 on the materialized row path).
    pub tile: u64,
    /// End-to-end latency, nanoseconds (wall-clock on native paths,
    /// simulated on the resilient pipeline).
    pub total_ns: u64,
    /// Per-phase nanoseconds, in recording order (see [`phases`]).
    pub phase_ns: Vec<(String, u64)>,
    /// Distance-scratch bytes attributable to this query.
    pub scratch_bytes: u64,
    /// Candidates this query pushed into its stream merger.
    pub merge_push: u64,
    /// Candidates its running top-k evicted.
    pub merge_reject: u64,
    /// Distance-kernel blocks (reference tiles) crossed.
    pub blocks: u32,
    /// Outcome: `ok`, `recovered`, `fallback` or `failed`
    /// (`kselect::gpu::QueryStatus::name` spelling).
    pub status: String,
    /// Kernel attempts consumed (1 for a clean first attempt).
    pub attempts: u32,
    /// Pipeline worker that serviced the query (0 on sequential
    /// paths and in pre-1.1 journals).
    pub worker: u32,
    /// Retained by the exemplar heap (set at snapshot time).
    pub exemplar: bool,
}

impl QueryRecord {
    /// The phase with the largest recorded share, ignoring the
    /// whole-query envelope phase (which contains the others).
    pub fn dominant_phase(&self) -> Option<(&str, u64)> {
        self.phase_ns
            .iter()
            .filter(|(name, _)| name != phases::QUERY)
            .max_by_key(|(_, ns)| *ns)
            .map(|(name, ns)| (name.as_str(), *ns))
    }
}

impl Serialize for QueryRecord {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "schema_version".into(),
                Value::Str(SCHEMA_VERSION.to_string()),
            ),
            ("seq".into(), Value::U64(self.seq)),
            ("query".into(), Value::U64(self.query)),
            ("queue".into(), Value::Str(self.queue.clone())),
            ("tag".into(), Value::Str(self.tag.clone())),
            ("tile".into(), Value::U64(self.tile)),
            ("total_ns".into(), Value::U64(self.total_ns)),
            (
                "phase_ns".into(),
                Value::Object(
                    self.phase_ns
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::U64(*v)))
                        .collect(),
                ),
            ),
            ("scratch_bytes".into(), Value::U64(self.scratch_bytes)),
            ("merge_push".into(), Value::U64(self.merge_push)),
            ("merge_reject".into(), Value::U64(self.merge_reject)),
            ("blocks".into(), Value::U64(self.blocks as u64)),
            ("status".into(), Value::Str(self.status.clone())),
            ("attempts".into(), Value::U64(self.attempts as u64)),
            ("worker".into(), Value::U64(self.worker as u64)),
            ("exemplar".into(), Value::Bool(self.exemplar)),
        ])
    }
}

fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .map(|f| f as u64)
        .ok_or_else(|| format!("journal record missing numeric '{key}'"))
}

fn field_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("journal record missing string '{key}'"))
}

impl QueryRecord {
    /// Reconstruct one record from a parsed JSONL line, rejecting
    /// unknown schema major versions.
    pub fn from_value(v: &Value) -> Result<QueryRecord, String> {
        let version = field_str(v, "schema_version")?;
        schema::ensure_compatible(&version, SCHEMA_VERSION, "journal record")?;
        let mut phase_ns = Vec::new();
        match v.get("phase_ns") {
            Some(Value::Object(fields)) => {
                for (k, pv) in fields {
                    let ns = pv
                        .as_f64()
                        .ok_or_else(|| format!("phase '{k}' is not a number"))?;
                    phase_ns.push((k.clone(), ns as u64));
                }
            }
            _ => return Err("journal record missing 'phase_ns' object".into()),
        }
        Ok(QueryRecord {
            seq: field_u64(v, "seq")?,
            query: field_u64(v, "query")?,
            queue: field_str(v, "queue")?,
            tag: field_str(v, "tag")?,
            tile: field_u64(v, "tile")?,
            total_ns: field_u64(v, "total_ns")?,
            phase_ns,
            scratch_bytes: field_u64(v, "scratch_bytes")?,
            merge_push: field_u64(v, "merge_push")?,
            merge_reject: field_u64(v, "merge_reject")?,
            blocks: field_u64(v, "blocks")? as u32,
            status: field_str(v, "status")?,
            attempts: field_u64(v, "attempts")? as u32,
            // 1.0 lines predate worker attribution; default lane 0.
            worker: v
                .get("worker")
                .and_then(Value::as_f64)
                .map(|f| f as u32)
                .unwrap_or(0),
            exemplar: matches!(v.get("exemplar"), Some(Value::Bool(true))),
        })
    }
}

/// Serialize records as JSONL (one compact object per line).
pub fn to_jsonl(records: &[QueryRecord]) -> String {
    let mut out = String::new();
    for r in records {
        match serde_json::to_string(r) {
            Ok(line) => {
                out.push_str(&line);
                out.push('\n');
            }
            Err(_) => unreachable!("journal records contain only finite plain data"),
        }
    }
    out
}

/// Parse a JSONL journal back; blank lines are skipped, any malformed
/// or version-incompatible line is a named error carrying its line
/// number.
pub fn parse_jsonl(text: &str) -> Result<Vec<QueryRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = serde_json::parse_value(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(QueryRecord::from_value(&v).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// Sink the pipelines journal into. [`NullJournal`] is the zero-cost
/// default: `enabled()` is a constant `false`, so journal-aware entry
/// points monomorphize the entire record-building branch away.
pub trait Journal: Sync {
    /// Whether callers should build records at all. Constant per type.
    fn enabled(&self) -> bool;
    /// Offer one completed query's record.
    fn record(&self, rec: QueryRecord);
}

/// The always-off journal; compiles to the unjournaled code.
pub struct NullJournal;

impl Journal for NullJournal {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
    #[inline(always)]
    fn record(&self, _rec: QueryRecord) {}
}

/// Construction parameters for [`EventJournal`].
#[derive(Clone, Copy, Debug)]
pub struct JournalConfig {
    /// Head-sampling probability in `[0, 1]`: the fraction of queries
    /// whose records are retained in the ring buffers. Exemplars are
    /// kept regardless.
    pub sample: f64,
    /// Number of slowest-query exemplars always retained (0 disables).
    pub exemplars: usize,
    /// Total sampled-record capacity across all stripes; the oldest
    /// record in a full stripe is evicted (and counted) on overflow.
    pub capacity: usize,
    /// Number of independently locked stripes.
    pub stripes: usize,
    /// Seed of the deterministic sampling hash.
    pub seed: u64,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            sample: 1.0,
            exemplars: 16,
            capacity: 1 << 16,
            stripes: 16,
            seed: 1,
        }
    }
}

/// Aggregate accounting for one journal (see [`EventJournal::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records offered via [`EventJournal::record`].
    pub seen: u64,
    /// Records admitted to the sampled rings (before eviction).
    pub sampled_in: u64,
    /// Sampled records evicted by ring overflow.
    pub evicted: u64,
}

/// Min-heap entry ordered by (total latency, admission order).
struct ExEntry(QueryRecord);

impl PartialEq for ExEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.0.total_ns, self.0.seq) == (other.0.total_ns, other.0.seq)
    }
}
impl Eq for ExEntry {}
impl PartialOrd for ExEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ExEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the *smallest*
        // total latency on top so it is the one replaced.
        (other.0.total_ns, other.0.seq).cmp(&(self.0.total_ns, self.0.seq))
    }
}

struct Stripe {
    ring: std::collections::VecDeque<QueryRecord>,
}

/// SplitMix64 finalizer — the same mixer `simt::fault` seeds its
/// substreams with, reimplemented here so `trace` stays dependency-free.
#[inline]
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The retaining journal: lock-striped sampled rings plus the exemplar
/// heap. All recording methods take `&self` (shared across rayon
/// workers); see the module docs for the retention rules.
pub struct EventJournal {
    cfg: JournalConfig,
    threshold: u64,
    cap_per_stripe: usize,
    stripes: Vec<Mutex<Stripe>>,
    exemplars: Mutex<BinaryHeap<ExEntry>>,
    seq: AtomicU64,
    seen: AtomicU64,
    sampled_in: AtomicU64,
    evicted: AtomicU64,
}

impl EventJournal {
    pub fn new(cfg: JournalConfig) -> Self {
        let stripes = cfg.stripes.max(1);
        let threshold = if cfg.sample >= 1.0 {
            u64::MAX
        } else if cfg.sample <= 0.0 {
            0
        } else {
            (cfg.sample * (u64::MAX as f64)) as u64
        };
        EventJournal {
            cfg,
            threshold,
            cap_per_stripe: cfg.capacity.div_ceil(stripes).max(1),
            stripes: (0..stripes)
                .map(|_| {
                    Mutex::new(Stripe {
                        ring: std::collections::VecDeque::new(),
                    })
                })
                .collect(),
            exemplars: Mutex::new(BinaryHeap::new()),
            seq: AtomicU64::new(0),
            seen: AtomicU64::new(0),
            sampled_in: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// The configuration this journal was built with.
    pub fn config(&self) -> &JournalConfig {
        &self.cfg
    }

    fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
        // A poisoned stripe only means a worker panicked mid-record; the
        // retained records are still coherent.
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Deterministic head-sampling decision for `query`.
    pub fn sampled(&self, query: u64) -> bool {
        if self.threshold == u64::MAX {
            return true;
        }
        splitmix64(self.cfg.seed ^ query) < self.threshold
    }

    /// Aggregate accounting so far.
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            seen: self.seen.load(Ordering::Relaxed),
            sampled_in: self.sampled_in.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
        }
    }
}

impl Journal for EventJournal {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, mut rec: QueryRecord) {
        rec.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        rec.exemplar = false;
        self.seen.fetch_add(1, Ordering::Relaxed);
        if self.cfg.exemplars > 0 {
            let mut heap = Self::lock(&self.exemplars);
            if heap.len() < self.cfg.exemplars {
                heap.push(ExEntry(rec.clone()));
            } else if heap.peek().is_some_and(|min| rec.total_ns > min.0.total_ns) {
                heap.pop();
                heap.push(ExEntry(rec.clone()));
            }
        }
        if self.sampled(rec.query) {
            self.sampled_in.fetch_add(1, Ordering::Relaxed);
            let si = (splitmix64(rec.query.rotate_left(17)) as usize) % self.stripes.len();
            let mut stripe = Self::lock(&self.stripes[si]);
            if stripe.ring.len() >= self.cap_per_stripe {
                stripe.ring.pop_front();
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
            stripe.ring.push_back(rec);
        }
    }
}

impl EventJournal {
    /// Freeze the retained records: the union of every stripe's ring
    /// and the exemplar heap, deduplicated by admission sequence,
    /// exemplars flagged, sorted by `seq` (admission order).
    pub fn snapshot(&self) -> Vec<QueryRecord> {
        let mut out: Vec<QueryRecord> = Vec::new();
        for s in &self.stripes {
            out.extend(Self::lock(s).ring.iter().cloned());
        }
        let mut seq_index: std::collections::BTreeMap<u64, usize> =
            out.iter().enumerate().map(|(i, r)| (r.seq, i)).collect();
        for e in Self::lock(&self.exemplars).iter() {
            match seq_index.get(&e.0.seq) {
                Some(&i) => out[i].exemplar = true,
                None => {
                    let mut r = e.0.clone();
                    r.exemplar = true;
                    seq_index.insert(r.seq, out.len());
                    out.push(r);
                }
            }
        }
        out.sort_by_key(|r| r.seq);
        out
    }

    /// [`Self::snapshot`] rendered as JSONL.
    pub fn to_jsonl(&self) -> String {
        to_jsonl(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(query: u64, total_ns: u64) -> QueryRecord {
        QueryRecord {
            query,
            queue: "merge".into(),
            total_ns,
            phase_ns: vec![
                (phases::ROW_FILL.into(), total_ns / 2),
                (phases::ROW_SELECT.into(), total_ns - total_ns / 2),
            ],
            status: "ok".into(),
            attempts: 1,
            ..QueryRecord::default()
        }
    }

    #[test]
    fn full_sampling_retains_everything_in_order() {
        let j = EventJournal::new(JournalConfig::default());
        for q in 0..100 {
            j.record(rec(q, 1000 + q));
        }
        let snap = j.snapshot();
        assert_eq!(snap.len(), 100);
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(j.stats().seen, 100);
        assert_eq!(j.stats().sampled_in, 100);
        assert_eq!(j.stats().evicted, 0);
        // the 16 slowest are flagged as exemplars
        assert_eq!(snap.iter().filter(|r| r.exemplar).count(), 16);
        assert!(snap.iter().filter(|r| r.exemplar).all(|r| r.query >= 84));
    }

    #[test]
    fn sampling_is_deterministic_and_roughly_proportional() {
        let cfg = JournalConfig {
            sample: 0.25,
            exemplars: 0,
            ..JournalConfig::default()
        };
        let a = EventJournal::new(cfg);
        let b = EventJournal::new(cfg);
        for q in 0..4000 {
            a.record(rec(q, 100));
            b.record(rec(q, 100));
        }
        let (sa, sb) = (a.snapshot(), b.snapshot());
        let qa: Vec<u64> = sa.iter().map(|r| r.query).collect();
        let qb: Vec<u64> = sb.iter().map(|r| r.query).collect();
        assert_eq!(qa, qb, "same seed must sample the same queries");
        let frac = sa.len() as f64 / 4000.0;
        assert!((0.2..0.3).contains(&frac), "~25% sampled, got {frac}");
        // a different seed picks a different subset
        let c = EventJournal::new(JournalConfig { seed: 99, ..cfg });
        for q in 0..4000 {
            c.record(rec(q, 100));
        }
        assert_ne!(c.snapshot().iter().map(|r| r.query).collect::<Vec<_>>(), qa);
    }

    #[test]
    fn exemplars_survive_aggressive_sampling() {
        // Sampling keeps ~1%, but the 4 slowest queries must be present.
        let j = EventJournal::new(JournalConfig {
            sample: 0.01,
            exemplars: 4,
            ..JournalConfig::default()
        });
        for q in 0..1000 {
            // queries 500..504 are pathologically slow
            let total = if (500..504).contains(&q) {
                1_000_000 + q
            } else {
                1_000
            };
            j.record(rec(q, total));
        }
        let snap = j.snapshot();
        let exemplars: Vec<u64> = snap
            .iter()
            .filter(|r| r.exemplar)
            .map(|r| r.query)
            .collect();
        assert_eq!(exemplars, vec![500, 501, 502, 503]);
    }

    #[test]
    fn bounded_rings_evict_oldest_and_count() {
        let j = EventJournal::new(JournalConfig {
            capacity: 64,
            stripes: 4,
            exemplars: 0,
            ..JournalConfig::default()
        });
        for q in 0..1000 {
            j.record(rec(q, 100));
        }
        let snap = j.snapshot();
        assert_eq!(snap.len(), 64, "capacity bounds the retained set");
        let stats = j.stats();
        assert_eq!(stats.seen, 1000);
        assert_eq!(stats.evicted, 1000 - 64);
        // survivors skew recent (drop-oldest)
        assert!(snap.iter().all(|r| r.query >= 64));
    }

    #[test]
    fn records_round_trip_through_jsonl() {
        let j = EventJournal::new(JournalConfig::default());
        for q in 0..10 {
            let mut r = rec(q, 5000 + q * 13);
            r.tile = 2048;
            r.tag = format!("seed{q}");
            r.merge_push = 64;
            r.merge_reject = 48;
            r.blocks = 8;
            r.scratch_bytes = 1 << 20;
            r.worker = (q % 4) as u32;
            if q == 3 {
                r.status = "recovered".into();
                r.attempts = 2;
            }
            j.record(r);
        }
        let text = j.to_jsonl();
        assert_eq!(text.lines().count(), 10);
        assert!(text
            .lines()
            .all(|l| l.contains("\"schema_version\":\"1.1\"")));
        let back = parse_jsonl(&text).expect("journal must parse back");
        assert_eq!(back, j.snapshot());
        assert_eq!(back[3].status, "recovered");
        assert_eq!(back[3].attempts, 2);
        assert_eq!(back[7].worker, 3, "worker attribution round-trips");
    }

    #[test]
    fn legacy_1_0_lines_without_worker_still_parse() {
        // A verbatim pre-1.1 line: no `worker` field anywhere.
        let legacy = concat!(
            r#"{"schema_version":"1.0","seq":4,"query":9,"queue":"merge","#,
            r#""tag":"","tile":0,"total_ns":1009,"phase_ns":{"row_fill":504,"#,
            r#""row_select":505},"scratch_bytes":0,"merge_push":0,"#,
            r#""merge_reject":0,"blocks":0,"status":"ok","attempts":1,"#,
            r#""exemplar":false}"#,
            "\n"
        );
        let back = parse_jsonl(legacy).expect("1.0 journals must keep parsing");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].worker, 0, "missing worker defaults to lane 0");
        assert_eq!(back[0].query, 9);
    }

    #[test]
    fn unknown_major_version_is_rejected() {
        let j = EventJournal::new(JournalConfig::default());
        j.record(rec(0, 100));
        let good = j.to_jsonl();
        let future = good.replace("\"schema_version\":\"1.1\"", "\"schema_version\":\"2.0\"");
        let err = parse_jsonl(&future).unwrap_err();
        assert!(err.contains("major version"), "{err}");
        // newer *minor* versions parse fine
        let minor = good.replace("\"schema_version\":\"1.1\"", "\"schema_version\":\"1.7\"");
        assert!(parse_jsonl(&minor).is_ok());
        // garbage is a named line error
        assert!(parse_jsonl("not json\n").unwrap_err().contains("line 1"));
        assert!(parse_jsonl("{}\n").unwrap_err().contains("schema_version"));
    }

    #[test]
    fn dominant_phase_ignores_the_query_envelope() {
        let r = QueryRecord {
            phase_ns: vec![
                (phases::QUERY.into(), 1000),
                (phases::ROW_FILL.into(), 700),
                (phases::ROW_SELECT.into(), 300),
            ],
            ..QueryRecord::default()
        };
        assert_eq!(r.dominant_phase(), Some((phases::ROW_FILL, 700)));
        assert_eq!(QueryRecord::default().dominant_phase(), None);
    }

    #[test]
    fn null_journal_is_disabled() {
        assert!(!NullJournal.enabled());
        NullJournal.record(QueryRecord::default()); // no-op
        let j = EventJournal::new(JournalConfig::default());
        assert!(j.enabled());
    }

    #[test]
    fn journal_is_usable_from_parallel_workers() {
        use rayon::prelude::*;
        let j = EventJournal::new(JournalConfig::default());
        (0..512u64).into_par_iter().for_each(|q| {
            j.record(rec(q, 100 + q));
        });
        assert_eq!(j.snapshot().len(), 512);
        assert_eq!(j.stats().seen, 512);
    }
}
