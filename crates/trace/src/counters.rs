//! Named event counters.

use std::collections::BTreeMap;

/// A registry of named `u64` counters. Names are free-form dotted paths
/// (`queue.insert`, `merge.repair.level2`); iteration order is the
/// lexicographic name order, which keeps every export deterministic.
///
/// This generalises the old `kselect::queues::stats::UpdateSink`
/// position counter: any pipeline stage can count any event, and sets
/// merge associatively so per-warp counts collected inside a simulated
/// kernel can be folded into the launch-level set after the fact.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterSet {
    map: BTreeMap<String, u64>,
}

impl CounterSet {
    pub fn new() -> Self {
        CounterSet::default()
    }

    /// Add `n` to `name`, creating it at zero first; returns the new
    /// cumulative value.
    pub fn add(&mut self, name: &str, n: u64) -> u64 {
        if let Some(slot) = self.map.get_mut(name) {
            *slot += n;
            *slot
        } else {
            self.map.insert(name.to_string(), n);
            n
        }
    }

    /// Current value (zero for names never counted).
    pub fn get(&self, name: &str) -> u64 {
        self.map.get(name).copied().unwrap_or(0)
    }

    /// Fold another set into this one.
    pub fn merge(&mut self, other: &CounterSet) {
        for (name, value) in &other.map {
            *self.map.entry(name.clone()).or_insert(0) += value;
        }
    }

    /// `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.map.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of distinct counter names.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Sum across all counters whose name starts with `prefix` —
    /// useful for families like `merge.repair.level*`.
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.map
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_merge() {
        let mut a = CounterSet::new();
        assert_eq!(a.add("x", 2), 2);
        assert_eq!(a.add("x", 3), 5);
        assert_eq!(a.get("x"), 5);
        assert_eq!(a.get("missing"), 0);

        let mut b = CounterSet::new();
        b.add("x", 1);
        b.add("y", 7);
        a.merge(&b);
        assert_eq!(a.get("x"), 6);
        assert_eq!(a.get("y"), 7);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut c = CounterSet::new();
        c.add("b", 1);
        c.add("a", 1);
        c.add("c", 1);
        let names: Vec<&str> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn prefix_sums() {
        let mut c = CounterSet::new();
        c.add("merge.repair.level0", 4);
        c.add("merge.repair.level1", 2);
        c.add("merge.aligned_sync", 9);
        assert_eq!(c.sum_prefix("merge.repair.level"), 6);
        assert_eq!(c.sum_prefix("merge."), 15);
    }
}
