//! Human-readable profile summary.
//!
//! Aggregates a tracer's spans by name and prints a small fixed-width
//! table of simulated time plus the counter registry — the `--profile`
//! face of the trace, complementing `simt::report::KernelReport`'s
//! per-kernel hardware view.

use crate::tracer::{EventKind, Tracer};
use std::collections::BTreeMap;

#[derive(Default, Clone)]
struct SpanAgg {
    count: u64,
    total_us: f64,
    cat: &'static str,
}

/// Render the profile table. Span rows are ordered by descending total
/// simulated time; counters by name.
pub fn render_summary(tracer: &Tracer) -> String {
    // match Begin/End pairs with one LIFO stack per tid
    let mut stacks: BTreeMap<u32, Vec<(usize, f64)>> = BTreeMap::new();
    let mut aggs: BTreeMap<String, SpanAgg> = BTreeMap::new();
    for (idx, e) in tracer.events().iter().enumerate() {
        match e.kind {
            EventKind::Begin => stacks.entry(e.tid).or_default().push((idx, e.ts_us)),
            EventKind::End => {
                if let Some((_, start_us)) = stacks.entry(e.tid).or_default().pop() {
                    let agg = aggs.entry(e.name.clone()).or_default();
                    agg.count += 1;
                    agg.total_us += e.ts_us - start_us;
                    agg.cat = e.cat.as_str();
                }
            }
            EventKind::Instant => {}
        }
    }

    let mut rows: Vec<(String, SpanAgg)> = aggs.into_iter().collect();
    rows.sort_by(|a, b| b.1.total_us.partial_cmp(&a.1.total_us).unwrap());

    let mut out = String::new();
    out.push_str("== simulated-time profile ==\n");
    out.push_str(&format!(
        "{:<28} {:<8} {:>8} {:>14}\n",
        "span", "cat", "count", "total (us)"
    ));
    for (name, agg) in &rows {
        out.push_str(&format!(
            "{:<28} {:<8} {:>8} {:>14.3}\n",
            name, agg.cat, agg.count, agg.total_us
        ));
    }
    if rows.is_empty() {
        out.push_str("(no spans recorded)\n");
    }

    out.push_str("\n== event counters ==\n");
    if tracer.counters().is_empty() {
        out.push_str("(no counters recorded)\n");
    } else {
        for (name, value) in tracer.counters().iter() {
            out.push_str(&format!("{name:<32} {value:>12}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Category;

    #[test]
    fn summary_lists_spans_by_time_and_counters_by_name() {
        let mut t = Tracer::new();
        t.span(Category::Kernel, "small", 1e-6);
        t.span(Category::Kernel, "big", 5e-6);
        t.add("b.counter", 2);
        t.add("a.counter", 1);
        let s = render_summary(&t);
        let big_at = s.find("big").unwrap();
        let small_at = s.find("small").unwrap();
        assert!(
            big_at < small_at,
            "spans must sort by descending time:\n{s}"
        );
        let a_at = s.find("a.counter").unwrap();
        let b_at = s.find("b.counter").unwrap();
        assert!(a_at < b_at, "counters must sort by name:\n{s}");
        assert!(s.contains("kernel"));
    }

    #[test]
    fn empty_tracer_renders_placeholders() {
        let s = render_summary(&Tracer::new());
        assert!(s.contains("(no spans recorded)"));
        assert!(s.contains("(no counters recorded)"));
    }
}
