//! Structured tracing and profiling for the k-selection pipeline.
//!
//! The simulator models a GPU whose "time" is an analytic function of
//! hardware counters, so this tracer records **simulated** timestamps:
//! the [`Tracer`] keeps a clock cursor in simulated seconds which the
//! instrumented code advances by modelled durations (kernel times, PCIe
//! transfers). Spans therefore nest and abut exactly like the modelled
//! execution, not like host wall clock.
//!
//! Four layers:
//!
//! * [`Tracer`] — scoped spans (open/close, balanced), instant events,
//!   and a named [`CounterSet`] registry with time-stamped samples;
//! * [`PositionHistogram`] — per-slot update counts for priority-queue
//!   analyses (the figure-5 experiments), shared by every queue variant;
//! * [`metrics`] — the **native** runtime-metrics registry
//!   ([`MetricsRegistry`]): monotonic wall-clock latency histograms
//!   with p50/p95/p99 estimation, counters, gauges and memory
//!   high-water marks for the real (non-simulated) hot paths, exported
//!   as OpenMetrics text or a JSON snapshot ([`openmetrics`]);
//! * [`journal`] — the **per-query** event journal ([`EventJournal`]):
//!   lock-striped bounded buffers of [`QueryRecord`]s with head-based
//!   sampling and always-keep slowest-query exemplars, exported as
//!   versioned JSONL for `knn-cli report` and the `slogate` CI gate;
//! * [`timeline`] — **per-worker** execution timelines
//!   ([`TimelineRecorder`]): block claims, tile walks, idle gaps and
//!   scratch peaks per worker, folded into a [`TimelineReport`] with
//!   busy/idle accounting, utilization and an imbalance score. The
//!   module itself never reads a clock — nanoseconds arrive
//!   pre-measured from `knn::metered` (wall clock) or the serving
//!   engine (simulated clock);
//! * exporters — [`chrome`] (Chrome-trace JSON loadable in Perfetto or
//!   `chrome://tracing`), [`jsonl`] (one event per line for ad-hoc
//!   grepping), and [`summary`] (human-readable profile table).
//!
//! The crate itself is always compiled; the *instrumentation call sites*
//! in `simt`/`kselect`/`knn` sit behind each crate's `trace` cargo
//! feature so default builds carry no bookkeeping in hot loops.

pub mod chrome;
pub mod counters;
pub mod hist;
pub mod journal;
pub mod jsonl;
pub mod metrics;
pub mod openmetrics;
pub mod schema;
pub mod summary;
pub mod timeline;
mod tracer;

pub use counters::CounterSet;
pub use hist::PositionHistogram;
pub use journal::{EventJournal, Journal, JournalConfig, NullJournal, QueryRecord};
pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot};
pub use timeline::{
    NullTimeline, TimelineHooks, TimelineRecorder, TimelineReport, WorkerLane, WorkerTimeline,
};
pub use tracer::{Category, EventKind, SpanGuard, SpanId, TraceEvent, Tracer};

/// Well-known counter names emitted by the pipeline, collected here so
/// producers and tests agree on spelling. The registry is open — any
/// name is accepted — but these are the ones the exporters and the
/// profile summary know how to interpret.
pub mod names {
    /// Ordered insert accepted into a priority queue.
    pub const QUEUE_INSERT: &str = "queue.insert";
    /// Candidate rejected by the cheap `v >= max` guard before any
    /// queue work.
    pub const QUEUE_CHEAP_REJECT: &str = "queue.cheap_reject";
    /// Candidate staged into a per-lane buffer.
    pub const BUFFER_PUSH: &str = "buffer.push";
    /// Buffer drained into the queue (Buffered Search flush).
    pub const BUFFER_FLUSH: &str = "buffer.flush";
    /// Local-Sort invocation (sorting a drained buffer before merge).
    pub const LOCAL_SORT: &str = "local_sort.invocations";
    /// Reverse-bitonic repair pass of the Merge Queue; the level index
    /// is appended (`merge.repair.level0` is the widest stage).
    pub const MERGE_REPAIR_PREFIX: &str = "merge.repair.level";
    /// Warp-synchronous aligned merge steps.
    pub const MERGE_ALIGNED_SYNC: &str = "merge.aligned_sync";
    /// Hierarchical-Partition tree node expansions during top-down
    /// search.
    pub const HP_NODE_EXPANSION: &str = "hp.node_expansion";

    /// Counter name for a merge repair at `level`.
    pub fn merge_repair_level(level: usize) -> String {
        format!("{MERGE_REPAIR_PREFIX}{level}")
    }

    /// Warp attempts re-launched after a failure (resilient launcher).
    pub const RESILIENCE_RETRY: &str = "resilience.retry";
    /// Queries degraded to the exact host selection path.
    pub const RESILIENCE_FALLBACK: &str = "resilience.fallback";
    /// Injected or genuine kernel aborts observed.
    pub const RESILIENCE_ABORT: &str = "resilience.abort";
    /// Warp attempts killed at the simulated watchdog deadline.
    pub const RESILIENCE_WATCHDOG: &str = "resilience.watchdog_timeout";
    /// Non-injected kernel panics caught by the resilient launcher.
    pub const RESILIENCE_PANIC: &str = "resilience.panic";
    /// Kernel outputs rejected by structural/oracle validation.
    pub const RESILIENCE_VALIDATION: &str = "resilience.validation_reject";
    /// Bit flips injected into simulated DRAM loads.
    pub const RESILIENCE_BITFLIP: &str = "resilience.bitflip_injected";
    /// PCIe transfer attempts that stalled (delivered late).
    pub const RESILIENCE_PCIE_STALL: &str = "resilience.pcie_stall";
    /// PCIe transfer attempts rejected for corrupt payload and retried.
    pub const RESILIENCE_PCIE_CORRUPT: &str = "resilience.pcie_corrupt";
    /// Warps never launched because the deadline gate closed first
    /// (their queries report `deadline-exceeded`).
    pub const RESILIENCE_DEADLINE_SKIP: &str = "resilience.deadline_skip";
}
