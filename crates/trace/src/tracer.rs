//! The tracer: a simulated-clock event recorder.

use crate::counters::CounterSet;

/// Span/event category; becomes the `cat` field of Chrome-trace events
/// so Perfetto can colour and filter by pipeline layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// Top-level pipeline phase (distance, select, transfer…).
    Phase,
    /// One simulated kernel launch.
    Kernel,
    /// Per-warp activity inside a kernel.
    Warp,
    /// Buffered-Search flush work.
    Flush,
    /// Merge Queue maintenance (repair, aligned merge).
    Merge,
    /// Hierarchical-Partition tree construction / traversal.
    Build,
}

impl Category {
    pub fn as_str(self) -> &'static str {
        match self {
            Category::Phase => "phase",
            Category::Kernel => "kernel",
            Category::Warp => "warp",
            Category::Flush => "flush",
            Category::Merge => "merge",
            Category::Build => "build",
        }
    }
}

/// What a [`TraceEvent`] marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Span opened.
    Begin,
    /// Span closed.
    End,
    /// Zero-duration marker.
    Instant,
}

/// One recorded event. Timestamps are simulated microseconds from the
/// start of the trace (Chrome trace's native unit).
#[derive(Clone, Debug)]
pub struct TraceEvent {
    pub name: String,
    pub cat: Category,
    pub kind: EventKind,
    pub ts_us: f64,
    /// Chrome-trace thread id; used to separate lanes of simulated
    /// concurrency (e.g. warps) in the viewer. 0 is the main timeline.
    pub tid: u32,
}

/// Handle returned by [`Tracer::open_span`]; spend it in
/// [`Tracer::close_span`]. Indices into the event log double as span
/// identity, which makes balance checking trivial.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(usize);

/// Event recorder with a simulated clock.
///
/// The clock starts at zero and only moves via [`advance`] /
/// [`set_clock`] — instrumented code advances it by modelled durations.
/// Spans must close in LIFO order per thread id (checked; violations
/// panic in debug and are surfaced by [`Tracer::is_balanced`]).
///
/// [`advance`]: Tracer::advance
/// [`set_clock`]: Tracer::set_clock
#[derive(Debug, Default)]
pub struct Tracer {
    clock_s: f64,
    events: Vec<TraceEvent>,
    /// Stack of open span event indices (per-tid interleaving is
    /// allowed; order is checked per tid).
    open: Vec<usize>,
    counters: CounterSet,
    /// Time-stamped cumulative counter samples for Chrome `C` events:
    /// `(ts_us, name, cumulative_value)`.
    samples: Vec<(f64, String, u64)>,
}

impl Tracer {
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Current simulated clock, seconds.
    pub fn clock_s(&self) -> f64 {
        self.clock_s
    }

    /// Current simulated clock, microseconds (trace native unit).
    pub fn clock_us(&self) -> f64 {
        self.clock_s * 1e6
    }

    /// Move the clock forward by a modelled duration.
    pub fn advance(&mut self, dur_s: f64) {
        debug_assert!(dur_s >= 0.0, "simulated time cannot run backwards");
        self.clock_s += dur_s.max(0.0);
    }

    /// Jump the clock to an absolute simulated time. Only forward jumps
    /// are honoured: the trace stays monotonic even if two sub-models
    /// disagree slightly.
    pub fn set_clock(&mut self, t_s: f64) {
        if t_s > self.clock_s {
            self.clock_s = t_s;
        }
    }

    /// Open a span on the main timeline at the current clock.
    pub fn open_span(&mut self, cat: Category, name: impl Into<String>) -> SpanId {
        self.open_span_on(0, cat, name)
    }

    /// Open a span on an explicit thread lane (e.g. a warp id).
    pub fn open_span_on(&mut self, tid: u32, cat: Category, name: impl Into<String>) -> SpanId {
        let idx = self.events.len();
        self.events.push(TraceEvent {
            name: name.into(),
            cat,
            kind: EventKind::Begin,
            ts_us: self.clock_us(),
            tid,
        });
        self.open.push(idx);
        SpanId(idx)
    }

    /// Close a span at the current clock. Spans on the same tid must
    /// close LIFO; closing out of order records the end event but trips
    /// the balance flag (and panics in debug builds).
    pub fn close_span(&mut self, id: SpanId) {
        let begin = &self.events[id.0];
        debug_assert_eq!(
            begin.kind,
            EventKind::Begin,
            "SpanId does not point at a Begin"
        );
        let (name, cat, tid) = (begin.name.clone(), begin.cat, begin.tid);

        let lifo_ok = self
            .open
            .iter()
            .rev()
            .find(|&&idx| self.events[idx].tid == tid)
            == Some(&id.0);
        debug_assert!(
            lifo_ok,
            "span {name:?} closed out of LIFO order on tid {tid}"
        );
        self.open.retain(|&idx| idx != id.0);

        let end_ts = self.clock_us().max(self.events[id.0].ts_us);
        self.events.push(TraceEvent {
            name,
            cat,
            kind: EventKind::End,
            ts_us: end_ts,
            tid,
        });
    }

    /// Record a complete span of a known modelled duration: opens at the
    /// current clock, advances by `dur_s`, closes. This is the common
    /// form for simulated kernels, whose duration is computed rather
    /// than observed.
    pub fn span(&mut self, cat: Category, name: impl Into<String>, dur_s: f64) -> SpanId {
        let id = self.open_span(cat, name);
        self.advance(dur_s);
        self.close_span(id);
        id
    }

    /// RAII-style scope: runs `f` inside an open span, closing it on the
    /// way out. The closure gets the tracer back plus a [`SpanGuard`] it
    /// can use to attach events to the scope.
    pub fn scoped<R>(
        &mut self,
        cat: Category,
        name: impl Into<String>,
        f: impl FnOnce(&mut Tracer) -> R,
    ) -> R {
        let id = self.open_span(cat, name);
        let out = f(self);
        self.close_span(id);
        out
    }

    /// Zero-duration marker on the main timeline.
    pub fn instant(&mut self, cat: Category, name: impl Into<String>) {
        self.events.push(TraceEvent {
            name: name.into(),
            cat,
            kind: EventKind::Instant,
            ts_us: self.clock_us(),
            tid: 0,
        });
    }

    /// Bump a named counter by `n` and record a time-stamped sample of
    /// its new cumulative value.
    pub fn add(&mut self, name: &str, n: u64) {
        if n == 0 {
            return;
        }
        let total = self.counters.add(name, n);
        self.samples
            .push((self.clock_us(), name.to_string(), total));
    }

    /// Fold a whole [`CounterSet`] in at the current clock — the shape
    /// kernels hand back (per-warp counters merged after a launch).
    pub fn merge_counters(&mut self, set: &CounterSet) {
        for (name, value) in set.iter() {
            self.add(name, value);
        }
    }

    /// Cumulative counters so far.
    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }

    /// All recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Time-stamped counter samples `(ts_us, name, cumulative)`.
    pub fn samples(&self) -> &[(f64, String, u64)] {
        &self.samples
    }

    /// True when every opened span has been closed.
    pub fn is_balanced(&self) -> bool {
        self.open.is_empty()
    }

    /// Number of currently open spans.
    pub fn open_depth(&self) -> usize {
        self.open.len()
    }
}

/// Marker tying helper APIs to an open scope; currently just carries the
/// [`SpanId`] so callers can close early if control flow demands it.
#[derive(Clone, Copy, Debug)]
pub struct SpanGuard(pub SpanId);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_balance_and_clock_is_monotonic() {
        let mut t = Tracer::new();
        let outer = t.open_span(Category::Phase, "select");
        t.advance(1e-6);
        t.span(Category::Kernel, "gpu_select_k", 5e-6);
        t.advance(0.5e-6);
        t.close_span(outer);
        assert!(t.is_balanced());
        let ts: Vec<f64> = t.events().iter().map(|e| e.ts_us).collect();
        assert!(
            ts.windows(2).all(|w| w[0] <= w[1]),
            "timestamps must be monotonic"
        );
        assert_eq!(t.events().len(), 4);
        assert!((t.clock_us() - 6.5).abs() < 1e-9);
    }

    #[test]
    fn counters_accumulate_with_samples() {
        let mut t = Tracer::new();
        t.add("queue.insert", 3);
        t.advance(1e-6);
        t.add("queue.insert", 2);
        t.add("buffer.flush", 1);
        assert_eq!(t.counters().get("queue.insert"), 5);
        assert_eq!(t.counters().get("buffer.flush"), 1);
        assert_eq!(t.samples().len(), 3);
        assert_eq!(t.samples()[1].2, 5);
        // zero increments are elided
        t.add("queue.insert", 0);
        assert_eq!(t.samples().len(), 3);
    }

    #[test]
    fn scoped_closes_on_exit() {
        let mut t = Tracer::new();
        let out = t.scoped(Category::Flush, "flush", |t| {
            t.advance(2e-6);
            42
        });
        assert_eq!(out, 42);
        assert!(t.is_balanced());
    }

    #[test]
    fn set_clock_never_rewinds() {
        let mut t = Tracer::new();
        t.advance(5e-6);
        t.set_clock(3e-6);
        assert!((t.clock_s() - 5e-6).abs() < 1e-18);
        t.set_clock(7e-6);
        assert!((t.clock_s() - 7e-6).abs() < 1e-18);
    }
}
