//! JSONL event-log export: one JSON object per line, in emission order.
//!
//! Meant for `grep`/`jq` style post-processing where the Chrome-trace
//! wrapper object is in the way. Span events carry `type: "begin"/"end"`,
//! instants `type: "instant"`, counter samples `type: "counter"`, and a
//! final `type: "totals"` line summarises the counter registry.

use crate::tracer::{EventKind, Tracer};
use serde::Value;

fn line(fields: Vec<(&str, Value)>) -> String {
    let v = Value::Object(
        fields
            .into_iter()
            .map(|(k, val)| (k.to_string(), val))
            .collect(),
    );
    serde_json::to_string(&v).expect("trace serialization cannot fail")
}

/// Render a tracer's recording as JSON Lines.
pub fn to_jsonl(tracer: &Tracer) -> String {
    let mut out = String::new();

    // merge spans and counter samples into one stream ordered by
    // timestamp (stable: ties keep emission order, spans first)
    let mut entries: Vec<(f64, String)> = Vec::new();
    for e in tracer.events() {
        let kind = match e.kind {
            EventKind::Begin => "begin",
            EventKind::End => "end",
            EventKind::Instant => "instant",
        };
        entries.push((
            e.ts_us,
            line(vec![
                ("type", Value::Str(kind.to_string())),
                ("name", Value::Str(e.name.clone())),
                ("cat", Value::Str(e.cat.as_str().to_string())),
                ("ts_us", Value::F64(e.ts_us)),
                ("tid", Value::U64(e.tid as u64)),
            ]),
        ));
    }
    for (ts_us, name, value) in tracer.samples() {
        entries.push((
            *ts_us,
            line(vec![
                ("type", Value::Str("counter".to_string())),
                ("name", Value::Str(name.clone())),
                ("ts_us", Value::F64(*ts_us)),
                ("value", Value::U64(*value)),
            ]),
        ));
    }
    entries.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

    for (_, l) in entries {
        out.push_str(&l);
        out.push('\n');
    }

    let totals: Vec<(String, Value)> = tracer
        .counters()
        .iter()
        .map(|(name, value)| (name.to_string(), Value::U64(value)))
        .collect();
    out.push_str(&line(vec![
        ("type", Value::Str("totals".to_string())),
        ("counters", Value::Object(totals)),
    ]));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Category;

    #[test]
    fn every_line_is_json_and_totals_close_the_log() {
        let mut t = Tracer::new();
        t.scoped(Category::Phase, "distance", |t| {
            t.add("queue.insert", 4);
            t.advance(1e-6);
        });
        let text = to_jsonl(&t);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // begin, counter, end, totals
        for l in &lines {
            serde_json::parse_value(l).expect("each line must parse");
        }
        let last = serde_json::parse_value(lines.last().unwrap()).unwrap();
        assert_eq!(last.get("type").and_then(|v| v.as_str()), Some("totals"));
        assert_eq!(
            last.get("counters")
                .and_then(|c| c.get("queue.insert"))
                .and_then(|v| v.as_f64()),
            Some(4.0)
        );
    }

    #[test]
    fn parsed_lines_reconstruct_the_recording() {
        // Round trip: every event in the log parses back with the same
        // type/name/timestamp the tracer recorded, including names that
        // need JSON escaping.
        let mut t = Tracer::new();
        t.scoped(Category::Phase, r#"phase "zero"\raw"#, |t| {
            t.advance(2e-6);
            t.instant(Category::Flush, "tick\n1");
        });
        let text = to_jsonl(&t);
        let parsed: Vec<serde::Value> = text
            .lines()
            .map(|l| serde_json::parse_value(l).expect("line must parse"))
            .collect();
        let expect = [
            ("begin", r#"phase "zero"\raw"#, 0.0),
            ("instant", "tick\n1", 2.0),
            ("end", r#"phase "zero"\raw"#, 2.0),
        ];
        assert_eq!(parsed.len(), expect.len() + 1); // + totals line
        for (v, (ty, name, ts_us)) in parsed.iter().zip(expect) {
            assert_eq!(v.get("type").and_then(|x| x.as_str()), Some(ty));
            assert_eq!(v.get("name").and_then(|x| x.as_str()), Some(name));
            assert_eq!(v.get("ts_us").and_then(|x| x.as_f64()), Some(ts_us));
        }
        assert_eq!(
            parsed.last().unwrap().get("type").and_then(|x| x.as_str()),
            Some("totals")
        );
    }
}
