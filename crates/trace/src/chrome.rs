//! Chrome-trace JSON export.
//!
//! Produces the "JSON object format" of the Trace Event spec — an object
//! with a `traceEvents` array — loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`. Spans become
//! `B`/`E` duration events, instants become `i`, and every counter
//! sample becomes a `C` event so queue/buffer activity plots as a graph
//! under the timeline.

use crate::tracer::{EventKind, Tracer};
use serde::Value;

/// Process id used for all events; the simulation is one process.
const PID: u64 = 1;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn event_value(name: &str, cat: &str, ph: &str, ts_us: f64, tid: u32) -> Value {
    let mut fields = vec![
        ("name", Value::Str(name.to_string())),
        ("cat", Value::Str(cat.to_string())),
        ("ph", Value::Str(ph.to_string())),
        ("ts", Value::F64(ts_us)),
        ("pid", Value::U64(PID)),
        ("tid", Value::U64(tid as u64)),
    ];
    if ph == "i" {
        // instant events need a scope; thread scope is the narrowest
        fields.push(("s", Value::Str("t".to_string())));
    }
    obj(fields)
}

/// Render a tracer's full recording as a Chrome-trace JSON document.
pub fn to_chrome_json(tracer: &Tracer) -> String {
    let mut events = Vec::new();

    // process metadata so the viewer shows a meaningful title
    events.push(obj(vec![
        ("name", Value::Str("process_name".to_string())),
        ("ph", Value::Str("M".to_string())),
        ("pid", Value::U64(PID)),
        (
            "args",
            obj(vec![(
                "name",
                Value::Str("gpu-kselect simulation".to_string()),
            )]),
        ),
    ]));

    for e in tracer.events() {
        let ph = match e.kind {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "i",
        };
        events.push(event_value(&e.name, e.cat.as_str(), ph, e.ts_us, e.tid));
    }

    for (ts_us, name, value) in tracer.samples() {
        events.push(obj(vec![
            ("name", Value::Str(name.clone())),
            ("cat", Value::Str("counter".to_string())),
            ("ph", Value::Str("C".to_string())),
            ("ts", Value::F64(*ts_us)),
            ("pid", Value::U64(PID)),
            ("tid", Value::U64(0)),
            ("args", obj(vec![("value", Value::U64(*value))])),
        ]));
    }

    let doc = obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::Str("ns".to_string())),
    ]);
    serde_json::to_string_pretty(&doc).expect("trace serialization cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Category;

    #[test]
    fn export_parses_back_and_keeps_structure() {
        let mut t = Tracer::new();
        let phase = t.open_span(Category::Phase, "select");
        t.add("queue.insert", 10);
        t.span(Category::Kernel, "gpu_select_k", 3e-6);
        t.instant(Category::Flush, "flush#0");
        t.close_span(phase);

        let text = to_chrome_json(&t);
        let doc = serde_json::parse_value(&text).expect("exporter must emit valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        // metadata + 2 begin + 2 end + 1 instant + 1 counter sample
        assert_eq!(events.len(), 7);
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(|p| p.as_str()))
            .collect();
        assert_eq!(phases, ["M", "B", "B", "E", "i", "E", "C"]);
    }

    #[test]
    fn span_names_with_json_metacharacters_round_trip() {
        // Span names are arbitrary caller strings; the exporter must
        // escape them, not emit malformed JSON a viewer rejects.
        let names = [
            r#"quoted "kernel" name"#,
            r"back\slash\path",
            "tab\there and newline\nthere",
            "control-\u{1}-char",
            "unicode µs → ns",
        ];
        let mut t = Tracer::new();
        for n in names {
            t.scoped(Category::Kernel, n, |t| t.advance(1e-6));
        }
        let text = to_chrome_json(&t);
        let doc = serde_json::parse_value(&text).expect("escaped export must stay valid JSON");
        let begins: Vec<&str> = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("B"))
            .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
            .collect();
        assert_eq!(begins, names, "every name must parse back verbatim");
    }
}
