//! Chrome-trace JSON export.
//!
//! Produces the "JSON object format" of the Trace Event spec — an object
//! with a `traceEvents` array — loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`. Spans become
//! `B`/`E` duration events, instants become `i`, and every counter
//! sample becomes a `C` event so queue/buffer activity plots as a graph
//! under the timeline.

use crate::timeline::{SpanKind, TimelineReport};
use crate::tracer::{EventKind, Tracer};
use serde::Value;

/// Process id used for all events; the simulation is one process.
const PID: u64 = 1;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn event_value(name: &str, cat: &str, ph: &str, ts_us: f64, tid: u32) -> Value {
    let mut fields = vec![
        ("name", Value::Str(name.to_string())),
        ("cat", Value::Str(cat.to_string())),
        ("ph", Value::Str(ph.to_string())),
        ("ts", Value::F64(ts_us)),
        ("pid", Value::U64(PID)),
        ("tid", Value::U64(tid as u64)),
    ];
    if ph == "i" {
        // instant events need a scope; thread scope is the narrowest
        fields.push(("s", Value::Str("t".to_string())));
    }
    obj(fields)
}

/// Render a tracer's full recording as a Chrome-trace JSON document.
pub fn to_chrome_json(tracer: &Tracer) -> String {
    let mut events = Vec::new();

    // process metadata so the viewer shows a meaningful title
    events.push(obj(vec![
        ("name", Value::Str("process_name".to_string())),
        ("ph", Value::Str("M".to_string())),
        ("pid", Value::U64(PID)),
        (
            "args",
            obj(vec![(
                "name",
                Value::Str("gpu-kselect simulation".to_string()),
            )]),
        ),
    ]));

    for e in tracer.events() {
        let ph = match e.kind {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "i",
        };
        events.push(event_value(&e.name, e.cat.as_str(), ph, e.ts_us, e.tid));
    }

    for (ts_us, name, value) in tracer.samples() {
        events.push(obj(vec![
            ("name", Value::Str(name.clone())),
            ("cat", Value::Str("counter".to_string())),
            ("ph", Value::Str("C".to_string())),
            ("ts", Value::F64(*ts_us)),
            ("pid", Value::U64(PID)),
            ("tid", Value::U64(0)),
            ("args", obj(vec![("value", Value::U64(*value))])),
        ]));
    }

    let doc = obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::Str("ns".to_string())),
    ]);
    serde_json::to_string_pretty(&doc).expect("trace serialization cannot fail")
}

/// Render a [`TimelineReport`] as Chrome-trace JSON: one `tid` per
/// worker lane (named via `thread_name` metadata, emitted in lane
/// order), every [`crate::timeline::TrackSpan`] as an `X`
/// complete-event with a microsecond `ts`/`dur`, and every mark as a
/// thread-scoped instant. Nanosecond span boundaries are preserved as
/// fractional microseconds.
pub fn timeline_to_chrome_json(report: &TimelineReport) -> String {
    let mut events = Vec::new();
    events.push(obj(vec![
        ("name", Value::Str("process_name".to_string())),
        ("ph", Value::Str("M".to_string())),
        ("pid", Value::U64(PID)),
        (
            "args",
            obj(vec![(
                "name",
                Value::Str("knn worker timeline".to_string()),
            )]),
        ),
    ]));
    for lane in &report.lanes {
        events.push(obj(vec![
            ("name", Value::Str("thread_name".to_string())),
            ("ph", Value::Str("M".to_string())),
            ("pid", Value::U64(PID)),
            ("tid", Value::U64(lane.worker as u64)),
            ("args", obj(vec![("name", Value::Str(lane.name.clone()))])),
        ]));
    }
    for lane in &report.lanes {
        let tid = lane.worker as u64;
        for span in &lane.spans {
            let name = match span.kind {
                SpanKind::Block => format!("block {}", span.detail),
                SpanKind::Tile => format!("tile {}", span.detail),
                SpanKind::Service => format!("service {}", span.detail),
                SpanKind::QueueWait => format!("queue-wait {}", span.detail),
            };
            events.push(obj(vec![
                ("name", Value::Str(name)),
                ("cat", Value::Str(span.kind.as_str().to_string())),
                ("ph", Value::Str("X".to_string())),
                ("ts", Value::F64(span.start_ns as f64 / 1e3)),
                ("dur", Value::F64(span.duration_ns() as f64 / 1e3)),
                ("pid", Value::U64(PID)),
                ("tid", Value::U64(tid)),
            ]));
        }
        for (ns, label) in &lane.marks {
            events.push(event_value(
                label,
                "mark",
                "i",
                *ns as f64 / 1e3,
                lane.worker as u32,
            ));
        }
    }
    let doc = obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::Str("ns".to_string())),
    ]);
    serde_json::to_string_pretty(&doc).expect("timeline trace serialization cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Category;

    #[test]
    fn export_parses_back_and_keeps_structure() {
        let mut t = Tracer::new();
        let phase = t.open_span(Category::Phase, "select");
        t.add("queue.insert", 10);
        t.span(Category::Kernel, "gpu_select_k", 3e-6);
        t.instant(Category::Flush, "flush#0");
        t.close_span(phase);

        let text = to_chrome_json(&t);
        let doc = serde_json::parse_value(&text).expect("exporter must emit valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        // metadata + 2 begin + 2 end + 1 instant + 1 counter sample
        assert_eq!(events.len(), 7);
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(|p| p.as_str()))
            .collect();
        assert_eq!(phases, ["M", "B", "B", "E", "i", "E", "C"]);
    }

    #[test]
    fn span_names_with_json_metacharacters_round_trip() {
        // Span names are arbitrary caller strings; the exporter must
        // escape them, not emit malformed JSON a viewer rejects.
        let names = [
            r#"quoted "kernel" name"#,
            r"back\slash\path",
            "tab\there and newline\nthere",
            "control-\u{1}-char",
            "unicode µs → ns",
        ];
        let mut t = Tracer::new();
        for n in names {
            t.scoped(Category::Kernel, n, |t| t.advance(1e-6));
        }
        let text = to_chrome_json(&t);
        let doc = serde_json::parse_value(&text).expect("escaped export must stay valid JSON");
        let begins: Vec<&str> = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("B"))
            .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
            .collect();
        assert_eq!(begins, names, "every name must parse back verbatim");
    }

    mod timeline_export {
        use super::*;
        use crate::timeline::TimelineRecorder;

        fn three_worker_report() -> crate::timeline::TimelineReport {
            let rec = TimelineRecorder::new(3);
            for w in 0..3usize {
                rec.worker_started(w, w as u64 * 5);
                rec.block_claimed(w, w as u64, 100 + w as u64 * 10);
                rec.tile_walked(w, 0, 150 + w as u64 * 10);
                rec.block_finished(w, w as u64, 200 + w as u64 * 10);
                rec.worker_finished(w, 250);
            }
            rec.mark(1, 175, "steal");
            rec.report(300)
        }

        /// One `thread_name` metadata event per worker, in lane order,
        /// before any span event — so viewers label tracks correctly.
        #[test]
        fn one_named_track_per_worker_in_lane_order() {
            let text = timeline_to_chrome_json(&three_worker_report());
            let doc = serde_json::parse_value(&text).expect("valid JSON");
            let events = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
            let thread_names: Vec<(u64, &str)> = events
                .iter()
                .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
                .map(|e| {
                    (
                        e.get("tid").and_then(|t| t.as_f64()).unwrap() as u64,
                        e.get("args")
                            .and_then(|a| a.get("name"))
                            .and_then(|n| n.as_str())
                            .unwrap(),
                    )
                })
                .collect();
            assert_eq!(
                thread_names,
                vec![(0, "worker 0"), (1, "worker 1"), (2, "worker 2")]
            );
            // metadata strictly precedes the first span event
            let first_x = events
                .iter()
                .position(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
                .unwrap();
            let last_m = events
                .iter()
                .rposition(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
                .unwrap();
            assert!(last_m < first_x, "all M events must precede span events");
        }

        /// Every span lands on its own worker's tid; blocks, tiles and
        /// the mark are all present and the mark is thread-scoped.
        #[test]
        fn spans_keep_their_worker_tid_and_marks_are_instants() {
            let report = three_worker_report();
            let text = timeline_to_chrome_json(&report);
            let doc = serde_json::parse_value(&text).expect("valid JSON");
            let events = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
            for w in 0..3u64 {
                let block: Vec<_> = events
                    .iter()
                    .filter(|e| {
                        e.get("name").and_then(|n| n.as_str())
                            == Some(format!("block {w}").as_str())
                    })
                    .collect();
                assert_eq!(block.len(), 1);
                assert_eq!(block[0].get("tid").and_then(|t| t.as_f64()), Some(w as f64));
                assert_eq!(block[0].get("ph").and_then(|p| p.as_str()), Some("X"));
                // ns boundaries preserved as fractional µs
                let ts = block[0].get("ts").and_then(|t| t.as_f64()).unwrap();
                assert!((ts - (100 + w * 10) as f64 / 1e3).abs() < 1e-9);
            }
            let mark = events
                .iter()
                .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("steal"))
                .expect("mark exported");
            assert_eq!(mark.get("ph").and_then(|p| p.as_str()), Some("i"));
            assert_eq!(mark.get("s").and_then(|s| s.as_str()), Some("t"));
            assert_eq!(mark.get("tid").and_then(|t| t.as_f64()), Some(1.0));
        }

        /// Worker names and mark labels are arbitrary caller strings;
        /// the export must escape them and they must parse back
        /// verbatim.
        #[test]
        fn track_names_with_metacharacters_round_trip() {
            let names = [r#"srv "a""#, "queue\\deep", "lane\nbreak"];
            let rec = TimelineRecorder::with_names(&names);
            rec.span(0, SpanKind::Service, 1, 0, 100);
            rec.mark(2, 50, "label \"quoted\"\n");
            let text = timeline_to_chrome_json(&rec.report(100));
            let doc = serde_json::parse_value(&text).expect("escaped export stays valid JSON");
            let events = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
            let back: Vec<&str> = events
                .iter()
                .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
                .filter_map(|e| {
                    e.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(|n| n.as_str())
                })
                .collect();
            assert_eq!(back, names, "every track name must parse back verbatim");
            assert!(events
                .iter()
                .any(|e| { e.get("name").and_then(|n| n.as_str()) == Some("label \"quoted\"\n") }));
        }
    }
}
