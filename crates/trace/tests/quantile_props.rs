//! Property tests for [`trace::Histogram`] quantile estimation.
//!
//! The log2-bucketed histogram only *estimates* quantiles, but two
//! invariants must hold for any observation sequence, or downstream
//! consumers (`render_table`, `benchdiff`, the slogate SLO gate) would
//! report nonsense:
//!
//! * monotonicity — p50 ≤ p95 ≤ p99 (more generally, `quantile_ns` is
//!   non-decreasing in `q`);
//! * clamping — every estimate lies inside the exact observed
//!   `[min, max]` range.

use proptest::prelude::*;
use trace::Histogram;

/// Observation sequences spanning sub-bucket clusters (many equal
/// values), wide dynamic ranges (1ns .. ~18s) and the empty-adjacent
/// single-element case.
fn observations() -> impl Strategy<Value = Vec<u64>> {
    collection::vec(
        (0u32..34).prop_flat_map(|shift| {
            let base = 1u64 << shift;
            base..base.saturating_mul(2).max(base + 1)
        }),
        1..200usize,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn quantiles_are_monotone_in_q(obs in observations()) {
        let mut h = Histogram::new();
        for ns in &obs {
            h.observe(*ns);
        }
        let qs = [0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
        let estimates: Vec<f64> = qs.iter().map(|&q| h.quantile_ns(q)).collect();
        for w in estimates.windows(2) {
            prop_assert!(
                w[0] <= w[1],
                "quantiles must be non-decreasing: {estimates:?} over {} obs",
                obs.len()
            );
        }
    }

    #[test]
    fn quantiles_are_clamped_to_observed_range(obs in observations()) {
        let mut h = Histogram::new();
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for ns in &obs {
            h.observe(*ns);
            lo = lo.min(*ns);
            hi = hi.max(*ns);
        }
        for q in [0.0, 0.01, 0.5, 0.95, 0.99, 1.0] {
            let est = h.quantile_ns(q);
            prop_assert!(
                est >= lo as f64 && est <= hi as f64,
                "q={q}: estimate {est} escapes observed [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn merged_histograms_keep_both_invariants(
        a in observations(),
        b in observations(),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        for ns in &a {
            ha.observe(*ns);
        }
        for ns in &b {
            hb.observe(*ns);
        }
        ha.merge(&hb);
        let lo = a.iter().chain(&b).copied().min().unwrap_or(0);
        let hi = a.iter().chain(&b).copied().max().unwrap_or(0);
        let (p50, p95, p99) = (
            ha.quantile_ns(0.50),
            ha.quantile_ns(0.95),
            ha.quantile_ns(0.99),
        );
        prop_assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        prop_assert!(p50 >= lo as f64 && p99 <= hi as f64);
    }
}
