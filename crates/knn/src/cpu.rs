//! CPU-side k-selection baselines — the paper's "CPU 1" / "CPU 16" rows.
//!
//! The paper parallelises the C++ standard-library heap across 16 Xeon
//! cores with OpenMP. The Rust equivalent: `std::collections::BinaryHeap`
//! as a bounded max-heap per query, fanned across queries with rayon.
//! These run for real (no simulation) and are also the reference the
//! integration tests trust.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use kselect::types::{sort_neighbors, Neighbor};
use rayon::prelude::*;

use crate::distance::block::FlatMatrix;

/// `f32` wrapper ordered for max-heap use (NaN-free by construction:
/// distances are sums of squares).
#[derive(Clone, Copy, PartialEq)]
struct HeapEntry {
    dist: f32,
    id: u32,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .partial_cmp(&other.dist)
            .unwrap_or(Ordering::Equal)
            .then(self.id.cmp(&other.id))
    }
}

/// k smallest of one distance list via a bounded std max-heap,
/// sorted ascending.
pub fn heap_select(dists: &[f32], k: usize) -> Vec<Neighbor> {
    assert!(k > 0);
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(k + 1);
    for (id, &dist) in dists.iter().enumerate() {
        let e = HeapEntry {
            dist,
            id: id as u32,
        };
        if heap.len() < k {
            heap.push(e);
        } else if e.dist < heap.peek().unwrap().dist {
            heap.pop();
            heap.push(e);
        }
    }
    let mut out: Vec<Neighbor> = heap
        .into_iter()
        .map(|e| Neighbor::new(e.dist, e.id))
        .collect();
    sort_neighbors(&mut out);
    out
}

/// Serial CPU k-selection over all queries ("CPU 1").
pub fn cpu_select_serial(rows: &[Vec<f32>], k: usize) -> Vec<Vec<Neighbor>> {
    rows.iter().map(|r| heap_select(r, k)).collect()
}

/// Parallel CPU k-selection over all queries ("CPU 16" — uses however
/// many cores rayon has).
pub fn cpu_select_parallel(rows: &[Vec<f32>], k: usize) -> Vec<Vec<Neighbor>> {
    rows.par_iter().map(|r| heap_select(r, k)).collect()
}

/// [`cpu_select_serial`] over a flat distance matrix — no per-query row
/// vectors anywhere.
pub fn cpu_select_serial_flat(m: &FlatMatrix, k: usize) -> Vec<Vec<Neighbor>> {
    (0..m.q()).map(|qi| heap_select(m.row(qi), k)).collect()
}

/// [`cpu_select_parallel`] over a flat distance matrix.
pub fn cpu_select_parallel_flat(m: &FlatMatrix, k: usize) -> Vec<Vec<Neighbor>> {
    (0..m.q())
        .into_par_iter()
        .map(|qi| heap_select(m.row(qi), k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rows(q: usize, n: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..q)
            .map(|_| (0..n).map(|_| rng.gen()).collect())
            .collect()
    }

    #[test]
    fn heap_select_matches_sort() {
        let r = rows(1, 1000, 5);
        let got: Vec<f32> = heap_select(&r[0], 20).iter().map(|n| n.dist).collect();
        let mut expect = r[0].clone();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(got, &expect[..20]);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let r = rows(40, 500, 6);
        let a = cpu_select_serial(&r, 8);
        let b = cpu_select_parallel(&r, 8);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            let xd: Vec<f32> = x.iter().map(|n| n.dist).collect();
            let yd: Vec<f32> = y.iter().map(|n| n.dist).collect();
            assert_eq!(xd, yd);
        }
    }

    #[test]
    fn flat_variants_match_row_variants() {
        let r = rows(20, 300, 7);
        let flat = FlatMatrix::from_flat(r.concat(), 20, 300);
        assert_eq!(cpu_select_serial_flat(&flat, 8), cpu_select_serial(&r, 8));
        assert_eq!(
            cpu_select_parallel_flat(&flat, 8),
            cpu_select_parallel(&r, 8)
        );
    }

    #[test]
    fn k_bigger_than_n_returns_all() {
        let got = heap_select(&[3.0, 1.0], 5);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].dist, 1.0);
    }

    #[test]
    fn duplicate_distances_keep_distinct_ids() {
        let got = heap_select(&[0.5, 0.5, 0.5, 0.9], 3);
        let mut ids: Vec<u32> = got.iter().map(|n| n.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
