//! Blocked, flat, GEMM-style distance kernel.
//!
//! The paper treats k-selection as the GPU bottleneck; on the host side
//! of this reproduction the distance phase is the dominant *real*
//! computation, and the seed implementation — a scalar per-pair loop
//! into a heap of per-query rows — was both latency-bound (one
//! loop-carried f32 add chain) and allocation-heavy. This module applies
//! the standard GEMM decomposition (Johnson et al., *Billion-scale
//! similarity search with GPUs*): ‖q−r‖² = ‖q‖² + ‖r‖² − 2·q·r, so the
//! pair loop reduces to an inner product with one multiply-add per
//! dimension, norms are hoisted and computed once per point, and the
//! whole matrix is written into a single flat row-major buffer.
//!
//! Blocking: query rows are split into per-worker slabs
//! (rayon-parallel) and references into [`REF_TILE`]-sized tiles walked
//! in the outer loop, so one tile of reference rows stays
//! cache-resident while every query row in the slab streams over it —
//! the reference set is read once per slab instead of once per
//! [`QUERY_BLOCK`]. (The streamed pipelines still schedule work in
//! `QUERY_BLOCK` units; only this materialising kernel is tile-outer.) The inner reduction is [`crate::distance::dot`] —
//! [`crate::distance::LANES`] independent accumulators over
//! `chunks_exact`, which autovectorizes — and is *the same function* the
//! scalar [`crate::squared_distance`] uses, so blocked output equals the
//! scalar reference bit for bit (property-tested).
//!
//! The tile-streamed search path ([`crate::pipeline::knn_search_streamed`])
//! reuses the row primitives here to compute one reference tile at a
//! time into a reused scratch buffer, never materialising the Q×N
//! matrix.

use rayon::prelude::*;

use crate::dataset::PointSet;
use crate::distance::{simd, squared_norm};

/// Queries per parallel work unit. 32 rows of dim ≤ 512 stay within L1/L2
/// alongside one reference tile.
pub const QUERY_BLOCK: usize = 32;

/// References per cache tile of the materialising kernel: 256 rows × 128
/// dims × 4 B = 128 KiB, sized for a typical L2.
pub const REF_TILE: usize = 256;

/// Default reference-tile length (elements per query per chunk) of the
/// streamed search path. Each worker's scratch is `QUERY_BLOCK ×
/// DEFAULT_STREAM_TILE` floats; 2048 keeps that at 256 KiB while still
/// amortising the per-tile selection merge for typical `k ≤ 512`.
///
/// Chosen empirically: `wallclock --sweep-tiles` (Q=1024, N=2^14,
/// dim=128, k=32) measures streamed QPS across {1024, 2048, 4096,
/// 8192}, and 2048 wins — ~21% over 4096 on the reference machine (see
/// `tile_sweep` in `BENCH_native.json`); larger tiles thrash L2, while
/// 1024 pays one extra merge round per query.
pub const DEFAULT_STREAM_TILE: usize = 2048;

/// A dense Q×N matrix in one flat row-major allocation:
/// `at(q, r) == data[q * n + r]`.
#[derive(Clone, Debug, PartialEq)]
pub struct FlatMatrix {
    data: Vec<f32>,
    q: usize,
    n: usize,
}

impl FlatMatrix {
    /// Wrap an existing flat row-major buffer.
    ///
    /// # Panics
    /// When `data.len() != q * n`.
    pub fn from_flat(data: Vec<f32>, q: usize, n: usize) -> Self {
        assert_eq!(data.len(), q * n, "flat buffer does not match q × n");
        FlatMatrix { data, q, n }
    }

    /// Number of rows (queries).
    pub fn q(&self) -> usize {
        self.q
    }

    /// Number of columns (references) per row.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Row `q` as a contiguous slice of length [`Self::n`].
    pub fn row(&self, q: usize) -> &[f32] {
        &self.data[q * self.n..(q + 1) * self.n]
    }

    /// Element access.
    pub fn at(&self, q: usize, r: usize) -> f32 {
        self.data[q * self.n + r]
    }

    /// The whole matrix, row-major.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Iterate over the rows.
    pub fn rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.n.max(1))
    }

    /// Consume into the flat row-major buffer.
    pub fn into_inner(self) -> Vec<f32> {
        self.data
    }

    /// Copy out as per-query row vectors — the legacy heap-of-rows shape
    /// (one allocation per query; kept only for `distance_matrix`
    /// compatibility).
    pub fn to_rows(&self) -> Vec<Vec<f32>> {
        self.rows().map(<[f32]>::to_vec).collect()
    }

    /// Bytes held by the distance values.
    pub fn bytes(&self) -> u64 {
        (self.data.len() * core::mem::size_of::<f32>()) as u64
    }
}

/// Squared norms of every point, computed once: the hoisted ‖·‖² terms
/// of the decomposition.
pub fn norms(points: &PointSet) -> Vec<f32> {
    (0..points.len())
        .into_par_iter()
        .map(|i| squared_norm(points.point(i)))
        .collect()
}

/// Fill `out[j] = clamp_non_finite(‖q − refs[r0 + j]‖²)` for one query
/// against the reference range starting at `r0`. `norm_q` and
/// `ref_norms` are the precomputed squared norms (`ref_norms` indexed by
/// absolute reference id). This is the inner row primitive shared by the
/// materialising kernel, the per-query search path and the tile-streamed
/// path — one call site for the arithmetic keeps all of them bit-equal.
/// The arithmetic itself lives in [`crate::distance::simd`], which
/// dispatches at runtime between the AVX2 vector kernel and the
/// portable scalar kernel; both reproduce the scalar reference bit for
/// bit, so every caller of this function is unaffected by the dispatch.
#[inline]
pub fn fill_row_range(
    qp: &[f32],
    norm_q: f32,
    refs: &PointSet,
    ref_norms: &[f32],
    r0: usize,
    out: &mut [f32],
) {
    debug_assert!(r0 + out.len() <= refs.len());
    simd::fill_rows(qp, norm_q, refs, ref_norms, r0, out);
}

/// The blocked kernel: the full Q×N squared-distance matrix as a flat
/// row-major [`FlatMatrix`], parallel over per-worker slabs of query
/// rows, tile-outer over [`REF_TILE`]-sized reference tiles within
/// each slab (each tile is read once per slab, not once per
/// [`QUERY_BLOCK`]).
///
/// Output is bit-identical to calling
/// `clamp_non_finite(squared_distance(q, r))` per pair.
///
/// # Panics
/// When the point sets disagree on dimensionality.
pub fn squared_distances(queries: &PointSet, refs: &PointSet) -> FlatMatrix {
    assert_eq!(queries.dim(), refs.dim(), "dimension mismatch");
    let q = queries.len();
    let n = refs.len();
    let ref_norms = norms(refs);
    let q_norms = norms(queries);
    let mut data = vec![0.0f32; q * n];
    // One contiguous slab of whole query rows per worker, so the
    // parallel split stays balanced and each worker owns a disjoint
    // region of the output.
    let workers = crate::pipeline::resolve_threads(0).clamp(1, q.max(1));
    let rows_per = q.div_ceil(workers).max(1);
    let slabs: Vec<(usize, &mut [f32])> =
        data.chunks_mut((rows_per * n).max(1)).enumerate().collect();
    slabs.into_par_iter().for_each(|(si, slab)| {
        let q0 = si * rows_per;
        // Tile-outer: each REF_TILE-sized slice of the reference set is
        // pulled into cache once per slab and reused across every query
        // row in the slab, instead of once per QUERY_BLOCK — for large
        // N that divides the reference re-read traffic by the slab's
        // row count. Fill order changes; per-pair bits do not.
        for r0 in (0..n).step_by(REF_TILE) {
            let t_len = REF_TILE.min(n - r0);
            for (i, row) in slab.chunks_exact_mut(n.max(1)).enumerate() {
                fill_row_range(
                    queries.point(q0 + i),
                    q_norms[q0 + i],
                    refs,
                    &ref_norms,
                    r0,
                    &mut row[r0..r0 + t_len],
                );
            }
        }
    });
    FlatMatrix::from_flat(data, q, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::{clamp_non_finite, squared_distance};

    #[test]
    fn blocked_equals_scalar_bitwise() {
        // Dimensions straddling the LANES boundary and sizes straddling
        // both block edges.
        for dim in [1, 7, 8, 9, 16, 33] {
            let qs = PointSet::uniform(QUERY_BLOCK + 3, dim, 11);
            let rs = PointSet::uniform(REF_TILE + 5, dim, 12);
            let m = squared_distances(&qs, &rs);
            assert_eq!(m.q(), qs.len());
            assert_eq!(m.n(), rs.len());
            for qi in 0..qs.len() {
                for ri in 0..rs.len() {
                    let expect = clamp_non_finite(squared_distance(qs.point(qi), rs.point(ri)));
                    assert_eq!(
                        m.at(qi, ri).to_bits(),
                        expect.to_bits(),
                        "dim {dim} pair ({qi}, {ri})"
                    );
                }
            }
        }
    }

    #[test]
    fn self_distance_is_exactly_zero() {
        let p = PointSet::uniform(40, 33, 13);
        let m = squared_distances(&p, &p);
        for i in 0..p.len() {
            assert_eq!(m.at(i, i).to_bits(), 0.0f32.to_bits(), "point {i}");
        }
    }

    #[test]
    fn row_primitive_matches_matrix() {
        let qs = PointSet::uniform(3, 19, 14);
        let rs = PointSet::uniform(57, 19, 15);
        let ref_norms = norms(&rs);
        let m = squared_distances(&qs, &rs);
        let mut out = vec![0.0f32; 10];
        fill_row_range(
            qs.point(1),
            squared_norm(qs.point(1)),
            &rs,
            &ref_norms,
            20,
            &mut out,
        );
        assert_eq!(&m.row(1)[20..30], &out[..]);
    }

    #[test]
    fn flat_matrix_accessors() {
        let m = FlatMatrix::from_flat(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.at(0, 2), 3.0);
        assert_eq!(m.rows().count(), 2);
        assert_eq!(m.bytes(), 24);
        assert_eq!(m.to_rows(), vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.into_inner().len(), 6);
    }

    #[test]
    #[should_panic]
    fn ragged_flat_rejected() {
        FlatMatrix::from_flat(vec![0.0; 5], 2, 3);
    }
}
