//! Runtime-dispatched SIMD microkernels for the distance row primitive.
//!
//! The tile inner loop — ‖q‖² + ‖r‖² − 2·q·r per (query, reference)
//! pair — spends all of its time in [`crate::distance::dot`]. That
//! function's contract fixes the accumulation order: [`LANES`]
//! independent partial sums (`acc[l] += a[l] * b[l]` per 8-wide chunk),
//! a sequential scalar tail, and a fixed-shape pairwise reduce tree.
//! This module provides two implementations of the *row* primitive that
//! reproduce those bits exactly and picks between them at runtime:
//!
//! * **`avx2+fma`** — an AVX2 vector kernel register-blocked over four
//!   reference rows per pass. Each accumulator lane *is* one of the
//!   scalar kernel's eight partial sums, the horizontal reduce performs
//!   the same pairwise tree, and the `dim % 8` tail is the same scalar
//!   loop — so every pair's distance is bit-identical to the scalar
//!   path. The blocking exists for throughput, not numerics: one query
//!   chunk load feeds four independent add chains, which covers the
//!   f32-add latency that a single-accumulator port would stall on.
//! * **`scalar8`** — the portable fallback: the existing 8-accumulator
//!   scalar kernel (which autovectorizes), one reference row at a time.
//!
//! # Why not `_mm256_fmadd_ps`?
//!
//! The dispatch gate requires the `fma` CPUID flag (every AVX2 part
//! ships it, and enabling it lets LLVM schedule the loop for FMA-class
//! ports), but the kernel deliberately issues separate `mul` + `add`:
//! a fused multiply-add rounds once where the scalar contract rounds
//! twice, so an FMA kernel would *not* be bit-identical — and the fig5
//! experiment artifacts, the property tests, and the streamed-vs-
//! materialized equivalence all hang off that identity. Rust never
//! contracts a separate `mul`/`add` pair on its own (no fast-math), so
//! the explicit intrinsics pin the arithmetic.
//!
//! Dispatch is decided once per process ([`active_kernel`]) from CPUID
//! via `is_x86_feature_detected!`; setting `KNN_SIMD=scalar` in the
//! environment forces the portable kernel (used by tests and benches to
//! compare the two paths on the same machine).

use super::{clamp_non_finite, dot, squared_distance_from_parts, LANES};
use crate::dataset::PointSet;

/// One of the row-kernel implementations this module can dispatch to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// 256-bit AVX2 kernel, register-blocked over four reference rows.
    Avx2,
    /// Portable 8-accumulator scalar kernel.
    Scalar8,
}

impl Kernel {
    /// Stable name reported by the CLI and recorded in
    /// `BENCH_native.json` (`simd_dispatch`).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Avx2 => "avx2+fma",
            Kernel::Scalar8 => "scalar8",
        }
    }
}

/// Whether the host CPU supports the AVX2 kernel (requires both the
/// `avx2` and `fma` CPUID flags — see the module docs for why `fma` is
/// gated on but never used for the accumulation itself).
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The kernel every dispatched row fill in this process uses, decided
/// once: `KNN_SIMD=scalar` forces [`Kernel::Scalar8`], otherwise the
/// CPUID probe picks the fastest supported implementation.
pub fn active_kernel() -> Kernel {
    static ACTIVE: std::sync::OnceLock<Kernel> = std::sync::OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let forced_scalar =
            std::env::var_os("KNN_SIMD").is_some_and(|v| v == "scalar" || v == "scalar8");
        if !forced_scalar && avx2_available() {
            Kernel::Avx2
        } else {
            Kernel::Scalar8
        }
    })
}

/// Name of the dispatched kernel (`"avx2+fma"` / `"scalar8"`).
pub fn dispatch_name() -> &'static str {
    active_kernel().name()
}

/// The dispatched row primitive: `out[j] = clamp_non_finite(‖q −
/// refs[r0 + j]‖²)` with hoisted norms, bit-identical on every kernel.
/// This is the single arithmetic entry point
/// [`crate::distance::block::fill_row_range`] routes through.
#[inline]
pub fn fill_rows(
    qp: &[f32],
    norm_q: f32,
    refs: &PointSet,
    ref_norms: &[f32],
    r0: usize,
    out: &mut [f32],
) {
    match active_kernel() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `active_kernel` only returns `Avx2` when
        // `avx2_available()` confirmed both CPUID flags.
        Kernel::Avx2 => unsafe { fill_rows_avx2(qp, norm_q, refs, ref_norms, r0, out) },
        _ => fill_rows_portable(qp, norm_q, refs, ref_norms, r0, out),
    }
}

/// The portable row kernel: the 8-accumulator scalar [`dot`] per
/// reference. This is byte-for-byte the pre-SIMD `fill_row_range` body
/// and the bit-identity reference the vector kernel is tested against.
pub fn fill_rows_portable(
    qp: &[f32],
    norm_q: f32,
    refs: &PointSet,
    ref_norms: &[f32],
    r0: usize,
    out: &mut [f32],
) {
    for (j, o) in out.iter_mut().enumerate() {
        let r = r0 + j;
        let d = squared_distance_from_parts(norm_q, ref_norms[r], dot(qp, refs.point(r)));
        *o = clamp_non_finite(d);
    }
}

/// The AVX2 row kernel: four reference rows per pass, one 256-bit
/// accumulator chain each, exact scalar tail and reduce tree.
///
/// # Safety
/// The host must support `avx2` and `fma` (check [`avx2_available`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
pub unsafe fn fill_rows_avx2(
    qp: &[f32],
    norm_q: f32,
    refs: &PointSet,
    ref_norms: &[f32],
    r0: usize,
    out: &mut [f32],
) {
    use std::arch::x86_64::*;

    let dim = qp.len();
    let chunks = dim / LANES;
    let tail0 = chunks * LANES;
    let qptr = qp.as_ptr();

    let mut j = 0;
    // Register-blocked main loop: one query row against four reference
    // rows. The four accumulator chains are independent, so the f32-add
    // latency of one chain overlaps the other three, and each query
    // chunk is loaded once instead of four times. Within a chain the
    // operation order is exactly `dot`'s: mul, then add, chunk by chunk
    // (two roundings — never a fused multiply-add).
    while j + 4 <= out.len() {
        let r = r0 + j;
        let p0 = refs.point(r).as_ptr();
        let p1 = refs.point(r + 1).as_ptr();
        let p2 = refs.point(r + 2).as_ptr();
        let p3 = refs.point(r + 3).as_ptr();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        for c in 0..chunks {
            let o = c * LANES;
            let vq = _mm256_loadu_ps(qptr.add(o));
            acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(vq, _mm256_loadu_ps(p0.add(o))));
            acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(vq, _mm256_loadu_ps(p1.add(o))));
            acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(vq, _mm256_loadu_ps(p2.add(o))));
            acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(vq, _mm256_loadu_ps(p3.add(o))));
        }
        // Transposed reduce of all four accumulators at once, each lane
        // following `dot`'s exact pairwise tree. `hadd` pairs adjacent
        // lanes, which *is* the tree's level: l_i = [a01, a23, a45,
        // a67] for ref i, then x = [b01_0, b23_0, b01_1, b23_1] (and y
        // likewise for refs 2/3) where b01 = a01 + a23, b23 = a45 +
        // a67, so `even + odd` performs the root add per ref.
        let l0 = _mm_hadd_ps(_mm256_castps256_ps128(acc0), _mm256_extractf128_ps(acc0, 1));
        let l1 = _mm_hadd_ps(_mm256_castps256_ps128(acc1), _mm256_extractf128_ps(acc1, 1));
        let l2 = _mm_hadd_ps(_mm256_castps256_ps128(acc2), _mm256_extractf128_ps(acc2, 1));
        let l3 = _mm_hadd_ps(_mm256_castps256_ps128(acc3), _mm256_extractf128_ps(acc3, 1));
        let x = _mm_hadd_ps(l0, l1);
        let y = _mm_hadd_ps(l2, l3);
        let even = _mm_shuffle_ps::<0b10_00_10_00>(x, y); // [b01_0..3]
        let odd = _mm_shuffle_ps::<0b11_01_11_01>(x, y); // [b23_0..3]
        let dots = _mm_add_ps(even, odd);
        if tail0 == dim {
            // No scalar tail: finish all four pairs in vector registers
            // with the scalar path's exact expression shape —
            // `(norm_q + norm_r) - 2·dot`, negative-clamp, then the
            // non-finite map. `max(0, raw)` matches `if raw < 0.0 { 0.0 }`
            // bitwise: maxps returns the second operand on NaN and on
            // ±0 equality, i.e. `raw` itself in both cases, exactly like
            // the scalar branch. The ordered `d < ∞` compare is false
            // for NaN and +∞, selecting the scalar clamp's `+∞` arm.
            let sums = _mm_add_ps(_mm_set1_ps(norm_q), _mm_loadu_ps(ref_norms.as_ptr().add(r)));
            let raw = _mm_sub_ps(sums, _mm_mul_ps(_mm_set1_ps(2.0), dots));
            let d = _mm_max_ps(_mm_setzero_ps(), raw);
            let inf = _mm_set1_ps(f32::INFINITY);
            let finite = _mm_cmp_ps::<_CMP_LT_OQ>(d, inf);
            let clamped = _mm_blendv_ps(inf, d, finite);
            _mm_storeu_ps(out.as_mut_ptr().add(j), clamped);
        } else {
            let mut dot4 = [0.0f32; 4];
            _mm_storeu_ps(dot4.as_mut_ptr(), dots);
            let ptrs = [p0, p1, p2, p3];
            for (i, (tree_sum, p)) in dot4.into_iter().zip(ptrs).enumerate() {
                let mut tail = 0.0f32;
                for t in tail0..dim {
                    tail += *qptr.add(t) * *p.add(t);
                }
                let d = squared_distance_from_parts(norm_q, ref_norms[r + i], tree_sum + tail);
                out[j + i] = clamp_non_finite(d);
            }
        }
        j += 4;
    }
    // Remaining references (fewer than four): one chain each — the
    // per-pair arithmetic is the same either way.
    while j < out.len() {
        let r = r0 + j;
        let p = refs.point(r).as_ptr();
        let mut acc = _mm256_setzero_ps();
        for c in 0..chunks {
            let o = c * LANES;
            acc = _mm256_add_ps(
                acc,
                _mm256_mul_ps(_mm256_loadu_ps(qptr.add(o)), _mm256_loadu_ps(p.add(o))),
            );
        }
        let mut tail = 0.0f32;
        for t in tail0..dim {
            tail += *qptr.add(t) * *p.add(t);
        }
        let d = squared_distance_from_parts(norm_q, ref_norms[r], hsum8(acc) + tail);
        out[j] = clamp_non_finite(d);
        j += 1;
    }
}

/// Horizontal sum of an 8-lane accumulator with `dot`'s exact pairwise
/// tree: `b = [a0+a1, a2+a3, a4+a5, a6+a7]`, then `(b0+b1) + (b2+b3)`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn hsum8(v: std::arch::x86_64::__m256) -> f32 {
    use std::arch::x86_64::*;
    let lo = _mm256_castps256_ps128(v);
    let hi = _mm256_extractf128_ps(v, 1);
    // hadd pairs adjacent lanes: exactly the tree's first level.
    let b = _mm_hadd_ps(lo, hi);
    // second level: [b0+b1, b2+b3, b0+b1, b2+b3]
    let c = _mm_hadd_ps(b, b);
    // root: (b0+b1) + (b2+b3)
    _mm_cvtss_f32(_mm_add_ss(c, _mm_movehdup_ps(c)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::block;
    use crate::distance::squared_distance;

    fn expected(qp: &[f32], refs: &PointSet, r0: usize, len: usize) -> Vec<f32> {
        (0..len)
            .map(|j| clamp_non_finite(squared_distance(qp, refs.point(r0 + j))))
            .collect()
    }

    #[test]
    fn dispatch_name_is_stable() {
        let k = active_kernel();
        assert!(matches!(k, Kernel::Avx2 | Kernel::Scalar8));
        assert_eq!(dispatch_name(), k.name());
        assert_eq!(Kernel::Avx2.name(), "avx2+fma");
        assert_eq!(Kernel::Scalar8.name(), "scalar8");
        if k == Kernel::Avx2 {
            assert!(avx2_available());
        }
    }

    #[test]
    fn portable_rows_equal_scalar_reference_bitwise() {
        for dim in [1usize, 7, 8, 9, 127, 128] {
            let qs = PointSet::uniform(3, dim, 21);
            let rs = PointSet::uniform(41, dim, 22);
            let ref_norms = block::norms(&rs);
            for (r0, len) in [(0usize, 41usize), (5, 13), (40, 1)] {
                let qp = qs.point(1);
                let mut out = vec![0.0f32; len];
                fill_rows_portable(
                    qp,
                    super::super::squared_norm(qp),
                    &rs,
                    &ref_norms,
                    r0,
                    &mut out,
                );
                let want = expected(qp, &rs, r0, len);
                for (got, want) in out.iter().zip(&want) {
                    assert_eq!(got.to_bits(), want.to_bits(), "dim {dim} r0 {r0} len {len}");
                }
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_rows_equal_scalar_reference_bitwise() {
        if !avx2_available() {
            eprintln!("skipping: host lacks avx2+fma");
            return;
        }
        // Dims straddling the 8-lane chunk edge, row lengths straddling
        // the 4-reference register block (remainders 0..3).
        for dim in [1usize, 7, 8, 9, 127, 128] {
            let qs = PointSet::uniform(2, dim, 31);
            let rs = PointSet::uniform(23, dim, 32);
            let ref_norms = block::norms(&rs);
            for len in [1usize, 2, 3, 4, 5, 7, 8, 23] {
                let qp = qs.point(0);
                let mut out = vec![0.0f32; len];
                // SAFETY: gated on avx2_available above.
                unsafe {
                    fill_rows_avx2(
                        qp,
                        super::super::squared_norm(qp),
                        &rs,
                        &ref_norms,
                        0,
                        &mut out,
                    );
                }
                let want = expected(qp, &rs, 0, len);
                for (ri, (got, want)) in out.iter().zip(&want).enumerate() {
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "dim {dim} len {len} ref {ri}: avx2 {got} vs scalar {want}"
                    );
                }
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_clamps_non_finite_like_the_scalar_path() {
        if !avx2_available() {
            eprintln!("skipping: host lacks avx2+fma");
            return;
        }
        let dim = 16;
        let qs = PointSet::uniform(1, dim, 33);
        let mut flat = PointSet::uniform(9, dim, 34).as_flat().to_vec();
        flat[3 * dim] = f32::MAX; // ‖r‖² overflows → +inf → clamp
        flat[6 * dim + 2] = f32::MAX;
        let rs = PointSet::from_flat(flat, dim);
        let ref_norms = block::norms(&rs);
        let qp = qs.point(0);
        let mut out = vec![0.0f32; rs.len()];
        // SAFETY: gated on avx2_available above.
        unsafe {
            fill_rows_avx2(
                qp,
                super::super::squared_norm(qp),
                &rs,
                &ref_norms,
                0,
                &mut out,
            );
        }
        let want = expected(qp, &rs, 0, rs.len());
        assert_eq!(out[3], f32::INFINITY);
        assert_eq!(out[6], f32::INFINITY);
        for (got, want) in out.iter().zip(&want) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn dispatched_rows_equal_scalar_reference_bitwise() {
        for dim in [1usize, 7, 8, 9, 127, 128] {
            let qs = PointSet::uniform(1, dim, 35);
            let rs = PointSet::uniform(19, dim, 36);
            let ref_norms = block::norms(&rs);
            let qp = qs.point(0);
            let mut out = vec![0.0f32; rs.len()];
            fill_rows(
                qp,
                super::super::squared_norm(qp),
                &rs,
                &ref_norms,
                0,
                &mut out,
            );
            let want = expected(qp, &rs, 0, rs.len());
            for (got, want) in out.iter().zip(&want) {
                assert_eq!(got.to_bits(), want.to_bits(), "dim {dim}");
            }
        }
    }
}
