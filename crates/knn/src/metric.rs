//! Distance metrics beyond the paper's squared Euclidean.
//!
//! k-selection is metric-agnostic (it sees only a list of scores to
//! minimise), so the library supports the metrics common in the paper's
//! motivating domains: Euclidean for SIFT-style descriptors, cosine and
//! (negated) dot product for embedding retrieval, Manhattan for robust
//! matching. All metrics are oriented so that **smaller = closer**.

use serde::{Deserialize, Serialize};

use crate::dataset::PointSet;
use crate::distance::block::{self, FlatMatrix, QUERY_BLOCK};
use rayon::prelude::*;

/// A dissimilarity measure; smaller values mean closer points.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Σ (aᵢ − bᵢ)² — the paper's metric (monotone in Euclidean).
    SquaredEuclidean,
    /// Σ |aᵢ − bᵢ| (L1).
    Manhattan,
    /// 1 − cos(a, b) ∈ [0, 2]; zero vectors are treated as maximally far.
    Cosine,
    /// −⟨a, b⟩ — maximum inner product search as a minimisation.
    NegativeDot,
}

impl Metric {
    /// Dissimilarity between two equal-length vectors.
    pub fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Metric::SquaredEuclidean => crate::distance::squared_distance(a, b),
            Metric::Manhattan => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
            Metric::Cosine => {
                let mut dot = 0.0f32;
                let mut na = 0.0f32;
                let mut nb = 0.0f32;
                for (x, y) in a.iter().zip(b) {
                    dot += x * y;
                    na += x * x;
                    nb += y * y;
                }
                let denom = (na * nb).sqrt();
                if denom == 0.0 {
                    2.0
                } else {
                    1.0 - dot / denom
                }
            }
            Metric::NegativeDot => -a.iter().zip(b).map(|(x, y)| x * y).sum::<f32>(),
        }
    }

    /// True when the metric never produces negative values (radix-select
    /// style bit tricks require this).
    pub fn is_non_negative(&self) -> bool {
        !matches!(self, Metric::NegativeDot)
    }
}

/// Full distance matrix under an arbitrary metric, in one flat row-major
/// allocation: `m.at(q, r)` is the dissimilarity between query `q` and
/// reference `r`, with non-finite values clamped to `+∞`.
///
/// Squared Euclidean routes through the blocked GEMM-style kernel
/// ([`block::squared_distances`]); the other metrics fill the flat
/// buffer directly, parallel over query blocks, with no per-query
/// allocation either way.
pub fn distance_matrix_flat_with(
    queries: &PointSet,
    refs: &PointSet,
    metric: Metric,
) -> FlatMatrix {
    assert_eq!(queries.dim(), refs.dim(), "dimension mismatch");
    if metric == Metric::SquaredEuclidean {
        return block::squared_distances(queries, refs);
    }
    let q = queries.len();
    let n = refs.len();
    let mut data = vec![0.0f32; q * n];
    let blocks: Vec<(usize, &mut [f32])> = data
        .chunks_mut((QUERY_BLOCK * n).max(1))
        .enumerate()
        .collect();
    blocks.into_par_iter().for_each(|(bi, slab)| {
        let q0 = bi * QUERY_BLOCK;
        for (i, row) in slab.chunks_exact_mut(n).enumerate() {
            let qp = queries.point(q0 + i);
            for (r, o) in row.iter_mut().enumerate() {
                *o = crate::distance::clamp_non_finite(metric.distance(qp, refs.point(r)));
            }
        }
    });
    FlatMatrix::from_flat(data, q, n)
}

/// Full distance matrix under an arbitrary metric as per-query rows.
///
/// Legacy interface over [`distance_matrix_flat_with`]: the heap-of-rows
/// return type costs one allocation per query on top of the flat kernel
/// output.
pub fn distance_matrix_with(queries: &PointSet, refs: &PointSet, metric: Metric) -> Vec<Vec<f32>> {
    distance_matrix_flat_with(queries, refs, metric).to_rows()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_matches_dedicated_impl() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 6.0, 3.0];
        assert_eq!(Metric::SquaredEuclidean.distance(&a, &b), 25.0);
    }

    #[test]
    fn manhattan() {
        assert_eq!(Metric::Manhattan.distance(&[0.0, 0.0], &[3.0, -4.0]), 7.0);
    }

    #[test]
    fn cosine_identical_and_orthogonal() {
        let a = [1.0, 0.0];
        assert!((Metric::Cosine.distance(&a, &[2.0, 0.0])).abs() < 1e-6);
        assert!((Metric::Cosine.distance(&a, &[0.0, 5.0]) - 1.0).abs() < 1e-6);
        assert!((Metric::Cosine.distance(&a, &[-1.0, 0.0]) - 2.0).abs() < 1e-6);
        // zero vector: maximally far, not NaN
        assert_eq!(Metric::Cosine.distance(&a, &[0.0, 0.0]), 2.0);
    }

    #[test]
    fn negative_dot_orders_by_similarity() {
        let q = [1.0, 1.0];
        let close = Metric::NegativeDot.distance(&q, &[3.0, 3.0]);
        let far = Metric::NegativeDot.distance(&q, &[0.1, 0.0]);
        assert!(close < far, "more similar must score lower");
        assert!(!Metric::NegativeDot.is_non_negative());
        assert!(Metric::Cosine.is_non_negative());
    }

    #[test]
    fn matrix_with_metric() {
        let q = PointSet::uniform(3, 8, 1);
        let r = PointSet::uniform(5, 8, 2);
        for metric in [
            Metric::SquaredEuclidean,
            Metric::Manhattan,
            Metric::Cosine,
            Metric::NegativeDot,
        ] {
            let m = distance_matrix_with(&q, &r, metric);
            assert_eq!(m.len(), 3);
            assert_eq!(m[0].len(), 5);
            assert_eq!(m[1][2], metric.distance(q.point(1), r.point(2)));
        }
    }

    #[test]
    fn flat_and_rows_agree_bitwise() {
        // Sizes straddling the query-block edge so the blocked fill path
        // is exercised for every metric.
        let q = PointSet::uniform(QUERY_BLOCK + 2, 8, 3);
        let r = PointSet::uniform(37, 8, 4);
        for metric in [
            Metric::SquaredEuclidean,
            Metric::Manhattan,
            Metric::Cosine,
            Metric::NegativeDot,
        ] {
            let flat = distance_matrix_flat_with(&q, &r, metric);
            let rows = distance_matrix_with(&q, &r, metric);
            assert_eq!(flat.q(), rows.len());
            for (qi, row) in rows.iter().enumerate() {
                for (ri, &v) in row.iter().enumerate() {
                    assert_eq!(flat.at(qi, ri).to_bits(), v.to_bits(), "{metric:?}");
                }
            }
        }
    }
}
