//! k-NN graph construction (k-NNG) — the workload Quick Multi-Select was
//! built for (Komarov et al.: "Fast k-NNG construction with GPU-based
//! quick multi-select") and a staple of the paper's motivating domains
//! (3D reconstruction match graphs, manifold learning).
//!
//! A k-NNG connects every point of a set to its k nearest *other* points.
//! Construction is all-pairs k-NN with self-exclusion, parallel over
//! points.

use kselect::types::Neighbor;
use kselect::{select_k, SelectConfig};
use rayon::prelude::*;

use crate::dataset::PointSet;
use crate::distance::block;
use crate::metric::Metric;

/// A directed k-NN graph: `edges[i]` are point `i`'s k nearest others,
/// ascending by distance.
#[derive(Clone, Debug)]
pub struct KnnGraph {
    edges: Vec<Vec<Neighbor>>,
    k: usize,
}

impl KnnGraph {
    /// Build the k-NNG of `points` under `metric` using the configured
    /// selection variant. Self-edges are excluded.
    ///
    /// # Panics
    /// When `k >= points.len()` (a point cannot have more neighbors than
    /// there are other points).
    pub fn build(points: &PointSet, k: usize, metric: Metric, cfg: &SelectConfig) -> Self {
        assert!(k > 0 && k < points.len(), "need 0 < k < number of points");
        let n = points.len();
        // Hoisted ‖·‖² terms for the GEMM-decomposed Euclidean path;
        // other metrics fall back to the pairwise form.
        let norms = match metric {
            Metric::SquaredEuclidean => block::norms(points),
            _ => Vec::new(),
        };
        let edges: Vec<Vec<Neighbor>> = (0..n)
            .into_par_iter()
            .map_init(
                || vec![0.0f32; n],
                |dists, i| {
                    let pi = points.point(i);
                    if metric == Metric::SquaredEuclidean {
                        block::fill_row_range(pi, norms[i], points, &norms, 0, dists);
                    } else {
                        for (j, d) in dists.iter_mut().enumerate() {
                            *d = metric.distance(pi, points.point(j));
                        }
                    }
                    dists[i] = f32::INFINITY; // self-exclusion
                    let mut nbs = select_k(dists, cfg);
                    nbs.truncate(k);
                    nbs
                },
            )
            .collect();
        KnnGraph { edges, k }
    }

    /// Neighbors of point `i` (ascending by distance).
    pub fn neighbors(&self, i: usize) -> &[Neighbor] {
        &self.edges[i]
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Edges per vertex.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Fraction of edges that are reciprocated (`j ∈ knn(i)` and
    /// `i ∈ knn(j)`) — a standard k-NNG quality statistic: high symmetry
    /// indicates well-clustered data.
    pub fn symmetry(&self) -> f64 {
        let mut mutual = 0usize;
        let mut total = 0usize;
        for (i, nbs) in self.edges.iter().enumerate() {
            for nb in nbs {
                total += 1;
                if self.edges[nb.id as usize]
                    .iter()
                    .any(|back| back.id as usize == i)
                {
                    mutual += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            mutual as f64 / total as f64
        }
    }

    /// Connected components of the *undirected* version of the graph
    /// (union-find) — e.g. to count clusters in a match graph.
    pub fn connected_components(&self) -> usize {
        let n = self.edges.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (i, nbs) in self.edges.iter().enumerate() {
            for nb in nbs {
                let (a, b) = (find(&mut parent, i), find(&mut parent, nb.id as usize));
                if a != b {
                    parent[a] = b;
                }
            }
        }
        (0..n).filter(|&i| find(&mut parent, i) == i).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kselect::QueueKind;

    fn cfg(k: usize) -> SelectConfig {
        SelectConfig::optimized(QueueKind::Merge, k.next_power_of_two().max(8))
    }

    #[test]
    fn no_self_edges_and_sorted() {
        let pts = PointSet::uniform(120, 8, 401);
        let g = KnnGraph::build(&pts, 5, Metric::SquaredEuclidean, &cfg(5));
        assert_eq!(g.len(), 120);
        for i in 0..g.len() {
            let nbs = g.neighbors(i);
            assert_eq!(nbs.len(), 5);
            assert!(nbs.iter().all(|nb| nb.id as usize != i), "self edge at {i}");
            assert!(nbs.windows(2).all(|w| w[0].dist <= w[1].dist));
        }
    }

    #[test]
    fn matches_brute_force() {
        let pts = PointSet::uniform(60, 4, 402);
        let g = KnnGraph::build(&pts, 3, Metric::SquaredEuclidean, &cfg(3));
        for i in 0..pts.len() {
            let mut all: Vec<(f32, usize)> = (0..pts.len())
                .filter(|&j| j != i)
                .map(|j| (crate::squared_distance(pts.point(i), pts.point(j)), j))
                .collect();
            all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let expect: Vec<f32> = all[..3].iter().map(|e| e.0).collect();
            let got: Vec<f32> = g.neighbors(i).iter().map(|nb| nb.dist).collect();
            assert_eq!(got, expect, "vertex {i}");
        }
    }

    #[test]
    fn two_tight_clusters_have_two_components_and_high_symmetry() {
        // Two far-apart clusters: 1-NN graph splits into ≥ 2 components
        // and nearest-neighbor edges are largely mutual.
        let mut flat = Vec::new();
        for i in 0..40 {
            let base = if i < 20 { 0.0 } else { 100.0 };
            flat.extend([base + (i % 20) as f32 * 0.01, base]);
        }
        let pts = PointSet::from_flat(flat, 2);
        let g = KnnGraph::build(&pts, 2, Metric::SquaredEuclidean, &cfg(2));
        assert!(g.connected_components() >= 2);
        assert!(g.symmetry() > 0.5, "symmetry {}", g.symmetry());
    }

    #[test]
    fn fully_connected_single_component() {
        let pts = PointSet::uniform(30, 3, 403);
        let g = KnnGraph::build(&pts, 10, Metric::SquaredEuclidean, &cfg(10));
        assert_eq!(g.connected_components(), 1);
        assert_eq!(g.k(), 10);
    }

    #[test]
    #[should_panic]
    fn k_equal_to_n_rejected() {
        let pts = PointSet::uniform(5, 2, 404);
        KnnGraph::build(&pts, 5, Metric::SquaredEuclidean, &cfg(5));
    }
}
