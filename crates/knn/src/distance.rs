//! Euclidean distance computation — the phase that precedes k-selection.
//!
//! Two forms:
//!
//! * [`distance_matrix`] — a real, rayon-parallel computation used by the
//!   native library and to feed the simulated selection kernels with
//!   genuine distance data. Returns *squared* distances: the square root
//!   is monotone, so k-NN ranks are unchanged and the paper's brute-force
//!   baseline (Garcia et al. \[3\]) does the same.
//! * [`gpu_distance_metrics`] — an *analytic* metrics model of the
//!   distance kernel on the simulated device. Simulating Q·N·dim
//!   multiply-adds element-by-element would be pointless (it's a dense
//!   GEMM-like kernel with no divergence); instead we charge its issue
//!   slots and tiled memory traffic directly. Calibration: at the paper's
//!   N = 2^15, Q = 2^13, dim = 128 the model yields ≈ 0.13 s on the C2075
//!   versus the paper's measured 0.14 s ("Distance Calculation on GPU",
//!   Table I).

use rayon::prelude::*;
use simt::Metrics;

use crate::dataset::PointSet;

/// Squared Euclidean distance between two equal-length vectors.
#[inline]
pub fn squared_distance(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// The pipeline's NaN/Inf policy: a non-finite distance (overflow, or a
/// NaN leaking past input validation) is mapped to `+∞`, which every
/// queue's `d < qmax` guard rejects — so a poisoned pair sorts last and
/// can never displace a genuine neighbor from the top-k. Identity on
/// finite values, so fault-free results are bit-for-bit unaffected.
#[inline]
pub fn clamp_non_finite(d: f32) -> f32 {
    if d.is_finite() {
        d
    } else {
        f32::INFINITY
    }
}

/// Compute the full distance matrix: `rows[q][r]` is the squared distance
/// between query `q` and reference `r`. Parallel over queries.
pub fn distance_matrix(queries: &PointSet, refs: &PointSet) -> Vec<Vec<f32>> {
    assert_eq!(queries.dim(), refs.dim(), "dimension mismatch");
    (0..queries.len())
        .into_par_iter()
        .map(|q| {
            let qp = queries.point(q);
            (0..refs.len())
                .map(|r| clamp_non_finite(squared_distance(qp, refs.point(r))))
                .collect()
        })
        .collect()
}

/// Analytic execution metrics of the brute-force distance kernel on the
/// simulated GPU: one fused multiply-add pair per dimension per
/// (query, reference) pair, with shared-memory tiling (tile = 32) for the
/// operand traffic.
pub fn gpu_distance_metrics(q: usize, n: usize, dim: usize) -> Metrics {
    const TILE: u64 = 32;
    let pairs = q as u64 * n as u64;
    // sub + fma per dimension, warp-wide (32 lanes per issue slot).
    let lane_instr = pairs * dim as u64 * 2;
    let issued = lane_instr / 32;
    // Tiled operand traffic: each query row is re-read N/TILE times and
    // each reference row Q/TILE times.
    let bytes = (q as u64 * dim as u64 * 4) * (n as u64).div_ceil(TILE)
        + (n as u64 * dim as u64 * 4) * (q as u64).div_ceil(TILE)
        // result write-back
        + pairs * 4;
    Metrics {
        issued,
        lane_work: lane_instr,
        global_transactions: bytes / 128,
        global_bytes: bytes,
        ..Metrics::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt::TimingModel;

    #[test]
    fn squared_distance_basics() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(squared_distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn matrix_matches_pointwise() {
        let q = PointSet::uniform(5, 16, 1);
        let r = PointSet::uniform(9, 16, 2);
        let m = distance_matrix(&q, &r);
        assert_eq!(m.len(), 5);
        assert_eq!(m[0].len(), 9);
        for (qi, row) in m.iter().enumerate() {
            for (ri, &got) in row.iter().enumerate() {
                let d = squared_distance(q.point(qi), r.point(ri));
                assert_eq!(got, d);
            }
        }
    }

    #[test]
    fn self_distance_is_zero_and_symmetricish() {
        let p = PointSet::uniform(4, 32, 3);
        let m = distance_matrix(&p, &p);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 0.0);
            for (j, &v) in row.iter().enumerate() {
                assert!((v - m[j][i]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn analytic_model_matches_paper_distance_time() {
        // Table I: distance calculation for N = 2^15, Q = 2^13, dim = 128
        // takes 0.14 s on the C2075.
        let m = gpu_distance_metrics(1 << 13, 1 << 15, 128);
        let t = TimingModel::tesla_c2075().kernel_time(&m);
        assert!((0.10..0.20).contains(&t), "t = {t}");
        // And N = 2^16 roughly doubles it (paper: 0.28 s).
        let m2 = gpu_distance_metrics(1 << 13, 1 << 16, 128);
        let t2 = TimingModel::tesla_c2075().kernel_time(&m2);
        assert!((1.8..2.2).contains(&(t2 / t)), "ratio {}", t2 / t);
    }

    #[test]
    fn non_finite_distances_sort_last() {
        // A reference with an overflowing coordinate produces a
        // non-finite squared distance; the policy clamps it to +∞ so it
        // can never enter a top-k.
        assert_eq!(clamp_non_finite(f32::NAN), f32::INFINITY);
        assert_eq!(clamp_non_finite(f32::NEG_INFINITY), f32::INFINITY);
        assert_eq!(clamp_non_finite(1.25), 1.25);
        let q = PointSet::from_flat(vec![0.0, 0.0], 2);
        let r = PointSet::from_flat(vec![1.0, 0.0, f32::MAX, f32::MAX, 2.0, 0.0], 2);
        let m = distance_matrix(&q, &r);
        assert_eq!(m[0][0], 1.0);
        assert_eq!(m[0][1], f32::INFINITY, "overflowed pair clamps to +inf");
        assert_eq!(m[0][2], 4.0);
        let cfg = kselect::SelectConfig::plain(kselect::QueueKind::Insertion, 2);
        let top = kselect::select_k(&m[0], &cfg);
        assert_eq!(
            top.iter().map(|n| n.id).collect::<Vec<_>>(),
            vec![0, 2],
            "the poisoned reference never makes the top-k"
        );
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_rejected() {
        let a = PointSet::uniform(2, 4, 1);
        let b = PointSet::uniform(2, 8, 1);
        distance_matrix(&a, &b);
    }
}
