//! Euclidean distance computation — the phase that precedes k-selection.
//!
//! Three forms:
//!
//! * [`block`] — the blocked, flat, GEMM-style host kernel
//!   ([`block::squared_distances`]) every real pipeline uses: norms
//!   computed once, tiled inner products over cache-sized blocks, flat
//!   row-major output. Returns *squared* distances: the square root is
//!   monotone, so k-NN ranks are unchanged and the paper's brute-force
//!   baseline (Garcia et al. \[3\]) does the same.
//! * [`simd`] — runtime-dispatched SIMD microkernels for the row
//!   primitive the blocked kernel is built from: an AVX2 vector kernel
//!   register-blocked over four reference rows (picked when the host
//!   supports `avx2`+`fma`), with the portable 8-accumulator scalar
//!   kernel as fallback. Both reproduce [`dot`]'s accumulation order
//!   bit for bit — see that module for why an actual fused
//!   multiply-add is deliberately *not* issued.
//! * [`distance_matrix`] — the legacy heap-of-rows interface, now a thin
//!   wrapper over the blocked kernel kept for downstream compatibility.
//! * [`gpu_distance_metrics`] — an *analytic* metrics model of the
//!   distance kernel on the simulated device. Simulating Q·N·dim
//!   multiply-adds element-by-element would be pointless (it's a dense
//!   GEMM-like kernel with no divergence); instead we charge its issue
//!   slots and tiled memory traffic directly. Calibration: at the paper's
//!   N = 2^15, Q = 2^13, dim = 128 the model yields ≈ 0.13 s on the C2075
//!   versus the paper's measured 0.14 s ("Distance Calculation on GPU",
//!   Table I).
//!
//! # Numerics
//!
//! [`squared_distance`] uses the FAISS decomposition
//! ‖q−r‖² = ‖q‖² + ‖r‖² − 2·q·r (Johnson et al., *Billion-scale
//! similarity search with GPUs*), with each reduction accumulated over
//! [`LANES`] independent partial sums folded by a fixed-shape tree. That
//! accumulation order is part of the function's contract: the blocked
//! kernel hoists the norms out of the pair loop and reproduces the
//! per-pair arithmetic *bit for bit* (a property test enforces this), so
//! every path — scalar, blocked, tile-streamed — returns identical
//! floats. Cancellation can drive the decomposition a few ulp below
//! zero for near-identical points; the result is clamped to `max(0, ·)`
//! (NaN from non-finite inputs is preserved for [`clamp_non_finite`]).

pub mod block;
pub mod simd;

use simt::Metrics;

use crate::dataset::PointSet;

/// Number of independent accumulators in the reduction kernels below.
/// Eight f32 lanes give the autovectorizer a full 256-bit vector (or two
/// 128-bit chains) with no loop-carried dependence on the critical path.
pub const LANES: usize = 8;

/// Inner product of two equal-length vectors, accumulated over
/// [`LANES`] partial sums folded pairwise. This exact operation order is
/// shared by every distance path in the crate.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let chunks = a.chunks_exact(LANES);
    let tail_a = chunks.remainder();
    let tail_b = &b[a.len() - tail_a.len()..];
    for (ca, cb) in chunks.zip(b.chunks_exact(LANES)) {
        for l in 0..LANES {
            acc[l] += ca[l] * cb[l];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in tail_a.iter().zip(tail_b) {
        tail += x * y;
    }
    // Fixed-shape pairwise tree so the result is deterministic.
    let a01 = acc[0] + acc[1];
    let a23 = acc[2] + acc[3];
    let a45 = acc[4] + acc[5];
    let a67 = acc[6] + acc[7];
    ((a01 + a23) + (a45 + a67)) + tail
}

/// Squared L2 norm ‖a‖² with the same accumulation order as [`dot`].
#[inline]
pub fn squared_norm(a: &[f32]) -> f32 {
    dot(a, a)
}

/// Assemble ‖q−r‖² from precomputed parts: ‖q‖² + ‖r‖² − 2·q·r, clamped
/// at zero (cancellation on near-identical points can land a few ulp
/// negative, which would break non-negativity assumptions downstream —
/// e.g. the radix-select baselines' float bit tricks). NaN (from
/// non-finite inputs) passes through for [`clamp_non_finite`] to map.
#[inline]
pub fn squared_distance_from_parts(norm_q: f32, norm_r: f32, dot_qr: f32) -> f32 {
    let raw = norm_q + norm_r - 2.0 * dot_qr;
    if raw < 0.0 {
        0.0
    } else {
        raw
    }
}

/// Squared Euclidean distance between two equal-length vectors.
///
/// Computed as ‖a‖² + ‖b‖² − 2·a·b (see the module docs for why, and for
/// the bit-exactness contract with the blocked kernel).
#[inline]
pub fn squared_distance(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    squared_distance_from_parts(squared_norm(a), squared_norm(b), dot(a, b))
}

/// The pipeline's NaN/Inf policy: a non-finite distance (overflow, or a
/// NaN leaking past input validation) is mapped to `+∞`, which every
/// queue's `d < qmax` guard rejects — so a poisoned pair sorts last and
/// can never displace a genuine neighbor from the top-k. Identity on
/// finite values, so fault-free results are bit-for-bit unaffected.
#[inline]
pub fn clamp_non_finite(d: f32) -> f32 {
    if d.is_finite() {
        d
    } else {
        f32::INFINITY
    }
}

/// Compute the full distance matrix as per-query rows: `rows[q][r]` is
/// the squared distance between query `q` and reference `r`.
///
/// Legacy interface: the heap-of-rows return type costs one allocation
/// per query on top of the flat kernel output. New code should call
/// [`block::squared_distances`] and keep the flat [`block::FlatMatrix`]
/// (`cargo xtask lint`'s `no-row-alloc` rule flags new `Vec<Vec<f32>>`
/// distance buffers in this crate's hot paths).
pub fn distance_matrix(queries: &PointSet, refs: &PointSet) -> Vec<Vec<f32>> {
    block::squared_distances(queries, refs).to_rows()
}

/// Analytic execution metrics of the brute-force distance kernel on the
/// simulated GPU: one fused multiply-add pair per dimension per
/// (query, reference) pair, with shared-memory tiling (tile = 32) for the
/// operand traffic.
pub fn gpu_distance_metrics(q: usize, n: usize, dim: usize) -> Metrics {
    const TILE: u64 = 32;
    let pairs = q as u64 * n as u64;
    // sub + fma per dimension, warp-wide (32 lanes per issue slot).
    let lane_instr = pairs * dim as u64 * 2;
    let issued = lane_instr / 32;
    // Tiled operand traffic: each query row is re-read N/TILE times and
    // each reference row Q/TILE times.
    let bytes = (q as u64 * dim as u64 * 4) * (n as u64).div_ceil(TILE)
        + (n as u64 * dim as u64 * 4) * (q as u64).div_ceil(TILE)
        // result write-back
        + pairs * 4;
    Metrics {
        issued,
        lane_work: lane_instr,
        global_transactions: bytes / 128,
        global_bytes: bytes,
        ..Metrics::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt::TimingModel;

    #[test]
    fn squared_distance_basics() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(squared_distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn matrix_matches_pointwise() {
        let q = PointSet::uniform(5, 16, 1);
        let r = PointSet::uniform(9, 16, 2);
        let m = distance_matrix(&q, &r);
        assert_eq!(m.len(), 5);
        assert_eq!(m[0].len(), 9);
        for (qi, row) in m.iter().enumerate() {
            for (ri, &got) in row.iter().enumerate() {
                let d = squared_distance(q.point(qi), r.point(ri));
                assert_eq!(got, d);
            }
        }
    }

    #[test]
    fn self_distance_is_zero_and_symmetricish() {
        let p = PointSet::uniform(4, 32, 3);
        let m = distance_matrix(&p, &p);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 0.0);
            for (j, &v) in row.iter().enumerate() {
                assert!((v - m[j][i]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn analytic_model_matches_paper_distance_time() {
        // Table I: distance calculation for N = 2^15, Q = 2^13, dim = 128
        // takes 0.14 s on the C2075.
        let m = gpu_distance_metrics(1 << 13, 1 << 15, 128);
        let t = TimingModel::tesla_c2075().kernel_time(&m);
        assert!((0.10..0.20).contains(&t), "t = {t}");
        // And N = 2^16 roughly doubles it (paper: 0.28 s).
        let m2 = gpu_distance_metrics(1 << 13, 1 << 16, 128);
        let t2 = TimingModel::tesla_c2075().kernel_time(&m2);
        assert!((1.8..2.2).contains(&(t2 / t)), "ratio {}", t2 / t);
    }

    #[test]
    fn non_finite_distances_sort_last() {
        // A reference with an overflowing coordinate produces a
        // non-finite squared distance; the policy clamps it to +∞ so it
        // can never enter a top-k.
        assert_eq!(clamp_non_finite(f32::NAN), f32::INFINITY);
        assert_eq!(clamp_non_finite(f32::NEG_INFINITY), f32::INFINITY);
        assert_eq!(clamp_non_finite(1.25), 1.25);
        let q = PointSet::from_flat(vec![0.0, 0.0], 2);
        let r = PointSet::from_flat(vec![1.0, 0.0, f32::MAX, f32::MAX, 2.0, 0.0], 2);
        let m = distance_matrix(&q, &r);
        assert_eq!(m[0][0], 1.0);
        assert_eq!(m[0][1], f32::INFINITY, "overflowed pair clamps to +inf");
        assert_eq!(m[0][2], 4.0);
        let cfg = kselect::SelectConfig::plain(kselect::QueueKind::Insertion, 2);
        let top = kselect::select_k(&m[0], &cfg);
        assert_eq!(
            top.iter().map(|n| n.id).collect::<Vec<_>>(),
            vec![0, 2],
            "the poisoned reference never makes the top-k"
        );
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_rejected() {
        let a = PointSet::uniform(2, 4, 1);
        let b = PointSet::uniform(2, 8, 1);
        distance_matrix(&a, &b);
    }
}
