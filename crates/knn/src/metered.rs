//! Registry-backed instrumentation of the native pipeline (`metrics`
//! cargo feature).
//!
//! This is the bridge between the pipeline's [`PhaseObserver`] hooks
//! and `trace::metrics::MetricsRegistry`: every phase gets a wall-clock
//! latency histogram, the streamed path reports its scratch high-water
//! mark and [`kselect::chunked::StreamMerger`] push/reject totals, and
//! the blocked distance kernel gets a timed wrapper. Only this module
//! reads the host clock on knn's behalf — the default-feature pipeline
//! monomorphizes the hooks away entirely.
//!
//! Metric names (`trace::openmetrics` sanitizes the dots for
//! OpenMetrics output):
//!
//! | name | kind | meaning |
//! |------|------|---------|
//! | `knn.query.latency_ns` | histogram | one query end to end (row fill + select) |
//! | `knn.row.fill_ns` / `knn.row.select_ns` | histogram | phases of the above |
//! | `knn.tile.fill_ns` / `knn.tile.select_ns` | histogram | per query × tile phases of the streamed path |
//! | `knn.tile.merge_ns` | histogram | host-side stream merge per tile |
//! | `knn.distance.blocked_ns` | histogram | one full blocked-kernel invocation |
//! | `knn.scratch.peak_bytes` | peak | distance-scratch high-water mark |
//! | `knn.stream.merge_push` / `knn.stream.merge_reject` | counter | stream-merge candidate totals |
//! | `knn.queries` | counter | queries answered by metered searches |

use std::time::Instant;

use kselect::types::Neighbor;
use kselect::SelectConfig;
use trace::metrics::MetricsRegistry;

use crate::dataset::PointSet;
use crate::distance::block::{self, FlatMatrix};
use crate::metric::Metric;
use crate::pipeline::{
    knn_search_streamed_observed, knn_search_with_observed, Phase, PhaseObserver,
};

/// Histogram name a [`Phase`] records under.
pub fn phase_metric(phase: Phase) -> &'static str {
    match phase {
        Phase::Query => "knn.query.latency_ns",
        Phase::RowFill => "knn.row.fill_ns",
        Phase::RowSelect => "knn.row.select_ns",
        Phase::TileFill => "knn.tile.fill_ns",
        Phase::TileSelect => "knn.tile.select_ns",
        Phase::TileMerge => "knn.tile.merge_ns",
    }
}

/// Peak distance-scratch bytes, both search paths.
pub const SCRATCH_PEAK_BYTES: &str = "knn.scratch.peak_bytes";
/// Candidates pushed into the per-query stream mergers.
pub const MERGE_PUSH: &str = "knn.stream.merge_push";
/// Candidates the running top-k evicted.
pub const MERGE_REJECT: &str = "knn.stream.merge_reject";
/// Queries answered by metered searches.
pub const QUERIES: &str = "knn.queries";
/// One blocked distance-kernel invocation.
pub const DISTANCE_BLOCKED_NS: &str = "knn.distance.blocked_ns";

/// A [`PhaseObserver`] that records every hook into a
/// [`MetricsRegistry`].
pub struct RegistryObserver<'a> {
    registry: &'a MetricsRegistry,
}

impl<'a> RegistryObserver<'a> {
    pub fn new(registry: &'a MetricsRegistry) -> Self {
        RegistryObserver { registry }
    }
}

impl PhaseObserver for RegistryObserver<'_> {
    fn timed<R>(&self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let out = f();
        self.registry
            .observe_ns(phase_metric(phase), t0.elapsed().as_nanos() as u64);
        out
    }

    fn scratch_bytes(&self, bytes: u64) {
        self.registry.record_peak(SCRATCH_PEAK_BYTES, bytes);
    }

    fn merger_stats(&self, pushed: u64, rejected: u64) {
        self.registry.inc(MERGE_PUSH, pushed);
        self.registry.inc(MERGE_REJECT, rejected);
    }
}

/// [`crate::knn_search_with`] recording per-query latency histograms,
/// phase breakdowns and scratch peaks into `registry`. Same results as
/// the unmetered path.
pub fn knn_search_with_metered(
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
    metric: Metric,
    registry: &MetricsRegistry,
) -> Vec<Vec<Neighbor>> {
    registry.inc(QUERIES, queries.len() as u64);
    knn_search_with_observed(queries, refs, cfg, metric, &RegistryObserver::new(registry))
}

/// [`crate::knn_search`] (squared Euclidean) metered.
pub fn knn_search_metered(
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
    registry: &MetricsRegistry,
) -> Vec<Vec<Neighbor>> {
    knn_search_with_metered(queries, refs, cfg, Metric::SquaredEuclidean, registry)
}

/// [`crate::knn_search_streamed`] recording per-tile fill/select/merge
/// histograms, the scratch high-water mark and stream-merge totals into
/// `registry`. Same results as the unmetered path.
pub fn knn_search_streamed_metered(
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
    tile: usize,
    registry: &MetricsRegistry,
) -> Vec<Vec<Neighbor>> {
    registry.inc(QUERIES, queries.len() as u64);
    knn_search_streamed_observed(queries, refs, cfg, tile, &RegistryObserver::new(registry))
}

/// [`block::squared_distances`] with the kernel invocation timed into
/// [`DISTANCE_BLOCKED_NS`] and the materialized matrix counted against
/// the scratch peak.
pub fn squared_distances_metered(
    queries: &PointSet,
    refs: &PointSet,
    registry: &MetricsRegistry,
) -> FlatMatrix {
    let t0 = Instant::now();
    let m = block::squared_distances(queries, refs);
    registry.observe_ns(DISTANCE_BLOCKED_NS, t0.elapsed().as_nanos() as u64);
    registry.record_peak(SCRATCH_PEAK_BYTES, m.bytes());
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{knn_search_streamed, knn_search_with};
    use kselect::QueueKind;

    #[test]
    fn metered_searches_match_unmetered_and_populate_the_registry() {
        let queries = PointSet::uniform(24, 12, 131);
        let refs = PointSet::uniform(400, 12, 132);
        let cfg = SelectConfig::plain(QueueKind::Merge, 16);
        let reg = MetricsRegistry::new();

        let plain = knn_search_with(&queries, &refs, &cfg, Metric::SquaredEuclidean);
        let metered = knn_search_metered(&queries, &refs, &cfg, &reg);
        assert_eq!(metered, plain, "metering must not change results");

        let streamed_plain = knn_search_streamed(&queries, &refs, &cfg, 100);
        let streamed = knn_search_streamed_metered(&queries, &refs, &cfg, 100, &reg);
        assert_eq!(streamed, streamed_plain);

        let snap = reg.snapshot();
        let hist = |name: &str| {
            snap.histograms
                .iter()
                .find(|h| h.name == name)
                .unwrap_or_else(|| panic!("missing histogram {name}"))
        };
        assert_eq!(hist("knn.query.latency_ns").count, 24);
        assert_eq!(hist("knn.row.fill_ns").count, 24);
        assert_eq!(hist("knn.row.select_ns").count, 24);
        // 400 refs / tile 100 = 4 tiles × 24 queries
        assert_eq!(hist("knn.tile.fill_ns").count, 96);
        assert_eq!(hist("knn.tile.select_ns").count, 96);
        assert_eq!(hist("knn.tile.merge_ns").count, 4);
        assert_eq!(reg.counter(QUERIES), 48);
        // every tile yields min(k, tile) survivors: 4 tiles × 16 × 24
        assert_eq!(reg.counter(MERGE_PUSH), 4 * 16 * 24);
        assert_eq!(
            reg.counter(MERGE_PUSH) - reg.counter(MERGE_REJECT),
            (24 * 16) as u64,
            "kept candidates must equal Q × k"
        );
        // streamed scratch: Q × tile × 4 = 24 × 100 × 4; the
        // materialized row path recorded N × 4 per worker, smaller here
        assert_eq!(reg.peak(SCRATCH_PEAK_BYTES), 24 * 100 * 4);
    }

    #[test]
    fn metered_distance_kernel_matches_and_records() {
        let queries = PointSet::uniform(8, 16, 133);
        let refs = PointSet::uniform(64, 16, 134);
        let reg = MetricsRegistry::new();
        let plain = block::squared_distances(&queries, &refs);
        let metered = squared_distances_metered(&queries, &refs, &reg);
        assert_eq!(metered, plain);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms[0].name, DISTANCE_BLOCKED_NS);
        assert_eq!(snap.histograms[0].count, 1);
        assert_eq!(reg.peak(SCRATCH_PEAK_BYTES), 8 * 64 * 4);
    }
}
