//! Registry-backed instrumentation of the native pipeline (`metrics`
//! cargo feature).
//!
//! This is the bridge between the pipeline's [`PhaseObserver`] hooks
//! and `trace::metrics::MetricsRegistry`: every phase gets a wall-clock
//! latency histogram, the streamed path reports its scratch high-water
//! mark and [`kselect::chunked::StreamMerger`] push/reject totals, and
//! the blocked distance kernel gets a timed wrapper. Only this module
//! reads the host clock on knn's behalf — the default-feature pipeline
//! monomorphizes the hooks away entirely.
//!
//! Metric names (`trace::openmetrics` sanitizes the dots for
//! OpenMetrics output):
//!
//! | name | kind | meaning |
//! |------|------|---------|
//! | `knn.query.latency_ns` | histogram | one query end to end (row fill + select) |
//! | `knn.row.fill_ns` / `knn.row.select_ns` | histogram | phases of the above |
//! | `knn.tile.fill_ns` / `knn.tile.select_ns` | histogram | per query × tile phases of the streamed path |
//! | `knn.tile.merge_ns` | histogram | host-side stream merge per tile |
//! | `knn.distance.blocked_ns` | histogram | one full blocked-kernel invocation |
//! | `knn.scratch.peak_bytes` | peak | distance-scratch high-water mark |
//! | `knn.stream.merge_push` / `knn.stream.merge_reject` | counter | stream-merge candidate totals |
//! | `knn.queries` | counter | queries answered by metered searches |
//!
//! The journaled entry points ([`knn_search_with_journaled`],
//! [`knn_search_streamed_journaled`]) additionally emit one
//! [`trace::QueryRecord`] per query via a [`JournalObserver`] — the
//! same clock reads feed both the aggregate histograms and the
//! per-query records, and a disabled journal falls straight back to the
//! metered (or plain) path.

use std::sync::Mutex;
use std::time::Instant;

use kselect::types::Neighbor;
use kselect::SelectConfig;
use trace::journal::{phases, Journal, QueryRecord};
use trace::metrics::MetricsRegistry;
use trace::timeline::{SpanKind, TimelineHooks, TimelineRecorder, TimelineReport};

use crate::dataset::PointSet;
use crate::distance::block::{self, FlatMatrix};
use crate::metric::Metric;
use crate::pipeline::{
    knn_search_streamed_observed, knn_search_streamed_parallel_observed,
    knn_search_streamed_parallel_timelined, knn_search_with_observed, queue_tag, resolve_threads,
    NeverCancel, Phase, PhaseObserver,
};

/// Histogram name a [`Phase`] records under.
pub fn phase_metric(phase: Phase) -> &'static str {
    match phase {
        Phase::Query => "knn.query.latency_ns",
        Phase::RowFill => "knn.row.fill_ns",
        Phase::RowSelect => "knn.row.select_ns",
        Phase::TileFill => "knn.tile.fill_ns",
        Phase::TileSelect => "knn.tile.select_ns",
        Phase::TileMerge => "knn.tile.merge_ns",
    }
}

/// Peak distance-scratch bytes, both search paths.
pub const SCRATCH_PEAK_BYTES: &str = "knn.scratch.peak_bytes";
/// Candidates pushed into the per-query stream mergers.
pub const MERGE_PUSH: &str = "knn.stream.merge_push";
/// Candidates the running top-k evicted.
pub const MERGE_REJECT: &str = "knn.stream.merge_reject";
/// Queries answered by metered searches.
pub const QUERIES: &str = "knn.queries";
/// One blocked distance-kernel invocation.
pub const DISTANCE_BLOCKED_NS: &str = "knn.distance.blocked_ns";

/// A [`PhaseObserver`] that records every hook into a
/// [`MetricsRegistry`].
pub struct RegistryObserver<'a> {
    registry: &'a MetricsRegistry,
}

impl<'a> RegistryObserver<'a> {
    pub fn new(registry: &'a MetricsRegistry) -> Self {
        RegistryObserver { registry }
    }
}

impl PhaseObserver for RegistryObserver<'_> {
    fn timed<R>(&self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let out = f();
        self.registry
            .observe_ns(phase_metric(phase), t0.elapsed().as_nanos() as u64);
        out
    }

    fn scratch_bytes(&self, bytes: u64) {
        self.registry.record_peak(SCRATCH_PEAK_BYTES, bytes);
    }

    fn merger_stats(&self, pushed: u64, rejected: u64) {
        self.registry.inc(MERGE_PUSH, pushed);
        self.registry.inc(MERGE_REJECT, rejected);
    }
}

/// [`crate::knn_search_with`] recording per-query latency histograms,
/// phase breakdowns and scratch peaks into `registry`. Same results as
/// the unmetered path.
pub fn knn_search_with_metered(
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
    metric: Metric,
    registry: &MetricsRegistry,
) -> Vec<Vec<Neighbor>> {
    registry.inc(QUERIES, queries.len() as u64);
    knn_search_with_observed(queries, refs, cfg, metric, &RegistryObserver::new(registry))
}

/// [`crate::knn_search`] (squared Euclidean) metered.
pub fn knn_search_metered(
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
    registry: &MetricsRegistry,
) -> Vec<Vec<Neighbor>> {
    knn_search_with_metered(queries, refs, cfg, Metric::SquaredEuclidean, registry)
}

/// [`crate::knn_search_streamed`] recording per-tile fill/select/merge
/// histograms, the scratch high-water mark and stream-merge totals into
/// `registry`. Same results as the unmetered path.
pub fn knn_search_streamed_metered(
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
    tile: usize,
    registry: &MetricsRegistry,
) -> Vec<Vec<Neighbor>> {
    registry.inc(QUERIES, queries.len() as u64);
    knn_search_streamed_observed(queries, refs, cfg, tile, &RegistryObserver::new(registry))
}

/// Journal phase-name key of a pipeline [`Phase`] (`None` for the
/// aggregate tile merge, which has no single owning query).
fn phase_key(phase: Phase) -> Option<&'static str> {
    match phase {
        Phase::Query => Some(phases::QUERY),
        Phase::RowFill => Some(phases::ROW_FILL),
        Phase::RowSelect => Some(phases::ROW_SELECT),
        Phase::TileFill => Some(phases::TILE_FILL),
        Phase::TileSelect => Some(phases::TILE_SELECT),
        Phase::TileMerge => None,
    }
}

/// One query's accumulating measurements (tile phases sum across
/// tiles).
#[derive(Clone, Copy, Default)]
struct Draft {
    query_ns: u64,
    row_fill_ns: u64,
    row_select_ns: u64,
    tile_fill_ns: u64,
    tile_select_ns: u64,
    merge_push: u64,
    merge_reject: u64,
    worker: u32,
}

impl Draft {
    fn add(&mut self, phase: Phase, ns: u64) {
        match phase {
            Phase::Query => self.query_ns += ns,
            Phase::RowFill => self.row_fill_ns += ns,
            Phase::RowSelect => self.row_select_ns += ns,
            Phase::TileFill => self.tile_fill_ns += ns,
            Phase::TileSelect => self.tile_select_ns += ns,
            Phase::TileMerge => {}
        }
    }
}

/// A [`PhaseObserver`] that accumulates per-query drafts for the
/// journal, optionally forwarding every hook to a [`MetricsRegistry`]
/// as well (so one instrumented run feeds both the aggregate histograms
/// and the per-query records from a single set of clock reads).
pub struct JournalObserver<'a> {
    registry: Option<&'a MetricsRegistry>,
    drafts: Vec<Mutex<Draft>>,
    scratch: Mutex<u64>,
}

impl<'a> JournalObserver<'a> {
    pub fn new(n_queries: usize, registry: Option<&'a MetricsRegistry>) -> Self {
        JournalObserver {
            registry,
            drafts: (0..n_queries)
                .map(|_| Mutex::new(Draft::default()))
                .collect(),
            scratch: Mutex::new(0),
        }
    }

    fn draft(&self, qi: usize) -> std::sync::MutexGuard<'_, Draft> {
        self.drafts[qi].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Emit one [`QueryRecord`] per query into `journal`. `tile` is 0 on
    /// the materialized row path; `blocks` counts reference tiles
    /// crossed per query.
    fn flush<J: Journal>(
        &self,
        journal: &J,
        cfg: &SelectConfig,
        tag: &str,
        tile: u64,
        blocks: u32,
    ) {
        let scratch_bytes = *self.scratch.lock().unwrap_or_else(|e| e.into_inner());
        for (qi, slot) in self.drafts.iter().enumerate() {
            let d = *slot.lock().unwrap_or_else(|e| e.into_inner());
            let mut phase_ns = Vec::new();
            for (key, ns) in [
                (phases::QUERY, d.query_ns),
                (phases::ROW_FILL, d.row_fill_ns),
                (phases::ROW_SELECT, d.row_select_ns),
                (phases::TILE_FILL, d.tile_fill_ns),
                (phases::TILE_SELECT, d.tile_select_ns),
            ] {
                if ns > 0 {
                    phase_ns.push((key.to_string(), ns));
                }
            }
            // Row path: the Query envelope is the end-to-end latency.
            // Streamed path: no envelope exists, so the per-query total
            // is the sum of its tile phases.
            let total_ns = if d.query_ns > 0 {
                d.query_ns
            } else {
                d.tile_fill_ns + d.tile_select_ns
            };
            journal.record(QueryRecord {
                query: qi as u64,
                queue: queue_tag(cfg),
                tag: tag.to_string(),
                tile,
                total_ns,
                phase_ns,
                scratch_bytes,
                merge_push: d.merge_push,
                merge_reject: d.merge_reject,
                blocks,
                status: "ok".to_string(),
                attempts: 1,
                worker: d.worker,
                ..QueryRecord::default()
            });
        }
    }
}

impl PhaseObserver for JournalObserver<'_> {
    fn timed<R>(&self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let out = f();
        if let Some(reg) = self.registry {
            reg.observe_ns(phase_metric(phase), t0.elapsed().as_nanos() as u64);
        }
        out
    }

    fn timed_q<R>(&self, phase: Phase, qi: usize, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let out = f();
        let ns = t0.elapsed().as_nanos() as u64;
        if let Some(reg) = self.registry {
            reg.observe_ns(phase_metric(phase), ns);
        }
        if phase_key(phase).is_some() {
            self.draft(qi).add(phase, ns);
        }
        out
    }

    fn scratch_bytes(&self, bytes: u64) {
        let mut peak = self.scratch.lock().unwrap_or_else(|e| e.into_inner());
        *peak = (*peak).max(bytes);
        if let Some(reg) = self.registry {
            reg.record_peak(SCRATCH_PEAK_BYTES, bytes);
        }
    }

    fn merger_stats(&self, pushed: u64, rejected: u64) {
        if let Some(reg) = self.registry {
            reg.inc(MERGE_PUSH, pushed);
            reg.inc(MERGE_REJECT, rejected);
        }
    }

    fn query_merger_stats(&self, qi: usize, pushed: u64, rejected: u64) {
        let mut d = self.draft(qi);
        d.merge_push = pushed;
        d.merge_reject = rejected;
    }

    fn query_worker(&self, qi: usize, worker: usize) {
        self.draft(qi).worker = worker as u32;
    }
}

/// [`crate::knn_search_with`] that journals one [`QueryRecord`] per
/// query and (when `registry` is given) feeds the aggregate histograms
/// too. With a disabled journal ([`trace::NullJournal`]) this is
/// exactly the metered (or, without a registry, the plain) search — no
/// drafts are allocated and no extra clock reads happen.
pub fn knn_search_with_journaled<J: Journal>(
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
    metric: Metric,
    journal: &J,
    registry: Option<&MetricsRegistry>,
    tag: &str,
) -> Vec<Vec<Neighbor>> {
    if !journal.enabled() {
        return match registry {
            Some(reg) => knn_search_with_metered(queries, refs, cfg, metric, reg),
            None => {
                knn_search_with_observed(queries, refs, cfg, metric, &crate::pipeline::NullObserver)
            }
        };
    }
    if let Some(reg) = registry {
        reg.inc(QUERIES, queries.len() as u64);
    }
    let obs = JournalObserver::new(queries.len(), registry);
    let out = knn_search_with_observed(queries, refs, cfg, metric, &obs);
    obs.flush(journal, cfg, tag, 0, 1);
    out
}

/// [`crate::knn_search_streamed`] journaling one [`QueryRecord`] per
/// query (tile phases summed across tiles, per-query stream-merge
/// push/reject counts, tiles crossed as `blocks`). See
/// [`knn_search_with_journaled`] for the disabled-journal contract.
pub fn knn_search_streamed_journaled<J: Journal>(
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
    tile: usize,
    journal: &J,
    registry: Option<&MetricsRegistry>,
    tag: &str,
) -> Vec<Vec<Neighbor>> {
    if !journal.enabled() {
        return match registry {
            Some(reg) => knn_search_streamed_metered(queries, refs, cfg, tile, reg),
            None => knn_search_streamed_observed(
                queries,
                refs,
                cfg,
                tile,
                &crate::pipeline::NullObserver,
            ),
        };
    }
    if let Some(reg) = registry {
        reg.inc(QUERIES, queries.len() as u64);
    }
    let obs = JournalObserver::new(queries.len(), registry);
    let out = knn_search_streamed_observed(queries, refs, cfg, tile, &obs);
    let eff_tile = tile.min(refs.len().max(1));
    let blocks = refs.len().div_ceil(eff_tile.max(1)) as u32;
    obs.flush(journal, cfg, tag, eff_tile as u64, blocks);
    out
}

/// [`crate::knn_search_streamed_parallel`] metered. Both observers here
/// are already thread-safe (lock-striped drafts, atomic registry), so
/// the per-worker measurements land in the same histograms and
/// counters; totals are exact, only the hook interleaving differs from
/// the sequential path. Note the merge histogram granularity: the
/// parallel pipeline merges per query × tile (inside the owning
/// worker), where the sequential path merges all queries per tile in
/// one observation.
pub fn knn_search_streamed_parallel_metered(
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
    tile: usize,
    threads: usize,
    registry: &MetricsRegistry,
) -> Vec<Vec<Neighbor>> {
    registry.inc(QUERIES, queries.len() as u64);
    knn_search_streamed_parallel_observed(
        queries,
        refs,
        cfg,
        tile,
        threads,
        &RegistryObserver::new(registry),
    )
}

/// [`crate::knn_search_streamed_parallel`] journaling one
/// [`QueryRecord`] per query. The [`JournalObserver`]'s per-query draft
/// shards accumulate from whichever worker owns each query's block and
/// are merged into records once, after the pool joins — so per-query
/// phase sums and merge counters are exact at any thread count. See
/// [`knn_search_with_journaled`] for the disabled-journal contract.
#[allow(clippy::too_many_arguments)]
pub fn knn_search_streamed_parallel_journaled<J: Journal>(
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
    tile: usize,
    threads: usize,
    journal: &J,
    registry: Option<&MetricsRegistry>,
    tag: &str,
) -> Vec<Vec<Neighbor>> {
    if !journal.enabled() {
        return match registry {
            Some(reg) => {
                knn_search_streamed_parallel_metered(queries, refs, cfg, tile, threads, reg)
            }
            None => knn_search_streamed_parallel_observed(
                queries,
                refs,
                cfg,
                tile,
                threads,
                &crate::pipeline::NullObserver,
            ),
        };
    }
    if let Some(reg) = registry {
        reg.inc(QUERIES, queries.len() as u64);
    }
    let obs = JournalObserver::new(queries.len(), registry);
    let out = knn_search_streamed_parallel_observed(queries, refs, cfg, tile, threads, &obs);
    let eff_tile = tile.min(refs.len().max(1));
    let blocks = refs.len().div_ceil(eff_tile.max(1)) as u32;
    obs.flush(journal, cfg, tag, eff_tile as u64, blocks);
    out
}

/// Bridges the pipeline's clock-free [`TimelineHooks`] to a
/// [`trace::TimelineRecorder`]: this module owns the host clock on
/// knn's behalf, so hook arrivals are stamped here as nanoseconds
/// since the observer's construction epoch. One observer covers one
/// instrumented run (or several back-to-back runs sharing an epoch,
/// as `knn-cli stats` does across its sweep).
pub struct TimelineObserver<'a> {
    rec: &'a TimelineRecorder,
    epoch: Instant,
}

impl<'a> TimelineObserver<'a> {
    pub fn new(rec: &'a TimelineRecorder) -> Self {
        TimelineObserver {
            rec,
            epoch: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since this observer's construction — the
    /// zero point of every track it stamps.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The recorder this observer stamps into.
    pub fn recorder(&self) -> &'a TimelineRecorder {
        self.rec
    }

    /// Fold the recorder's shards into a report whose wall-clock span
    /// ends "now" on this observer's epoch.
    pub fn report(&self) -> TimelineReport {
        self.rec.report(self.now_ns())
    }

    /// Run `f` as one `Service` span on `worker`'s track. Sequential
    /// paths have no block claims to record, so this is how they get an
    /// honest busy lane; `detail` disambiguates repeated services (the
    /// CLI uses the sweep/run index).
    pub fn service<R>(&self, worker: usize, detail: u64, f: impl FnOnce() -> R) -> R {
        let t0 = self.now_ns();
        let out = f();
        self.rec
            .span(worker, SpanKind::Service, detail, t0, self.now_ns());
        out
    }
}

impl TimelineHooks for TimelineObserver<'_> {
    fn worker_started(&self, worker: usize) {
        self.rec.worker_started(worker, self.now_ns());
    }
    fn scratch_reserved(&self, worker: usize, bytes: u64) {
        self.rec.scratch_peak(worker, bytes);
    }
    fn block_claimed(&self, worker: usize, block: usize) {
        self.rec.block_claimed(worker, block as u64, self.now_ns());
    }
    fn tile_walked(&self, worker: usize, _block: usize, tile: usize) {
        self.rec.tile_walked(worker, tile as u64, self.now_ns());
    }
    fn block_finished(&self, worker: usize, block: usize, _tiles: usize) {
        self.rec.block_finished(worker, block as u64, self.now_ns());
    }
    fn worker_finished(&self, worker: usize) {
        self.rec.worker_finished(worker, self.now_ns());
    }
}

/// The fully instrumented parallel search: per-worker timeline tracks
/// via `tl`, plus — exactly as [`knn_search_streamed_parallel_journaled`]
/// — an optional journal and registry. Dispatches internally on the
/// journal/registry combination so one entry point serves every CLI
/// flag combination; results are identical to
/// [`crate::knn_search_streamed_parallel`] in all cases.
///
/// Single-worker runs (after [`resolve_threads`]) take the sequential
/// path wrapped in one `Service` span on track 0, because sequential
/// tile order is not block order (see
/// [`knn_search_streamed_parallel_timelined`]).
#[allow(clippy::too_many_arguments)]
pub fn knn_search_streamed_parallel_instrumented<J: Journal>(
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
    tile: usize,
    threads: usize,
    journal: &J,
    registry: Option<&MetricsRegistry>,
    tag: &str,
    tl: &TimelineObserver<'_>,
) -> Vec<Vec<Neighbor>> {
    if resolve_threads(threads) <= 1 {
        return tl.service(0, 0, || {
            knn_search_streamed_parallel_journaled(
                queries, refs, cfg, tile, threads, journal, registry, tag,
            )
        });
    }
    if let Some(reg) = registry {
        reg.inc(QUERIES, queries.len() as u64);
    }
    fn finish(r: Result<Vec<Vec<Neighbor>>, crate::pipeline::Cancelled>) -> Vec<Vec<Neighbor>> {
        match r {
            Ok(v) => v,
            Err(c) => unreachable!("NeverCancel cancelled at tile {}", c.tiles_done),
        }
    }
    if journal.enabled() {
        let obs = JournalObserver::new(queries.len(), registry);
        let out = finish(knn_search_streamed_parallel_timelined(
            queries,
            refs,
            cfg,
            tile,
            threads,
            &obs,
            &NeverCancel,
            tl,
        ));
        let eff_tile = tile.min(refs.len().max(1));
        let blocks = refs.len().div_ceil(eff_tile.max(1)) as u32;
        obs.flush(journal, cfg, tag, eff_tile as u64, blocks);
        out
    } else if let Some(reg) = registry {
        finish(knn_search_streamed_parallel_timelined(
            queries,
            refs,
            cfg,
            tile,
            threads,
            &RegistryObserver::new(reg),
            &NeverCancel,
            tl,
        ))
    } else {
        finish(knn_search_streamed_parallel_timelined(
            queries,
            refs,
            cfg,
            tile,
            threads,
            &crate::pipeline::NullObserver,
            &NeverCancel,
            tl,
        ))
    }
}

/// [`block::squared_distances`] with the kernel invocation timed into
/// [`DISTANCE_BLOCKED_NS`] and the materialized matrix counted against
/// the scratch peak.
pub fn squared_distances_metered(
    queries: &PointSet,
    refs: &PointSet,
    registry: &MetricsRegistry,
) -> FlatMatrix {
    let t0 = Instant::now();
    let m = block::squared_distances(queries, refs);
    registry.observe_ns(DISTANCE_BLOCKED_NS, t0.elapsed().as_nanos() as u64);
    registry.record_peak(SCRATCH_PEAK_BYTES, m.bytes());
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{knn_search_streamed, knn_search_with};
    use kselect::QueueKind;

    #[test]
    fn metered_searches_match_unmetered_and_populate_the_registry() {
        let queries = PointSet::uniform(24, 12, 131);
        let refs = PointSet::uniform(400, 12, 132);
        let cfg = SelectConfig::plain(QueueKind::Merge, 16);
        let reg = MetricsRegistry::new();

        let plain = knn_search_with(&queries, &refs, &cfg, Metric::SquaredEuclidean);
        let metered = knn_search_metered(&queries, &refs, &cfg, &reg);
        assert_eq!(metered, plain, "metering must not change results");

        let streamed_plain = knn_search_streamed(&queries, &refs, &cfg, 100);
        let streamed = knn_search_streamed_metered(&queries, &refs, &cfg, 100, &reg);
        assert_eq!(streamed, streamed_plain);

        let snap = reg.snapshot();
        let hist = |name: &str| {
            snap.histograms
                .iter()
                .find(|h| h.name == name)
                .unwrap_or_else(|| panic!("missing histogram {name}"))
        };
        assert_eq!(hist("knn.query.latency_ns").count, 24);
        assert_eq!(hist("knn.row.fill_ns").count, 24);
        assert_eq!(hist("knn.row.select_ns").count, 24);
        // 400 refs / tile 100 = 4 tiles × 24 queries
        assert_eq!(hist("knn.tile.fill_ns").count, 96);
        assert_eq!(hist("knn.tile.select_ns").count, 96);
        assert_eq!(hist("knn.tile.merge_ns").count, 4);
        assert_eq!(reg.counter(QUERIES), 48);
        // every tile yields min(k, tile) survivors: 4 tiles × 16 × 24
        assert_eq!(reg.counter(MERGE_PUSH), 4 * 16 * 24);
        assert_eq!(
            reg.counter(MERGE_PUSH) - reg.counter(MERGE_REJECT),
            (24 * 16) as u64,
            "kept candidates must equal Q × k"
        );
        // streamed scratch: Q × tile × 4 = 24 × 100 × 4; the
        // materialized row path recorded N × 4 per worker, smaller here
        assert_eq!(reg.peak(SCRATCH_PEAK_BYTES), 24 * 100 * 4);
    }

    #[test]
    fn journaled_searches_match_plain_and_emit_one_record_per_query() {
        use trace::{EventJournal, JournalConfig, NullJournal};

        let queries = PointSet::uniform(16, 10, 135);
        let refs = PointSet::uniform(300, 10, 136);
        let cfg = SelectConfig::plain(QueueKind::Merge, 8);
        let plain = knn_search_with(&queries, &refs, &cfg, Metric::SquaredEuclidean);

        // disabled journal, no registry: plain path, nothing recorded
        let out = knn_search_with_journaled(
            &queries,
            &refs,
            &cfg,
            Metric::SquaredEuclidean,
            &NullJournal,
            None,
            "",
        );
        assert_eq!(out, plain);

        // live journal + registry: same results, 16 row-path records
        let journal = EventJournal::new(JournalConfig::default());
        let reg = MetricsRegistry::new();
        let out = knn_search_with_journaled(
            &queries,
            &refs,
            &cfg,
            Metric::SquaredEuclidean,
            &journal,
            Some(&reg),
            "row-run",
        );
        assert_eq!(out, plain);
        let snap = journal.snapshot();
        assert_eq!(snap.len(), 16);
        for r in &snap {
            assert_eq!(r.tile, 0, "row path has no tile");
            assert_eq!(r.blocks, 1);
            assert_eq!(r.status, "ok");
            assert_eq!(r.tag, "row-run");
            assert!(r.total_ns > 0, "query envelope must be timed");
            let phase_sum: u64 = r
                .phase_ns
                .iter()
                .filter(|(k, _)| k != "query")
                .map(|(_, ns)| ns)
                .sum();
            assert!(
                phase_sum <= r.total_ns,
                "row fill + select nest inside the query envelope: {r:?}"
            );
        }
        assert_eq!(reg.counter(QUERIES), 16, "registry forwarding stays on");

        // streamed: tile phases sum, per-query merge stats, blocks count
        let streamed_plain = knn_search_streamed(&queries, &refs, &cfg, 100);
        let journal = EventJournal::new(JournalConfig::default());
        let out =
            knn_search_streamed_journaled(&queries, &refs, &cfg, 100, &journal, None, "stream-run");
        assert_eq!(out, streamed_plain);
        let snap = journal.snapshot();
        assert_eq!(snap.len(), 16);
        for r in &snap {
            assert_eq!(r.tile, 100);
            assert_eq!(r.blocks, 3, "300 refs / tile 100");
            // every tile contributes min(k, tile) = 8 pushes
            assert_eq!(r.merge_push, 3 * 8);
            assert_eq!(r.merge_push - r.merge_reject, 8, "kept = k");
            assert_eq!(r.scratch_bytes, 16 * 100 * 4);
            assert!(r.phase_ns.iter().any(|(k, _)| k == "tile_select"));
            assert!(r.total_ns > 0);
        }
    }

    #[test]
    fn parallel_metered_matches_sequential_and_totals_are_exact() {
        let queries = PointSet::uniform(70, 12, 137);
        let refs = PointSet::uniform(400, 12, 138);
        let cfg = SelectConfig::plain(QueueKind::Merge, 16);
        let sequential = knn_search_streamed(&queries, &refs, &cfg, 100);
        for threads in [2usize, 8] {
            let reg = MetricsRegistry::new();
            let parallel =
                knn_search_streamed_parallel_metered(&queries, &refs, &cfg, 100, threads, &reg);
            assert_eq!(parallel, sequential, "threads {threads}");
            let snap = reg.snapshot();
            let hist = |name: &str| {
                snap.histograms
                    .iter()
                    .find(|h| h.name == name)
                    .unwrap_or_else(|| panic!("missing histogram {name}"))
            };
            // 400 refs / tile 100 = 4 tiles × 70 queries, regardless of
            // how blocks were distributed across workers.
            assert_eq!(hist("knn.tile.fill_ns").count, 280, "threads {threads}");
            assert_eq!(hist("knn.tile.select_ns").count, 280);
            // The parallel pipeline merges per query × tile.
            assert_eq!(hist("knn.tile.merge_ns").count, 280);
            assert_eq!(reg.counter(QUERIES), 70);
            assert_eq!(reg.counter(MERGE_PUSH), 4 * 16 * 70);
            assert_eq!(
                reg.counter(MERGE_PUSH) - reg.counter(MERGE_REJECT),
                70 * 16,
                "kept candidates must equal Q × k"
            );
        }
    }

    #[test]
    fn parallel_journaled_matches_sequential_records_at_any_thread_count() {
        use trace::{EventJournal, JournalConfig};

        let queries = PointSet::uniform(40, 10, 139);
        let refs = PointSet::uniform(300, 10, 140);
        let cfg = SelectConfig::plain(QueueKind::Merge, 8);
        let sequential = knn_search_streamed(&queries, &refs, &cfg, 100);
        for threads in [1usize, 2, 8] {
            let journal = EventJournal::new(JournalConfig::default());
            let out = knn_search_streamed_parallel_journaled(
                &queries, &refs, &cfg, 100, threads, &journal, None, "par-run",
            );
            assert_eq!(out, sequential, "threads {threads}");
            let snap = journal.snapshot();
            assert_eq!(snap.len(), 40, "one record per query");
            for r in &snap {
                assert_eq!(r.tile, 100);
                assert_eq!(r.blocks, 3, "300 refs / tile 100");
                // Deterministic per-query merge invariants: every tile
                // contributes min(k, tile) = 8 pushes and kept = k.
                assert_eq!(r.merge_push, 3 * 8, "threads {threads}");
                assert_eq!(r.merge_push - r.merge_reject, 8);
                assert_eq!(r.status, "ok");
                assert!(r.total_ns > 0, "tile phases must be timed");
                let phase_sum: u64 = r.phase_ns.iter().map(|(_, ns)| ns).sum();
                assert_eq!(
                    phase_sum, r.total_ns,
                    "streamed total is the sum of its tile phases"
                );
            }
        }
    }

    #[test]
    fn instrumented_matches_plain_and_accounts_every_block_exactly_once() {
        use crate::pipeline::knn_search_streamed_parallel;
        use trace::NullJournal;

        // 130 queries / QUERY_BLOCK(32) = 5 blocks -> all 4 workers run.
        let queries = PointSet::uniform(130, 12, 141);
        let refs = PointSet::uniform(400, 12, 142);
        let cfg = SelectConfig::plain(QueueKind::Merge, 16);
        let plain = knn_search_streamed_parallel(&queries, &refs, &cfg, 100, 4);

        let rec = TimelineRecorder::new(4);
        let tl = TimelineObserver::new(&rec);
        let out = knn_search_streamed_parallel_instrumented(
            &queries,
            &refs,
            &cfg,
            100,
            4,
            &NullJournal,
            None,
            "",
            &tl,
        );
        assert_eq!(out, plain, "timeline recording must not change results");

        let report = tl.report();
        assert_eq!(report.lanes.len(), 4);
        assert_eq!(report.blocks_total, 5, "130 queries / 32-query blocks");
        // Every claimed block lands on exactly one worker's track.
        let mut blocks: Vec<u64> = report
            .lanes
            .iter()
            .flat_map(|l| l.spans.iter())
            .filter(|s| s.kind == SpanKind::Block)
            .map(|s| s.detail)
            .collect();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![0, 1, 2, 3, 4]);
        // Busy + idle conservation per worker against the common wall.
        for lane in &report.lanes {
            assert_eq!(
                lane.busy_ns + lane.idle_ns,
                report.wall_ns,
                "worker {} must account its whole wall span",
                lane.worker
            );
            assert!(lane.utilization <= 1.0 + f64::EPSILON);
        }
        assert!(report.imbalance >= 1.0);
        // Scratch reservations were reported per worker.
        assert!(report
            .lanes
            .iter()
            .any(|l| l.scratch_peak_bytes == 32 * 100 * 4));
    }

    #[test]
    fn instrumented_single_thread_takes_the_sequential_path_as_a_service_span() {
        use trace::NullJournal;

        let queries = PointSet::uniform(20, 10, 143);
        let refs = PointSet::uniform(200, 10, 144);
        let cfg = SelectConfig::plain(QueueKind::Merge, 8);
        let plain = knn_search_streamed(&queries, &refs, &cfg, 64);
        let rec = TimelineRecorder::new(1);
        let tl = TimelineObserver::new(&rec);
        let out = knn_search_streamed_parallel_instrumented(
            &queries,
            &refs,
            &cfg,
            64,
            1,
            &NullJournal,
            None,
            "",
            &tl,
        );
        assert_eq!(out, plain);
        let report = tl.report();
        assert_eq!(report.lanes.len(), 1);
        let spans = &report.lanes[0].spans;
        assert_eq!(spans.len(), 1, "one service span, no block claims");
        assert_eq!(spans[0].kind, SpanKind::Service);
        assert!(report.lanes[0].busy_ns > 0, "the service span is busy time");
    }

    #[test]
    fn journal_records_carry_the_owning_worker() {
        use trace::{EventJournal, JournalConfig};

        let queries = PointSet::uniform(130, 10, 145);
        let refs = PointSet::uniform(300, 10, 146);
        let cfg = SelectConfig::plain(QueueKind::Merge, 8);
        let journal = EventJournal::new(JournalConfig::default());
        let rec = TimelineRecorder::new(4);
        let tl = TimelineObserver::new(&rec);
        knn_search_streamed_parallel_instrumented(
            &queries, &refs, &cfg, 100, 4, &journal, None, "tl-run", &tl,
        );
        let snap = journal.snapshot();
        assert_eq!(snap.len(), 130);
        assert!(snap.iter().all(|r| (r.worker as usize) < 4));
        // Queries of one 32-query block share one worker.
        for block in snap.chunks(32) {
            let w = block[0].worker;
            assert!(block.iter().all(|r| r.worker == w));
        }
        // The journal's worker attribution agrees with the timeline: a
        // worker that owns journal records also owns block spans.
        let report = tl.report();
        for w in snap.iter().map(|r| r.worker as usize) {
            assert!(report.lanes[w].blocks > 0);
        }
    }

    #[test]
    fn metered_distance_kernel_matches_and_records() {
        let queries = PointSet::uniform(8, 16, 133);
        let refs = PointSet::uniform(64, 16, 134);
        let reg = MetricsRegistry::new();
        let plain = block::squared_distances(&queries, &refs);
        let metered = squared_distances_metered(&queries, &refs, &reg);
        assert_eq!(metered, plain);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms[0].name, DISTANCE_BLOCKED_NS);
        assert_eq!(snap.histograms[0].count, 1);
        assert_eq!(reg.peak(SCRATCH_PEAK_BYTES), 8 * 64 * 4);
    }
}
