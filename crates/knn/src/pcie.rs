//! Host↔device transfer model — the paper's "Data Copy" row.
//!
//! Table I shows that offloading k-selection to the CPU requires copying
//! the distance matrix (and index array) from GPU memory to host memory,
//! and that this copy alone dwarfs the benefit of the faster CPU
//! selection. We model the copy as bytes over effective PCIe bandwidth.

use simt::GpuSpec;

/// Bytes that must cross PCIe to run k-selection on the host: the
/// distance values and the index array for `q` queries × `n` references
/// (both f32/u32-sized, matching the paper's setup).
pub fn kselection_offload_bytes(q: usize, n: usize) -> u64 {
    (q as u64) * (n as u64) * 4 * 2
}

/// Seconds to move `bytes` device→host.
pub fn transfer_time(spec: &GpuSpec, bytes: u64) -> f64 {
    bytes as f64 / (spec.pcie_gbps * 1e9)
}

/// The paper's "Data Copy" row for a given workload.
pub fn data_copy_time(spec: &GpuSpec, q: usize, n: usize) -> f64 {
    transfer_time(spec, kselection_offload_bytes(q, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_data_copy_row() {
        let spec = GpuSpec::tesla_c2075();
        // Paper: 0.46 s at N = 2^15, Q = 2^13; doubles with N.
        let t15 = data_copy_time(&spec, 1 << 13, 1 << 15);
        assert!((0.35..0.6).contains(&t15), "t15 = {t15}");
        let t16 = data_copy_time(&spec, 1 << 13, 1 << 16);
        assert!((1.9..2.1).contains(&(t16 / t15)));
        // and is independent of k by construction
    }

    #[test]
    fn bytes_accounting() {
        assert_eq!(kselection_offload_bytes(2, 3), 48);
    }
}
