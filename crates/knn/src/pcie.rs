//! Host↔device transfer model — the paper's "Data Copy" row.
//!
//! Table I shows that offloading k-selection to the CPU requires copying
//! the distance matrix (and index array) from GPU memory to host memory,
//! and that this copy alone dwarfs the benefit of the faster CPU
//! selection. We model the copy as bytes over effective PCIe bandwidth.

use kselect::KnnError;
use simt::GpuSpec;

/// Bytes that must cross PCIe to run k-selection on the host: the
/// distance values and the index array for `q` queries × `n` references
/// (both f32/u32-sized, matching the paper's setup).
pub fn kselection_offload_bytes(q: usize, n: usize) -> u64 {
    (q as u64) * (n as u64) * 4 * 2
}

/// Seconds to move `bytes` device→host.
pub fn transfer_time(spec: &GpuSpec, bytes: u64) -> f64 {
    bytes as f64 / (spec.pcie_gbps * 1e9)
}

/// The paper's "Data Copy" row for a given workload.
pub fn data_copy_time(spec: &GpuSpec, q: usize, n: usize) -> f64 {
    transfer_time(spec, kselection_offload_bytes(q, n))
}

/// A stalled PCIe transfer still completes, just slower — the link
/// retrains and replays at a fraction of its rated bandwidth.
const STALL_FACTOR: f64 = 4.0;

/// Outcome of a (possibly faulted, possibly retried) PCIe transfer.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PcieReport {
    /// Transfer attempts made (1 when nothing went wrong).
    pub attempts: u32,
    /// Attempts that hit a simulated link stall.
    pub stalls: u64,
    /// Attempts whose payload arrived corrupted (checksum reject → retry).
    pub corruptions: u64,
    /// Total simulated seconds on the link, including failed attempts.
    pub seconds: f64,
}

/// Move `bytes` across PCIe under a fault plan. Each attempt draws
/// deterministic stall/corruption events from
/// [`simt::FaultPlan::pcie_events`] keyed on `(transfer_idx, attempt)`:
/// a stall multiplies that attempt's time by [`STALL_FACTOR`]; a
/// corruption spends the time but forces a retry (the model assumes an
/// end-to-end checksum, so corrupt payloads are *detected*, never
/// delivered). All `max_attempts` corrupt →
/// [`KnnError::TransferFailed`].
///
/// PCIe faults live entirely in this host-side model, so they work
/// without the `fault` feature (which only gates kernel hooks).
pub fn transfer_with_faults(
    spec: &GpuSpec,
    bytes: u64,
    plan: &simt::FaultPlan,
    transfer_idx: u64,
    max_attempts: u32,
) -> Result<PcieReport, KnnError> {
    let clean = transfer_time(spec, bytes);
    let mut report = PcieReport::default();
    for attempt in 1..=max_attempts.max(1) {
        report.attempts = attempt;
        let (stalled, corrupted) = plan.pcie_events(transfer_idx, attempt);
        report.seconds += if stalled {
            report.stalls += 1;
            clean * STALL_FACTOR
        } else {
            clean
        };
        if corrupted {
            report.corruptions += 1;
        } else {
            return Ok(report);
        }
    }
    Err(KnnError::TransferFailed {
        attempts: report.attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_data_copy_row() {
        let spec = GpuSpec::tesla_c2075();
        // Paper: 0.46 s at N = 2^15, Q = 2^13; doubles with N.
        let t15 = data_copy_time(&spec, 1 << 13, 1 << 15);
        assert!((0.35..0.6).contains(&t15), "t15 = {t15}");
        let t16 = data_copy_time(&spec, 1 << 13, 1 << 16);
        assert!((1.9..2.1).contains(&(t16 / t15)));
        // and is independent of k by construction
    }

    #[test]
    fn bytes_accounting() {
        assert_eq!(kselection_offload_bytes(2, 3), 48);
    }

    #[test]
    fn clean_plan_is_one_clean_attempt() {
        let spec = GpuSpec::tesla_c2075();
        let plan = simt::FaultPlan::seeded(1); // all rates zero
        let r = transfer_with_faults(&spec, 1 << 20, &plan, 0, 3).unwrap();
        assert_eq!(r.attempts, 1);
        assert_eq!(r.stalls, 0);
        assert_eq!(r.corruptions, 0);
        assert_eq!(r.seconds, transfer_time(&spec, 1 << 20));
    }

    #[test]
    fn stalls_cost_time_but_deliver() {
        let spec = GpuSpec::tesla_c2075();
        let plan = simt::FaultPlan::seeded(2).with_pcie(1.0, 0.0);
        let r = transfer_with_faults(&spec, 1 << 20, &plan, 0, 3).unwrap();
        assert_eq!(r.attempts, 1, "stall alone never forces a retry");
        assert_eq!(r.stalls, 1);
        assert_eq!(r.seconds, transfer_time(&spec, 1 << 20) * STALL_FACTOR);
    }

    #[test]
    fn persistent_corruption_is_a_named_error() {
        let spec = GpuSpec::tesla_c2075();
        let plan = simt::FaultPlan::seeded(3).with_pcie(0.0, 1.0);
        let err = transfer_with_faults(&spec, 1 << 20, &plan, 0, 4).unwrap_err();
        assert_eq!(err, KnnError::TransferFailed { attempts: 4 });
        assert_eq!(err.name(), "transfer-failed");
    }

    #[test]
    fn faulted_transfers_replay_deterministically() {
        let spec = GpuSpec::tesla_c2075();
        let plan = simt::FaultPlan::seeded(4).with_pcie(0.4, 0.4);
        for idx in 0..8 {
            let a = transfer_with_faults(&spec, 4096, &plan, idx, 5);
            let b = transfer_with_faults(&spec, 4096, &plan, idx, 5);
            assert_eq!(a, b);
        }
    }
}
