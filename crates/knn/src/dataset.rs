//! Synthetic dataset generation matching the paper's evaluation setup:
//! query and reference tuples with dimensionality 128, each coordinate
//! uniform in [0, 1], deterministic under a seed.

use rand::{Rng, SeedableRng};

/// A dense row-major set of `count` points of dimension `dim`.
#[derive(Clone, Debug)]
pub struct PointSet {
    data: Vec<f32>,
    dim: usize,
}

impl PointSet {
    /// Generate `count` uniform-\[0,1\] points of dimension `dim` from
    /// `seed` (the paper's synthetic workload; `dim = 128` there).
    pub fn uniform(count: usize, dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data = (0..count * dim).map(|_| rng.gen::<f32>()).collect();
        PointSet { data, dim }
    }

    /// Wrap existing row-major data.
    ///
    /// # Panics
    /// When `data.len()` is not a multiple of `dim`.
    pub fn from_flat(data: Vec<f32>, dim: usize) -> Self {
        assert!(
            dim > 0 && data.len().is_multiple_of(dim),
            "ragged point data"
        );
        PointSet { data, dim }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// True when the set holds no points.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow point `i`.
    pub fn point(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The raw row-major data.
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = PointSet::uniform(10, 8, 42);
        let b = PointSet::uniform(10, 8, 42);
        assert_eq!(a.as_flat(), b.as_flat());
        let c = PointSet::uniform(10, 8, 43);
        assert_ne!(a.as_flat(), c.as_flat());
    }

    #[test]
    fn values_in_unit_interval() {
        let s = PointSet::uniform(100, 16, 7);
        assert!(s.as_flat().iter().all(|&v| (0.0..1.0).contains(&v)));
        assert_eq!(s.len(), 100);
        assert_eq!(s.dim(), 16);
        assert_eq!(s.point(3).len(), 16);
    }

    #[test]
    #[should_panic]
    fn ragged_data_rejected() {
        PointSet::from_flat(vec![1.0; 10], 3);
    }
}
