//! Evaluation utilities: exact ground truth and recall@k.
//!
//! Everything in this workspace is exact k-NN, so recall against ground
//! truth is 1.0 by construction — these helpers exist for downstream
//! users who build *approximate* pipelines on top (e.g. subsampled or
//! filtered search, as in the authors' related HPDC'14 data-filtering
//! work) and for the integration tests that assert exactness.

use kselect::types::Neighbor;
use rayon::prelude::*;

use crate::dataset::PointSet;
use crate::metric::{distance_matrix_flat_with, Metric};

/// Exact k-NN ground truth by full sort, for every query.
pub fn ground_truth(
    queries: &PointSet,
    refs: &PointSet,
    k: usize,
    metric: Metric,
) -> Vec<Vec<Neighbor>> {
    let m = distance_matrix_flat_with(queries, refs, metric);
    (0..m.q())
        .into_par_iter()
        .map(|qi| {
            let mut v: Vec<Neighbor> = m
                .row(qi)
                .iter()
                .enumerate()
                .map(|(i, &d)| Neighbor::new(d, i as u32))
                .collect();
            kselect::types::sort_neighbors(&mut v);
            v.truncate(k);
            v
        })
        .collect()
}

/// Fraction of the true k nearest ids found by `result` (order ignored;
/// ties at the boundary mean several id sets are equally correct, so
/// recall is computed on ids *and* credited for distance-ties).
pub fn recall_at_k(result: &[Neighbor], truth: &[Neighbor], k: usize) -> f64 {
    assert!(k > 0);
    let k = k.min(truth.len());
    if k == 0 {
        return 1.0;
    }
    let boundary = truth[k - 1].dist;
    let hits = result
        .iter()
        .take(k)
        .filter(|r| truth[..k].iter().any(|t| t.id == r.id) || r.dist <= boundary)
        .count();
    hits as f64 / k as f64
}

/// Mean recall@k across queries.
pub fn mean_recall(results: &[Vec<Neighbor>], truths: &[Vec<Neighbor>], k: usize) -> f64 {
    assert_eq!(results.len(), truths.len());
    if results.is_empty() {
        return 1.0;
    }
    results
        .iter()
        .zip(truths)
        .map(|(r, t)| recall_at_k(r, t, k))
        .sum::<f64>()
        / results.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use kselect::{QueueKind, SelectConfig};

    #[test]
    fn exact_search_has_unit_recall() {
        let refs = PointSet::uniform(300, 16, 1);
        let queries = PointSet::uniform(10, 16, 2);
        let truth = ground_truth(&queries, &refs, 8, Metric::SquaredEuclidean);
        let res = crate::knn_search(
            &queries,
            &refs,
            &SelectConfig::optimized(QueueKind::Merge, 8),
        );
        assert_eq!(mean_recall(&res, &truth, 8), 1.0);
    }

    #[test]
    fn partial_recall_detected() {
        let truth = vec![
            Neighbor::new(0.1, 0),
            Neighbor::new(0.2, 1),
            Neighbor::new(0.3, 2),
        ];
        let result = vec![
            Neighbor::new(0.1, 0),
            Neighbor::new(0.9, 9),
            Neighbor::new(1.0, 8),
        ];
        assert!((recall_at_k(&result, &truth, 3) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ties_at_boundary_credited() {
        // True 2-NN = {0, 1} with dist 0.5 each; returning {0, 2} where
        // item 2 also has dist 0.5 is an equally-correct answer.
        let truth = vec![Neighbor::new(0.5, 0), Neighbor::new(0.5, 1)];
        let result = vec![Neighbor::new(0.5, 0), Neighbor::new(0.5, 2)];
        assert_eq!(recall_at_k(&result, &truth, 2), 1.0);
    }

    #[test]
    fn ground_truth_ordering() {
        let refs = PointSet::uniform(50, 4, 3);
        let queries = PointSet::uniform(2, 4, 4);
        for metric in [
            Metric::SquaredEuclidean,
            Metric::Cosine,
            Metric::NegativeDot,
        ] {
            let t = ground_truth(&queries, &refs, 10, metric);
            for row in &t {
                assert!(row.windows(2).all(|w| w[0].dist <= w[1].dist), "{metric:?}");
            }
        }
    }

    #[test]
    fn empty_result_zero_recall() {
        let truth = vec![Neighbor::new(0.5, 0)];
        assert_eq!(recall_at_k(&[], &truth, 1), 0.0);
    }
}
