//! End-to-end k-NN search: distance phase + k-selection phase.
//!
//! * [`knn_search`] — the native library entry point: real computation on
//!   the host, parallel over queries. This is what a downstream user of
//!   the crate calls.
//! * [`gpu_knn`] — the simulated pipeline the experiments use: distances
//!   are computed natively (they are *data*), the distance kernel's cost
//!   is charged analytically, and k-selection runs for real on the SIMT
//!   simulator. Returns the per-phase simulated times the paper's Table I
//!   reports.
//! * [`gpu_knn_traced`] — the same pipeline recording its phases as
//!   spans on a [`trace::Tracer`]'s simulated clock, plus the kernel
//!   event counters when the `trace` feature is on.

use kselect::gpu::{gpu_select_k, DistanceMatrix, KernelCounters};
use kselect::types::Neighbor;
use kselect::SelectConfig;
use rayon::prelude::*;
use simt::{Metrics, TimingModel};

use crate::dataset::PointSet;
use crate::distance::{distance_matrix, gpu_distance_metrics};

/// Native k-NN search: for each query, the k nearest references by
/// squared Euclidean distance, sorted ascending.
pub fn knn_search(queries: &PointSet, refs: &PointSet, cfg: &SelectConfig) -> Vec<Vec<Neighbor>> {
    knn_search_with(queries, refs, cfg, crate::metric::Metric::SquaredEuclidean)
}

/// [`knn_search`] under an arbitrary [`crate::metric::Metric`].
pub fn knn_search_with(
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
    metric: crate::metric::Metric,
) -> Vec<Vec<Neighbor>> {
    assert!(cfg.k <= refs.len(), "k exceeds the number of references");
    (0..queries.len())
        .into_par_iter()
        .map(|qi| {
            let qp = queries.point(qi);
            let dists: Vec<f32> = (0..refs.len())
                .map(|ri| metric.distance(qp, refs.point(ri)))
                .collect();
            kselect::select_k(&dists, cfg)
        })
        .collect()
}

/// Result of the simulated GPU k-NN pipeline.
pub struct GpuKnnResult {
    /// Per-query neighbors from the simulated selection kernel.
    pub neighbors: Vec<Vec<Neighbor>>,
    /// Metrics of the k-selection kernel (measured on the simulator).
    pub select_metrics: Metrics,
    /// Metrics of the distance kernel (analytic model).
    pub distance_metrics: Metrics,
    /// Simulated seconds for the selection kernel.
    pub select_time: f64,
    /// Simulated seconds for the distance kernel.
    pub distance_time: f64,
    /// Technique-level event counters from the selection kernel
    /// (all-zero unless built with the `trace` feature).
    pub counters: KernelCounters,
}

/// Run the full simulated pipeline for `queries` × `refs`.
///
/// The distance matrix is computed natively and uploaded into simulated
/// global memory; the distance kernel's execution cost comes from
/// [`gpu_distance_metrics`] (see that function for the calibration
/// rationale), while k-selection executes instruction-by-instruction on
/// the simulator.
pub fn gpu_knn(
    tm: &TimingModel,
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
) -> GpuKnnResult {
    let mut scratch = trace::Tracer::new();
    gpu_knn_traced(tm, queries, refs, cfg, &mut scratch)
}

/// [`gpu_knn`], recording the pipeline onto `tracer`'s simulated clock.
///
/// The trace lays out as: a `gpu_knn` phase containing the `distance`
/// phase (analytic distance kernel), a `transfer.upload` phase (PCIe
/// cost of the distance matrix — informational; not part of the
/// returned kernel times, matching the paper's timing breakdown), and
/// the `select` phase whose `gpu_select_k` kernel span nests an
/// `hp_build` span (when Hierarchical Partition is on) and one
/// concurrent per-warp span per launched warp. Kernel event counters
/// are folded into the tracer at the end of the selection phase.
pub fn gpu_knn_traced(
    tm: &TimingModel,
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
    tracer: &mut trace::Tracer,
) -> GpuKnnResult {
    use trace::Category;

    let pipeline = tracer.open_span(Category::Phase, "gpu_knn");

    // Distance phase: computed natively, costed analytically.
    let dist_m = gpu_distance_metrics(queries.len(), refs.len(), queries.dim());
    let distance_time = tracer.scoped(Category::Phase, "distance", |t| {
        simt::tracing::kernel_span(t, "distance_kernel", tm, &dist_m)
    });
    let rows = distance_matrix(queries, refs);
    let dm = DistanceMatrix::from_rows(&rows);

    // The distance matrix never leaves the device in the real pipeline;
    // this span records what uploading the *inputs* would cost.
    let input_bytes = ((queries.len() + refs.len()) * queries.dim() * 4) as u64;
    simt::tracing::transfer_span(tracer, "transfer.upload", tm, input_bytes);

    // Selection phase: executed instruction-by-instruction.
    let sel = gpu_select_k(&tm.spec, &dm, cfg);
    let select_time = tm.kernel_time(&sel.metrics);
    let select_phase = tracer.open_span(Category::Phase, "select");
    let kernel = tracer.open_span(Category::Kernel, "gpu_select_k");
    // HP construction is a prefix of the kernel's metrics, and the
    // timing model is monotone, so its share fits inside the kernel span.
    let build_time = tm.kernel_time(&sel.build_metrics);
    if sel.build_metrics.issued > 0 {
        tracer.span(Category::Build, "hp_build", build_time);
    }
    simt::tracing::warp_spans(tracer, "select", sel.n_warps, select_time - build_time);
    tracer.close_span(kernel);
    tracer.merge_counters(&sel.counters.to_counter_set());
    tracer.close_span(select_phase);

    tracer.close_span(pipeline);

    GpuKnnResult {
        neighbors: sel.neighbors,
        select_time,
        distance_time,
        select_metrics: sel.metrics,
        distance_metrics: dist_m,
        counters: sel.counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kselect::QueueKind;

    #[test]
    fn native_and_simulated_pipelines_agree() {
        let queries = PointSet::uniform(40, 16, 101);
        let refs = PointSet::uniform(300, 16, 102);
        let cfg = SelectConfig::optimized(QueueKind::Merge, 8);
        let native = knn_search(&queries, &refs, &cfg);
        let tm = TimingModel::tesla_c2075();
        let sim = gpu_knn(&tm, &queries, &refs, &cfg);
        assert_eq!(native.len(), sim.neighbors.len());
        for (a, b) in native.iter().zip(&sim.neighbors) {
            let ad: Vec<f32> = a.iter().map(|n| n.dist).collect();
            let bd: Vec<f32> = b.iter().map(|n| n.dist).collect();
            assert_eq!(ad, bd);
        }
    }

    #[test]
    fn knn_of_identical_point_is_itself() {
        let refs = PointSet::uniform(50, 8, 103);
        // Query = reference 17 exactly.
        let q = PointSet::from_flat(refs.point(17).to_vec(), 8);
        let cfg = SelectConfig::plain(QueueKind::Insertion, 3);
        let res = knn_search(&q, &refs, &cfg);
        assert_eq!(res[0][0].id, 17);
        assert_eq!(res[0][0].dist, 0.0);
    }

    #[test]
    fn traced_pipeline_emits_balanced_monotonic_spans() {
        let tm = TimingModel::tesla_c2075();
        let queries = PointSet::uniform(40, 8, 106);
        let refs = PointSet::uniform(512, 8, 107);
        let cfg = SelectConfig::optimized(QueueKind::Merge, 16);
        let mut tracer = trace::Tracer::new();
        let res = gpu_knn_traced(&tm, &queries, &refs, &cfg, &mut tracer);
        assert_eq!(res.neighbors.len(), 40);
        assert!(tracer.is_balanced(), "every opened span must close");
        let ts: Vec<f64> = tracer.events().iter().map(|e| e.ts_us).collect();
        assert!(
            ts.windows(2).all(|w| w[0] <= w[1]),
            "simulated timestamps must be monotonic"
        );
        // the pipeline covers the full modelled duration
        assert!(tracer.clock_s() >= res.distance_time + res.select_time);
        let names: Vec<&str> = tracer.events().iter().map(|e| e.name.as_str()).collect();
        for expected in [
            "gpu_knn",
            "distance",
            "transfer.upload",
            "select",
            "gpu_select_k",
        ] {
            assert!(names.contains(&expected), "missing span {expected}");
        }
        // optimized config uses HP ⇒ build span + per-warp lanes appear
        assert!(names.contains(&"hp_build"));
        assert!(names.iter().any(|n| n.starts_with("select.warp")));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn traced_pipeline_collects_kernel_counters() {
        let tm = TimingModel::tesla_c2075();
        let queries = PointSet::uniform(32, 8, 108);
        let refs = PointSet::uniform(400, 8, 109);
        let cfg = SelectConfig::optimized(QueueKind::Merge, 16);
        let mut tracer = trace::Tracer::new();
        let res = gpu_knn_traced(&tm, &queries, &refs, &cfg, &mut tracer);
        assert!(res.counters.queue_inserts > 0);
        assert_eq!(
            tracer.counters().get(trace::names::QUEUE_INSERT),
            res.counters.queue_inserts
        );
    }

    #[test]
    fn simulated_times_are_positive_and_split() {
        let tm = TimingModel::tesla_c2075();
        let queries = PointSet::uniform(32, 8, 104);
        let refs = PointSet::uniform(256, 8, 105);
        let r = gpu_knn(
            &tm,
            &queries,
            &refs,
            &SelectConfig::plain(QueueKind::Heap, 8),
        );
        assert!(r.select_time > 0.0);
        assert!(r.distance_time > 0.0);
        assert!(r.select_metrics.issued > 0);
        assert!(r.distance_metrics.issued > 0);
    }
}
