//! End-to-end k-NN search: distance phase + k-selection phase.
//!
//! * [`knn_search`] — the native library entry point: real computation on
//!   the host, parallel over queries with one reused distance-row scratch
//!   per worker. This is what a downstream user of the crate calls.
//! * [`knn_search_streamed`] — the tile-streamed native pipeline: per
//!   reference tile, distances are computed into a reused Q×tile scratch
//!   and fed straight into per-tile k-selection merged by
//!   [`kselect::chunked::StreamMerger`]. The full Q×N matrix is never
//!   materialised, so peak distance memory is O(Q·tile) instead of
//!   O(Q·N) — same distances bit-for-bit and same neighbors as
//!   [`knn_search`] (see its docs for the tied-id caveat).
//! * [`knn_search_streamed_parallel`] — the streamed pipeline scheduled
//!   across a pool of OS threads: workers claim query *blocks* from a
//!   shared cursor and walk every reference tile of their block in
//!   ascending order, so each query's merge sequence — and therefore
//!   its neighbors — is identical at any thread count. One scratch
//!   buffer per worker, no per-query allocation.
//! * [`gpu_knn`] — the simulated pipeline the experiments use: distances
//!   are computed natively (they are *data*), the distance kernel's cost
//!   is charged analytically, and k-selection runs for real on the SIMT
//!   simulator. Returns the per-phase simulated times the paper's Table I
//!   reports.
//! * [`gpu_knn_traced`] — the same pipeline recording its phases as
//!   spans on a [`trace::Tracer`]'s simulated clock, plus the kernel
//!   event counters when the `trace` feature is on.
//! * [`gpu_knn_resilient`] — the checked, fault-tolerant pipeline:
//!   typed input validation ([`KnnError`]), PCIe transfers that survive
//!   stalls and detected corruption, and per-warp retry with degraded
//!   host fallback via [`kselect::gpu::gpu_select_k_resilient`].

use kselect::chunked::StreamMerger;
use kselect::gpu::{
    gpu_select_k, gpu_select_k_resilient, gpu_select_k_resilient_gated, DistanceMatrix,
    GpuResilience, KernelCounters, SearchReport,
};
use kselect::types::Neighbor;
use kselect::{KnnError, SelectConfig};
use rayon::prelude::*;
use simt::{Metrics, TimingModel};
use trace::{NullTimeline, TimelineHooks};

use crate::dataset::PointSet;
use crate::distance::{block, gpu_distance_metrics};
use crate::metric::Metric;
use crate::pcie::{self, PcieReport};

/// A phase of the native (wall-clock) pipeline, named for observers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// One query end to end (distance row + selection) in
    /// [`knn_search_with`].
    Query,
    /// Distance-row fill of one query in [`knn_search_with`].
    RowFill,
    /// k-selection over one query's full row in [`knn_search_with`].
    RowSelect,
    /// Distance fill of one query × one reference tile in
    /// [`knn_search_streamed`].
    TileFill,
    /// Per-tile k-selection of one query in [`knn_search_streamed`].
    TileSelect,
    /// Host-side [`StreamMerger`] merge of one tile's survivors across
    /// all queries in [`knn_search_streamed`].
    TileMerge,
}

/// Observation hooks for the native pipeline.
///
/// The default methods are no-ops, and the pipelines are generic over
/// the observer, so [`NullObserver`] monomorphizes to *exactly* the
/// uninstrumented code — no wall-clock reads, no bookkeeping. The
/// `metrics` cargo feature ships a registry-backed implementation
/// ([`crate::metered`]); library users can plug their own.
///
/// Hooks must not change observable behaviour: `timed` runs `f` exactly
/// once and returns its result unchanged.
pub trait PhaseObserver: Sync {
    /// Run `f`, optionally measuring its duration under `phase`.
    #[inline]
    fn timed<R>(&self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let _ = phase;
        f()
    }
    /// [`PhaseObserver::timed`] that also identifies which query the
    /// phase belongs to. Defaults to the query-blind `timed`, so
    /// aggregate-only observers keep working unchanged; the per-query
    /// journal overrides this to attribute latency to individual
    /// queries.
    #[inline]
    fn timed_q<R>(&self, phase: Phase, qi: usize, f: impl FnOnce() -> R) -> R {
        let _ = qi;
        self.timed(phase, f)
    }
    /// Peak bytes of the distance scratch a pipeline holds.
    #[inline]
    fn scratch_bytes(&self, _bytes: u64) {}
    /// Final stream-merge totals: candidates pushed into the per-query
    /// mergers and candidates their running top-k evicted.
    #[inline]
    fn merger_stats(&self, _pushed: u64, _rejected: u64) {}
    /// One query's stream-merge totals (the per-query refinement of
    /// [`PhaseObserver::merger_stats`]).
    #[inline]
    fn query_merger_stats(&self, _qi: usize, _pushed: u64, _rejected: u64) {}
    /// Which pool worker serviced query `qi`. Fired once per query by
    /// the parallel pipeline (never by sequential paths, whose implied
    /// worker is 0); the journal records it on the query's record.
    #[inline]
    fn query_worker(&self, _qi: usize, _worker: usize) {}
}

/// The zero-cost default observer.
pub struct NullObserver;

impl PhaseObserver for NullObserver {}

/// Cooperative cancellation for the streamed pipeline, polled at tile
/// boundaries.
///
/// The serving layer propagates per-request deadlines through this
/// hook: once a request's budget is spent, the next poll returns
/// `true` and the search stops consuming work instead of finishing
/// late. Implementations must be deterministic functions of
/// `tiles_done` (and their own construction) — the streamed pipeline
/// replays byte-identically, and a token that consulted a wall clock
/// would break that.
pub trait CancelToken: Sync {
    /// Polled before each tile with the number of tiles already
    /// completed; return `true` to stop before the next tile starts.
    fn is_cancelled(&self, tiles_done: usize) -> bool;
}

/// The zero-cost default token: never cancels. Monomorphizes
/// [`knn_search_streamed_cancellable`] to exactly the uncancellable
/// code.
pub struct NeverCancel;

impl CancelToken for NeverCancel {
    #[inline]
    fn is_cancelled(&self, _tiles_done: usize) -> bool {
        false
    }
}

/// Token that admits exactly `max_tiles` tiles — how a caller with a
/// precomputed per-tile cost model (the serving layer) expresses "this
/// request's deadline affords N tiles".
pub struct TileBudget(pub usize);

impl CancelToken for TileBudget {
    #[inline]
    fn is_cancelled(&self, tiles_done: usize) -> bool {
        tiles_done >= self.0
    }
}

/// A streamed search stopped at a tile boundary by its [`CancelToken`].
///
/// Partial results are deliberately not returned: a top-k over a
/// prefix of the references is not the exact answer, and delivering it
/// silently would violate the pipeline's never-wrong contract. The
/// caller knows how many tiles were completed and can report the
/// consumed work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancelled {
    /// Tiles fully processed before the token tripped.
    pub tiles_done: usize,
    /// Tiles the full search would have processed.
    pub tiles_total: usize,
}

/// Native k-NN search: for each query, the k nearest references by
/// squared Euclidean distance, sorted ascending.
pub fn knn_search(queries: &PointSet, refs: &PointSet, cfg: &SelectConfig) -> Vec<Vec<Neighbor>> {
    knn_search_with(queries, refs, cfg, Metric::SquaredEuclidean)
}

/// [`knn_search`] under an arbitrary [`crate::metric::Metric`].
///
/// Parallel over queries; each worker reuses one distance-row scratch
/// buffer across all its queries (`map_init`), so the search allocates
/// O(workers·N) — not O(Q·N) and not one fresh `Vec` per query. Squared
/// Euclidean rows go through the GEMM-decomposed row primitive with the
/// reference norms hoisted out of the query loop.
pub fn knn_search_with(
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
    metric: Metric,
) -> Vec<Vec<Neighbor>> {
    knn_search_with_observed(queries, refs, cfg, metric, &NullObserver)
}

/// [`knn_search_with`] with [`PhaseObserver`] hooks: per-query
/// end-to-end latency ([`Phase::Query`]) wrapping the row fill
/// ([`Phase::RowFill`]) and selection ([`Phase::RowSelect`]), plus the
/// per-worker row-scratch bytes. Results are identical to the
/// unobserved path.
pub fn knn_search_with_observed<O: PhaseObserver>(
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
    metric: Metric,
    obs: &O,
) -> Vec<Vec<Neighbor>> {
    assert!(cfg.k <= refs.len(), "k exceeds the number of references");
    assert_eq!(queries.dim(), refs.dim(), "dimension mismatch");
    let n = refs.len();
    obs.scratch_bytes((n * core::mem::size_of::<f32>()) as u64);
    let ref_norms = match metric {
        Metric::SquaredEuclidean => block::norms(refs),
        _ => Vec::new(),
    };
    (0..queries.len())
        .into_par_iter()
        .map_init(
            || vec![0.0f32; n],
            |dists, qi| {
                obs.timed_q(Phase::Query, qi, || {
                    let qp = queries.point(qi);
                    obs.timed_q(Phase::RowFill, qi, || {
                        if metric == Metric::SquaredEuclidean {
                            block::fill_row_range(
                                qp,
                                crate::distance::squared_norm(qp),
                                refs,
                                &ref_norms,
                                0,
                                dists,
                            );
                        } else {
                            for (ri, d) in dists.iter_mut().enumerate() {
                                *d = crate::distance::clamp_non_finite(
                                    metric.distance(qp, refs.point(ri)),
                                );
                            }
                        }
                    });
                    obs.timed_q(Phase::RowSelect, qi, || kselect::select_k(dists, cfg))
                })
            },
        )
        .collect()
}

/// Tile-streamed native k-NN search: exact results of [`knn_search`]
/// without ever materialising the Q×N distance matrix.
///
/// The reference list is processed in `tile`-length chunks (use
/// [`block::DEFAULT_STREAM_TILE`] when in doubt). Per tile, a reused
/// Q×tile scratch is filled by the blocked row primitive (parallel over
/// queries), each query's tile is k-selected with the configured
/// variant, and the survivors stream into a per-query
/// [`StreamMerger`] — the same merge the divide-and-merge
/// (`select_k_chunked`) path uses, so the final top-k distances are
/// identical to selecting over the full row, and with the insertion
/// queue the ids are too (first-seen == lowest id on both paths). The
/// heap and merge queues evict id-arbitrarily among *equal* distances,
/// so under exact ties at the k-th value the two paths may keep
/// different (equally correct) tied ids — a property of those queues,
/// not of the streaming. Peak distance memory is `Q × min(tile, N)`
/// floats.
///
/// # Panics
/// When `tile` is zero, `cfg.k` exceeds the number of references, or the
/// point sets disagree on dimensionality.
pub fn knn_search_streamed(
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
    tile: usize,
) -> Vec<Vec<Neighbor>> {
    knn_search_streamed_observed(queries, refs, cfg, tile, &NullObserver)
}

/// [`knn_search_streamed`] with [`PhaseObserver`] hooks at tile
/// granularity: per-query tile fill ([`Phase::TileFill`]) and selection
/// ([`Phase::TileSelect`]) inside the parallel loop, the host-side
/// merge per tile ([`Phase::TileMerge`]), the scratch working-set bytes
/// and the final [`StreamMerger`] push/reject totals. Results are
/// identical to the unobserved path.
pub fn knn_search_streamed_observed<O: PhaseObserver>(
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
    tile: usize,
    obs: &O,
) -> Vec<Vec<Neighbor>> {
    match knn_search_streamed_cancellable(queries, refs, cfg, tile, obs, &NeverCancel) {
        Ok(neighbors) => neighbors,
        // `NeverCancel` never trips.
        Err(c) => unreachable!("NeverCancel cancelled at tile {}", c.tiles_done),
    }
}

/// [`knn_search_streamed_observed`] with cooperative cancellation
/// checked at every tile boundary.
///
/// `token` is polled with the completed-tile count before each tile;
/// when it returns `true` the search stops there and returns
/// [`Cancelled`] — no further distance rows are filled, no further
/// selection runs, and the partial merge state is dropped (see
/// [`Cancelled`] for why). With [`NeverCancel`] this is exactly
/// [`knn_search_streamed_observed`]: same results, same observer
/// events, byte for byte.
pub fn knn_search_streamed_cancellable<O: PhaseObserver, C: CancelToken>(
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
    tile: usize,
    obs: &O,
    token: &C,
) -> Result<Vec<Vec<Neighbor>>, Cancelled> {
    assert!(tile > 0, "tile size must be positive");
    assert!(cfg.k <= refs.len(), "k exceeds the number of references");
    assert_eq!(queries.dim(), refs.dim(), "dimension mismatch");
    let q = queries.len();
    let n = refs.len();
    let tile = tile.min(n.max(1));
    let ref_norms = block::norms(refs);
    let q_norms = block::norms(queries);
    let mut mergers: Vec<StreamMerger> = (0..q).map(|_| StreamMerger::new(cfg.k)).collect();
    let mut scratch = vec![0.0f32; q * tile];
    obs.scratch_bytes((q * tile * core::mem::size_of::<f32>()) as u64);
    let tiles_total = n.div_ceil(tile);
    for (tiles_done, r0) in (0..n).step_by(tile).enumerate() {
        if token.is_cancelled(tiles_done) {
            return Err(Cancelled {
                tiles_done,
                tiles_total,
            });
        }
        let t_len = tile.min(n - r0);
        let rows: Vec<(usize, &mut [f32])> =
            scratch[..q * t_len].chunks_mut(t_len).enumerate().collect();
        let survivors: Vec<Vec<Neighbor>> = rows
            .into_par_iter()
            .map(|(qi, row)| {
                obs.timed_q(Phase::TileFill, qi, || {
                    block::fill_row_range(
                        queries.point(qi),
                        q_norms[qi],
                        refs,
                        &ref_norms,
                        r0,
                        &mut *row,
                    )
                });
                obs.timed_q(Phase::TileSelect, qi, || kselect::select_k(row, cfg))
            })
            .collect();
        obs.timed(Phase::TileMerge, || {
            for (merger, tile_topk) in mergers.iter_mut().zip(survivors) {
                merger.push_chunk(tile_topk, r0 as u32);
            }
        });
    }
    let (pushed, rejected) = mergers
        .iter()
        .enumerate()
        .fold((0u64, 0u64), |(p, r), (qi, m)| {
            let s = m.stats();
            obs.query_merger_stats(qi, s.pushed, s.rejected);
            (p + s.pushed, r + s.rejected)
        });
    obs.merger_stats(pushed, rejected);
    Ok(mergers.into_iter().map(StreamMerger::finish).collect())
}

/// Resolve a caller-facing thread-count request: `0` means "auto"
/// (`RAYON_NUM_THREADS`, else the host's available parallelism), any
/// positive value is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        rayon::current_num_threads()
    } else {
        threads
    }
}

/// [`knn_search_streamed`] scheduled across `threads` OS threads
/// (`0` = auto, see [`resolve_threads`]). Same neighbors as the
/// sequential streamed path at any thread count — see
/// [`knn_search_streamed_parallel_cancellable`] for how.
pub fn knn_search_streamed_parallel(
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
    tile: usize,
    threads: usize,
) -> Vec<Vec<Neighbor>> {
    knn_search_streamed_parallel_observed(queries, refs, cfg, tile, threads, &NullObserver)
}

/// [`knn_search_streamed_parallel`] with [`PhaseObserver`] hooks. The
/// observer must be thread-safe (the trait already requires `Sync`);
/// per-query hooks fire from whichever worker owns the query's block,
/// and the aggregate merge totals are folded once after the pool joins,
/// so counters and per-query attributions are exact — only the
/// interleaving of hook invocations differs from the sequential path.
pub fn knn_search_streamed_parallel_observed<O: PhaseObserver>(
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
    tile: usize,
    threads: usize,
    obs: &O,
) -> Vec<Vec<Neighbor>> {
    match knn_search_streamed_parallel_cancellable(
        queries,
        refs,
        cfg,
        tile,
        threads,
        obs,
        &NeverCancel,
    ) {
        Ok(neighbors) => neighbors,
        // `NeverCancel` never trips.
        Err(c) => unreachable!("NeverCancel cancelled at tile {}", c.tiles_done),
    }
}

/// The parallel tile pipeline: workers claim [`block::QUERY_BLOCK`]-sized
/// query blocks from a shared atomic cursor (dynamic scheduling — a
/// fast worker steals the next block as soon as it finishes one) and
/// walk *every* reference tile of their block in ascending order into a
/// per-worker block×tile scratch. Because each query's tile survivors
/// reach its [`StreamMerger`] in exactly the sequential order, the
/// merged neighbors are identical to [`knn_search_streamed`] at any
/// thread count; only wall-clock interleaving varies.
///
/// `token` is polled per block with that block's completed-tile count.
/// [`CancelToken`]s are deterministic functions of `tiles_done` (the
/// trait contract), so every block trips at the same tile index and the
/// returned [`Cancelled`] reports the same boundary the sequential path
/// would; when workers race past a trip, the earliest boundary wins.
/// Partial results are dropped, as on the sequential path.
///
/// `threads <= 1` (after [`resolve_threads`]) delegates to
/// [`knn_search_streamed_cancellable`] — byte-identical behaviour,
/// observer event order included.
///
/// # Panics
/// When `tile` is zero, `cfg.k` exceeds the number of references, or
/// the point sets disagree on dimensionality.
#[allow(clippy::too_many_arguments)]
pub fn knn_search_streamed_parallel_cancellable<O: PhaseObserver, C: CancelToken>(
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
    tile: usize,
    threads: usize,
    obs: &O,
    token: &C,
) -> Result<Vec<Vec<Neighbor>>, Cancelled> {
    knn_search_streamed_parallel_timelined(
        queries,
        refs,
        cfg,
        tile,
        threads,
        obs,
        token,
        &NullTimeline,
    )
}

/// [`knn_search_streamed_parallel_cancellable`] with per-worker
/// [`TimelineHooks`]: each worker announces itself, every block claim /
/// tile walk / block completion fires on that worker's track, and the
/// per-worker scratch reservation is reported once per worker. The
/// hooks carry **no timestamps** — a clock-owning implementation (such
/// as `knn::metered`'s recorder adapter) stamps them on arrival, so
/// this module stays clock-free and [`NullTimeline`] monomorphizes to
/// exactly the untimelined code.
///
/// Single-worker runs (after [`resolve_threads`]) delegate to the
/// sequential path and fire **no** timeline hooks; callers that want a
/// lane for a sequential run should wrap the call in a service span
/// (as `knn::metered` does), because sequential tile order is not block
/// order and per-block tracks would misattribute it.
#[allow(clippy::too_many_arguments)]
pub fn knn_search_streamed_parallel_timelined<
    O: PhaseObserver,
    C: CancelToken,
    T: TimelineHooks,
>(
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
    tile: usize,
    threads: usize,
    obs: &O,
    token: &C,
    tl: &T,
) -> Result<Vec<Vec<Neighbor>>, Cancelled> {
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::sync::Mutex;

    let workers = resolve_threads(threads);
    if workers <= 1 {
        return knn_search_streamed_cancellable(queries, refs, cfg, tile, obs, token);
    }
    assert!(tile > 0, "tile size must be positive");
    assert!(cfg.k <= refs.len(), "k exceeds the number of references");
    assert_eq!(queries.dim(), refs.dim(), "dimension mismatch");
    let q = queries.len();
    let n = refs.len();
    let tile = tile.min(n.max(1));
    let ref_norms = block::norms(refs);
    let q_norms = block::norms(queries);
    let tiles_total = n.div_ceil(tile);
    let block_len = block::QUERY_BLOCK.min(q.max(1));
    let blocks_total = q.div_ceil(block_len);
    let workers = workers.min(blocks_total.max(1));
    // Peak distance scratch across the pool: one block×tile row buffer
    // per worker, reused for every block that worker claims.
    obs.scratch_bytes((workers * block_len * tile * core::mem::size_of::<f32>()) as u64);

    let next_block = AtomicUsize::new(0);
    // Earliest tile boundary any block's token tripped at; usize::MAX =
    // not cancelled.
    let cancel_at = AtomicUsize::new(usize::MAX);
    let pushed_total = AtomicU64::new(0);
    let rejected_total = AtomicU64::new(0);
    let done: Mutex<Vec<(usize, Vec<Vec<Neighbor>>)>> =
        Mutex::new(Vec::with_capacity(blocks_total));

    rayon::scope_broadcast(workers, |worker| {
        tl.worker_started(worker);
        tl.scratch_reserved(
            worker,
            (block_len * tile * core::mem::size_of::<f32>()) as u64,
        );
        let mut scratch = vec![0.0f32; block_len * tile];
        'work: loop {
            if cancel_at.load(Ordering::Relaxed) != usize::MAX {
                break 'work;
            }
            let b = next_block.fetch_add(1, Ordering::Relaxed);
            if b >= blocks_total {
                break 'work;
            }
            tl.block_claimed(worker, b);
            let q0 = b * block_len;
            let q1 = (q0 + block_len).min(q);
            let mut mergers: Vec<StreamMerger> =
                (q0..q1).map(|_| StreamMerger::new(cfg.k)).collect();
            for (tiles_done, r0) in (0..n).step_by(tile).enumerate() {
                if token.is_cancelled(tiles_done) {
                    cancel_at.fetch_min(tiles_done, Ordering::Relaxed);
                    tl.block_finished(worker, b, tiles_done);
                    break 'work;
                }
                // Another block already tripped: this block's remaining
                // work would be discarded anyway.
                if cancel_at.load(Ordering::Relaxed) != usize::MAX {
                    tl.block_finished(worker, b, tiles_done);
                    break 'work;
                }
                let t_len = tile.min(n - r0);
                for (i, row) in scratch[..(q1 - q0) * t_len].chunks_mut(t_len).enumerate() {
                    let qi = q0 + i;
                    obs.timed_q(Phase::TileFill, qi, || {
                        block::fill_row_range(
                            queries.point(qi),
                            q_norms[qi],
                            refs,
                            &ref_norms,
                            r0,
                            &mut *row,
                        )
                    });
                    let topk = obs.timed_q(Phase::TileSelect, qi, || kselect::select_k(row, cfg));
                    let merger = &mut mergers[i];
                    obs.timed(Phase::TileMerge, || merger.push_chunk(topk, r0 as u32));
                }
                tl.tile_walked(worker, b, tiles_done);
            }
            let (mut pushed, mut rejected) = (0u64, 0u64);
            for (i, m) in mergers.iter().enumerate() {
                let s = m.stats();
                obs.query_merger_stats(q0 + i, s.pushed, s.rejected);
                obs.query_worker(q0 + i, worker);
                pushed += s.pushed;
                rejected += s.rejected;
            }
            pushed_total.fetch_add(pushed, Ordering::Relaxed);
            rejected_total.fetch_add(rejected, Ordering::Relaxed);
            let out: Vec<Vec<Neighbor>> = mergers.into_iter().map(StreamMerger::finish).collect();
            done.lock()
                .unwrap_or_else(|e| e.into_inner())
                .push((b, out));
            // Finish *after* the results push so the block span absorbs
            // any contention on the results mutex.
            tl.block_finished(worker, b, tiles_total);
        }
        tl.worker_finished(worker);
    });

    let tripped = cancel_at.load(Ordering::Relaxed);
    if tripped != usize::MAX {
        return Err(Cancelled {
            tiles_done: tripped,
            tiles_total,
        });
    }
    obs.merger_stats(
        pushed_total.load(Ordering::Relaxed),
        rejected_total.load(Ordering::Relaxed),
    );
    let mut blocks = done.into_inner().unwrap_or_else(|e| e.into_inner());
    blocks.sort_unstable_by_key(|&(b, _)| b);
    Ok(blocks.into_iter().flat_map(|(_, v)| v).collect())
}

/// Result of the simulated GPU k-NN pipeline.
pub struct GpuKnnResult {
    /// Per-query neighbors from the simulated selection kernel.
    pub neighbors: Vec<Vec<Neighbor>>,
    /// Metrics of the k-selection kernel (measured on the simulator).
    pub select_metrics: Metrics,
    /// Metrics of the distance kernel (analytic model).
    pub distance_metrics: Metrics,
    /// Simulated seconds for the selection kernel.
    pub select_time: f64,
    /// Simulated seconds for the distance kernel.
    pub distance_time: f64,
    /// Technique-level event counters from the selection kernel
    /// (all-zero unless built with the `trace` feature).
    pub counters: KernelCounters,
}

/// Run the full simulated pipeline for `queries` × `refs`.
///
/// The distance matrix is computed natively and uploaded into simulated
/// global memory; the distance kernel's execution cost comes from
/// [`gpu_distance_metrics`] (see that function for the calibration
/// rationale), while k-selection executes instruction-by-instruction on
/// the simulator.
pub fn gpu_knn(
    tm: &TimingModel,
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
) -> GpuKnnResult {
    let mut scratch = trace::Tracer::new();
    gpu_knn_traced(tm, queries, refs, cfg, &mut scratch)
}

/// [`gpu_knn`], recording the pipeline onto `tracer`'s simulated clock.
///
/// The trace lays out as: a `gpu_knn` phase containing the `distance`
/// phase (analytic distance kernel), a `transfer.upload` phase (PCIe
/// cost of the distance matrix — informational; not part of the
/// returned kernel times, matching the paper's timing breakdown), and
/// the `select` phase whose `gpu_select_k` kernel span nests an
/// `hp_build` span (when Hierarchical Partition is on) and one
/// concurrent per-warp span per launched warp. Kernel event counters
/// are folded into the tracer at the end of the selection phase.
pub fn gpu_knn_traced(
    tm: &TimingModel,
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
    tracer: &mut trace::Tracer,
) -> GpuKnnResult {
    use trace::Category;

    let pipeline = tracer.open_span(Category::Phase, "gpu_knn");

    // Distance phase: computed natively, costed analytically.
    let dist_m = gpu_distance_metrics(queries.len(), refs.len(), queries.dim());
    let distance_time = tracer.scoped(Category::Phase, "distance", |t| {
        simt::tracing::kernel_span(t, "distance_kernel", tm, &dist_m)
    });
    let fm = block::squared_distances(queries, refs);
    let dm = DistanceMatrix::from_row_major(fm.as_slice(), fm.q(), fm.n());

    // The distance matrix never leaves the device in the real pipeline;
    // this span records what uploading the *inputs* would cost.
    let input_bytes = ((queries.len() + refs.len()) * queries.dim() * 4) as u64;
    simt::tracing::transfer_span(tracer, "transfer.upload", tm, input_bytes);

    // Selection phase: executed instruction-by-instruction.
    let sel = gpu_select_k(&tm.spec, &dm, cfg);
    let select_time = tm.kernel_time(&sel.metrics);
    let select_phase = tracer.open_span(Category::Phase, "select");
    let kernel = tracer.open_span(Category::Kernel, "gpu_select_k");
    // HP construction is a prefix of the kernel's metrics, and the
    // timing model is monotone, so its share fits inside the kernel span.
    let build_time = tm.kernel_time(&sel.build_metrics);
    if sel.build_metrics.issued > 0 {
        tracer.span(Category::Build, "hp_build", build_time);
    }
    simt::tracing::warp_spans(tracer, "select", sel.n_warps, select_time - build_time);
    tracer.close_span(kernel);
    tracer.merge_counters(&sel.counters.to_counter_set());
    tracer.close_span(select_phase);

    tracer.close_span(pipeline);

    GpuKnnResult {
        neighbors: sel.neighbors,
        select_time,
        distance_time,
        select_metrics: sel.metrics,
        distance_metrics: dist_m,
        counters: sel.counters,
    }
}

/// Typed validation of one point set: a zero-dimensional or empty set,
/// or any non-finite coordinate, is a named error instead of a panic or
/// a silently wrong answer downstream. `kind` labels the set in the
/// error ("query" / "reference").
pub fn validate_points(points: &PointSet, kind: &'static str) -> Result<(), KnnError> {
    if points.is_empty() {
        return Err(KnnError::EmptyInput { what: kind });
    }
    if points.dim() == 0 {
        return Err(KnnError::ZeroDim);
    }
    if let Some(flat_idx) = points.as_flat().iter().position(|v| !v.is_finite()) {
        return Err(KnnError::NonFiniteInput {
            kind,
            index: flat_idx / points.dim(),
        });
    }
    Ok(())
}

/// Result of the resilient simulated pipeline.
#[derive(Debug)]
pub struct ResilientKnnResult {
    /// Per-query neighbors; `None` only for queries whose status is
    /// [`kselect::gpu::QueryStatus::Failed`].
    pub neighbors: Vec<Option<Vec<Neighbor>>>,
    /// Per-query outcomes and recovery totals. PCIe stall/corruption
    /// counts from the input upload are folded in.
    pub report: SearchReport,
    /// Metrics of the accepted selection attempts.
    pub select_metrics: Metrics,
    /// Metrics of rejected selection attempts — simulated work that was
    /// retried away.
    pub wasted_metrics: Metrics,
    /// Metrics of the distance kernel (analytic model).
    pub distance_metrics: Metrics,
    /// Simulated seconds for the accepted selection work.
    pub select_time: f64,
    /// Simulated seconds for the distance kernel.
    pub distance_time: f64,
    /// The (possibly faulted, possibly retried) input upload.
    pub upload: PcieReport,
    /// Technique-level event counters from accepted attempts.
    pub counters: KernelCounters,
}

impl ResilientKnnResult {
    /// Total modelled simulated seconds this request consumed end to
    /// end: the input upload (including stall and retry time), the
    /// analytic distance kernel, accepted *and* wasted selection work,
    /// retry backoff, and the host-fallback row transfers. A selection
    /// phase that never launched (every warp gated out by a deadline)
    /// costs zero rather than a phantom launch overhead.
    pub fn modeled_seconds(&self, tm: &TimingModel) -> f64 {
        let kernel_s = |m: &Metrics| {
            if m.issued == 0 {
                0.0
            } else {
                tm.kernel_time(m)
            }
        };
        self.upload.seconds
            + self.distance_time
            + kernel_s(&self.select_metrics)
            + kernel_s(&self.wasted_metrics)
            + self.report.backoff_s
            + self.report.fallback_transfer_s
    }
}

/// [`gpu_knn`] hardened end to end. Inputs are validated up front
/// ([`validate_points`] plus the selection-request checks), the input
/// upload runs through the faultable PCIe model
/// ([`pcie::transfer_with_faults`]), and k-selection runs under
/// `res`'s retry/validation/fallback policy. Everything — including an
/// injected fault campaign — is deterministic, so the whole
/// [`ResilientKnnResult`] replays byte for byte.
pub fn gpu_knn_resilient(
    tm: &TimingModel,
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
    res: &GpuResilience,
) -> Result<ResilientKnnResult, KnnError> {
    validate_points(queries, "query")?;
    validate_points(refs, "reference")?;
    assert_eq!(queries.dim(), refs.dim(), "dimension mismatch");

    let dist_m = gpu_distance_metrics(queries.len(), refs.len(), queries.dim());
    let distance_time = tm.kernel_time(&dist_m);
    let fm = block::squared_distances(queries, refs);
    let dm = DistanceMatrix::from_row_major(fm.as_slice(), fm.q(), fm.n());

    // Upload the input points across the (possibly faulted) link. A
    // corrupt payload is detected and retried; only persistent
    // corruption escalates to `TransferFailed`.
    let input_bytes = ((queries.len() + refs.len()) * queries.dim() * 4) as u64;
    let upload = match &res.faults {
        Some(plan) => pcie::transfer_with_faults(&tm.spec, input_bytes, plan, 0, res.max_attempts)?,
        None => PcieReport {
            attempts: 1,
            seconds: pcie::transfer_time(&tm.spec, input_bytes),
            ..PcieReport::default()
        },
    };

    let sel = gpu_select_k_resilient(&tm.spec, &dm, cfg, res)?;
    let mut report = sel.report;
    report.counters.pcie_stalls += upload.stalls;
    report.counters.pcie_corruptions += upload.corruptions;

    Ok(ResilientKnnResult {
        neighbors: sel.neighbors,
        report,
        select_time: tm.kernel_time(&sel.metrics),
        distance_time,
        select_metrics: sel.metrics,
        wasted_metrics: sel.wasted,
        distance_metrics: dist_m,
        upload,
        counters: sel.counters,
    })
}

/// [`gpu_knn_resilient`] under a simulated-time deadline, with
/// cooperative cancellation at warp-launch boundaries.
///
/// `budget_s` is the request's remaining deadline budget in simulated
/// seconds, measured from the start of the input upload. The upload
/// and the analytic distance kernel are single device-side operations
/// and always complete (a launch in flight is not preempted); the
/// selection kernel then consults a gate before *every* warp launch —
/// once `upload + distance + selection work so far (accepted and
/// wasted) + backoff` reaches the budget, no further warp launches,
/// and the remaining queries report
/// [`kselect::gpu::QueryStatus::DeadlineExceeded`] with no result:
/// past-deadline queries stop consuming work instead of finishing
/// late. Gated selection runs warps sequentially in warp-id order (see
/// [`simt::launch_resilient_gated`]), so with a generous budget the
/// output is byte-identical to [`gpu_knn_resilient`].
pub fn gpu_knn_resilient_deadline(
    tm: &TimingModel,
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
    res: &GpuResilience,
    budget_s: f64,
) -> Result<ResilientKnnResult, KnnError> {
    validate_points(queries, "query")?;
    validate_points(refs, "reference")?;
    assert_eq!(queries.dim(), refs.dim(), "dimension mismatch");

    let dist_m = gpu_distance_metrics(queries.len(), refs.len(), queries.dim());
    let distance_time = tm.kernel_time(&dist_m);
    let fm = block::squared_distances(queries, refs);
    let dm = DistanceMatrix::from_row_major(fm.as_slice(), fm.q(), fm.n());

    let input_bytes = ((queries.len() + refs.len()) * queries.dim() * 4) as u64;
    let upload = match &res.faults {
        Some(plan) => pcie::transfer_with_faults(&tm.spec, input_bytes, plan, 0, res.max_attempts)?,
        None => PcieReport {
            attempts: 1,
            seconds: pcie::transfer_time(&tm.spec, input_bytes),
            ..PcieReport::default()
        },
    };

    let spent_before_select = upload.seconds + distance_time;
    let sel = gpu_select_k_resilient_gated(&tm.spec, &dm, cfg, res, |_, consumed, backoff_s| {
        let select_s = if consumed.issued == 0 {
            0.0
        } else {
            tm.kernel_time(consumed)
        };
        spent_before_select + select_s + backoff_s < budget_s
    })?;
    let mut report = sel.report;
    report.counters.pcie_stalls += upload.stalls;
    report.counters.pcie_corruptions += upload.corruptions;

    Ok(ResilientKnnResult {
        neighbors: sel.neighbors,
        report,
        select_time: tm.kernel_time(&sel.metrics),
        distance_time,
        select_metrics: sel.metrics,
        wasted_metrics: sel.wasted,
        distance_metrics: dist_m,
        upload,
        counters: sel.counters,
    })
}

/// Lowercase queue-kind tag journal records carry (`merge`, `heap`,
/// `insertion`).
pub fn queue_tag(cfg: &SelectConfig) -> String {
    format!("{:?}", cfg.queue).to_lowercase()
}

/// [`gpu_knn_resilient`] that additionally emits one
/// [`trace::QueryRecord`] per query into `journal`, correlating each
/// query's retry/fallback outcome with its latency share.
///
/// The simulated pipeline has no per-query wall clock, so the record's
/// nanoseconds are **simulated-time attribution**: the distance
/// kernel's time is shared evenly across queries, the accepted
/// selection time is split proportionally to each query's kernel
/// attempts (a query that needed 3 attempts carries 3 shares), retry
/// backoff is split across the *extra* attempts, and the host-fallback
/// transfer across the fallback queries. The attribution sums back to
/// the report's totals, and — by construction — the slowest-query
/// exemplars are exactly the queries the resilience layer struggled
/// with, which is what a tail investigation needs surfaced.
///
/// `tag` labels the run in every record (e.g. the fault-campaign seed).
/// With a [`trace::NullJournal`] this is `gpu_knn_resilient` plus one
/// dead branch.
pub fn gpu_knn_resilient_journaled<J: trace::Journal>(
    tm: &TimingModel,
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
    res: &GpuResilience,
    journal: &J,
    tag: &str,
) -> Result<ResilientKnnResult, KnnError> {
    use kselect::gpu::QueryStatus;

    let out = gpu_knn_resilient(tm, queries, refs, cfg, res)?;
    if !journal.enabled() {
        return Ok(out);
    }
    let q = out.report.statuses.len().max(1) as f64;
    let attempts: Vec<u32> = out
        .report
        .statuses
        .iter()
        .map(|s| match s {
            QueryStatus::Ok => 1,
            QueryStatus::Recovered { attempts } | QueryStatus::Fallback { attempts } => *attempts,
            QueryStatus::Failed { after_attempts, .. } => *after_attempts,
            // A gated-out warp never launched, so its queries carry no
            // attempt share of the selection time.
            QueryStatus::DeadlineExceeded => 0,
        })
        .collect();
    let total_attempts: u64 = attempts.iter().map(|&a| a as u64).sum();
    let extra_attempts: u64 = attempts.iter().map(|&a| a.saturating_sub(1) as u64).sum();
    let fallbacks = out.report.fallback_count().max(1) as f64;
    let distance_ns = out.distance_time * 1e9 / q;
    let select_ns_per_attempt = out.select_time * 1e9 / total_attempts.max(1) as f64;
    let backoff_ns_per_extra = out.report.backoff_s * 1e9 / extra_attempts.max(1) as f64;
    let fallback_ns_each = out.report.fallback_transfer_s * 1e9 / fallbacks;
    for (qi, status) in out.report.statuses.iter().enumerate() {
        let a = attempts[qi];
        let select_ns = select_ns_per_attempt * a as f64;
        let backoff_ns = backoff_ns_per_extra * a.saturating_sub(1) as f64;
        let fallback_ns = if matches!(status, QueryStatus::Fallback { .. }) {
            fallback_ns_each
        } else {
            0.0
        };
        let mut phase_ns = vec![
            (
                trace::journal::phases::DISTANCE.to_string(),
                distance_ns as u64,
            ),
            (trace::journal::phases::SELECT.to_string(), select_ns as u64),
        ];
        if backoff_ns > 0.0 {
            phase_ns.push((
                trace::journal::phases::BACKOFF.to_string(),
                backoff_ns as u64,
            ));
        }
        if fallback_ns > 0.0 {
            phase_ns.push((
                trace::journal::phases::FALLBACK.to_string(),
                fallback_ns as u64,
            ));
        }
        journal.record(trace::QueryRecord {
            query: qi as u64,
            queue: queue_tag(cfg),
            tag: tag.to_string(),
            total_ns: phase_ns.iter().map(|(_, ns)| ns).sum(),
            phase_ns,
            blocks: 1,
            status: status.name().to_string(),
            attempts: a,
            ..trace::QueryRecord::default()
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kselect::QueueKind;

    #[test]
    fn native_and_simulated_pipelines_agree() {
        let queries = PointSet::uniform(40, 16, 101);
        let refs = PointSet::uniform(300, 16, 102);
        let cfg = SelectConfig::optimized(QueueKind::Merge, 8);
        let native = knn_search(&queries, &refs, &cfg);
        let tm = TimingModel::tesla_c2075();
        let sim = gpu_knn(&tm, &queries, &refs, &cfg);
        assert_eq!(native.len(), sim.neighbors.len());
        for (a, b) in native.iter().zip(&sim.neighbors) {
            let ad: Vec<f32> = a.iter().map(|n| n.dist).collect();
            let bd: Vec<f32> = b.iter().map(|n| n.dist).collect();
            assert_eq!(ad, bd);
        }
    }

    #[test]
    fn streamed_matches_materialized_across_tiles() {
        let queries = PointSet::uniform(30, 12, 118);
        let refs = PointSet::uniform(500, 12, 119);
        for kind in [QueueKind::Insertion, QueueKind::Merge, QueueKind::Heap] {
            let cfg = SelectConfig::plain(kind, 16);
            let full = knn_search(&queries, &refs, &cfg);
            // Tiles straddling k, tile-edge remainders, and tile > N.
            for tile in [7usize, 16, 100, 499, 500, 4096] {
                let streamed = knn_search_streamed(&queries, &refs, &cfg, tile);
                assert_eq!(streamed, full, "kind {kind:?} tile {tile}");
            }
        }
    }

    #[test]
    fn parallel_streamed_matches_sequential_at_any_thread_count() {
        // 70 queries = 3 query blocks (QUERY_BLOCK = 32): more blocks
        // than workers at 2 threads, fewer at 8.
        let queries = PointSet::uniform(70, 12, 218);
        let refs = PointSet::uniform(500, 12, 219);
        for kind in [QueueKind::Insertion, QueueKind::Merge, QueueKind::Heap] {
            let cfg = SelectConfig::plain(kind, 16);
            for tile in [7usize, 100, 500, 4096] {
                let sequential = knn_search_streamed(&queries, &refs, &cfg, tile);
                for threads in [1usize, 2, 8] {
                    let parallel =
                        knn_search_streamed_parallel(&queries, &refs, &cfg, tile, threads);
                    assert_eq!(
                        parallel, sequential,
                        "kind {kind:?} tile {tile} threads {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_streamed_handles_small_query_counts() {
        // Fewer queries than one block, and exactly one block.
        let refs = PointSet::uniform(300, 8, 220);
        let cfg = SelectConfig::plain(QueueKind::Merge, 8);
        for q in [1usize, 5, 32] {
            let queries = PointSet::uniform(q, 8, 221);
            let sequential = knn_search_streamed(&queries, &refs, &cfg, 64);
            let parallel = knn_search_streamed_parallel(&queries, &refs, &cfg, 64, 8);
            assert_eq!(parallel, sequential, "q {q}");
        }
    }

    #[test]
    fn parallel_tile_budget_stops_at_the_sequential_boundary() {
        let queries = PointSet::uniform(70, 8, 222);
        let refs = PointSet::uniform(400, 8, 223);
        let cfg = SelectConfig::plain(QueueKind::Heap, 4);
        // 400 refs / 64-tile = 7 tiles; admit 3 — every block trips at
        // the same boundary, so the report matches the sequential path.
        for threads in [2usize, 8] {
            let out = knn_search_streamed_parallel_cancellable(
                &queries,
                &refs,
                &cfg,
                64,
                threads,
                &NullObserver,
                &TileBudget(3),
            );
            assert_eq!(
                out,
                Err(Cancelled {
                    tiles_done: 3,
                    tiles_total: 7
                }),
                "threads {threads}"
            );
            let none = knn_search_streamed_parallel_cancellable(
                &queries,
                &refs,
                &cfg,
                64,
                threads,
                &NullObserver,
                &TileBudget(0),
            );
            assert_eq!(
                none,
                Err(Cancelled {
                    tiles_done: 0,
                    tiles_total: 7
                }),
                "threads {threads}"
            );
        }
        // A budget covering every tile completes with exact results.
        let full = knn_search_streamed(&queries, &refs, &cfg, 64);
        let budgeted = knn_search_streamed_parallel_cancellable(
            &queries,
            &refs,
            &cfg,
            64,
            4,
            &NullObserver,
            &TileBudget(7),
        );
        assert_eq!(budgeted, Ok(full));
    }

    #[test]
    fn resolve_threads_zero_is_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(6), 6);
    }

    #[test]
    fn cancellable_with_never_cancel_matches_streamed() {
        let queries = PointSet::uniform(20, 8, 210);
        let refs = PointSet::uniform(400, 8, 211);
        let cfg = SelectConfig::plain(QueueKind::Merge, 8);
        let plain = knn_search_streamed(&queries, &refs, &cfg, 64);
        let cancellable =
            knn_search_streamed_cancellable(&queries, &refs, &cfg, 64, &NullObserver, &NeverCancel)
                .expect("NeverCancel never trips");
        assert_eq!(plain, cancellable);
    }

    #[test]
    fn tile_budget_stops_at_the_boundary_without_partial_results() {
        let queries = PointSet::uniform(10, 8, 212);
        let refs = PointSet::uniform(400, 8, 213);
        let cfg = SelectConfig::plain(QueueKind::Heap, 4);
        // 400 refs / 64-tile = 7 tiles; admit 3.
        let out = knn_search_streamed_cancellable(
            &queries,
            &refs,
            &cfg,
            64,
            &NullObserver,
            &TileBudget(3),
        );
        assert_eq!(
            out,
            Err(Cancelled {
                tiles_done: 3,
                tiles_total: 7
            })
        );
        // A zero budget stops before any tile.
        let none = knn_search_streamed_cancellable(
            &queries,
            &refs,
            &cfg,
            64,
            &NullObserver,
            &TileBudget(0),
        );
        assert_eq!(
            none,
            Err(Cancelled {
                tiles_done: 0,
                tiles_total: 7
            })
        );
    }

    #[test]
    fn deadline_pipeline_with_generous_budget_matches_resilient() {
        let queries = PointSet::uniform(64, 12, 214);
        let refs = PointSet::uniform(300, 12, 215);
        let cfg = SelectConfig::optimized(QueueKind::Merge, 16);
        let tm = TimingModel::tesla_c2075();
        let res = GpuResilience::default();
        let plain = gpu_knn_resilient(&tm, &queries, &refs, &cfg, &res).unwrap();
        let bounded = gpu_knn_resilient_deadline(&tm, &queries, &refs, &cfg, &res, 1e9).unwrap();
        assert_eq!(plain.neighbors, bounded.neighbors);
        assert_eq!(plain.report, bounded.report);
        assert_eq!(plain.select_metrics, bounded.select_metrics);
        assert!(bounded.modeled_seconds(&tm) > 0.0);
    }

    #[test]
    fn deadline_pipeline_sheds_work_past_the_budget() {
        let queries = PointSet::uniform(96, 12, 216); // 3 warps
        let refs = PointSet::uniform(300, 12, 217);
        let cfg = SelectConfig::optimized(QueueKind::Merge, 16);
        let tm = TimingModel::tesla_c2075();
        let res = GpuResilience::default();
        let full = gpu_knn_resilient_deadline(&tm, &queries, &refs, &cfg, &res, 1e9).unwrap();
        let full_s = full.modeled_seconds(&tm);

        // A budget below even the upload+distance cost launches nothing.
        let starved = gpu_knn_resilient_deadline(&tm, &queries, &refs, &cfg, &res, 0.0).unwrap();
        assert_eq!(starved.report.deadline_exceeded_count(), 96);
        assert!(starved.neighbors.iter().all(Option::is_none));
        assert_eq!(starved.select_metrics.issued, 0);
        assert!(starved.modeled_seconds(&tm) < full_s);

        // A budget that barely clears upload+distance admits warp 0's
        // launch (a launch in flight completes), then the gate closes:
        // warps 1 and 2 never start, and their 64 queries report
        // deadline-exceeded.
        let partial_budget = starved.upload.seconds + starved.distance_time + 1e-9;
        let partial =
            gpu_knn_resilient_deadline(&tm, &queries, &refs, &cfg, &res, partial_budget).unwrap();
        assert_eq!(partial.report.deadline_exceeded_count(), 64);
        assert_eq!(partial.report.counters.deadline_skips, 2);
        // The served prefix is bit-identical to the unbounded run.
        for (a, b) in partial.neighbors.iter().zip(&full.neighbors) {
            if let Some(a) = a {
                assert_eq!(Some(a), b.as_ref());
            }
        }
        assert!(partial.modeled_seconds(&tm) < full_s);
    }

    #[test]
    #[should_panic]
    fn streamed_zero_tile_rejected() {
        let p = PointSet::uniform(2, 4, 120);
        knn_search_streamed(&p, &p, &SelectConfig::plain(QueueKind::Heap, 1), 0);
    }

    #[test]
    fn knn_of_identical_point_is_itself() {
        let refs = PointSet::uniform(50, 8, 103);
        // Query = reference 17 exactly.
        let q = PointSet::from_flat(refs.point(17).to_vec(), 8);
        let cfg = SelectConfig::plain(QueueKind::Insertion, 3);
        let res = knn_search(&q, &refs, &cfg);
        assert_eq!(res[0][0].id, 17);
        assert_eq!(res[0][0].dist, 0.0);
    }

    #[test]
    fn traced_pipeline_emits_balanced_monotonic_spans() {
        let tm = TimingModel::tesla_c2075();
        let queries = PointSet::uniform(40, 8, 106);
        let refs = PointSet::uniform(512, 8, 107);
        let cfg = SelectConfig::optimized(QueueKind::Merge, 16);
        let mut tracer = trace::Tracer::new();
        let res = gpu_knn_traced(&tm, &queries, &refs, &cfg, &mut tracer);
        assert_eq!(res.neighbors.len(), 40);
        assert!(tracer.is_balanced(), "every opened span must close");
        let ts: Vec<f64> = tracer.events().iter().map(|e| e.ts_us).collect();
        assert!(
            ts.windows(2).all(|w| w[0] <= w[1]),
            "simulated timestamps must be monotonic"
        );
        // the pipeline covers the full modelled duration
        assert!(tracer.clock_s() >= res.distance_time + res.select_time);
        let names: Vec<&str> = tracer.events().iter().map(|e| e.name.as_str()).collect();
        for expected in [
            "gpu_knn",
            "distance",
            "transfer.upload",
            "select",
            "gpu_select_k",
        ] {
            assert!(names.contains(&expected), "missing span {expected}");
        }
        // optimized config uses HP ⇒ build span + per-warp lanes appear
        assert!(names.contains(&"hp_build"));
        assert!(names.iter().any(|n| n.starts_with("select.warp")));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn traced_pipeline_collects_kernel_counters() {
        let tm = TimingModel::tesla_c2075();
        let queries = PointSet::uniform(32, 8, 108);
        let refs = PointSet::uniform(400, 8, 109);
        let cfg = SelectConfig::optimized(QueueKind::Merge, 16);
        let mut tracer = trace::Tracer::new();
        let res = gpu_knn_traced(&tm, &queries, &refs, &cfg, &mut tracer);
        assert!(res.counters.queue_inserts > 0);
        assert_eq!(
            tracer.counters().get(trace::names::QUEUE_INSERT),
            res.counters.queue_inserts
        );
    }

    #[test]
    fn resilient_pipeline_validates_inputs() {
        let tm = TimingModel::tesla_c2075();
        let refs = PointSet::uniform(64, 8, 110);
        let good = PointSet::uniform(4, 8, 111);
        let res = GpuResilience::default();
        let cfg = SelectConfig::plain(QueueKind::Heap, 8);

        let empty = PointSet::from_flat(vec![], 8);
        let err = gpu_knn_resilient(&tm, &empty, &refs, &cfg, &res).unwrap_err();
        assert_eq!(err.name(), "empty-input");

        let mut bad = good.as_flat().to_vec();
        bad[2 * 8 + 3] = f32::NAN;
        let nan_query = PointSet::from_flat(bad, 8);
        let err = gpu_knn_resilient(&tm, &nan_query, &refs, &cfg, &res).unwrap_err();
        assert_eq!(
            err,
            KnnError::NonFiniteInput {
                kind: "query",
                index: 2
            }
        );

        let mut bad = refs.as_flat().to_vec();
        bad[7 * 8] = f32::INFINITY;
        let inf_refs = PointSet::from_flat(bad, 8);
        let err = gpu_knn_resilient(&tm, &good, &inf_refs, &cfg, &res).unwrap_err();
        assert_eq!(
            err,
            KnnError::NonFiniteInput {
                kind: "reference",
                index: 7
            }
        );

        let err = gpu_knn_resilient(
            &tm,
            &good,
            &refs,
            &SelectConfig::plain(QueueKind::Heap, 0),
            &res,
        )
        .unwrap_err();
        assert_eq!(err.name(), "invalid-k");
        let err = gpu_knn_resilient(
            &tm,
            &good,
            &refs,
            &SelectConfig::plain(QueueKind::Heap, 65),
            &res,
        )
        .unwrap_err();
        assert_eq!(err, KnnError::InvalidK { k: 65, n: 64 });
    }

    #[test]
    fn resilient_pipeline_matches_plain_when_fault_free() {
        let tm = TimingModel::tesla_c2075();
        let queries = PointSet::uniform(40, 16, 112);
        let refs = PointSet::uniform(300, 16, 113);
        let cfg = SelectConfig::optimized(QueueKind::Merge, 8);
        let plain = gpu_knn(&tm, &queries, &refs, &cfg);
        let out = gpu_knn_resilient(&tm, &queries, &refs, &cfg, &GpuResilience::default()).unwrap();
        assert_eq!(out.select_metrics, plain.select_metrics);
        assert_eq!(out.select_time, plain.select_time);
        assert_eq!(out.distance_time, plain.distance_time);
        assert_eq!(out.wasted_metrics, Metrics::new());
        for (qi, got) in out.neighbors.iter().enumerate() {
            assert_eq!(got.as_deref(), Some(&plain.neighbors[qi][..]));
        }
        assert_eq!(out.report.ok_count(), 40);
        assert_eq!(out.upload.attempts, 1);
        assert!(out.upload.seconds > 0.0);
    }

    #[test]
    fn pcie_stalls_surface_in_the_report_without_kernel_hooks() {
        // A PCIe-only plan needs no kernel instrumentation, so this runs
        // (and must behave identically) with or without the `fault`
        // feature: the upload stalls, costs extra simulated time, and the
        // stall is counted — but every query still gets the exact result.
        let tm = TimingModel::tesla_c2075();
        let queries = PointSet::uniform(8, 8, 114);
        let refs = PointSet::uniform(128, 8, 115);
        let cfg = SelectConfig::plain(QueueKind::Merge, 8);
        let res =
            GpuResilience::default().with_faults(simt::FaultPlan::seeded(9).with_pcie(1.0, 0.0));
        let out = gpu_knn_resilient(&tm, &queries, &refs, &cfg, &res).unwrap();
        assert_eq!(out.report.counters.pcie_stalls, 1);
        assert_eq!(out.report.counters.pcie_corruptions, 0);
        let clean = gpu_knn_resilient(&tm, &queries, &refs, &cfg, &GpuResilience::default())
            .unwrap()
            .upload
            .seconds;
        assert!(out.upload.seconds > clean, "a stall costs link time");
        assert_eq!(out.report.ok_count(), 8);
    }

    #[test]
    fn persistent_pcie_corruption_is_a_typed_error() {
        let tm = TimingModel::tesla_c2075();
        let queries = PointSet::uniform(4, 8, 116);
        let refs = PointSet::uniform(64, 8, 117);
        let cfg = SelectConfig::plain(QueueKind::Heap, 8);
        let res = GpuResilience {
            max_attempts: 3,
            ..GpuResilience::default()
        }
        .with_faults(simt::FaultPlan::seeded(10).with_pcie(0.0, 1.0));
        let err = gpu_knn_resilient(&tm, &queries, &refs, &cfg, &res).unwrap_err();
        assert_eq!(err, KnnError::TransferFailed { attempts: 3 });
    }

    #[test]
    fn journaled_resilient_pipeline_is_transparent_and_attributes_time() {
        let tm = TimingModel::tesla_c2075();
        let queries = PointSet::uniform(24, 8, 121);
        let refs = PointSet::uniform(200, 8, 122);
        let cfg = SelectConfig::plain(QueueKind::Merge, 8);
        let res = GpuResilience::default();
        // NullJournal: identical result, nothing recorded
        let plain = gpu_knn_resilient(&tm, &queries, &refs, &cfg, &res).unwrap();
        let nulled =
            gpu_knn_resilient_journaled(&tm, &queries, &refs, &cfg, &res, &trace::NullJournal, "x")
                .unwrap();
        assert_eq!(nulled.select_time, plain.select_time);
        assert_eq!(nulled.neighbors.len(), plain.neighbors.len());
        // EventJournal: one record per query, simulated time attributed
        let journal = trace::EventJournal::new(trace::JournalConfig::default());
        let out =
            gpu_knn_resilient_journaled(&tm, &queries, &refs, &cfg, &res, &journal, "campaign")
                .unwrap();
        let snap = journal.snapshot();
        assert_eq!(snap.len(), 24);
        let attributed: u64 = snap.iter().map(|r| r.total_ns).sum();
        let modelled = ((out.distance_time + out.select_time) * 1e9) as u64;
        let drift = attributed.abs_diff(modelled);
        assert!(
            drift <= 24 * 2, // one truncated ns per phase per query
            "attribution must sum back to the modelled total: {attributed} vs {modelled}"
        );
        let expected_dominant = if out.select_time >= out.distance_time {
            "select"
        } else {
            "distance"
        };
        for r in &snap {
            assert_eq!(r.status, "ok");
            assert_eq!(r.attempts, 1);
            assert_eq!(r.queue, "merge");
            assert_eq!(r.tag, "campaign");
            assert_eq!(r.dominant_phase().map(|(p, _)| p), Some(expected_dominant));
        }
    }

    #[cfg(feature = "fault")]
    #[test]
    fn journaled_fault_campaign_surfaces_retries_as_exemplars() {
        let tm = TimingModel::tesla_c2075();
        let queries = PointSet::uniform(96, 8, 123);
        let refs = PointSet::uniform(256, 8, 124);
        let cfg = SelectConfig::plain(QueueKind::Merge, 8);
        let res =
            GpuResilience::default().with_faults(simt::FaultPlan::seeded(102).with_aborts(0.9));
        let journal = trace::EventJournal::new(trace::JournalConfig {
            exemplars: 4,
            ..trace::JournalConfig::default()
        });
        gpu_knn_resilient_journaled(&tm, &queries, &refs, &cfg, &res, &journal, "seed41").unwrap();
        let snap = journal.snapshot();
        let retried: Vec<&trace::QueryRecord> = snap.iter().filter(|r| r.attempts > 1).collect();
        assert!(!retried.is_empty(), "a 30% abort rate must retry something");
        for r in &retried {
            assert_ne!(r.status, "ok");
            assert!(
                r.phase_ns
                    .iter()
                    .any(|(p, _)| p == "backoff" || p == "fallback"),
                "retried query must carry recovery phases: {r:?}"
            );
        }
        // exemplars (slowest queries) are exactly where the retries are
        let exemplar_min = snap
            .iter()
            .filter(|r| r.exemplar)
            .map(|r| r.total_ns)
            .min()
            .unwrap();
        let clean_max = snap
            .iter()
            .filter(|r| r.attempts == 1)
            .map(|r| r.total_ns)
            .max()
            .unwrap();
        assert!(
            exemplar_min >= clean_max,
            "retried queries must dominate the exemplar set"
        );
    }

    #[test]
    fn simulated_times_are_positive_and_split() {
        let tm = TimingModel::tesla_c2075();
        let queries = PointSet::uniform(32, 8, 104);
        let refs = PointSet::uniform(256, 8, 105);
        let r = gpu_knn(
            &tm,
            &queries,
            &refs,
            &SelectConfig::plain(QueueKind::Heap, 8),
        );
        assert!(r.select_time > 0.0);
        assert!(r.distance_time > 0.0);
        assert!(r.select_metrics.issued > 0);
        assert!(r.distance_metrics.issued > 0);
    }
}
