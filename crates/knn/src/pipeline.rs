//! End-to-end k-NN search: distance phase + k-selection phase.
//!
//! * [`knn_search`] — the native library entry point: real computation on
//!   the host, parallel over queries. This is what a downstream user of
//!   the crate calls.
//! * [`gpu_knn`] — the simulated pipeline the experiments use: distances
//!   are computed natively (they are *data*), the distance kernel's cost
//!   is charged analytically, and k-selection runs for real on the SIMT
//!   simulator. Returns the per-phase simulated times the paper's Table I
//!   reports.

use kselect::gpu::{gpu_select_k, DistanceMatrix};
use kselect::types::Neighbor;
use kselect::SelectConfig;
use rayon::prelude::*;
use simt::{Metrics, TimingModel};

use crate::dataset::PointSet;
use crate::distance::{distance_matrix, gpu_distance_metrics};

/// Native k-NN search: for each query, the k nearest references by
/// squared Euclidean distance, sorted ascending.
pub fn knn_search(
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
) -> Vec<Vec<Neighbor>> {
    knn_search_with(queries, refs, cfg, crate::metric::Metric::SquaredEuclidean)
}

/// [`knn_search`] under an arbitrary [`crate::metric::Metric`].
pub fn knn_search_with(
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
    metric: crate::metric::Metric,
) -> Vec<Vec<Neighbor>> {
    assert!(cfg.k <= refs.len(), "k exceeds the number of references");
    (0..queries.len())
        .into_par_iter()
        .map(|qi| {
            let qp = queries.point(qi);
            let dists: Vec<f32> = (0..refs.len())
                .map(|ri| metric.distance(qp, refs.point(ri)))
                .collect();
            kselect::select_k(&dists, cfg)
        })
        .collect()
}

/// Result of the simulated GPU k-NN pipeline.
pub struct GpuKnnResult {
    /// Per-query neighbors from the simulated selection kernel.
    pub neighbors: Vec<Vec<Neighbor>>,
    /// Metrics of the k-selection kernel (measured on the simulator).
    pub select_metrics: Metrics,
    /// Metrics of the distance kernel (analytic model).
    pub distance_metrics: Metrics,
    /// Simulated seconds for the selection kernel.
    pub select_time: f64,
    /// Simulated seconds for the distance kernel.
    pub distance_time: f64,
}

/// Run the full simulated pipeline for `queries` × `refs`.
///
/// The distance matrix is computed natively and uploaded into simulated
/// global memory; the distance kernel's execution cost comes from
/// [`gpu_distance_metrics`] (see that function for the calibration
/// rationale), while k-selection executes instruction-by-instruction on
/// the simulator.
pub fn gpu_knn(
    tm: &TimingModel,
    queries: &PointSet,
    refs: &PointSet,
    cfg: &SelectConfig,
) -> GpuKnnResult {
    let rows = distance_matrix(queries, refs);
    let dm = DistanceMatrix::from_rows(&rows);
    let sel = gpu_select_k(&tm.spec, &dm, cfg);
    let dist_m = gpu_distance_metrics(queries.len(), refs.len(), queries.dim());
    GpuKnnResult {
        neighbors: sel.neighbors,
        select_time: tm.kernel_time(&sel.metrics),
        distance_time: tm.kernel_time(&dist_m),
        select_metrics: sel.metrics,
        distance_metrics: dist_m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kselect::QueueKind;

    #[test]
    fn native_and_simulated_pipelines_agree() {
        let queries = PointSet::uniform(40, 16, 101);
        let refs = PointSet::uniform(300, 16, 102);
        let cfg = SelectConfig::optimized(QueueKind::Merge, 8);
        let native = knn_search(&queries, &refs, &cfg);
        let tm = TimingModel::tesla_c2075();
        let sim = gpu_knn(&tm, &queries, &refs, &cfg);
        assert_eq!(native.len(), sim.neighbors.len());
        for (a, b) in native.iter().zip(&sim.neighbors) {
            let ad: Vec<f32> = a.iter().map(|n| n.dist).collect();
            let bd: Vec<f32> = b.iter().map(|n| n.dist).collect();
            assert_eq!(ad, bd);
        }
    }

    #[test]
    fn knn_of_identical_point_is_itself() {
        let refs = PointSet::uniform(50, 8, 103);
        // Query = reference 17 exactly.
        let q = PointSet::from_flat(refs.point(17).to_vec(), 8);
        let cfg = SelectConfig::plain(QueueKind::Insertion, 3);
        let res = knn_search(&q, &refs, &cfg);
        assert_eq!(res[0][0].id, 17);
        assert_eq!(res[0][0].dist, 0.0);
    }

    #[test]
    fn simulated_times_are_positive_and_split() {
        let tm = TimingModel::tesla_c2075();
        let queries = PointSet::uniform(32, 8, 104);
        let refs = PointSet::uniform(256, 8, 105);
        let r = gpu_knn(
            &tm,
            &queries,
            &refs,
            &SelectConfig::plain(QueueKind::Heap, 8),
        );
        assert!(r.select_time > 0.0);
        assert!(r.distance_time > 0.0);
        assert!(r.select_metrics.issued > 0);
        assert!(r.distance_metrics.issued > 0);
    }
}
