//! # knn — the k-NN pipeline around k-selection
//!
//! The substrate the paper's evaluation runs on: synthetic datasets
//! ([`dataset`]), Euclidean distance matrices ([`distance`]) with both a
//! real rayon implementation and an analytic simulated-GPU cost model,
//! CPU k-selection baselines ([`cpu`], the paper's "CPU 1"/"CPU 16"
//! rows), the PCIe transfer model ([`pcie`], the "Data Copy" row), and
//! end-to-end pipelines ([`pipeline`]).
//!
//! ```
//! use knn::{PointSet, knn_search};
//! use kselect::{SelectConfig, QueueKind};
//!
//! let refs = PointSet::uniform(1000, 32, 1);
//! let queries = PointSet::uniform(4, 32, 2);
//! let knn = knn_search(&queries, &refs, &SelectConfig::optimized(QueueKind::Merge, 8));
//! assert_eq!(knn.len(), 4);
//! assert_eq!(knn[0].len(), 8);
//! ```

pub mod cpu;
pub mod dataset;
pub mod distance;
pub mod eval;
pub mod graph;
#[cfg(feature = "metrics")]
pub mod metered;
pub mod metric;
pub mod pcie;
pub mod pipeline;

pub use cpu::{
    cpu_select_parallel, cpu_select_parallel_flat, cpu_select_serial, cpu_select_serial_flat,
    heap_select,
};
pub use dataset::PointSet;
pub use distance::block::{self, FlatMatrix, DEFAULT_STREAM_TILE};
pub use distance::simd::{self, dispatch_name};
pub use distance::{
    clamp_non_finite, distance_matrix, dot, gpu_distance_metrics, squared_distance, squared_norm,
};
pub use eval::{ground_truth, mean_recall, recall_at_k};
pub use graph::KnnGraph;
#[cfg(feature = "metrics")]
pub use metered::{
    knn_search_metered, knn_search_streamed_journaled, knn_search_streamed_metered,
    knn_search_streamed_parallel_instrumented, knn_search_streamed_parallel_journaled,
    knn_search_streamed_parallel_metered, knn_search_with_journaled, JournalObserver,
    RegistryObserver, TimelineObserver,
};
pub use metric::{distance_matrix_flat_with, distance_matrix_with, Metric};
pub use pcie::{data_copy_time, transfer_with_faults, PcieReport};
pub use pipeline::{
    gpu_knn, gpu_knn_resilient, gpu_knn_resilient_deadline, gpu_knn_resilient_journaled,
    gpu_knn_traced, knn_search, knn_search_streamed, knn_search_streamed_cancellable,
    knn_search_streamed_observed, knn_search_streamed_parallel,
    knn_search_streamed_parallel_cancellable, knn_search_streamed_parallel_observed,
    knn_search_streamed_parallel_timelined, knn_search_with, knn_search_with_observed, queue_tag,
    resolve_threads, validate_points, CancelToken, Cancelled, GpuKnnResult, NeverCancel,
    NullObserver, Phase, PhaseObserver, ResilientKnnResult, TileBudget,
};
