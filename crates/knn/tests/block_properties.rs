//! Property tests for the blocked distance kernel and the tile-streamed
//! search path.
//!
//! Four exactness contracts are exercised here:
//!
//! 1. `block::squared_distances` must equal the scalar
//!    `squared_distance` **bit-for-bit** for every pair — the blocked
//!    kernel changes the iteration order over pairs, never the
//!    accumulation order within a pair. Dimensions and sizes straddle
//!    the LANES / QUERY_BLOCK / REF_TILE edges on purpose.
//! 2. `knn_search_streamed` must return exactly the same neighbors as
//!    the materialized `knn_search` for arbitrary Q/N/k/tile, including
//!    tiles smaller than k, tiles larger than N, duplicated distances
//!    (tie-breaking), and non-finite coordinates (overflow to +inf).
//! 3. The runtime-dispatched SIMD row kernel (`simd::fill_rows`) must
//!    reproduce both the portable 8-accumulator kernel and the scalar
//!    reference bit-for-bit at the edge dimensions {1, 7, 8, 9, 127,
//!    128} — the dims where the vector main loop, its 4-reference
//!    register block and the scalar tail all change shape — for row
//!    ranges straddling the REF_TILE edge, and under the non-finite
//!    clamp policy.
//! 4. `knn_search_streamed_parallel` must return exactly the same
//!    neighbors as the sequential streamed path at every thread count
//!    — the work-stealing schedule moves blocks between workers, never
//!    the per-query merge order.

use knn::{
    block, clamp_non_finite, knn_search, knn_search_streamed, knn_search_streamed_parallel, simd,
    squared_distance, squared_norm, PointSet,
};
use kselect::{QueueKind, SelectConfig};
use proptest::prelude::*;

/// The dimensions the SIMD contract is pinned at: 1 and 7 exercise the
/// pure-tail path, 8 the single full LANES chunk, 9 a chunk plus tail,
/// 127/128 the register-blocked main loop with and without a tail.
const EDGE_DIMS: [usize; 6] = [1, 7, 8, 9, 127, 128];

/// A random point set with the given shape; coordinates in [-4, 4).
fn points(count: usize, dim: usize) -> impl Strategy<Value = PointSet> {
    proptest::collection::vec(0u32..4096, count * dim).prop_map(move |raw| {
        let flat: Vec<f32> = raw.iter().map(|&x| x as f32 / 512.0 - 4.0).collect();
        PointSet::from_flat(flat, dim)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Blocked kernel == scalar kernel, bit for bit, across odd dims
    /// (straddling LANES = 8) and sizes straddling the query-block and
    /// reference-tile boundaries.
    #[test]
    fn blocked_matches_scalar_bitwise(
        q in 1usize..40,     // QUERY_BLOCK = 32 sits inside this range
        n in 1usize..300,    // REF_TILE = 256 sits inside this range
        dim in 1usize..20,   // straddles LANES = 8 and its multiples
        seed in 0u64..1000,
    ) {
        let queries = PointSet::uniform(q, dim, seed);
        let refs = PointSet::uniform(n, dim, seed ^ 0xD15);
        let m = block::squared_distances(&queries, &refs);
        prop_assert_eq!(m.q(), q);
        prop_assert_eq!(m.n(), n);
        for qi in 0..q {
            for ri in 0..n {
                let scalar = squared_distance(queries.point(qi), refs.point(ri));
                prop_assert_eq!(
                    m.at(qi, ri).to_bits(),
                    scalar.to_bits(),
                    "({}, {}): blocked {} vs scalar {}",
                    qi, ri, m.at(qi, ri), scalar
                );
            }
        }
    }

    /// Tile-streamed search == materialized search, exactly (distances
    /// AND ids), for arbitrary tile sizes including tile < k and
    /// tile > N, with heavily duplicated coordinates to force ties.
    #[test]
    fn streamed_matches_materialized(
        qs in points(7, 5),
        n in 1usize..200,
        k_raw in 1usize..32,
        tile in 1usize..256,
        dup_mod in 1u32..8,
    ) {
        let refs = {
            // Quantize coordinates so many reference points collide,
            // exercising the (dist, id) tie-break in the merge path.
            let base = PointSet::uniform(n, 5, 99);
            let flat: Vec<f32> = base
                .as_flat()
                .iter()
                .map(|&x| ((x * dup_mod as f32) as i32) as f32)
                .collect();
            PointSet::from_flat(flat, 5)
        };
        let k = k_raw.min(n);
        // Tie semantics: the insertion queue keeps the first-seen
        // (lowest-id) candidate among equals at the cut, and the
        // streamed merge resolves ties by (dist, id) — so the two paths
        // agree on ids exactly. The heap and merge queues evict
        // id-arbitrarily among equal distances (whichever tied element
        // reached the root / survived the bitonic repair), so for them
        // the invariant both paths must share is the distance sequence:
        // the multiset of the k smallest distances is unique.
        for kind in [QueueKind::Insertion, QueueKind::Heap, QueueKind::Merge] {
            // The merge queue wants a power-of-two k; skip it when that
            // rounds past the reference count.
            let kk = if kind == QueueKind::Merge { k.next_power_of_two().max(8) } else { k };
            if kk > n {
                continue;
            }
            let cfg = SelectConfig::plain(kind, kk);
            let full = knn_search(&qs, &refs, &cfg);
            let streamed = knn_search_streamed(&qs, &refs, &cfg, tile);
            if kind == QueueKind::Insertion {
                prop_assert_eq!(&streamed, &full, "tile {}", tile);
            } else {
                for (s, f) in streamed.iter().zip(&full) {
                    let sd: Vec<u32> = s.iter().map(|n| n.dist.to_bits()).collect();
                    let fd: Vec<u32> = f.iter().map(|n| n.dist.to_bits()).collect();
                    prop_assert_eq!(&sd, &fd, "kind {:?} tile {}", kind, tile);
                }
            }
        }
    }

    /// Non-finite inputs: coordinates at f32::MAX overflow the squared
    /// norm to +inf; the clamp_non_finite policy must apply identically
    /// on the streamed and materialized paths.
    #[test]
    fn streamed_matches_materialized_non_finite(
        poison in proptest::collection::vec(0usize..64, 4),
        tile in 1usize..80,
    ) {
        let qs = PointSet::uniform(5, 4, 7);
        let mut flat = PointSet::uniform(64, 4, 8).as_flat().to_vec();
        for &p in &poison {
            flat[p * 4] = f32::MAX; // squared -> +inf -> clamped policy
        }
        let refs = PointSet::from_flat(flat, 4);
        let cfg = SelectConfig::optimized(QueueKind::Merge, 8);
        let full = knn_search(&qs, &refs, &cfg);
        let streamed = knn_search_streamed(&qs, &refs, &cfg, tile);
        prop_assert_eq!(streamed, full);
    }

    /// The dispatched SIMD row kernel, the portable kernel and the
    /// scalar reference agree bit-for-bit at every edge dimension, for
    /// row ranges of arbitrary offset and length (straddling the
    /// REF_TILE = 256 edge when `n` allows).
    #[test]
    fn simd_rows_match_scalar_bitwise_at_edge_dims(
        n in 1usize..300,
        r0_frac in 0u32..1000,
        len_raw in 1usize..300,
        seed in 0u64..1000,
    ) {
        for dim in EDGE_DIMS {
            let queries = PointSet::uniform(1, dim, seed);
            let refs = PointSet::uniform(n, dim, seed ^ 0x51D);
            let qp = queries.point(0);
            let norm_q = squared_norm(qp);
            let ref_norms = block::norms(&refs);
            let r0 = (r0_frac as usize * n / 1000).min(n - 1);
            let len = len_raw.min(n - r0);
            let mut dispatched = vec![0.0f32; len];
            let mut portable = vec![0.0f32; len];
            simd::fill_rows(qp, norm_q, &refs, &ref_norms, r0, &mut dispatched);
            simd::fill_rows_portable(qp, norm_q, &refs, &ref_norms, r0, &mut portable);
            for j in 0..len {
                let scalar = clamp_non_finite(squared_distance(qp, refs.point(r0 + j)));
                prop_assert_eq!(
                    dispatched[j].to_bits(),
                    scalar.to_bits(),
                    "dim {} row {}: {} ({}) vs scalar {}",
                    dim, r0 + j, dispatched[j], simd::dispatch_name(), scalar
                );
                prop_assert_eq!(
                    portable[j].to_bits(),
                    scalar.to_bits(),
                    "dim {} row {}: portable {} vs scalar {}",
                    dim, r0 + j, portable[j], scalar
                );
            }
        }
    }

    /// Non-finite coordinates clamp identically on every kernel: a
    /// poisoned reference overflows its squared norm to +inf, and both
    /// the dispatched and portable kernels must emit the same clamped
    /// bits as the scalar policy at every edge dimension.
    #[test]
    fn simd_rows_clamp_non_finite_identically(
        poison in proptest::collection::vec(0usize..48, 1..5),
        seed in 0u64..200,
    ) {
        for dim in EDGE_DIMS {
            let queries = PointSet::uniform(1, dim, seed);
            let mut flat = PointSet::uniform(48, dim, seed ^ 0xF1F).as_flat().to_vec();
            for &p in &poison {
                flat[p * dim] = f32::MAX; // squared -> +inf -> clamp policy
            }
            let refs = PointSet::from_flat(flat, dim);
            let qp = queries.point(0);
            let norm_q = squared_norm(qp);
            let ref_norms = block::norms(&refs);
            let mut dispatched = vec![0.0f32; 48];
            let mut portable = vec![0.0f32; 48];
            simd::fill_rows(qp, norm_q, &refs, &ref_norms, 0, &mut dispatched);
            simd::fill_rows_portable(qp, norm_q, &refs, &ref_norms, 0, &mut portable);
            for j in 0..48 {
                let scalar = clamp_non_finite(squared_distance(qp, refs.point(j)));
                prop_assert_eq!(dispatched[j].to_bits(), scalar.to_bits(), "dim {} row {}", dim, j);
                prop_assert_eq!(portable[j].to_bits(), scalar.to_bits(), "dim {} row {}", dim, j);
            }
        }
    }

    /// The parallel streamed pipeline returns *identical* neighbors —
    /// distances and ids — at thread counts 1, 2 and 8, for query
    /// counts straddling the QUERY_BLOCK = 32 scheduling unit, tiles
    /// straddling REF_TILE, and every queue kind. Heavily quantized
    /// coordinates force distance ties, so this also proves the merge
    /// order (not just the value set) is thread-count-invariant.
    #[test]
    fn parallel_streamed_identical_at_any_thread_count(
        q in 1usize..70,      // 1–2 blocks plus a partial third
        n in 1usize..300,
        k_raw in 1usize..16,
        tile in 1usize..300,
        dup_mod in 1u32..8,
        seed in 0u64..1000,
    ) {
        let queries = PointSet::uniform(q, 6, seed);
        let refs = {
            let base = PointSet::uniform(n, 6, seed ^ 0x9A7);
            let flat: Vec<f32> = base
                .as_flat()
                .iter()
                .map(|&x| ((x * dup_mod as f32) as i32) as f32)
                .collect();
            PointSet::from_flat(flat, 6)
        };
        for kind in [QueueKind::Insertion, QueueKind::Heap, QueueKind::Merge] {
            let k = if kind == QueueKind::Merge {
                k_raw.min(n).next_power_of_two().max(8)
            } else {
                k_raw.min(n)
            };
            if k > n {
                continue;
            }
            let cfg = SelectConfig::plain(kind, k);
            let sequential = knn_search_streamed(&queries, &refs, &cfg, tile);
            for threads in [1usize, 2, 8] {
                let parallel =
                    knn_search_streamed_parallel(&queries, &refs, &cfg, tile, threads);
                prop_assert_eq!(
                    &parallel, &sequential,
                    "kind {:?} tile {} threads {}", kind, tile, threads
                );
            }
        }
    }

    /// With the timeline disabled ([`NullTimeline`]), the timelined
    /// entry point is byte-identical to the plain parallel pipeline —
    /// same neighbors, same distances, same order — at every thread
    /// count. This is the zero-cost-observer contract for the timeline
    /// layer: hooks that monomorphize to no-ops cannot perturb results.
    #[test]
    fn timeline_disabled_is_byte_identical_to_plain_parallel(
        q in 1usize..70,
        n in 1usize..300,
        k_raw in 1usize..16,
        tile in 1usize..300,
        threads in 1usize..9,
        seed in 0u64..1000,
    ) {
        use knn::{knn_search_streamed_parallel_timelined, NeverCancel, NullObserver};
        use trace::NullTimeline;
        let k = k_raw.min(n);
        let queries = PointSet::uniform(q, 6, seed);
        let refs = PointSet::uniform(n, 6, seed ^ 0x51D);
        let cfg = SelectConfig::plain(QueueKind::Heap, k);
        let plain = knn_search_streamed_parallel(&queries, &refs, &cfg, tile, threads);
        let timelined = knn_search_streamed_parallel_timelined(
            &queries, &refs, &cfg, tile, threads,
            &NullObserver, &NeverCancel, &NullTimeline,
        ).expect("NeverCancel cannot trip");
        prop_assert_eq!(timelined, plain);
    }

    /// Non-finite inputs flow through the parallel path exactly as
    /// through the sequential one: poisoned references clamp to the
    /// same bits and land in the same merge positions at every thread
    /// count.
    #[test]
    fn parallel_streamed_non_finite_identical(
        poison in proptest::collection::vec(0usize..64, 4),
        tile in 1usize..80,
        threads in 1usize..9,
    ) {
        let qs = PointSet::uniform(37, 4, 7); // straddles QUERY_BLOCK
        let mut flat = PointSet::uniform(64, 4, 8).as_flat().to_vec();
        for &p in &poison {
            flat[p * 4] = f32::MAX;
        }
        let refs = PointSet::from_flat(flat, 4);
        let cfg = SelectConfig::optimized(QueueKind::Merge, 8);
        let sequential = knn_search_streamed(&qs, &refs, &cfg, tile);
        let parallel = knn_search_streamed_parallel(&qs, &refs, &cfg, tile, threads);
        prop_assert_eq!(parallel, sequential);
    }
}

/// Journal invariants under the parallel scheduler. Gated on the
/// `metrics` feature because the journaled entry points live behind it.
/// Wall-clock nanoseconds legitimately differ between runs, so the
/// cross-thread-count comparison covers only the deterministic record
/// structure; the timing invariant checked per record is internal
/// consistency (phase sum == total).
#[cfg(feature = "metrics")]
mod journaled {
    use super::*;
    use knn::metered::knn_search_streamed_parallel_journaled;
    use trace::{EventJournal, JournalConfig, QueryRecord};

    /// The deterministic projection of a record: everything except the
    /// measured nanoseconds and the admission sequence number.
    fn structure(r: &QueryRecord) -> (u64, String, u64, u64, u64, u32, String, u32) {
        (
            r.query,
            r.queue.clone(),
            r.tile,
            r.merge_push,
            r.merge_reject,
            r.blocks,
            r.status.clone(),
            r.attempts,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Every thread count journals the same records: one per query,
        /// identical structural fields in identical order, phase names
        /// in identical order, and each record's phase nanoseconds
        /// summing exactly to its total.
        #[test]
        fn parallel_journal_structure_invariant_across_thread_counts(
            q in 1usize..70,
            n in 1usize..300,
            tile in 1usize..300,
            seed in 0u64..1000,
        ) {
            let queries = PointSet::uniform(q, 6, seed);
            let refs = PointSet::uniform(n, 6, seed ^ 0x10E);
            let k = 8usize;
            if k > n {
                // Merge queue needs k <= n; shrink the workload instead
                // of skipping so tiny n still exercises the journal.
                let cfg = SelectConfig::plain(QueueKind::Insertion, n);
                let journal = EventJournal::new(JournalConfig::default());
                knn_search_streamed_parallel_journaled(
                    &queries, &refs, &cfg, tile, 2, &journal, None, "prop",
                );
                prop_assert_eq!(journal.snapshot().len(), q);
                return Ok(());
            }
            let cfg = SelectConfig::plain(QueueKind::Merge, k);
            let mut baseline: Option<Vec<_>> = None;
            for threads in [1usize, 2, 8] {
                let journal = EventJournal::new(JournalConfig::default());
                knn_search_streamed_parallel_journaled(
                    &queries, &refs, &cfg, tile, threads, &journal, None, "prop",
                );
                let snap = journal.snapshot();
                prop_assert_eq!(snap.len(), q, "one record per query at {} threads", threads);
                for r in &snap {
                    let phase_sum: u64 = r.phase_ns.iter().map(|(_, ns)| ns).sum();
                    prop_assert_eq!(
                        phase_sum, r.total_ns,
                        "threads {}: query {} total must equal its phase sum",
                        threads, r.query
                    );
                }
                let shape: Vec<_> = snap
                    .iter()
                    .map(|r| {
                        let phases: Vec<String> =
                            r.phase_ns.iter().map(|(name, _)| name.clone()).collect();
                        (structure(r), phases)
                    })
                    .collect();
                match &baseline {
                    None => baseline = Some(shape),
                    Some(b) => prop_assert_eq!(
                        &shape, b,
                        "journal structure must not depend on thread count ({} threads)",
                        threads
                    ),
                }
            }
        }
    }
}
