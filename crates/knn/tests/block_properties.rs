//! Property tests for the blocked distance kernel and the tile-streamed
//! search path.
//!
//! Two exactness contracts are exercised here:
//!
//! 1. `block::squared_distances` must equal the scalar
//!    `squared_distance` **bit-for-bit** for every pair — the blocked
//!    kernel changes the iteration order over pairs, never the
//!    accumulation order within a pair. Dimensions and sizes straddle
//!    the LANES / QUERY_BLOCK / REF_TILE edges on purpose.
//! 2. `knn_search_streamed` must return exactly the same neighbors as
//!    the materialized `knn_search` for arbitrary Q/N/k/tile, including
//!    tiles smaller than k, tiles larger than N, duplicated distances
//!    (tie-breaking), and non-finite coordinates (overflow to +inf).

use knn::{block, knn_search, knn_search_streamed, squared_distance, PointSet};
use kselect::{QueueKind, SelectConfig};
use proptest::prelude::*;

/// A random point set with the given shape; coordinates in [-4, 4).
fn points(count: usize, dim: usize) -> impl Strategy<Value = PointSet> {
    proptest::collection::vec(0u32..4096, count * dim).prop_map(move |raw| {
        let flat: Vec<f32> = raw.iter().map(|&x| x as f32 / 512.0 - 4.0).collect();
        PointSet::from_flat(flat, dim)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Blocked kernel == scalar kernel, bit for bit, across odd dims
    /// (straddling LANES = 8) and sizes straddling the query-block and
    /// reference-tile boundaries.
    #[test]
    fn blocked_matches_scalar_bitwise(
        q in 1usize..40,     // QUERY_BLOCK = 32 sits inside this range
        n in 1usize..300,    // REF_TILE = 256 sits inside this range
        dim in 1usize..20,   // straddles LANES = 8 and its multiples
        seed in 0u64..1000,
    ) {
        let queries = PointSet::uniform(q, dim, seed);
        let refs = PointSet::uniform(n, dim, seed ^ 0xD15);
        let m = block::squared_distances(&queries, &refs);
        prop_assert_eq!(m.q(), q);
        prop_assert_eq!(m.n(), n);
        for qi in 0..q {
            for ri in 0..n {
                let scalar = squared_distance(queries.point(qi), refs.point(ri));
                prop_assert_eq!(
                    m.at(qi, ri).to_bits(),
                    scalar.to_bits(),
                    "({}, {}): blocked {} vs scalar {}",
                    qi, ri, m.at(qi, ri), scalar
                );
            }
        }
    }

    /// Tile-streamed search == materialized search, exactly (distances
    /// AND ids), for arbitrary tile sizes including tile < k and
    /// tile > N, with heavily duplicated coordinates to force ties.
    #[test]
    fn streamed_matches_materialized(
        qs in points(7, 5),
        n in 1usize..200,
        k_raw in 1usize..32,
        tile in 1usize..256,
        dup_mod in 1u32..8,
    ) {
        let refs = {
            // Quantize coordinates so many reference points collide,
            // exercising the (dist, id) tie-break in the merge path.
            let base = PointSet::uniform(n, 5, 99);
            let flat: Vec<f32> = base
                .as_flat()
                .iter()
                .map(|&x| ((x * dup_mod as f32) as i32) as f32)
                .collect();
            PointSet::from_flat(flat, 5)
        };
        let k = k_raw.min(n);
        // Tie semantics: the insertion queue keeps the first-seen
        // (lowest-id) candidate among equals at the cut, and the
        // streamed merge resolves ties by (dist, id) — so the two paths
        // agree on ids exactly. The heap and merge queues evict
        // id-arbitrarily among equal distances (whichever tied element
        // reached the root / survived the bitonic repair), so for them
        // the invariant both paths must share is the distance sequence:
        // the multiset of the k smallest distances is unique.
        for kind in [QueueKind::Insertion, QueueKind::Heap, QueueKind::Merge] {
            // The merge queue wants a power-of-two k; skip it when that
            // rounds past the reference count.
            let kk = if kind == QueueKind::Merge { k.next_power_of_two().max(8) } else { k };
            if kk > n {
                continue;
            }
            let cfg = SelectConfig::plain(kind, kk);
            let full = knn_search(&qs, &refs, &cfg);
            let streamed = knn_search_streamed(&qs, &refs, &cfg, tile);
            if kind == QueueKind::Insertion {
                prop_assert_eq!(&streamed, &full, "tile {}", tile);
            } else {
                for (s, f) in streamed.iter().zip(&full) {
                    let sd: Vec<u32> = s.iter().map(|n| n.dist.to_bits()).collect();
                    let fd: Vec<u32> = f.iter().map(|n| n.dist.to_bits()).collect();
                    prop_assert_eq!(&sd, &fd, "kind {:?} tile {}", kind, tile);
                }
            }
        }
    }

    /// Non-finite inputs: coordinates at f32::MAX overflow the squared
    /// norm to +inf; the clamp_non_finite policy must apply identically
    /// on the streamed and materialized paths.
    #[test]
    fn streamed_matches_materialized_non_finite(
        poison in proptest::collection::vec(0usize..64, 4),
        tile in 1usize..80,
    ) {
        let qs = PointSet::uniform(5, 4, 7);
        let mut flat = PointSet::uniform(64, 4, 8).as_flat().to_vec();
        for &p in &poison {
            flat[p * 4] = f32::MAX; // squared -> +inf -> clamped policy
        }
        let refs = PointSet::from_flat(flat, 4);
        let cfg = SelectConfig::optimized(QueueKind::Merge, 8);
        let full = knn_search(&qs, &refs, &cfg);
        let streamed = knn_search_streamed(&qs, &refs, &cfg, tile);
        prop_assert_eq!(streamed, full);
    }
}
