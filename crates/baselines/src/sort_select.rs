//! Selection by full sorting ("SS" in the paper's §II-C taxonomy).
//!
//! Sort the whole list, take the first k. O(N log N) — only sensible when
//! the sorted list is reused across queries, which k-NN does not do; it is
//! the context baseline every selection method must beat.

use kselect::types::{sort_neighbors, Neighbor};

/// k smallest by fully sorting a copy of the list; ascending.
pub fn sort_select(dists: &[f32], k: usize) -> Vec<Neighbor> {
    let mut v: Vec<Neighbor> = dists
        .iter()
        .enumerate()
        .map(|(i, &d)| Neighbor::new(d, i as u32))
        .collect();
    sort_neighbors(&mut v);
    v.truncate(k);
    v
}

/// Comparator count of a full bitonic sort of length `n` rounded up to a
/// power of two — the analytic cost of doing SS on the GPU.
pub fn bitonic_sort_comparators(n: usize) -> u64 {
    let n = n.next_power_of_two() as u64;
    let stages = n.trailing_zeros() as u64;
    // sum over k-stages of k comparator stages of n/2 each
    (n / 2) * stages * (stages + 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_k_smallest() {
        let got = sort_select(&[5.0, 1.0, 3.0, 2.0, 4.0], 3);
        let d: Vec<f32> = got.iter().map(|n| n.dist).collect();
        assert_eq!(d, vec![1.0, 2.0, 3.0]);
        assert_eq!(got[0].id, 1);
    }

    #[test]
    fn k_larger_than_n() {
        assert_eq!(sort_select(&[2.0, 1.0], 10).len(), 2);
    }

    #[test]
    fn comparator_count_formula() {
        // n = 8: stages k=2,4,8 contribute 1+2+3 passes of 4 comparators.
        assert_eq!(bitonic_sort_comparators(8), 4 * 6);
        assert_eq!(bitonic_sort_comparators(7), 4 * 6); // padded
    }
}
