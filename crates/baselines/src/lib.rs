//! # baselines — comparison k-selection algorithms
//!
//! The algorithms the paper measures against (Table I) plus the wider
//! §II-C taxonomy:
//!
//! * [`tbs`] — Truncated Bitonic Sort (Sismanis et al.), divide-and-merge
//!   by sorting networks; native + simulated warp kernel.
//! * [`qms`] — Quick Multi-Select (Komarov et al.), partition-based;
//!   native + simulated warp kernel.
//! * [`bucket`] / [`radix`] — Bucket Select and Radix Select
//!   (Alabi et al.), partition-based selection by value range / bit digit.
//! * [`sample`] — Sample Select (Monroe et al.), randomized pivot bracket.
//! * [`clustered`] — Clustered-Sort (Pan & Manocha), batched selection by
//!   one combined radix sort.
//! * [`sort_select()`] — selection by full sorting, the context baseline.

pub mod bucket;
pub mod clustered;
pub mod qms;
pub mod radix;
pub mod sample;
pub mod sort_select;
pub mod tbs;
pub mod warpselect;

pub use bucket::bucket_select;
pub use clustered::clustered_sort_select;
pub use qms::{gpu_qms_select, qms_select};
pub use radix::radix_select;
pub use sample::sample_select;
pub use sort_select::sort_select;
pub use tbs::{gpu_tbs_block_select, gpu_tbs_select, tbs_select};
pub use warpselect::gpu_warp_select;
