//! Sample Select (Monroe, Wendelberger, Michalak — HPG 2011,
//! "Randomized Selection on the GPU"), cited by the paper's §II-C as the
//! partition-based method that "chooses the best pivot by taking
//! samples".
//!
//! One pass: draw a random sample, sort it, and pick two order
//! statistics that bracket the k-th smallest with high probability.
//! Elements below the lower pivot are kept, elements inside the bracket
//! are retained as candidates, everything above is discarded; if the
//! bracket misses (rare), fall back to an exact pass over the survivors
//! or a re-run with a wider bracket.

use kselect::types::{sort_neighbors, Neighbor};
use rand::{Rng, SeedableRng};

/// Deterministic seed used when the caller does not provide one.
const DEFAULT_SEED: u64 = 0x5A3F_1E55;

/// k smallest via randomized sampling; ascending. Deterministic for a
/// given input (internal fixed seed — selection quality does not depend
/// on secrecy).
pub fn sample_select(dists: &[f32], k: usize) -> Vec<Neighbor> {
    sample_select_seeded(dists, k, DEFAULT_SEED)
}

/// [`sample_select`] with an explicit RNG seed (exposed for tests).
pub fn sample_select_seeded(dists: &[f32], k: usize, seed: u64) -> Vec<Neighbor> {
    assert!(k > 0);
    let n = dists.len();
    if k >= n || n < 1024 {
        return crate::sort_select::sort_select(dists, k);
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    // Sample size ~ 8·√N bounded to the list; large enough that the
    // bracket almost always contains the k-th order statistic.
    let s = ((8.0 * (n as f64).sqrt()) as usize).clamp(64, n);
    let mut sample: Vec<f32> = (0..s).map(|_| dists[rng.gen_range(0..n)]).collect();
    sample.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // Expected rank of the k-th smallest within the sample, with a
    // safety margin of a few standard deviations.
    let expected = k as f64 / n as f64 * s as f64;
    let margin = 4.0 * (expected.max(1.0)).sqrt() + 8.0;
    let lo_idx = ((expected - margin).floor().max(0.0)) as usize;
    let hi_idx = (((expected + margin).ceil()) as usize).min(s - 1);
    let lo_pivot = sample[lo_idx];
    let hi_pivot = sample[hi_idx];

    // One partition pass.
    let mut below: Vec<Neighbor> = Vec::new();
    let mut bracket: Vec<Neighbor> = Vec::new();
    for (i, &d) in dists.iter().enumerate() {
        if d < lo_pivot {
            below.push(Neighbor::new(d, i as u32));
        } else if d <= hi_pivot {
            bracket.push(Neighbor::new(d, i as u32));
        }
    }
    if below.len() >= k || below.len() + bracket.len() < k {
        // Bracket missed (probability vanishes with the margin): exact
        // fallback over the full list keeps the algorithm total.
        return crate::sort_select::sort_select(dists, k);
    }
    // Final: all of `below` + the (k - |below|) smallest of the bracket.
    let need = k - below.len();
    let bracket_vals: Vec<f32> = bracket.iter().map(|nb| nb.dist).collect();
    let mut best = crate::sort_select::sort_select(&bracket_vals, need);
    for nb in &mut best {
        nb.id = bracket[nb.id as usize].id;
    }
    below.extend(best);
    sort_neighbors(&mut below);
    below.truncate(k);
    below
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn oracle(dists: &[f32], k: usize) -> Vec<f32> {
        let mut v = dists.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v.truncate(k);
        v
    }

    #[test]
    fn matches_oracle_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(241);
        for &n in &[100usize, 2000, 20_000] {
            for &k in &[1usize, 16, 256] {
                let d: Vec<f32> = (0..n).map(|_| rng.gen()).collect();
                let got: Vec<f32> = sample_select(&d, k).iter().map(|x| x.dist).collect();
                assert_eq!(got, oracle(&d, k.min(n)), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn robust_across_seeds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(242);
        let d: Vec<f32> = (0..10_000).map(|_| rng.gen()).collect();
        let expect = oracle(&d, 64);
        for seed in 0..20 {
            let got: Vec<f32> = sample_select_seeded(&d, 64, seed)
                .iter()
                .map(|x| x.dist)
                .collect();
            assert_eq!(got, expect, "seed {seed}");
        }
    }

    #[test]
    fn duplicate_heavy_input() {
        let mut d = vec![0.5f32; 5000];
        for i in 0..10 {
            d[i * 97] = 0.1 * i as f32 / 10.0;
        }
        let got: Vec<f32> = sample_select(&d, 20).iter().map(|x| x.dist).collect();
        assert_eq!(got, oracle(&d, 20));
    }

    #[test]
    fn ids_track_values() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(243);
        let d: Vec<f32> = (0..5000).map(|_| rng.gen()).collect();
        for nb in sample_select(&d, 32) {
            assert_eq!(d[nb.id as usize], nb.dist);
        }
    }

    #[test]
    fn small_inputs_use_exact_path() {
        let d = vec![3.0, 1.0, 2.0];
        let got: Vec<f32> = sample_select(&d, 2).iter().map(|x| x.dist).collect();
        assert_eq!(got, vec![1.0, 2.0]);
    }
}
