//! Bucket Select (Alabi et al. \[12\]) — partition-based selection by value
//! range. Repeatedly histogram the live set into equal-width buckets,
//! descend into the bucket containing the k-th smallest, and collect every
//! bucket strictly below it.

use kselect::types::{sort_neighbors, Neighbor};

/// Number of buckets per pass.
const BUCKETS: usize = 64;

/// k smallest via iterative bucket partitioning; ascending.
///
/// Degrades gracefully on duplicate-heavy input: when a pass cannot
/// shrink the live set (all values in one bucket of zero width), it
/// falls back to sorting the remainder.
pub fn bucket_select(dists: &[f32], k: usize) -> Vec<Neighbor> {
    assert!(k > 0);
    if k >= dists.len() {
        return crate::sort_select::sort_select(dists, k);
    }
    let mut live: Vec<Neighbor> = dists
        .iter()
        .enumerate()
        .map(|(i, &d)| Neighbor::new(d, i as u32))
        .collect();
    let mut result: Vec<Neighbor> = Vec::with_capacity(k);
    let mut need = k;
    loop {
        if need == 0 {
            break;
        }
        if live.len() <= need || live.len() <= BUCKETS {
            let mut rest = crate::sort_select::sort_select(
                &live.iter().map(|n| n.dist).collect::<Vec<_>>(),
                need,
            );
            for n in &mut rest {
                n.id = live[n.id as usize].id;
            }
            result.extend(rest);
            break;
        }
        let lo = live.iter().map(|n| n.dist).fold(f32::INFINITY, f32::min);
        let hi = live
            .iter()
            .map(|n| n.dist)
            .fold(f32::NEG_INFINITY, f32::max);
        if lo == hi {
            // All equal: any `need` of them complete the answer.
            result.extend(live.iter().take(need).copied());
            break;
        }
        let width = (hi - lo) / BUCKETS as f32;
        let bucket_of = |d: f32| (((d - lo) / width) as usize).min(BUCKETS - 1);
        let mut counts = [0usize; BUCKETS];
        for n in &live {
            counts[bucket_of(n.dist)] += 1;
        }
        // Find the bucket containing the `need`-th smallest.
        let mut acc = 0;
        let mut pivot_bucket = BUCKETS - 1;
        for (b, &c) in counts.iter().enumerate() {
            if acc + c >= need {
                pivot_bucket = b;
                break;
            }
            acc += c;
        }
        // Everything strictly below the pivot bucket is in the answer.
        let mut next_live = Vec::with_capacity(counts[pivot_bucket]);
        for n in &live {
            let b = bucket_of(n.dist);
            if b < pivot_bucket {
                result.push(*n);
            } else if b == pivot_bucket {
                next_live.push(*n);
            }
        }
        need -= acc;
        live = next_live;
    }
    sort_neighbors(&mut result);
    result.truncate(k);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn oracle(dists: &[f32], k: usize) -> Vec<f32> {
        let mut v = dists.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v.truncate(k);
        v
    }

    #[test]
    fn matches_oracle_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(201);
        for &n in &[10usize, 100, 5000] {
            for &k in &[1usize, 5, 64] {
                let d: Vec<f32> = (0..n).map(|_| rng.gen()).collect();
                let got: Vec<f32> = bucket_select(&d, k).iter().map(|x| x.dist).collect();
                assert_eq!(got, oracle(&d, k.min(n)), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn heavy_duplicates() {
        let mut d = vec![0.5f32; 1000];
        d[123] = 0.1;
        d[456] = 0.2;
        let got: Vec<f32> = bucket_select(&d, 4).iter().map(|x| x.dist).collect();
        assert_eq!(got, vec![0.1, 0.2, 0.5, 0.5]);
    }

    #[test]
    fn all_equal() {
        let d = vec![1.0f32; 100];
        assert_eq!(bucket_select(&d, 7).len(), 7);
    }

    #[test]
    fn adversarial_skew() {
        // Exponentially skewed values stress the equal-width buckets.
        let d: Vec<f32> = (0..2000).map(|i| (1.001f32).powi(i) - 1.0).collect();
        let got: Vec<f32> = bucket_select(&d, 10).iter().map(|x| x.dist).collect();
        assert_eq!(got, oracle(&d, 10));
    }
}
