//! **Quick Multi-Select** (Komarov, Dashti, D'Souza — PLoS ONE 2014),
//! the paper's second state-of-the-art comparator ("QMS" in Table I).
//!
//! Partition-based selection: repeatedly pick a pivot, three-way
//! partition the live segment, and recurse into the side containing the
//! k-th smallest. Expected O(N) work per query — attractive for large N —
//! but on SIMT hardware the lanes' segments shrink at different rates, so
//! the warp serializes on its slowest lane, and the scatter writes of the
//! partition pass are uncoalesced. Like the published QMS, the result is
//! the *unsorted* set of the k nearest (the paper notes sorting it costs
//! extra; our extraction sorts host-side for verification only).
//!
//! Native implementation (`qms_select`, via `select_nth_unstable`) plus a
//! simulated warp kernel (`gpu_qms_select`) with ping-pong lane-local
//! partition buffers.

use kselect::gpu::DistanceMatrix;
use kselect::types::{sort_neighbors, Neighbor, INF, NO_ID};
use simt::mem::LaneLocal;
use simt::{lanes_from_fn, launch, splat, GpuSpec, Mask, Metrics, WarpCtx, WARP_SIZE};

/// Native quickselect-based k smallest (sorted ascending for easy
/// comparison; the selection itself is unordered, as in QMS).
pub fn qms_select(dists: &[f32], k: usize) -> Vec<Neighbor> {
    assert!(k > 0);
    let mut v: Vec<Neighbor> = dists
        .iter()
        .enumerate()
        .map(|(i, &d)| Neighbor::new(d, i as u32))
        .collect();
    if k < v.len() {
        v.select_nth_unstable_by(k - 1, |a, b| {
            a.dist
                .partial_cmp(&b.dist)
                .unwrap_or(core::cmp::Ordering::Equal)
        });
        v.truncate(k);
    }
    sort_neighbors(&mut v);
    v
}

/// Simulated Quick Multi-Select over a [`DistanceMatrix`]: one lane per
/// query, iterative three-way partitioning in ping-pong lane-local
/// buffers. Returns per-query neighbors (sorted host-side) and metrics.
pub fn gpu_qms_select(
    spec: &GpuSpec,
    dm: &DistanceMatrix,
    k: usize,
) -> (Vec<Vec<Neighbor>>, Metrics) {
    assert!(k > 0 && k <= dm.n());
    let n_warps = dm.q().div_ceil(WARP_SIZE);
    let (per_warp, metrics) = launch(spec, n_warps, |warp_id, ctx| qms_warp(ctx, warp_id, dm, k));
    (per_warp.into_iter().flatten().collect(), metrics)
}

fn qms_warp(
    ctx: &mut WarpCtx,
    warp_id: usize,
    dm: &DistanceMatrix,
    k: usize,
) -> Vec<Vec<Neighbor>> {
    let n = dm.n();
    let q_base = warp_id * WARP_SIZE;
    let live_lanes = dm.q().saturating_sub(q_base).min(WARP_SIZE);
    let warp = Mask::first(live_lanes);

    // Ping-pong partition buffers and the result accumulator.
    let mut da = LaneLocal::new(n, INF);
    let mut ia = LaneLocal::new(n, NO_ID);
    let mut db = LaneLocal::new(n, INF);
    let mut ib = LaneLocal::new(n, NO_ID);
    let mut rd = LaneLocal::new(k, INF);
    let mut ri = LaneLocal::new(k, NO_ID);

    // Load each lane's column into buffer A (coalesced).
    for e in 0..n {
        let idx = lanes_from_fn(|l| e * dm.q() + (q_base + l).min(dm.q() - 1));
        let v = dm.buf().read(ctx, warp, &idx);
        da.write_uniform(ctx, warp, e, &v);
        ia.write_uniform(ctx, warp, e, &splat(e as u32));
    }

    let mut seg_len: [usize; WARP_SIZE] = [n; WARP_SIZE];
    let mut need: [usize; WARP_SIZE] = [k; WARP_SIZE];
    let mut res_fill: [usize; WARP_SIZE] = [0; WARP_SIZE];
    let mut live = warp;
    let mut in_a = true;

    while live.any_lane() {
        ctx.loop_head(live);
        let (src_d, src_i, dst_d, dst_i) = if in_a {
            (&mut da, &mut ia, &mut db, &mut ib)
        } else {
            (&mut db, &mut ib, &mut da, &mut ia)
        };
        // Lanes whose whole segment is needed copy it out and finish.
        ctx.op(live, 1);
        let take_all = lanes_from_fn(|l| need[l] >= seg_len[l]);
        let (done, part) = ctx.diverge(live, take_all);
        if done.any_lane() {
            let max_len = done.lanes().map(|l| seg_len[l]).max().unwrap_or(0);
            for j in 0..max_len {
                let m = done.filter(|l| j < seg_len[l]);
                if !m.any_lane() {
                    continue;
                }
                let v = src_d.read_uniform(ctx, m, j);
                let id = src_i.read_uniform(ctx, m, j);
                // res_fill + j < k for active lanes: j < seg_len ≤ need
                // and res_fill + need == k. Inactive lanes' indices are
                // never dereferenced.
                let widx = lanes_from_fn(|l| (res_fill[l] + j).min(k - 1));
                rd.write(ctx, m, &widx, &v);
                ri.write(ctx, m, &widx, &id);
            }
            for l in done.lanes() {
                res_fill[l] += seg_len[l];
            }
        }
        live = part;
        if !live.any_lane() {
            break;
        }
        // Median-of-three pivot from first/middle/last of the segment.
        let first = src_d.read_uniform(ctx, live, 0);
        let mid_idx = lanes_from_fn(|l| seg_len[l] / 2);
        let mid = src_d.read(ctx, live, &mid_idx);
        let last_idx = lanes_from_fn(|l| seg_len[l] - 1);
        let last = src_d.read(ctx, live, &last_idx);
        ctx.op(live, 3);
        let pivot = lanes_from_fn(|l| median3(first[l], mid[l], last[l]));

        // Three-way partition pass: lows to the front of dst, highs to the
        // back; equals counted, materialised only if they complete k.
        let mut lo: [usize; WARP_SIZE] = [0; WARP_SIZE];
        let mut eq: [usize; WARP_SIZE] = [0; WARP_SIZE];
        let mut hi: [usize; WARP_SIZE] = [0; WARP_SIZE];
        let max_len = live.lanes().map(|l| seg_len[l]).max().unwrap_or(0);
        for j in 0..max_len {
            let m = live.filter(|l| j < seg_len[l]);
            if !m.any_lane() {
                continue;
            }
            let v = src_d.read_uniform(ctx, m, j);
            let id = src_i.read_uniform(ctx, m, j);
            ctx.op(m, 2); // classify
            let lows = m.filter(|l| v[l] < pivot[l]);
            let highs = m.filter(|l| v[l] > pivot[l]);
            let equals = (m - lows) - highs;
            if lows.any_lane() {
                let widx = lanes_from_fn(|l| lo[l]);
                dst_d.write(ctx, lows, &widx, &v);
                dst_i.write(ctx, lows, &widx, &id);
                for l in lows.lanes() {
                    lo[l] += 1;
                }
            }
            if highs.any_lane() {
                let widx = lanes_from_fn(|l| seg_len[l] - 1 - hi[l]);
                dst_d.write(ctx, highs, &widx, &v);
                dst_i.write(ctx, highs, &widx, &id);
                for l in highs.lanes() {
                    hi[l] += 1;
                }
            }
            for l in equals.lanes() {
                eq[l] += 1;
            }
        }
        // Decide the next segment per lane.
        ctx.op(live, 2);
        let recurse_low = lanes_from_fn(|l| need[l] < lo[l]);
        let finish_eq = lanes_from_fn(|l| !recurse_low[l] && need[l] <= lo[l] + eq[l]);
        let low_m = live.and_lanes(&recurse_low);
        let eq_m = live.and_lanes(&finish_eq);
        let hi_m = (live - low_m) - eq_m;

        // finish_eq lanes: all lows + enough pivot copies complete k.
        if eq_m.any_lane() {
            let max_lo = eq_m.lanes().map(|l| lo[l]).max().unwrap_or(0);
            for j in 0..max_lo {
                let m = eq_m.filter(|l| j < lo[l]);
                if !m.any_lane() {
                    continue;
                }
                let v = dst_d.read_uniform(ctx, m, j);
                let id = dst_i.read_uniform(ctx, m, j);
                let widx = lanes_from_fn(|l| res_fill[l] + j);
                rd.write(ctx, m, &widx, &v);
                ri.write(ctx, m, &widx, &id);
            }
            // Pivot copies: ids are unknown here in dst (equals were not
            // materialised); recover them from src in one more pass.
            let mut picked: [usize; WARP_SIZE] = [0; WARP_SIZE];
            let need_eq = lanes_from_fn(|l| need[l].saturating_sub(lo[l]));
            let max_len_eq = eq_m.lanes().map(|l| seg_len[l]).max().unwrap_or(0);
            for j in 0..max_len_eq {
                let m = eq_m.filter(|l| j < seg_len[l] && picked[l] < need_eq[l]);
                if !m.any_lane() {
                    break;
                }
                let v = src_d.read_uniform(ctx, m, j);
                let id = src_i.read_uniform(ctx, m, j);
                ctx.op(m, 1);
                let hit = m.filter(|l| v[l] == pivot[l]);
                if hit.any_lane() {
                    let widx = lanes_from_fn(|l| res_fill[l] + lo[l] + picked[l]);
                    rd.write(ctx, hit, &widx, &v);
                    ri.write(ctx, hit, &widx, &id);
                    for l in hit.lanes() {
                        picked[l] += 1;
                    }
                }
            }
            for l in eq_m.lanes() {
                res_fill[l] += need[l];
                need[l] = 0;
            }
        }
        // recurse-high lanes: lows (and equals) all belong to the answer.
        if hi_m.any_lane() {
            let max_lo = hi_m.lanes().map(|l| lo[l]).max().unwrap_or(0);
            for j in 0..max_lo {
                let m = hi_m.filter(|l| j < lo[l]);
                if !m.any_lane() {
                    continue;
                }
                let v = dst_d.read_uniform(ctx, m, j);
                let id = dst_i.read_uniform(ctx, m, j);
                let widx = lanes_from_fn(|l| res_fill[l] + j);
                rd.write(ctx, m, &widx, &v);
                ri.write(ctx, m, &widx, &id);
            }
            // Materialise the pivot copies from src (they all join the
            // answer when recursing high).
            let mut picked: [usize; WARP_SIZE] = [0; WARP_SIZE];
            let max_len_eq = hi_m.lanes().map(|l| seg_len[l]).max().unwrap_or(0);
            for j in 0..max_len_eq {
                let m = hi_m.filter(|l| j < seg_len[l] && picked[l] < eq[l]);
                if !m.any_lane() {
                    break;
                }
                let v = src_d.read_uniform(ctx, m, j);
                let id = src_i.read_uniform(ctx, m, j);
                ctx.op(m, 1);
                let hit = m.filter(|l| v[l] == pivot[l]);
                if hit.any_lane() {
                    let widx = lanes_from_fn(|l| res_fill[l] + lo[l] + picked[l]);
                    rd.write(ctx, hit, &widx, &v);
                    ri.write(ctx, hit, &widx, &id);
                    for l in hit.lanes() {
                        picked[l] += 1;
                    }
                }
            }
            for l in hi_m.lanes() {
                res_fill[l] += lo[l] + eq[l];
                need[l] -= lo[l] + eq[l];
                // Move the high region to the front of the *destination*
                // segment view: it already sits at [seg_len - hi, seg_len)
                // of dst; treat it by logical offset via a compaction pass.
            }
            // Compact each hi lane's high region to the front of dst
            // (uniform loop over the max high count).
            let max_hi = hi_m.lanes().map(|l| hi[l]).max().unwrap_or(0);
            for j in 0..max_hi {
                let m = hi_m.filter(|l| j < hi[l]);
                if !m.any_lane() {
                    continue;
                }
                let ridx = lanes_from_fn(|l| seg_len[l] - hi[l] + j);
                let v = dst_d.read(ctx, m, &ridx);
                let id = dst_i.read(ctx, m, &ridx);
                let widx = splat(j);
                dst_d.write(ctx, m, &widx, &v);
                dst_i.write(ctx, m, &widx, &id);
            }
            for l in hi_m.lanes() {
                seg_len[l] = hi[l];
            }
        }
        for l in low_m.lanes() {
            seg_len[l] = lo[l];
        }
        // Lanes that finished via eq drop out; the rest swap buffers.
        live = low_m | hi_m;
        in_a = !in_a;
    }

    (0..live_lanes)
        .map(|l| {
            let mut v: Vec<Neighbor> = (0..k)
                .map(|i| Neighbor::new(rd.peek(l, i), ri.peek(l, i)))
                .filter(|n| !n.is_sentinel())
                .collect();
            sort_neighbors(&mut v);
            v
        })
        .collect()
}

/// Median of three values.
fn median3(a: f32, b: f32, c: f32) -> f32 {
    a.max(b).min(a.min(b).max(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn dm_from(rows: &[Vec<f32>]) -> DistanceMatrix {
        DistanceMatrix::from_row_major(&rows.concat(), rows.len(), rows[0].len())
    }

    fn oracle(dists: &[f32], k: usize) -> Vec<f32> {
        let mut v = dists.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v.truncate(k);
        v
    }

    #[test]
    fn median3_cases() {
        assert_eq!(median3(1.0, 2.0, 3.0), 2.0);
        assert_eq!(median3(3.0, 1.0, 2.0), 2.0);
        assert_eq!(median3(2.0, 3.0, 1.0), 2.0);
        assert_eq!(median3(5.0, 5.0, 1.0), 5.0);
        assert_eq!(median3(1.0, 1.0, 1.0), 1.0);
    }

    #[test]
    fn native_matches_oracle() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(231);
        for &n in &[3usize, 100, 5000] {
            for &k in &[1usize, 8, 64] {
                let d: Vec<f32> = (0..n).map(|_| rng.gen()).collect();
                let got: Vec<f32> = qms_select(&d, k).iter().map(|x| x.dist).collect();
                assert_eq!(got, oracle(&d, k.min(n)), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn simulated_matches_native_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(232);
        let rows: Vec<Vec<f32>> = (0..40)
            .map(|_| (0..400).map(|_| rng.gen()).collect())
            .collect();
        let dm = dm_from(&rows);
        let (res, metrics) = gpu_qms_select(&GpuSpec::tesla_c2075(), &dm, 16);
        assert_eq!(res.len(), 40);
        for (q, row) in rows.iter().enumerate() {
            let got: Vec<f32> = res[q].iter().map(|n| n.dist).collect();
            assert_eq!(got, oracle(row, 16), "query {q}");
            for nb in &res[q] {
                assert_eq!(row[nb.id as usize], nb.dist, "query {q}");
            }
        }
        // Partitioning is divergence-heavy: lanes' segments shrink at
        // different rates, so plenty of issue slots run partially masked.
        assert!(
            metrics.simt_efficiency() < 0.95,
            "efficiency {:.3}",
            metrics.simt_efficiency()
        );
    }

    #[test]
    fn simulated_handles_duplicates() {
        // All-equal rows force the three-way partition's equal path.
        let rows: Vec<Vec<f32>> = vec![vec![0.5; 200]; 32];
        let dm = dm_from(&rows);
        let (res, _) = gpu_qms_select(&GpuSpec::tesla_c2075(), &dm, 8);
        for r in &res {
            assert_eq!(r.len(), 8);
            assert!(r.iter().all(|n| n.dist == 0.5));
        }
    }

    #[test]
    fn simulated_mixed_duplicates() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(233);
        // Coarsely quantised values: many exact duplicates.
        let rows: Vec<Vec<f32>> = (0..32)
            .map(|_| (0..300).map(|_| (rng.gen::<f32>() * 8.0).floor()).collect())
            .collect();
        let dm = dm_from(&rows);
        let (res, _) = gpu_qms_select(&GpuSpec::tesla_c2075(), &dm, 11);
        for (q, row) in rows.iter().enumerate() {
            let got: Vec<f32> = res[q].iter().map(|n| n.dist).collect();
            assert_eq!(got, oracle(row, 11), "query {q}");
        }
    }

    #[test]
    fn k_equals_n() {
        let rows: Vec<Vec<f32>> = vec![(0..32).map(|i| i as f32).rev().collect(); 32];
        let dm = dm_from(&rows);
        let (res, _) = gpu_qms_select(&GpuSpec::tesla_c2075(), &dm, 32);
        let got: Vec<f32> = res[0].iter().map(|n| n.dist).collect();
        assert_eq!(got, (0..32).map(|i| i as f32).collect::<Vec<_>>());
    }
}
