//! **Truncated Bitonic Sort** (Sismanis, Pitsianis, Sun — HPEC 2012),
//! the paper's first state-of-the-art comparator ("TBS" in Table I).
//!
//! Divide-and-merge: split the list into chunks of `2k'` (k rounded up to
//! a power of two), bitonic-sort each chunk ascending, keep each chunk's k'
//! smallest, then pairwise-merge the k'-runs with bitonic merges
//! (truncating back to k' after each merge) in a tournament until one run
//! remains. All work is sorting networks — perfectly SIMT-regular, but
//! ~`N·log²(2k)/2` comparators of it, which is why the paper's queues
//! (that *skip* most elements) beat it.
//!
//! Both a native implementation (oracle + CPU baseline) and a simulated
//! warp kernel (lane-per-query over `LaneLocal` scratch) are provided.
//! The published TBS code supports k ≤ 512; this implementation has no
//! such limit, but the harness marks k = 1024 the way the paper does.

use kselect::bitonic::{bitonic_sort_schedule, reverse_bitonic_merge_schedule, Comparator};
use kselect::gpu::DistanceMatrix;
use kselect::types::{Neighbor, INF, NO_ID};
use simt::mem::LaneLocal;
use simt::{lanes_from_fn, launch, splat, GpuSpec, Mask, Metrics, WarpCtx, WARP_SIZE};

/// Run an *ascending* comparator schedule (pairs interpreted as
/// "ensure v[a] ≤ v[b]") over an offset window of dist/id slices.
fn run_ascending(schedule: &[Comparator], off: usize, dist: &mut [f32], id: &mut [u32]) {
    for &(a, b) in schedule {
        let (a, b) = (off + a, off + b);
        if dist[a] > dist[b] {
            dist.swap(a, b);
            id.swap(a, b);
        }
    }
}

/// Native Truncated Bitonic Sort selection; returns the k smallest,
/// ascending.
pub fn tbs_select(dists: &[f32], k: usize) -> Vec<Neighbor> {
    assert!(k > 0);
    let kk = k.next_power_of_two();
    let chunk = 2 * kk;
    let padded = dists.len().max(chunk).div_ceil(chunk) * chunk;
    let mut d = vec![INF; padded];
    let mut id = vec![NO_ID; padded];
    for (i, &v) in dists.iter().enumerate() {
        d[i] = v;
        id[i] = i as u32;
    }
    let sort_sched = bitonic_sort_schedule(chunk);
    let merge_sched = reverse_bitonic_merge_schedule(chunk);
    // Phase 1: sort every chunk ascending; its k' smallest sit in front.
    let n_chunks = padded / chunk;
    for c in 0..n_chunks {
        run_ascending(&sort_sched, c * chunk, &mut d, &mut id);
    }
    // Phase 2: tournament of truncated merges.
    let mut stride = chunk;
    let mut runs = n_chunks;
    while runs > 1 {
        for pair in 0..runs / 2 {
            let a = 2 * pair * stride;
            let b = a + stride;
            // Bring run B's k' elements adjacent to run A's k'.
            for i in 0..kk {
                d[a + kk + i] = d[b + i];
                id[a + kk + i] = id[b + i];
            }
            run_ascending(&merge_sched, a, &mut d, &mut id);
        }
        if runs % 2 == 1 {
            // Odd run out: move it up to pair in the next round.
            let src = (runs - 1) * stride;
            let dst = (runs / 2) * 2 * stride;
            if src != dst {
                for i in 0..kk {
                    d[dst + i] = d[src + i];
                    id[dst + i] = id[src + i];
                }
            }
        }
        runs = runs.div_ceil(2);
        stride *= 2;
    }
    (0..k.min(dists.len()))
        .map(|i| Neighbor::new(d[i], id[i]))
        .collect()
}

/// Simulated TBS over a [`DistanceMatrix`]: one lane per query. All
/// comparator traffic is at uniform indices (coalesced, divergence-free) —
/// the algorithm's strength; its weakness is the sheer comparator count.
pub fn gpu_tbs_select(
    spec: &GpuSpec,
    dm: &DistanceMatrix,
    k: usize,
) -> (Vec<Vec<Neighbor>>, Metrics) {
    assert!(k > 0 && k <= dm.n());
    let kk = k.next_power_of_two();
    let chunk = 2 * kk;
    let padded = dm.n().max(chunk).div_ceil(chunk) * chunk;
    let sort_sched = bitonic_sort_schedule(chunk);
    let merge_sched = reverse_bitonic_merge_schedule(chunk);
    let n_warps = dm.q().div_ceil(WARP_SIZE);

    let (per_warp, metrics) = launch(spec, n_warps, |warp_id, ctx| {
        let q_base = warp_id * WARP_SIZE;
        let live = dm.q().saturating_sub(q_base).min(WARP_SIZE);
        let warp = Mask::first(live);
        let mut d = LaneLocal::new(padded, INF);
        let mut id = LaneLocal::new(padded, NO_ID);
        // Load the lane's column (coalesced) into scratch.
        for e in 0..dm.n() {
            let idx = lanes_from_fn(|l| e * dm.q() + (q_base + l).min(dm.q() - 1));
            let v = dm.buf().read(ctx, warp, &idx);
            d.write_uniform(ctx, warp, e, &v);
            id.write_uniform(ctx, warp, e, &splat(e as u32));
        }
        let n_chunks = padded / chunk;
        for c in 0..n_chunks {
            run_network(ctx, warp, &sort_sched, c * chunk, &mut d, &mut id);
        }
        let mut stride = chunk;
        let mut runs = n_chunks;
        while runs > 1 {
            for pair in 0..runs / 2 {
                let a = 2 * pair * stride;
                let b = a + stride;
                for i in 0..kk {
                    let v = d.read_uniform(ctx, warp, b + i);
                    let j = id.read_uniform(ctx, warp, b + i);
                    d.write_uniform(ctx, warp, a + kk + i, &v);
                    id.write_uniform(ctx, warp, a + kk + i, &j);
                }
                run_network(ctx, warp, &merge_sched, a, &mut d, &mut id);
            }
            if runs % 2 == 1 {
                let src = (runs - 1) * stride;
                let dst = (runs / 2) * 2 * stride;
                if src != dst {
                    for i in 0..kk {
                        let v = d.read_uniform(ctx, warp, src + i);
                        let j = id.read_uniform(ctx, warp, src + i);
                        d.write_uniform(ctx, warp, dst + i, &v);
                        id.write_uniform(ctx, warp, dst + i, &j);
                    }
                }
            }
            runs = runs.div_ceil(2);
            stride *= 2;
        }
        // Host-side extraction of each lane's k results.
        (0..live)
            .map(|l| {
                (0..k.min(dm.n()))
                    .map(|i| Neighbor::new(d.peek(l, i), id.peek(l, i)))
                    .filter(|n| !n.is_sentinel())
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>()
    });
    (per_warp.into_iter().flatten().collect(), metrics)
}

/// Execute a comparator network at `off` in lane-local scratch: uniform
/// indices, branch-free compare-exchange.
fn run_network(
    ctx: &mut WarpCtx,
    warp: Mask,
    schedule: &[Comparator],
    off: usize,
    d: &mut LaneLocal<f32>,
    id: &mut LaneLocal<u32>,
) {
    for &(a, b) in schedule {
        let (a, b) = (off + a, off + b);
        let va = d.read_uniform(ctx, warp, a);
        let vb = d.read_uniform(ctx, warp, b);
        let ia = id.read_uniform(ctx, warp, a);
        let ib = id.read_uniform(ctx, warp, b);
        ctx.op(warp, 2);
        // ascending: ensure d[a] <= d[b]
        let swap = lanes_from_fn(|l| va[l] > vb[l]);
        let na = lanes_from_fn(|l| if swap[l] { vb[l] } else { va[l] });
        let nb = lanes_from_fn(|l| if swap[l] { va[l] } else { vb[l] });
        let nia = lanes_from_fn(|l| if swap[l] { ib[l] } else { ia[l] });
        let nib = lanes_from_fn(|l| if swap[l] { ia[l] } else { ib[l] });
        d.write_uniform(ctx, warp, a, &na);
        d.write_uniform(ctx, warp, b, &nb);
        id.write_uniform(ctx, warp, a, &nia);
        id.write_uniform(ctx, warp, b, &nib);
    }
}

/// Simulated **block-cooperative** TBS — the mapping of the published
/// implementation: one warp works on *one* query, the chunk lives in
/// shared memory, and each network stage's comparators execute 32 at a
/// time across the lanes. This is the variant Table I compares against;
/// [`gpu_tbs_select`] (lane-per-query) is kept as a mapping ablation.
///
/// The distance matrix is assumed stored query-major per row for this
/// mapping (each query's row contiguous), so chunk loads coalesce.
pub fn gpu_tbs_block_select(
    spec: &GpuSpec,
    dm: &DistanceMatrix,
    k: usize,
) -> (Vec<Vec<Neighbor>>, Metrics) {
    use kselect::bitonic::{bitonic_sort_stages, reverse_bitonic_merge_stages};

    assert!(k > 0 && k <= dm.n());
    let kk = k.next_power_of_two();
    let chunk = 2 * kk;
    let n = dm.n();
    let padded = n.max(chunk).div_ceil(chunk) * chunk;
    let sort_stages = bitonic_sort_stages(chunk);
    let merge_stages = reverse_bitonic_merge_stages(chunk);
    // One warp per query.
    let (per_warp, metrics) = launch(spec, dm.q(), |query, ctx| {
        // Working copy (host data; costs charged explicitly).
        let mut d = vec![INF; padded];
        let mut id = vec![NO_ID; padded];
        for e in 0..n {
            d[e] = dm.value(query, e);
            id[e] = e as u32;
        }
        // Cooperative 32-wide loop over `count` items charging `ops` ALU
        // ops per item group plus the given shared accesses.
        let mut coop = |ctx: &mut WarpCtx, count: usize, ops: u64, shared: u64| {
            let mut left = count;
            while left > 0 {
                let lanes = left.min(WARP_SIZE);
                let m = Mask::first(lanes);
                ctx.op(m, ops);
                for _ in 0..shared {
                    ctx.record_shared(m, 1);
                }
                left -= lanes;
            }
        };
        // Load + stage each chunk into shared memory (coalesced global
        // reads: 32 contiguous floats per transaction).
        for base in (0..padded).step_by(WARP_SIZE) {
            let lanes = WARP_SIZE.min(padded - base);
            let m = Mask::first(lanes);
            ctx.record_global(m, 1, lanes as u64 * 4);
            ctx.record_shared(m, 1); // store to shared
        }
        // Run the cooperative comparator network per chunk, then
        // tournament-merge the truncated runs — executing the *data*
        // movement on the host arrays and charging the warp for it.
        let run_stages = |ctx: &mut WarpCtx,
                          coop: &mut dyn FnMut(&mut WarpCtx, usize, u64, u64),
                          stages: &[Vec<(usize, usize)>],
                          off: usize,
                          d: &mut [f32],
                          id: &mut [u32]| {
            for stage in stages {
                // per comparator: 4 shared reads + compare + 4 writes
                coop(ctx, stage.len(), 2, 8);
                for &(a, b) in stage {
                    let (a, b) = (off + a, off + b);
                    // ascending
                    if d[a] > d[b] {
                        d.swap(a, b);
                        id.swap(a, b);
                    }
                }
                ctx.sync();
            }
        };
        for c in 0..padded / chunk {
            run_stages(ctx, &mut coop, &sort_stages, c * chunk, &mut d, &mut id);
        }
        let mut stride = chunk;
        let mut runs = padded / chunk;
        while runs > 1 {
            for pair in 0..runs / 2 {
                let a = 2 * pair * stride;
                let b = a + stride;
                coop(ctx, kk, 0, 2); // cooperative copy of run B
                for i in 0..kk {
                    d[a + kk + i] = d[b + i];
                    id[a + kk + i] = id[b + i];
                }
                run_stages(ctx, &mut coop, &merge_stages, a, &mut d, &mut id);
            }
            if runs % 2 == 1 {
                let src = (runs - 1) * stride;
                let dst = (runs / 2) * 2 * stride;
                if src != dst {
                    coop(ctx, kk, 0, 2);
                    for i in 0..kk {
                        d[dst + i] = d[src + i];
                        id[dst + i] = id[src + i];
                    }
                }
            }
            runs = runs.div_ceil(2);
            stride *= 2;
        }
        // Write the k results back to global memory.
        coop(ctx, k, 0, 1);
        ctx.record_global(
            Mask::first(k.min(WARP_SIZE)),
            k.div_ceil(WARP_SIZE) as u64,
            k as u64 * 4,
        );
        (0..k.min(n))
            .map(|i| Neighbor::new(d[i], id[i]))
            .filter(|nb| !nb.is_sentinel())
            .collect::<Vec<_>>()
    });
    (per_warp, metrics)
}

// NOTE on the ascending comparator direction in `run_stages`: the staged
// schedules are generated for descending order under the "ensure
// v[a] ≥ v[b]" convention; executing them with "ensure v[a] ≤ v[b]"
// flips the network to ascending (0-1 principle), which is what the
// truncation (smallest k at the front) needs.

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn dm_from(rows: &[Vec<f32>]) -> DistanceMatrix {
        DistanceMatrix::from_row_major(&rows.concat(), rows.len(), rows[0].len())
    }

    fn oracle(dists: &[f32], k: usize) -> Vec<f32> {
        let mut v = dists.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v.truncate(k);
        v
    }

    #[test]
    fn native_matches_oracle() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(221);
        for &n in &[5usize, 64, 1000, 4096] {
            for &k in &[1usize, 4, 32, 100] {
                let d: Vec<f32> = (0..n).map(|_| rng.gen()).collect();
                let got: Vec<f32> = tbs_select(&d, k).iter().map(|x| x.dist).collect();
                assert_eq!(got, oracle(&d, k.min(n)), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn native_ids_track_values() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(222);
        let d: Vec<f32> = (0..500).map(|_| rng.gen()).collect();
        for nb in tbs_select(&d, 16) {
            assert_eq!(d[nb.id as usize], nb.dist);
        }
    }

    #[test]
    fn simulated_matches_native() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(223);
        let rows: Vec<Vec<f32>> = (0..64)
            .map(|_| (0..300).map(|_| rng.gen()).collect())
            .collect();
        let dm = dm_from(&rows);
        let (res, metrics) = gpu_tbs_select(&GpuSpec::tesla_c2075(), &dm, 16);
        assert_eq!(res.len(), 64);
        for (q, row) in rows.iter().enumerate() {
            let got: Vec<f32> = res[q].iter().map(|n| n.dist).collect();
            assert_eq!(got, oracle(row, 16), "query {q}");
        }
        // Sorting networks are divergence-free by construction.
        assert_eq!(metrics.divergent_branches, 0);
        assert!(metrics.simt_efficiency() > 0.9);
    }

    #[test]
    fn block_cooperative_matches_native() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(224);
        let rows: Vec<Vec<f32>> = (0..20)
            .map(|_| (0..333).map(|_| rng.gen()).collect())
            .collect();
        let dm = dm_from(&rows);
        let (res, metrics) = gpu_tbs_block_select(&GpuSpec::tesla_c2075(), &dm, 16);
        assert_eq!(res.len(), 20);
        for (q, row) in rows.iter().enumerate() {
            let got: Vec<f32> = res[q].iter().map(|n| n.dist).collect();
            assert_eq!(got, oracle(row, 16), "query {q}");
            for nb in &res[q] {
                assert_eq!(row[nb.id as usize], nb.dist);
            }
        }
        // Cooperative mapping keeps the data in shared memory: far fewer
        // DRAM transactions than the lane-per-query mapping.
        let (_, lane_metrics) = gpu_tbs_select(&GpuSpec::tesla_c2075(), &dm, 16);
        assert!(metrics.global_transactions * 4 < lane_metrics.global_transactions);
        assert!(metrics.shared_accesses > lane_metrics.shared_accesses);
    }

    #[test]
    fn simulated_work_is_data_independent() {
        let rows1: Vec<Vec<f32>> = vec![(0..256).map(|i| i as f32).collect(); 32];
        let rows2: Vec<Vec<f32>> = vec![(0..256).rev().map(|i| i as f32).collect(); 32];
        let (_, m1) = gpu_tbs_select(&GpuSpec::tesla_c2075(), &dm_from(&rows1), 8);
        let (_, m2) = gpu_tbs_select(&GpuSpec::tesla_c2075(), &dm_from(&rows2), 8);
        assert_eq!(m1.issued, m2.issued);
        assert_eq!(m1.global_transactions, m2.global_transactions);
    }
}
