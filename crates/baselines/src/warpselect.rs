//! **WarpSelect** — a retrospective, FAISS-style comparator
//! (Johnson, Douze, Jégou, "Billion-scale similarity search with GPUs",
//! 2017 — two years after the reproduced paper).
//!
//! Mapping: one **warp per query** (not one lane per query). The running
//! k-best ("warp queue") lives in *registers*, k/32 elements per lane,
//! globally sorted across the warp; each lane additionally buffers
//! candidates in a small register "thread queue". The scan reads 32
//! consecutive elements per step (one coalesced transaction); candidates
//! that beat the warp-queue maximum enter the lane's thread queue, and
//! when any lane's thread queue fills, the warp performs a register-level
//! bitonic sort + merge entirely through shuffles — **no memory traffic
//! at all** for queue maintenance.
//!
//! Relative to the paper's lane-per-query queues this removes the two
//! dominant costs (local-memory traffic and per-lane divergence), which
//! is why this style superseded the 2015 approaches. The harness includes
//! it as an extra Table-I row so the reproduction shows where the field
//! went next.
//!
//! Simplification vs. FAISS: our thread queues buffer *every* candidate
//! below the warp max rather than keeping only each lane's t best (the
//! same conservative policy as the paper's Buffered Search), which keeps
//! the kernel trivially exact at a small extra merge rate.

use kselect::bitonic::{bitonic_sort_stages, reverse_bitonic_merge_stages};
use kselect::gpu::DistanceMatrix;
use kselect::types::{sort_neighbors, Neighbor, INF};
use simt::{launch, GpuSpec, Mask, Metrics, WarpCtx, WARP_SIZE};

/// Candidate buffer slots per lane (FAISS uses 2–8 depending on k).
const THREAD_QUEUE: usize = 4;

/// Simulated WarpSelect over a [`DistanceMatrix`]: one warp per query.
/// Returns per-query neighbors (ascending) and aggregated metrics.
pub fn gpu_warp_select(
    spec: &GpuSpec,
    dm: &DistanceMatrix,
    k: usize,
) -> (Vec<Vec<Neighbor>>, Metrics) {
    assert!(k > 0 && k <= dm.n());
    let n = dm.n();
    // Register warp queue is k padded to a warp multiple; the merge
    // network needs power-of-two operands.
    let kq = k.next_power_of_two().max(WARP_SIZE);
    let cand_cap = THREAD_QUEUE * WARP_SIZE;
    let sort_stages = bitonic_sort_stages(cand_cap);
    let merge_stages = reverse_bitonic_merge_stages((kq + cand_cap).next_power_of_two());
    let merge_pad = (kq + cand_cap).next_power_of_two();

    let (per_warp, metrics) = launch(spec, dm.q(), |query, ctx| {
        // Warp queue: kq entries "in registers" (kq/32 per lane) —
        // maintained host-side; costs charged as register ops/shuffles.
        let mut wq: Vec<Neighbor> = vec![Neighbor::sentinel(); kq];
        let mut wq_max = INF;
        // Thread queues: candidate staging, THREAD_QUEUE per lane.
        let mut tq: Vec<Vec<Neighbor>> = (0..WARP_SIZE)
            .map(|_| Vec::with_capacity(THREAD_QUEUE))
            .collect();

        let merge = |ctx: &mut WarpCtx, wq: &mut Vec<Neighbor>, tq: &mut Vec<Vec<Neighbor>>| {
            // Gather candidates (already in registers), pad to cand_cap.
            let mut cands: Vec<Neighbor> = tq.iter().flatten().copied().collect();
            if cands.is_empty() {
                return;
            }
            cands.resize(cand_cap, Neighbor::sentinel());
            for q in tq.iter_mut() {
                q.clear();
            }
            // Register bitonic sort of the candidates: each stage's
            // comparators run one-per-lane via shuffles.
            for stage in &sort_stages {
                // cand_cap/2 comparators over 32 lanes
                ctx.op(Mask::first((stage.len()).min(WARP_SIZE)), 3);
                for &(a, b) in stage {
                    if cands[a].dist > cands[b].dist {
                        cands.swap(a, b);
                    }
                }
                ctx.sync();
            }
            // Merge the sorted candidate run with the warp queue run
            // (both ascending) through the reverse-merge network. The
            // network merges two equal halves, so pad each run to
            // merge_pad/2 first.
            let mut arranged: Vec<Neighbor> = Vec::with_capacity(merge_pad);
            arranged.extend(wq.iter().copied());
            arranged.resize(merge_pad / 2, Neighbor::sentinel());
            arranged.extend(cands.iter().copied());
            arranged.resize(merge_pad, Neighbor::sentinel());
            for stage in &merge_stages {
                ctx.op(Mask::first((stage.len() / 2).clamp(1, WARP_SIZE)), 3);
                for &(a, b) in stage {
                    // ascending merge: smaller at the lower index
                    if arranged[a].dist > arranged[b].dist {
                        arranged.swap(a, b);
                    }
                }
                ctx.sync();
            }
            wq.copy_from_slice(&arranged[..kq]);
        };

        // Scan: 32 consecutive elements per step, one transaction.
        for base in (0..n).step_by(WARP_SIZE) {
            let lanes = WARP_SIZE.min(n - base);
            let m = Mask::first(lanes);
            ctx.record_global(m, 1, lanes as u64 * 4);
            ctx.op(m, 1); // compare against the broadcast warp max
            let mut any_full = false;
            for (l, lane_q) in tq.iter_mut().enumerate().take(lanes) {
                let e = base + l;
                let d = dm.value(query, e);
                if d < wq_max {
                    lane_q.push(Neighbor::new(d, e as u32));
                    if lane_q.len() == THREAD_QUEUE {
                        any_full = true;
                    }
                }
            }
            // Predicated thread-queue insert: constant register cost.
            ctx.op(m, 2);
            // Intra-warp vote on "anyone full?" (one ballot).
            let preds = core::array::from_fn(|l| l < lanes && tq[l].len() == THREAD_QUEUE);
            let _ = ctx.ballot(m, &preds);
            if any_full {
                merge(ctx, &mut wq, &mut tq);
                wq_max = wq[kq - 1].dist.min(INF);
                if k < kq {
                    // Only the true k matter for thresholding.
                    wq_max = wq[k - 1].dist;
                }
            }
        }
        merge(ctx, &mut wq, &mut tq);
        // Write k results to global memory.
        ctx.record_global(
            Mask::first(k.min(WARP_SIZE)),
            k.div_ceil(WARP_SIZE) as u64,
            k as u64 * 4,
        );
        let mut out: Vec<Neighbor> = wq
            .into_iter()
            .take(k)
            .filter(|nb| !nb.is_sentinel())
            .collect();
        sort_neighbors(&mut out);
        out
    });
    (per_warp, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn dm_from(rows: &[Vec<f32>]) -> DistanceMatrix {
        DistanceMatrix::from_row_major(&rows.concat(), rows.len(), rows[0].len())
    }

    fn oracle(dists: &[f32], k: usize) -> Vec<f32> {
        let mut v = dists.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v.truncate(k);
        v
    }

    #[test]
    fn matches_oracle_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(261);
        let rows: Vec<Vec<f32>> = (0..25)
            .map(|_| (0..700).map(|_| rng.gen()).collect())
            .collect();
        let dm = dm_from(&rows);
        for k in [1usize, 16, 100, 256] {
            let (res, _) = gpu_warp_select(&GpuSpec::tesla_c2075(), &dm, k);
            for (q, row) in rows.iter().enumerate() {
                let got: Vec<f32> = res[q].iter().map(|nb| nb.dist).collect();
                assert_eq!(got, oracle(row, k), "k={k} query {q}");
                for nb in &res[q] {
                    assert_eq!(row[nb.id as usize], nb.dist);
                }
            }
        }
    }

    #[test]
    fn duplicates_and_adversarial_order() {
        // Strictly descending input maximises accepted candidates.
        let rows: Vec<Vec<f32>> = vec![(0..512).rev().map(|i| i as f32).collect(); 3];
        let dm = dm_from(&rows);
        let (res, _) = gpu_warp_select(&GpuSpec::tesla_c2075(), &dm, 32);
        let got: Vec<f32> = res[0].iter().map(|nb| nb.dist).collect();
        assert_eq!(got, (0..32).map(|i| i as f32).collect::<Vec<_>>());
    }

    #[test]
    fn queue_maintenance_uses_no_dram() {
        // The whole point: memory traffic is the coalesced scan plus the
        // result write-back — nothing else.
        let mut rng = rand::rngs::StdRng::seed_from_u64(262);
        let n = 2048;
        let rows: Vec<Vec<f32>> = vec![(0..n).map(|_| rng.gen()).collect(); 4];
        let dm = dm_from(&rows);
        let k = 64;
        let (_, m) = gpu_warp_select(&GpuSpec::tesla_c2075(), &dm, k);
        let scan_tx = 4 * (n as u64).div_ceil(32);
        let writeback_tx = 4 * (k as u64).div_ceil(32);
        assert_eq!(m.global_transactions, scan_tx + writeback_tx);
        assert_eq!(m.shared_accesses, 0);
    }

    #[test]
    fn beats_the_papers_best_variant() {
        // The retrospective point: warp-select removes queue memory
        // traffic entirely and should dominate the 2015 techniques.
        use kselect::{QueueKind, SelectConfig};
        let mut rng = rand::rngs::StdRng::seed_from_u64(263);
        let n = 1 << 13;
        let rows: Vec<Vec<f32>> = (0..32)
            .map(|_| (0..n).map(|_| rng.gen()).collect())
            .collect();
        let dm = dm_from(&rows);
        let tm = simt::TimingModel::tesla_c2075();
        let (_, ws) = gpu_warp_select(&tm.spec, &dm, 256);
        let paper = kselect::gpu::gpu_select_k(
            &tm.spec,
            &dm,
            &SelectConfig::optimized(QueueKind::Merge, 256),
        );
        // Same per-query workload: warp-select used 32 warps (one per
        // query) vs one warp for 32 queries — compare total device time.
        assert!(
            tm.kernel_time(&ws) < tm.kernel_time(&paper.metrics),
            "warp-select {:.5}s vs paper best {:.5}s",
            tm.kernel_time(&ws),
            tm.kernel_time(&paper.metrics)
        );
    }
}
