//! Clustered-Sort (Pan & Manocha — GIS 2011), the paper's §II-C
//! "Selection by Sorting" representative: combine the distance lists of
//! *many* queries into one keyed array and sort them together, so the
//! fixed overhead of a big sort is amortised across queries.
//!
//! Keys pack `(query id << 32) | distance bits` — for non-negative
//! finite floats the IEEE bit pattern orders like the value, so one
//! 64-bit sort clusters each query's elements contiguously in ascending
//! distance order. The sort is a from-scratch LSD radix sort (8-bit
//! digits), the standard GPU-friendly choice.

use kselect::types::Neighbor;

/// Sort `(key, payload)` pairs by key with an LSD radix sort
/// (eight 8-bit passes). Stable; O(8·(n + 256)).
pub fn radix_sort_u64(keys: &mut Vec<u64>, payload: &mut Vec<u32>) {
    debug_assert_eq!(keys.len(), payload.len());
    let n = keys.len();
    let mut keys_tmp = vec![0u64; n];
    let mut pay_tmp = vec![0u32; n];
    for pass in 0..8 {
        let shift = pass * 8;
        // Skip passes whose digit is constant (common for the high query
        // bits when few queries are batched).
        let first_digit = keys.first().map(|k| (k >> shift) & 0xFF);
        if let Some(fd) = first_digit {
            if keys.iter().all(|k| (k >> shift) & 0xFF == fd) {
                continue;
            }
        }
        let mut counts = [0usize; 256];
        for &k in keys.iter() {
            counts[((k >> shift) & 0xFF) as usize] += 1;
        }
        let mut offsets = [0usize; 256];
        let mut acc = 0;
        for d in 0..256 {
            offsets[d] = acc;
            acc += counts[d];
        }
        for (&k, &p) in keys.iter().zip(payload.iter()) {
            let d = ((k >> shift) & 0xFF) as usize;
            keys_tmp[offsets[d]] = k;
            pay_tmp[offsets[d]] = p;
            offsets[d] += 1;
        }
        std::mem::swap(keys, &mut keys_tmp);
        std::mem::swap(payload, &mut pay_tmp);
    }
}

/// k-NN selection for a batch of queries by one combined sort.
///
/// # Panics
/// When any distance is negative or NaN, or when a row has more than
/// `u32::MAX` elements.
pub fn clustered_sort_select(rows: &[Vec<f32>], k: usize) -> Vec<Vec<Neighbor>> {
    assert!(k > 0);
    assert!(rows.len() < (1 << 31), "too many queries to pack");
    let total: usize = rows.iter().map(Vec::len).sum();
    let mut keys = Vec::with_capacity(total);
    let mut payload = Vec::with_capacity(total);
    for (qi, row) in rows.iter().enumerate() {
        for (e, &d) in row.iter().enumerate() {
            assert!(
                d >= 0.0 && !d.is_nan(),
                "clustered sort needs non-negative distances"
            );
            keys.push(((qi as u64) << 32) | u64::from(d.to_bits()));
            payload.push(e as u32);
        }
    }
    radix_sort_u64(&mut keys, &mut payload);
    // Walk the sorted array; each query's elements are contiguous and
    // ascending, so the first k per query are its k-NN.
    let mut out: Vec<Vec<Neighbor>> = vec![Vec::with_capacity(k); rows.len()];
    for (&key, &id) in keys.iter().zip(payload.iter()) {
        let qi = (key >> 32) as usize;
        if out[qi].len() < k {
            out[qi].push(Neighbor::new(f32::from_bits(key as u32), id));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn oracle(dists: &[f32], k: usize) -> Vec<f32> {
        let mut v = dists.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v.truncate(k);
        v
    }

    #[test]
    fn radix_sort_matches_std() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(251);
        let mut keys: Vec<u64> = (0..5000).map(|_| rng.gen()).collect();
        let mut payload: Vec<u32> = (0..5000).collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        radix_sort_u64(&mut keys, &mut payload);
        assert_eq!(keys, expect);
    }

    #[test]
    fn radix_sort_is_stable() {
        // Equal keys keep their original payload order.
        let mut keys = vec![5u64, 3, 5, 3, 5];
        let mut payload = vec![0u32, 1, 2, 3, 4];
        radix_sort_u64(&mut keys, &mut payload);
        assert_eq!(keys, vec![3, 3, 5, 5, 5]);
        assert_eq!(payload, vec![1, 3, 0, 2, 4]);
    }

    #[test]
    fn radix_sort_empty_and_single() {
        let mut k: Vec<u64> = vec![];
        let mut p: Vec<u32> = vec![];
        radix_sort_u64(&mut k, &mut p);
        assert!(k.is_empty());
        let mut k = vec![42u64];
        let mut p = vec![7u32];
        radix_sort_u64(&mut k, &mut p);
        assert_eq!((k[0], p[0]), (42, 7));
    }

    #[test]
    fn batch_selection_matches_per_query_oracle() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(252);
        let rows: Vec<Vec<f32>> = (0..37)
            .map(|_| (0..500).map(|_| rng.gen()).collect())
            .collect();
        let got = clustered_sort_select(&rows, 12);
        assert_eq!(got.len(), 37);
        for (qi, row) in rows.iter().enumerate() {
            let gd: Vec<f32> = got[qi].iter().map(|n| n.dist).collect();
            assert_eq!(gd, oracle(row, 12), "query {qi}");
            for nb in &got[qi] {
                assert_eq!(row[nb.id as usize], nb.dist);
            }
        }
    }

    #[test]
    fn ragged_rows_supported() {
        let rows = vec![vec![3.0, 1.0], vec![0.5], vec![9.0, 2.0, 4.0, 0.25]];
        let got = clustered_sort_select(&rows, 2);
        assert_eq!(
            got[0].iter().map(|n| n.dist).collect::<Vec<_>>(),
            vec![1.0, 3.0]
        );
        assert_eq!(got[1].iter().map(|n| n.dist).collect::<Vec<_>>(), vec![0.5]);
        assert_eq!(
            got[2].iter().map(|n| n.dist).collect::<Vec<_>>(),
            vec![0.25, 2.0]
        );
    }

    #[test]
    #[should_panic]
    fn nan_rejected() {
        clustered_sort_select(&[vec![f32::NAN]], 1);
    }
}
