//! Radix Select (Alabi et al. \[12\]) — most-significant-digit radix
//! partitioning on the IEEE-754 bit pattern.
//!
//! Distances in k-NN are non-negative, and for non-negative finite floats
//! the raw bit pattern orders identically to the value, so an 8-bit MSD
//! histogram pass per level selects exactly like it would on integers.

use kselect::types::{sort_neighbors, Neighbor};

/// k smallest via MSD radix partitioning; ascending.
///
/// # Panics
/// When any distance is negative or NaN (k-NN distances never are).
pub fn radix_select(dists: &[f32], k: usize) -> Vec<Neighbor> {
    assert!(k > 0);
    assert!(
        dists.iter().all(|d| *d >= 0.0 && !d.is_nan()),
        "radix_select requires non-negative, non-NaN distances"
    );
    if k >= dists.len() {
        return crate::sort_select::sort_select(dists, k);
    }
    let mut live: Vec<(u32, u32)> = dists
        .iter()
        .enumerate()
        .map(|(i, &d)| (d.to_bits(), i as u32))
        .collect();
    let mut result: Vec<Neighbor> = Vec::with_capacity(k);
    let mut need = k;
    // Four 8-bit digit passes, most significant first.
    for shift in [24u32, 16, 8, 0] {
        if need == 0 {
            break;
        }
        let mut counts = [0usize; 256];
        for &(bits, _) in &live {
            counts[((bits >> shift) & 0xFF) as usize] += 1;
        }
        let mut acc = 0;
        let mut pivot_digit = 255usize;
        for (d, &c) in counts.iter().enumerate() {
            if acc + c >= need {
                pivot_digit = d;
                break;
            }
            acc += c;
        }
        let mut next_live = Vec::with_capacity(counts[pivot_digit]);
        for &(bits, id) in &live {
            let d = ((bits >> shift) & 0xFF) as usize;
            if d < pivot_digit {
                result.push(Neighbor::new(f32::from_bits(bits), id));
            } else if d == pivot_digit {
                next_live.push((bits, id));
            }
        }
        need -= acc;
        live = next_live;
    }
    // After all four digits, remaining live values are bit-identical:
    // any `need` of them complete the answer.
    result.extend(
        live.iter()
            .take(need)
            .map(|&(bits, id)| Neighbor::new(f32::from_bits(bits), id)),
    );
    sort_neighbors(&mut result);
    result.truncate(k);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn oracle(dists: &[f32], k: usize) -> Vec<f32> {
        let mut v = dists.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v.truncate(k);
        v
    }

    #[test]
    fn bit_pattern_order_assumption() {
        // Non-negative floats order by their bit patterns.
        let mut vals = vec![0.0f32, 1e-20, 0.1, 0.5, 1.0, 2.0, 1e10, f32::INFINITY];
        let mut by_bits = vals.clone();
        by_bits.sort_by_key(|v| v.to_bits());
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(vals, by_bits);
    }

    #[test]
    fn matches_oracle_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(211);
        for &n in &[16usize, 1000, 8192] {
            for &k in &[1usize, 7, 128] {
                let d: Vec<f32> = (0..n).map(|_| rng.gen()).collect();
                let got: Vec<f32> = radix_select(&d, k).iter().map(|x| x.dist).collect();
                assert_eq!(got, oracle(&d, k.min(n)), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn exact_duplicates_across_boundary() {
        let mut d = vec![0.25f32; 50];
        d[10] = 0.1;
        let got: Vec<f32> = radix_select(&d, 3).iter().map(|x| x.dist).collect();
        assert_eq!(got, vec![0.1, 0.25, 0.25]);
    }

    #[test]
    fn zeros_and_denormals() {
        let d = vec![0.0, f32::MIN_POSITIVE / 2.0, 1.0, 0.0];
        let got: Vec<f32> = radix_select(&d, 3).iter().map(|x| x.dist).collect();
        assert_eq!(got, vec![0.0, 0.0, f32::MIN_POSITIVE / 2.0]);
    }

    #[test]
    #[should_panic]
    fn negative_rejected() {
        radix_select(&[-1.0, 2.0], 1);
    }
}
