//! Seeded-defect fixture corpus.
//!
//! Every file under `fixtures/` carries a header comment stating either a
//! seeded defect with its `EXPECT: <rule> at line N.` marker, or
//! `EXPECT: clean.` for the false-positive traps that mirror idioms the
//! real kernels rely on. The analyzer must detect 100% of the seeded
//! defects — with the right rule at the right line, and nothing else —
//! and stay silent on every trap.

use analyze::{analyze_sources, RULE_ALIAS, RULE_BARRIER, RULE_CHARGE, RULE_TIME};

fn run_fixture(name: &str) -> Vec<(String, usize)> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let analysis = analyze_sources(&[(name.to_string(), text)]);
    analysis
        .findings
        .iter()
        .map(|f| (f.rule.to_string(), f.line))
        .collect()
}

/// Assert the fixture yields exactly one finding with the given rule/line.
fn expect_defect(name: &str, rule: &str, line: usize) {
    let got = run_fixture(name);
    assert_eq!(
        got,
        vec![(rule.to_string(), line)],
        "{name}: expected exactly [{rule} at line {line}], got {got:?}"
    );
}

/// Assert the fixture analyzes clean (false-positive trap).
fn expect_clean(name: &str) {
    let got = run_fixture(name);
    assert!(got.is_empty(), "{name}: expected clean, got {got:?}");
}

// ---- seeded defects: barrier-divergence ---------------------------------

#[test]
fn fence_in_tainted_if() {
    expect_defect("fence_in_tainted_if.rs", RULE_BARRIER, 9);
}

#[test]
fn fence_in_tainted_while() {
    expect_defect("fence_in_tainted_while.rs", RULE_BARRIER, 9);
}

#[test]
fn fence_in_lane_loop() {
    expect_defect("fence_in_lane_loop.rs", RULE_BARRIER, 9);
}

#[test]
fn fence_via_callee() {
    expect_defect("fence_via_callee.rs", RULE_BARRIER, 10);
}

// ---- seeded defects: shared-alias ---------------------------------------

#[test]
fn alias_nonpartitioned_write() {
    expect_defect("alias_nonpartitioned_write.rs", RULE_ALIAS, 11);
}

#[test]
fn alias_uniform_scatter() {
    expect_defect("alias_uniform_scatter.rs", RULE_ALIAS, 11);
}

#[test]
fn alias_unfenced_broadcast() {
    expect_defect("alias_unfenced_broadcast.rs", RULE_ALIAS, 12);
}

// ---- seeded defects: time-charge / charge-divergence --------------------

#[test]
fn uncharged_divergent_loop() {
    expect_defect("uncharged_divergent_loop.rs", RULE_TIME, 9);
}

#[test]
fn uncharged_branch_path() {
    expect_defect("uncharged_branch_path.rs", RULE_TIME, 10);
}

#[test]
fn uncharged_divergence() {
    expect_defect("uncharged_divergence.rs", RULE_CHARGE, 8);
}

// ---- false-positive traps: real-kernel idioms must pass -----------------

#[test]
fn trap_vote_protocol() {
    expect_clean("trap_vote_protocol.rs");
}

#[test]
fn trap_partitioned_writes() {
    expect_clean("trap_partitioned_writes.rs");
}

#[test]
fn trap_host_shape_loop() {
    expect_clean("trap_host_shape_loop.rs");
}

#[test]
fn trap_launcher_closure() {
    expect_clean("trap_launcher_closure.rs");
}

#[test]
fn trap_uniform_loop_charged() {
    expect_clean("trap_uniform_loop_charged.rs");
}

// ---- corpus hygiene: every fixture on disk is covered above -------------

#[test]
fn corpus_is_fully_covered() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut on_disk: Vec<String> = std::fs::read_dir(&dir)
        .expect("fixtures dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".rs"))
        .collect();
    on_disk.sort();
    let mut covered = vec![
        "alias_nonpartitioned_write.rs",
        "alias_unfenced_broadcast.rs",
        "alias_uniform_scatter.rs",
        "fence_in_lane_loop.rs",
        "fence_in_tainted_if.rs",
        "fence_in_tainted_while.rs",
        "fence_via_callee.rs",
        "trap_host_shape_loop.rs",
        "trap_launcher_closure.rs",
        "trap_partitioned_writes.rs",
        "trap_uniform_loop_charged.rs",
        "trap_vote_protocol.rs",
        "uncharged_branch_path.rs",
        "uncharged_divergence.rs",
        "uncharged_divergent_loop.rs",
    ];
    covered.sort();
    assert_eq!(
        on_disk, covered,
        "fixture on disk without a test (or vice versa)"
    );
}
