//! Clean-pass proof over every real kernel file: the analyzer must
//! report zero findings on the shipped kernels with *no* allowlist.
//! (The `lint-allow.txt` entries that remain are for the token lint's
//! rules, not the analyzer's — the path-sensitive passes prove the
//! kernels clean outright.)

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analyze has the workspace root two levels up")
        .to_path_buf()
}

/// The same roots `cargo xtask analyze` scans.
const ROOTS: [&str; 3] = ["crates/core/src/gpu", "crates/simt/src", "crates/knn/src"];

#[test]
fn real_kernels_analyze_clean() {
    let root = workspace_root();
    let roots: Vec<PathBuf> = ROOTS.iter().map(|r| root.join(r)).collect();
    let refs: Vec<&Path> = roots.iter().map(PathBuf::as_path).collect();
    let analysis = analyze::analyze_tree(&refs).expect("kernel sources readable");
    assert!(
        analysis.files_scanned >= 10,
        "expected the kernel tree, scanned only {} files",
        analysis.files_scanned
    );
    assert!(
        analysis.kernels >= 20,
        "expected dozens of kernel fns, found {}",
        analysis.kernels
    );
    let rendered: Vec<String> = analysis.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        analysis.findings.is_empty(),
        "real kernels must analyze clean, got {} finding(s):\n{}",
        analysis.findings.len(),
        rendered.join("\n")
    );
}
