// FALSE-POSITIVE TRAP: the lane-partitioned layout every real queue
// kernel uses — `slot * WARP_SIZE + lane` indices computed through a
// helper. The residue of the index is Lane (each lane owns a distinct
// word mod 32), so per-lane writes never collide and the alias pass
// must stay quiet even across two writes in one fence region.
// EXPECT: clean.

fn slot_idx(slot: usize) -> Lanes<usize> {
    lanes_from_fn(|l| slot * WARP_SIZE + l)
}

pub struct Stage { pub heap: SharedBuf<u32> }

impl Stage {
    pub fn fill(&mut self, ctx: &mut WarpCtx, m: Mask, vals: Lanes<u32>) {
        self.heap.write(ctx, m, &slot_idx(0), vals);
        self.heap.write(ctx, m, &slot_idx(1), vals);
        ctx.op(m, 2);
    }
}
