// SEEDED DEFECT: a warp sync inside a loop whose trip count depends on
// a per-lane value (no warp vote): lanes exit on different iterations,
// so the sync inside is reached by a divergent subset.
// EXPECT: barrier-divergence at line 9.

pub fn kernel(ctx: &mut WarpCtx, warp: Mask) {
    let mut head = lanes_from_fn(|l| l);
    while head[0] > 0 {
        ctx.sync(warp);
        head = lanes_from_fn(|l| head[l] - 1);
    }
}
