// SEEDED DEFECT: a per-lane shared write at a splat (uniform) index —
// every active lane writes the SAME word with its own value. The
// uniform residue is fine for reads, never for multi-lane writes.
// EXPECT: shared-alias at line 11.

pub struct Stage { pub acc: SharedBuf<u32> }

impl Stage {
    pub fn collide(&mut self, ctx: &mut WarpCtx, m: Mask, vals: Lanes<u32>) {
        let idx = splat(7);
        self.acc.write(ctx, m, &idx, vals);
    }
}
