// FALSE-POSITIVE TRAP: a uniform counted loop whose body does real
// per-lane work and charges for it once per iteration. The charge sits
// inside the loop, so every cycling path pays — the time-charge pass
// must accept this without a dedicated `loop_head` call.
// EXPECT: clean.

pub fn kernel(ctx: &mut WarpCtx, warp: Mask, rounds: usize) {
    for _r in 0..rounds {
        let step = lanes_from_fn(|l| l + 1);
        ctx.op(warp, step[0]);
    }
}
