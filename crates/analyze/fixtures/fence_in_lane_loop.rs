// SEEDED DEFECT: a warp fence inside a per-lane loop. The lane loop is
// the simulator's emulation of one warp instruction — a fence per lane
// is never the single warp-wide barrier the sanitizer epochs expect.
// EXPECT: barrier-divergence at line 9.

pub fn kernel(ctx: &mut WarpCtx, warp: Mask) {
    ctx.op(warp, 1);
    for l in warp.lanes() {
        ctx.warp_fence();
    }
}
