// SEEDED DEFECT: the shared-flag protocol with the fences dropped — a
// broadcast write followed by a warp-wide read of the same buffer in
// one fence region. The dynamic sanitizer only catches this on an
// executed schedule; the static pass flags it on every path.
// EXPECT: shared-alias at line 12.

pub struct Stage { pub flag: SharedBuf<u32> }

impl Stage {
    pub fn signal(&mut self, ctx: &mut WarpCtx, warp: Mask) {
        self.flag.write_broadcast(ctx, warp, 0, 1);
        let seen = self.flag.read_broadcast(ctx, warp, 0);
        ctx.op(warp, seen as usize);
    }
}
