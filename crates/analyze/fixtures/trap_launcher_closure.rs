// FALSE-POSITIVE TRAP: a host-side launcher. `WarpCtx` appears only
// inside the generic closure bound, not as a parameter type, so this
// fn is NOT a kernel — none of the passes should look inside it, even
// though it contains an uncharged loop and an Option::filter call that
// would trip the divergence heuristics if misclassified.
// EXPECT: clean.

pub fn launch_all<K: Fn(usize, &mut WarpCtx) -> usize>(n: usize, kernel: K) -> Vec<usize> {
    let mut out = Vec::new();
    for warp in 0..n {
        let picked = Some(warp).filter(|w| w % 2 == 0);
        if let Some(w) = picked {
            out.push(w);
        }
    }
    out
}
