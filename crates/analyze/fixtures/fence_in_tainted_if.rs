// SEEDED DEFECT: a warp fence under a lane-dependent branch. Lane 0's
// value decides whether the fence runs, so lanes can disagree — the
// barrier is not warp-synchronous.
// EXPECT: barrier-divergence at line 9.

pub fn kernel(ctx: &mut WarpCtx, warp: Mask) {
    let full = lanes_from_fn(|l| l % 2 == 0);
    if full[0] {
        ctx.warp_fence();
    }
    ctx.op(warp, 1);
}
