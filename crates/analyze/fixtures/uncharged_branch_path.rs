// SEEDED DEFECT: the path-sensitive case the old token lint could not
// see. The loop DOES contain a `ctx.loop_head` — but only on one side
// of a uniform branch, so the `flip == false` iterations cycle back to
// the loop head charge-free. Token-level "loop_head somewhere in the
// body" heuristics pass this; the CFG cycle check does not.
// EXPECT: time-charge at line 10.

pub fn kernel(ctx: &mut WarpCtx, live: Mask) {
    let mut flip = false;
    while live.any_lane() {
        if flip {
            ctx.loop_head(live);
        }
        flip = !flip;
    }
    ctx.op(live, 1);
}
