// SEEDED DEFECT: a divergent loop (warp-vote condition) that never
// charges simulated time — the classic `loop_head` omission. Every
// cycling path is charge-free, so simulated time stands still while
// the warp spins and every figure undercounts the loop overhead.
// EXPECT: time-charge at line 9.

pub fn kernel(ctx: &mut WarpCtx, live: Mask) {
    let mut live = live;
    while live.any_lane() {
        live = live.filter(|l| l > 0);
    }
    ctx.op(live, 1);
}
