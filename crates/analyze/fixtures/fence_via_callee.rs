// SEEDED DEFECT: the fence hides one call deep. `repair` executes a
// warp fence; calling it under a lane-tainted branch makes the fence
// divergent even though no fence token appears at the call site. The
// cross-file fence summaries must carry the fact through the call edge.
// EXPECT: barrier-divergence at line 10.

pub fn kernel(ctx: &mut WarpCtx, warp: Mask) {
    let busy = lanes_from_fn(|l| l * 3);
    if busy[1] == 3 {
        repair(ctx, warp);
    }
    ctx.op(warp, 1);
}

fn repair(ctx: &mut WarpCtx, warp: Mask) {
    ctx.warp_fence();
    ctx.op(warp, 1);
}
