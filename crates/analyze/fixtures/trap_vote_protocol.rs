// FALSE-POSITIVE TRAP: the vote-then-fence idiom used by the real
// buffered flush protocol. The branch condition derives from a warp
// vote (`any_lane`), which is uniform across the warp — so the fence
// under it is safe. The broadcast flag is bracketed by fences, so the
// alias pass must keep the two accesses in separate regions.
// EXPECT: clean.

pub struct Stage { pub flag: SharedBuf<u32> }

impl Stage {
    pub fn vote_flush(&mut self, ctx: &mut WarpCtx, warp: Mask, dist: Lanes<f32>) {
        let over = lanes_from_fn(|l| l * 2);
        if warp.filter(|l| over[l] > 4).any_lane() {
            self.flag.write_broadcast(ctx, warp, 0, 1);
            ctx.warp_fence();
            let seen = self.flag.read_broadcast(ctx, warp, 0);
            ctx.op(warp, seen as usize);
        }
        ctx.op(warp, 1);
    }
}
