// SEEDED DEFECT: a per-lane shared write whose index is `l / 2` — lanes
// 2k and 2k+1 address the same word, so two lanes write one word in a
// single fence epoch. The residue abstract domain proves the index is
// not lane-partitioned (word ≢ lane_id mod WARP_SIZE).
// EXPECT: shared-alias at line 11.

pub struct Stage { pub db: SharedBuf<f32> }

impl Stage {
    pub fn scatter(&mut self, ctx: &mut WarpCtx, m: Mask, vals: Lanes<f32>) {
        self.db.write(ctx, m, &lanes_from_fn(|l| l / 2), vals);
    }
}
