// FALSE-POSITIVE TRAP: a host-side shape loop inside a kernel — it
// iterates over uniform host data to build a result Vec and performs
// no per-lane work in its body, so it owes no simulated time. The
// charged per-lane work happens outside the loop. The time-charge
// pass must not demand a `loop_head` here.
// EXPECT: clean.

pub fn kernel(ctx: &mut WarpCtx, warp: Mask, shape: &[usize]) -> Vec<usize> {
    ctx.op(warp, shape.len());
    let mut out = Vec::new();
    for dim in shape {
        out.push(dim + 1);
    }
    out
}
