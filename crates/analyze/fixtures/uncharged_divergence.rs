// SEEDED DEFECT: the kernel refines the warp mask per-lane (divergence)
// and branches on lane-tainted data, but never charges the context —
// uncharged divergence silently skews every simulated-time figure.
// EXPECT: charge-divergence at line 8.

pub fn kernel(ctx: &mut WarpCtx, warp: Mask, dist: Lanes<f32>) {
    let below = lanes_from_fn(|l| l + 1);
    let picked = warp.filter(|l| below[l] > 2);
    let count = picked.count();
    let _ = count;
}
