//! Findings and the machine-readable JSON report.
//!
//! JSON is rendered by hand (the crate is dependency-free); the shape
//! is stable and consumed by the CI `analyze` job artifact:
//!
//! ```json
//! {
//!   "schema_version": "1",
//!   "tool": "kernel-analyze",
//!   "files_scanned": 12,
//!   "kernels": 30,
//!   "findings": [ { "rule", "file", "line", "end_line", "function",
//!                   "message", "line_text", "witness": [..] } ],
//!   "suppressed": [ .. same shape .. ]
//! }
//! ```

use std::fmt;

/// One analyzer finding: rule, span, and a lane-taint/path witness.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: usize,
    pub end_line: usize,
    pub function: String,
    pub message: String,
    /// Source text of `line` (filled by the driver).
    pub line_text: String,
    /// Human-readable steps showing why the finding holds.
    pub witness: Vec<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}:{} [{}] in `{}`: {}",
            self.file, self.line, self.rule, self.function, self.message
        )?;
        if !self.line_text.is_empty() {
            writeln!(f, "    | {}", self.line_text.trim())?;
        }
        for w in &self.witness {
            writeln!(f, "    witness: {w}")?;
        }
        Ok(())
    }
}

/// The result of analyzing a set of files.
#[derive(Debug, Default)]
pub struct Analysis {
    pub files_scanned: usize,
    pub kernels: usize,
    pub findings: Vec<Finding>,
}

/// Render the JSON findings report. `suppressed` carries allowlisted
/// findings so the artifact shows the full picture.
pub fn to_json(a: &Analysis, suppressed: &[Finding]) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"schema_version\": \"1\",\n");
    s.push_str("  \"tool\": \"kernel-analyze\",\n");
    s.push_str(&format!("  \"files_scanned\": {},\n", a.files_scanned));
    s.push_str(&format!("  \"kernels\": {},\n", a.kernels));
    s.push_str("  \"findings\": ");
    push_findings(&mut s, &a.findings);
    s.push_str(",\n  \"suppressed\": ");
    push_findings(&mut s, suppressed);
    s.push_str("\n}\n");
    s
}

fn push_findings(s: &mut String, findings: &[Finding]) {
    if findings.is_empty() {
        s.push_str("[]");
        return;
    }
    s.push_str("[\n");
    for (i, f) in findings.iter().enumerate() {
        s.push_str("    {");
        s.push_str(&format!("\"rule\": {}, ", json_str(f.rule)));
        s.push_str(&format!("\"file\": {}, ", json_str(&f.file)));
        s.push_str(&format!("\"line\": {}, ", f.line));
        s.push_str(&format!("\"end_line\": {}, ", f.end_line));
        s.push_str(&format!("\"function\": {}, ", json_str(&f.function)));
        s.push_str(&format!("\"message\": {}, ", json_str(&f.message)));
        s.push_str(&format!(
            "\"line_text\": {}, ",
            json_str(f.line_text.trim())
        ));
        s.push_str("\"witness\": [");
        for (j, w) in f.witness.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&json_str(w));
        }
        s.push_str("]}");
        s.push_str(if i + 1 < findings.len() {
            ",\n"
        } else {
            "\n  ]"
        });
    }
}

/// Escape a string for JSON.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_shape() {
        let a = Analysis {
            files_scanned: 2,
            kernels: 3,
            findings: vec![Finding {
                rule: "barrier-divergence",
                file: "x.rs".into(),
                line: 7,
                end_line: 9,
                function: "k".into(),
                message: "fence \"under\" taint".into(),
                line_text: "  ctx.warp_fence();".into(),
                witness: vec!["line 5: if on `m`".into()],
            }],
        };
        let j = to_json(&a, &[]);
        assert!(j.contains("\"files_scanned\": 2"));
        assert!(j.contains("\\\"under\\\""));
        assert!(j.contains("\"suppressed\": []"));
        // Must be parseable by any JSON reader: balanced braces/quotes.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
