//! Control-flow graph lowering and the path-sensitive charge passes.
//!
//! The statement tree is lowered into an explicit node/edge graph:
//! one node per simple statement, one per branch head, one per loop
//! head, plus synthetic entry/exit. `break`/`continue`/`return` become
//! real edges. Each node carries two facts the passes need:
//!
//! * `charges` — the statement spends simulated time (a direct
//!   `ctx.<charging-method>(..)` call, or a call threading `ctx` into a
//!   transitively charging callee);
//! * `work` — the statement does per-lane work (touches lanes, masks or
//!   per-warp buffers), as opposed to host-side shape bookkeeping.
//!
//! **time-charge** then asks, per loop: can control flow cycle back to
//! the loop head without passing a charging node? For *divergent* loops
//! (condition involves a warp vote or lane-tainted data) every cycling
//! path must charge — the uncharged path is reported with its node-line
//! witness. For *uniform* loops a single charge anywhere in the body
//! suffices, and only if the body does per-lane work at all (host-side
//! shape loops are free by design). Lane loops (`for l in mask.lanes()`)
//! are the per-lane emulation of one warp instruction and are exempt.
//!
//! **charge-divergence** asks, per kernel: does the function derive a
//! divergent mask or branch on lane-tainted data while never charging
//! the context at all?

use crate::lex::Token;
use crate::parse::{FnDef, LetInit, Stmt};
use crate::report::Finding;
use crate::taint::{expr_taint, expr_text, stmt_charges, Summaries, VarEnv};

#[derive(Debug)]
pub struct Node {
    pub line: usize,
    pub label: String,
    pub charges: bool,
    pub work: bool,
}

#[derive(Debug)]
pub struct LoopInfo {
    pub head: usize,
    pub line: usize,
    pub label: String,
    pub divergent: bool,
    pub lane_loop: bool,
    /// Node ids in the loop body (head included).
    pub nodes: Vec<usize>,
}

#[derive(Debug)]
pub struct Cfg {
    pub nodes: Vec<Node>,
    pub succ: Vec<Vec<usize>>,
    pub loops: Vec<LoopInfo>,
    pub entry: usize,
    pub exit: usize,
}

struct Builder<'a> {
    nodes: Vec<Node>,
    succ: Vec<Vec<usize>>,
    loops: Vec<LoopInfo>,
    /// Stack of loop contexts: (head id, break-source accumulator).
    loop_stack: Vec<(usize, Vec<usize>)>,
    exit: usize,
    env: &'a VarEnv,
    sums: &'a Summaries,
}

impl<'a> Builder<'a> {
    fn add(&mut self, line: usize, label: String, charges: bool, work: bool) -> usize {
        let id = self.nodes.len();
        self.nodes.push(Node {
            line,
            label,
            charges,
            work,
        });
        self.succ.push(Vec::new());
        // Register the node with every loop currently being built.
        for l in &mut self.loops {
            if self.loop_stack.iter().any(|(h, _)| *h == l.head) {
                l.nodes.push(id);
            }
        }
        id
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.succ[from].contains(&to) {
            self.succ[from].push(to);
        }
    }

    fn connect(&mut self, frontier: &[usize], to: usize) {
        for &f in frontier {
            self.edge(f, to);
        }
    }

    fn expr_node(&mut self, toks: &[Token], line: usize) -> usize {
        let charges = stmt_charges(toks, self.env, self.sums);
        let work = tokens_do_work(toks, self.env);
        self.add(line, expr_text(toks), charges, work)
    }

    /// Build a statement list; returns the fall-through frontier.
    fn block(&mut self, stmts: &[Stmt], mut frontier: Vec<usize>) -> Vec<usize> {
        for s in stmts {
            if frontier.is_empty() {
                break; // unreachable after break/continue/return
            }
            frontier = self.stmt(s, frontier);
        }
        frontier
    }

    fn branch(
        &mut self,
        cond: &[Token],
        then_b: &[Stmt],
        else_b: &[Stmt],
        line: usize,
        frontier: Vec<usize>,
    ) -> Vec<usize> {
        let head = self.expr_node(cond, line);
        self.connect(&frontier, head);
        let mut out = self.block(then_b, vec![head]);
        if else_b.is_empty() {
            out.push(head); // fall-through when the condition is false
        } else {
            out.extend(self.block(else_b, vec![head]));
        }
        out
    }

    fn loop_body(
        &mut self,
        body: &[Stmt],
        head: usize,
        line: usize,
        label: String,
        divergent: bool,
        lane_loop: bool,
    ) -> Vec<usize> {
        self.loops.push(LoopInfo {
            head,
            line,
            label,
            divergent,
            lane_loop,
            nodes: vec![head],
        });
        let loop_idx = self.loops.len() - 1;
        self.loop_stack.push((head, Vec::new()));
        let tail = self.block(body, vec![head]);
        let (_, breaks) = self.loop_stack.pop().expect("loop stack balanced");
        // Back edge: end of body cycles to the head.
        self.connect(&tail, head);
        debug_assert_eq!(self.loops[loop_idx].head, head);
        // Exit frontier: the head (condition false) plus all breaks.
        let mut out = vec![head];
        out.extend(breaks);
        out
    }

    fn stmt(&mut self, s: &Stmt, frontier: Vec<usize>) -> Vec<usize> {
        match s {
            Stmt::Expr { toks, line } => {
                let n = self.expr_node(toks, *line);
                self.connect(&frontier, n);
                vec![n]
            }
            Stmt::Let { init, line, .. } => match init {
                LetInit::Expr(toks) => {
                    let n = self.expr_node(toks, *line);
                    self.connect(&frontier, n);
                    vec![n]
                }
                LetInit::If {
                    cond,
                    then_b,
                    else_b,
                } => self.branch(cond, then_b, else_b, *line, frontier),
            },
            Stmt::If {
                cond,
                then_b,
                else_b,
                line,
            } => self.branch(cond, then_b, else_b, *line, frontier),
            Stmt::Match {
                scrutinee,
                arms,
                line,
            } => {
                let head = self.expr_node(scrutinee, *line);
                self.connect(&frontier, head);
                if arms.is_empty() {
                    return vec![head];
                }
                let mut out = Vec::new();
                for arm in arms {
                    out.extend(self.block(arm, vec![head]));
                }
                out
            }
            Stmt::While { cond, body, line } => {
                let divergent = cond_is_divergent(cond, self.env);
                let head = self.expr_node(cond, *line);
                self.connect(&frontier, head);
                self.loop_body(
                    body,
                    head,
                    *line,
                    format!("while {}", expr_text(cond)),
                    divergent,
                    false,
                )
            }
            Stmt::For { iter, body, line } => {
                let divergent = expr_taint(iter, self.env).is_some();
                let head = self.expr_node(iter, *line);
                self.connect(&frontier, head);
                self.loop_body(
                    body,
                    head,
                    *line,
                    format!("for .. in {}", expr_text(iter)),
                    divergent,
                    false,
                )
            }
            Stmt::Loop { body, line } => {
                // A bare `loop` has no uniform trip count: treat it as
                // divergent so every cycling path must charge.
                let head = self.add(*line, "loop".into(), false, false);
                self.connect(&frontier, head);
                self.loop_body(body, head, *line, "loop".into(), true, false)
            }
            Stmt::ForLane { var, body, line } => {
                // One composite node: the lane-parallel emulation of a
                // single warp instruction.
                let charges = subtree_charges(body, self.env, self.sums);
                let n = self.add(*line, format!("for {var} in <lanes>"), charges, true);
                self.connect(&frontier, n);
                vec![n]
            }
            Stmt::Block { body, .. } => self.block(body, frontier),
            Stmt::Break { line } => {
                let n = self.add(*line, "break".into(), false, false);
                self.connect(&frontier, n);
                if let Some((_, breaks)) = self.loop_stack.last_mut() {
                    breaks.push(n);
                }
                Vec::new()
            }
            Stmt::Continue { line } => {
                let n = self.add(*line, "continue".into(), false, false);
                self.connect(&frontier, n);
                let head = self.loop_stack.last().map(|(h, _)| *h);
                if let Some(h) = head {
                    self.edge(n, h);
                }
                Vec::new()
            }
            Stmt::Return { line } => {
                let n = self.add(*line, "return".into(), false, false);
                self.connect(&frontier, n);
                let exit = self.exit;
                self.edge(n, exit);
                Vec::new()
            }
        }
    }
}

/// Is a loop condition divergent — warp vote or lane-tainted data?
fn cond_is_divergent(cond: &[Token], env: &VarEnv) -> bool {
    cond.iter()
        .any(|t| t.is_ident("any_lane") || t.is_ident("all_lanes"))
        || expr_taint(cond, env).is_some()
}

/// Does any statement in the subtree charge?
fn subtree_charges(stmts: &[Stmt], env: &VarEnv, sums: &Summaries) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Expr { toks, .. } => stmt_charges(toks, env, sums),
        Stmt::Let {
            init: LetInit::Expr(toks),
            ..
        } => stmt_charges(toks, env, sums),
        Stmt::Let {
            init:
                LetInit::If {
                    cond,
                    then_b,
                    else_b,
                },
            ..
        } => {
            stmt_charges(cond, env, sums)
                || subtree_charges(then_b, env, sums)
                || subtree_charges(else_b, env, sums)
        }
        Stmt::If {
            cond,
            then_b,
            else_b,
            ..
        } => {
            stmt_charges(cond, env, sums)
                || subtree_charges(then_b, env, sums)
                || subtree_charges(else_b, env, sums)
        }
        Stmt::While { cond, body, .. } => {
            stmt_charges(cond, env, sums) || subtree_charges(body, env, sums)
        }
        Stmt::For { iter, body, .. } => {
            stmt_charges(iter, env, sums) || subtree_charges(body, env, sums)
        }
        Stmt::ForLane { body, .. } | Stmt::Loop { body, .. } | Stmt::Block { body, .. } => {
            subtree_charges(body, env, sums)
        }
        Stmt::Match {
            scrutinee, arms, ..
        } => {
            stmt_charges(scrutinee, env, sums) || arms.iter().any(|a| subtree_charges(a, env, sums))
        }
        _ => false,
    })
}

/// Per-lane work signals: the statement manipulates lanes, masks or
/// per-warp buffers (vs. host-side shape bookkeeping, which is free).
fn tokens_do_work(toks: &[Token], env: &VarEnv) -> bool {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != crate::lex::TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "lanes_from_fn" | "from_fn" | "splat" | "WARP_SIZE" => return true,
            "lanes" | "filter" | "and_lanes" | "read" | "write" | "read_uniform"
            | "write_uniform" | "read_broadcast" | "write_broadcast"
                if i > 0 && toks[i - 1].is(".") =>
            {
                return true;
            }
            _ => {}
        }
        if env.tainted.contains(&t.text) || env.masks.contains(&t.text) {
            return true;
        }
    }
    false
}

/// Lower one kernel function to a CFG.
pub fn build_cfg(f: &FnDef, env: &VarEnv, sums: &Summaries) -> Cfg {
    let mut b = Builder {
        nodes: Vec::new(),
        succ: Vec::new(),
        loops: Vec::new(),
        loop_stack: Vec::new(),
        exit: 0,
        env,
        sums,
    };
    let entry = b.add(f.sig_line, format!("fn {}", f.name), false, false);
    let exit = b.add(f.sig_line, "exit".into(), false, false);
    b.exit = exit;
    let tail = b.block(&f.body, vec![entry]);
    b.connect(&tail, exit);
    Cfg {
        nodes: b.nodes,
        succ: b.succ,
        loops: b.loops,
        entry,
        exit,
    }
}

/// The time-charge pass over one kernel's CFG.
pub fn time_charge_findings(f: &FnDef, cfg: &Cfg, file: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    for l in &cfg.loops {
        if l.lane_loop {
            continue;
        }
        if l.divergent {
            if let Some(path) = uncharged_cycle(cfg, l) {
                let witness: Vec<String> = path
                    .iter()
                    .map(|&n| format!("line {}: {}", cfg.nodes[n].line, cfg.nodes[n].label))
                    .collect();
                out.push(Finding {
                    rule: crate::RULE_TIME,
                    file: file.to_string(),
                    line: l.line,
                    end_line: path
                        .iter()
                        .map(|&n| cfg.nodes[n].line)
                        .max()
                        .unwrap_or(l.line),
                    function: f.name.clone(),
                    message: format!(
                        "divergent loop `{}` has a cycling path that charges no simulated \
                         time (route it through ctx.loop_head / ctx.diverge / ctx.op)",
                        l.label
                    ),
                    line_text: String::new(),
                    witness,
                });
            }
        } else {
            let charges_somewhere = l.nodes.iter().any(|&n| cfg.nodes[n].charges);
            let does_work = l.nodes.iter().any(|&n| cfg.nodes[n].work);
            if !charges_somewhere && does_work {
                out.push(Finding {
                    rule: crate::RULE_TIME,
                    file: file.to_string(),
                    line: l.line,
                    end_line: l
                        .nodes
                        .iter()
                        .map(|&n| cfg.nodes[n].line)
                        .max()
                        .unwrap_or(l.line),
                    function: f.name.clone(),
                    message: format!(
                        "uniform loop `{}` does per-lane work but never charges simulated \
                         time (charge the work with ctx.op or a charging buffer access)",
                        l.label
                    ),
                    line_text: String::new(),
                    witness: vec![format!("line {}: loop body is charge-free", l.line)],
                });
            }
        }
    }
    out
}

/// BFS from the loop head through non-charging body nodes; returns a
/// witness path (head .. last node before cycling) if the head is
/// reachable from itself charge-free.
fn uncharged_cycle(cfg: &Cfg, l: &LoopInfo) -> Option<Vec<usize>> {
    if cfg.nodes[l.head].charges {
        return None;
    }
    let in_loop = |n: usize| l.nodes.contains(&n);
    let mut parent: Vec<Option<usize>> = vec![None; cfg.nodes.len()];
    let mut queue = std::collections::VecDeque::new();
    let mut seen = vec![false; cfg.nodes.len()];
    queue.push_back(l.head);
    seen[l.head] = true;
    while let Some(n) = queue.pop_front() {
        for &m in &cfg.succ[n] {
            if m == l.head {
                // Cycled back charge-free: reconstruct the path.
                let mut path = vec![n];
                let mut cur = n;
                while let Some(p) = parent[cur] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            if !seen[m] && in_loop(m) && !cfg.nodes[m].charges {
                seen[m] = true;
                parent[m] = Some(n);
                queue.push_back(m);
            }
        }
    }
    None
}

/// The charge-divergence pass: a kernel that derives divergence (mask
/// refinement or a lane-tainted branch) but never charges the context.
pub fn charge_divergence_findings(f: &FnDef, env: &VarEnv, cfg: &Cfg, file: &str) -> Vec<Finding> {
    let any_charge = cfg.nodes.iter().any(|n| n.charges);
    if any_charge {
        return Vec::new();
    }
    let mut sites: Vec<(usize, String)> = Vec::new();
    collect_divergence_sites(&f.body, env, &mut sites);
    if sites.is_empty() {
        return Vec::new();
    }
    let line = sites[0].0;
    vec![Finding {
        rule: crate::RULE_CHARGE,
        file: file.to_string(),
        line,
        end_line: sites.iter().map(|(l, _)| *l).max().unwrap_or(line),
        function: f.name.clone(),
        message: format!(
            "kernel `{}` derives lane divergence but never charges the context \
             (route the divergence through ctx.diverge / ctx.diverge_mask / \
             ctx.ballot, or charge with ctx.op)",
            f.name
        ),
        line_text: String::new(),
        witness: sites
            .into_iter()
            .map(|(l, d)| format!("line {l}: {d}"))
            .collect(),
    }]
}

fn collect_divergence_sites(stmts: &[Stmt], env: &VarEnv, out: &mut Vec<(usize, String)>) {
    for s in stmts {
        match s {
            Stmt::Expr { toks, line }
            | Stmt::Let {
                init: LetInit::Expr(toks),
                line,
                ..
            } => {
                scan_mask_refinement(toks, env, *line, out);
            }
            Stmt::If {
                cond,
                then_b,
                else_b,
                line,
            }
            | Stmt::Let {
                init:
                    LetInit::If {
                        cond,
                        then_b,
                        else_b,
                    },
                line,
                ..
            } => {
                if let Some(w) = expr_taint(cond, env) {
                    out.push((*line, format!("branch on lane-tainted `{}`", w.source)));
                }
                scan_mask_refinement(cond, env, *line, out);
                collect_divergence_sites(then_b, env, out);
                collect_divergence_sites(else_b, env, out);
            }
            Stmt::While { cond, body, line } => {
                if let Some(w) = expr_taint(cond, env) {
                    out.push((*line, format!("loop on lane-tainted `{}`", w.source)));
                }
                scan_mask_refinement(cond, env, *line, out);
                collect_divergence_sites(body, env, out);
            }
            Stmt::For { body, .. } | Stmt::Loop { body, .. } | Stmt::Block { body, .. } => {
                collect_divergence_sites(body, env, out)
            }
            Stmt::ForLane { body, .. } => collect_divergence_sites(body, env, out),
            Stmt::Match { arms, .. } => {
                for a in arms {
                    collect_divergence_sites(a, env, out);
                }
            }
            _ => {}
        }
    }
}

/// Mask-refinement sites: `m.filter(..)` on a mask, or `m.and_lanes(..)`.
fn scan_mask_refinement(toks: &[Token], env: &VarEnv, line: usize, out: &mut Vec<(usize, String)>) {
    for i in 1..toks.len() {
        if toks[i].kind != crate::lex::TokKind::Ident || !toks[i - 1].is(".") {
            continue;
        }
        let receiver_is_mask = i >= 2
            && toks[i - 2].kind == crate::lex::TokKind::Ident
            && (env.masks.contains(&toks[i - 2].text) || toks[i - 2].text == "warp");
        match toks[i].text.as_str() {
            "filter" if receiver_is_mask => {
                out.push((
                    line,
                    format!("mask refinement `{}.filter(..)`", toks[i - 2].text),
                ));
            }
            "and_lanes" => out.push((line, "mask refinement `.and_lanes(..)`".into())),
            _ => {}
        }
    }
}
