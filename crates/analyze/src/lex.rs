//! A minimal Rust lexer: enough to tokenize the kernel sources without
//! pulling in a real parser crate.
//!
//! Comments (line, nested block) and string/char literals are consumed
//! and dropped — their contents can otherwise fake keywords, braces or
//! method names and derail the statement parser. Every token carries the
//! 1-based source line it starts on so findings can point at real spans.

/// Token kind. The parser mostly dispatches on [`TokKind::Ident`] text
/// and single punctuation characters; a handful of two-character
/// operators that matter for statement structure (`::`, `->`, `=>`,
/// `..`, `&&`, `||`, `==`, `!=`, `<=`, `>=`) are fused into one token
/// so `=>` in a match arm is never misread as `=` + `>`. Shift
/// operators are deliberately *not* fused: `>>` must stay two `>`
/// tokens so nested generics (`Lanes<Option<u32>>`) close correctly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Num,
    Punct,
    Lifetime,
}

/// One lexed token: kind, exact source text, and 1-based start line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
}

impl Token {
    pub fn is(&self, text: &str) -> bool {
        self.text == text
    }
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }
}

/// Two-character punctuation fused into single tokens (see [`TokKind`]).
const FUSED: [&str; 10] = ["::", "->", "=>", "..", "&&", "||", "==", "!=", "<=", ">="];

/// Tokenize `src`, dropping comments and literal contents.
pub fn lex(src: &str) -> Vec<Token> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == '/' => {
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                // Nested block comments, tracking newlines for line info.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let start = line;
                i += 1;
                while i < b.len() && b[i] != '"' {
                    if b[i] == '\\' {
                        i += 1; // skip escaped char (handles \" and \\)
                    }
                    if i < b.len() && b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i += 1; // closing quote
                toks.push(Token {
                    kind: TokKind::Punct,
                    text: "\"\"".into(),
                    line: start,
                });
            }
            'r' if i + 1 < b.len() && (b[i + 1] == '"' || b[i + 1] == '#') => {
                // Raw string r"..." / r#"..."#.
                let start = line;
                let mut j = i + 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == '"' {
                    j += 1;
                    'raw: while j < b.len() {
                        if b[j] == '\n' {
                            line += 1;
                        } else if b[j] == '"' {
                            let mut h = 0;
                            while j + 1 + h < b.len() && b[j + 1 + h] == '#' && h < hashes {
                                h += 1;
                            }
                            if h == hashes {
                                j += 1 + hashes;
                                break 'raw;
                            }
                        }
                        j += 1;
                    }
                    i = j;
                    toks.push(Token {
                        kind: TokKind::Punct,
                        text: "\"\"".into(),
                        line: start,
                    });
                } else {
                    // Just an identifier starting with 'r'.
                    let (tok, ni) = lex_ident(&b, i, line);
                    toks.push(tok);
                    i = ni;
                }
            }
            '\'' => {
                // Lifetime ('a, 'static, loop labels) vs char literal
                // ('x', '\n', '\''). A lifetime is a quote followed by an
                // identifier NOT terminated by another quote.
                let is_lifetime = i + 1 < b.len()
                    && (b[i + 1].is_alphabetic() || b[i + 1] == '_')
                    && !(i + 2 < b.len() && b[i + 2] == '\'');
                if is_lifetime {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    toks.push(Token {
                        kind: TokKind::Lifetime,
                        text: b[i..j].iter().collect(),
                        line,
                    });
                    i = j;
                } else {
                    // Char literal: skip to closing quote.
                    let mut j = i + 1;
                    if j < b.len() && b[j] == '\\' {
                        j += 2;
                    } else {
                        j += 1;
                    }
                    while j < b.len() && b[j] != '\'' {
                        j += 1;
                    }
                    i = j + 1;
                    toks.push(Token {
                        kind: TokKind::Punct,
                        text: "''".into(),
                        line,
                    });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let (tok, ni) = lex_ident(&b, i, line);
                toks.push(tok);
                i = ni;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < b.len()
                    && (b[j].is_alphanumeric()
                        || b[j] == '_'
                        || (b[j] == '.' && j + 1 < b.len() && b[j + 1].is_ascii_digit()))
                {
                    j += 1;
                }
                toks.push(Token {
                    kind: TokKind::Num,
                    text: b[i..j].iter().collect(),
                    line,
                });
                i = j;
            }
            _ => {
                let two: String = b[i..(i + 2).min(b.len())].iter().collect();
                if FUSED.contains(&two.as_str()) {
                    // `..=` extends `..`.
                    if two == ".." && i + 2 < b.len() && b[i + 2] == '=' {
                        toks.push(Token {
                            kind: TokKind::Punct,
                            text: "..=".into(),
                            line,
                        });
                        i += 3;
                    } else {
                        toks.push(Token {
                            kind: TokKind::Punct,
                            text: two,
                            line,
                        });
                        i += 2;
                    }
                } else {
                    toks.push(Token {
                        kind: TokKind::Punct,
                        text: c.to_string(),
                        line,
                    });
                    i += 1;
                }
            }
        }
    }
    toks
}

fn lex_ident(b: &[char], i: usize, line: usize) -> (Token, usize) {
    let mut j = i;
    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
        j += 1;
    }
    (
        Token {
            kind: TokKind::Ident,
            text: b[i..j].iter().collect(),
            line,
        },
        j,
    )
}

/// Render a token slice back to readable text (for messages/witnesses).
pub fn render(toks: &[Token]) -> String {
    let mut out = String::new();
    for (i, t) in toks.iter().enumerate() {
        if i > 0 {
            let prev = &toks[i - 1].text;
            let tight_before = matches!(
                t.text.as_str(),
                "(" | ")" | "[" | "]" | "," | ";" | "." | "::" | "!" | "?"
            );
            let tight_after = matches!(prev.as_str(), "(" | "[" | "." | "::" | "&" | "!" | "|");
            if !tight_before && !tight_after {
                out.push(' ');
            }
        }
        out.push_str(&t.text);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_vanish() {
        let toks =
            lex("let x = 1; // while { fence }\n/* ctx.warp_fence() */ let y = \"} ctx {\";");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "x", "let", "y"]);
    }

    #[test]
    fn lines_are_tracked_through_block_comments() {
        let toks = lex("a\n/* x\ny */\nb");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 4);
    }

    #[test]
    fn fused_punct_and_lifetimes() {
        let toks = lex("'outer: while a => b..c '\\n' >> d");
        assert_eq!(toks[0].kind, TokKind::Lifetime);
        assert!(toks.iter().any(|t| t.is("=>")));
        assert!(toks.iter().any(|t| t.is("..")));
        // Shift stays two tokens so generics close correctly.
        assert_eq!(toks.iter().filter(|t| t.is(">")).count(), 2);
    }

    #[test]
    fn raw_strings_and_floats() {
        let toks = lex(r##"let s = r#"{ not code }"#; let f = 1.5e3;"##);
        assert!(toks.iter().all(|t| t.text != "not"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text.starts_with("1.5")));
    }
}
