//! Statement parser: turns a token stream into per-function statement
//! trees, and extracts the file-level facts the dataflow passes need.
//!
//! Rust's structured control flow means the statement tree *is* the
//! control-flow graph modulo `break`/`continue`/`return` edges — the
//! [`crate::cfg`] module lowers the tree into an explicit node/edge
//! graph for the path-sensitive time-charge pass, while the taint and
//! alias passes walk the tree directly with a branch-condition stack.
//!
//! A function counts as a *kernel* iff its parameter list contains a
//! parameter of type `&mut WarpCtx` (after stripping lifetimes). This
//! is deliberately stricter than the old token lint's "signature text
//! mentions `&mut WarpCtx`" heuristic: launchers whose only mention is
//! a closure bound (`K: Fn(usize, &mut WarpCtx) -> R`) are host code
//! and are skipped.

use crate::lex::{lex, render, TokKind, Token};

/// One parsed statement. Expressions stay as token slices — the passes
/// pattern-match on tokens rather than building a full AST.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `let <names> = <init>;` — `names` are the bound identifiers
    /// (tuple patterns flattened, `mut`/`ref`/`&` stripped).
    Let {
        names: Vec<String>,
        init: LetInit,
        line: usize,
    },
    /// Any other expression statement (calls, assignments, macros).
    Expr {
        toks: Vec<Token>,
        line: usize,
    },
    If {
        cond: Vec<Token>,
        then_b: Vec<Stmt>,
        else_b: Vec<Stmt>,
        line: usize,
    },
    While {
        cond: Vec<Token>,
        body: Vec<Stmt>,
        line: usize,
    },
    /// `for <var> in <per-warp lanes>` — the lane-parallel emulation of
    /// a single warp instruction (e.g. `for l in mask.lanes()`). Exempt
    /// from time-charge, but a warp fence inside one is always a bug.
    ForLane {
        var: String,
        body: Vec<Stmt>,
        line: usize,
    },
    /// An ordinary (host-style, uniform trip count) `for` loop.
    For {
        iter: Vec<Token>,
        body: Vec<Stmt>,
        line: usize,
    },
    Loop {
        body: Vec<Stmt>,
        line: usize,
    },
    Match {
        scrutinee: Vec<Token>,
        arms: Vec<Vec<Stmt>>,
        line: usize,
    },
    Break {
        line: usize,
    },
    Continue {
        line: usize,
    },
    Return {
        line: usize,
    },
    /// A bare `{ ... }` block (often `#[cfg(feature = ...)] { ... }`).
    Block {
        body: Vec<Stmt>,
        line: usize,
    },
}

impl Stmt {
    pub fn line(&self) -> usize {
        match self {
            Stmt::Let { line, .. }
            | Stmt::Expr { line, .. }
            | Stmt::If { line, .. }
            | Stmt::While { line, .. }
            | Stmt::ForLane { line, .. }
            | Stmt::For { line, .. }
            | Stmt::Loop { line, .. }
            | Stmt::Match { line, .. }
            | Stmt::Break { line }
            | Stmt::Continue { line }
            | Stmt::Return { line }
            | Stmt::Block { line, .. } => *line,
        }
    }
}

/// The initializer of a `let`: either a flat expression, or an
/// `if`/`else` chain in expression position (branch bodies are real
/// statement blocks — they may charge time or touch shared memory).
#[derive(Debug, Clone)]
pub enum LetInit {
    Expr(Vec<Token>),
    If {
        cond: Vec<Token>,
        then_b: Vec<Stmt>,
        else_b: Vec<Stmt>,
    },
}

/// A parsed function (kernel or helper).
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    pub sig_line: usize,
    /// `(name, type-text)` for each parameter, `self` receivers skipped.
    pub params: Vec<(String, String)>,
    /// Name of the `&mut WarpCtx` parameter, if any.
    pub ctx_param: Option<String>,
    pub body: Vec<Stmt>,
    /// Raw body tokens, kept for helper-summary extraction.
    pub body_toks: Vec<Token>,
}

impl FnDef {
    pub fn is_kernel(&self) -> bool {
        self.ctx_param.is_some()
    }
}

/// Memory space of a struct field, used by the alias pass to decide
/// which buffers carry cross-lane visibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Space {
    Shared,
    LaneLocal,
    Global,
}

/// Everything the passes need from one source file.
#[derive(Debug, Default)]
pub struct FileFacts {
    pub fns: Vec<FnDef>,
    /// Struct fields of buffer type: `(field_name, space)`.
    pub buffer_fields: Vec<(String, Space)>,
}

/// Parse a whole source file. Test modules (`#[cfg(test)] mod`) and
/// inline `mod` bodies are skipped — kernels in this workspace live at
/// the top level of their files or inside `impl` blocks.
pub fn parse_file(src: &str) -> FileFacts {
    let toks = lex(src);
    let mut facts = FileFacts::default();
    walk_items(&toks, 0, toks.len(), &mut facts);
    facts
}

/// Walk item-level tokens in `toks[i..end]`, descending into `impl`
/// bodies, collecting functions and buffer-typed struct fields.
fn walk_items(toks: &[Token], mut i: usize, end: usize, facts: &mut FileFacts) {
    while i < end {
        let t = &toks[i];
        if t.is("#") {
            i = skip_attr(toks, i);
        } else if t.is_ident("mod") {
            // `mod name;` or `mod name { ... }` — skip either way; inline
            // module bodies here are `#[cfg(test)] mod tests`.
            i += 1;
            while i < end && !toks[i].is("{") && !toks[i].is(";") {
                i += 1;
            }
            if i < end && toks[i].is("{") {
                i = match_delim(toks, i);
            } else {
                i += 1;
            }
        } else if t.is_ident("impl") || t.is_ident("trait") {
            // Descend into the body; the header (generics, type path,
            // where clause) is skipped up to the opening brace.
            let mut j = i + 1;
            while j < end && !toks[j].is("{") {
                j += 1;
            }
            let close = match_delim(toks, j);
            walk_items(toks, j + 1, close.saturating_sub(1), facts);
            i = close;
        } else if t.is_ident("struct") || t.is_ident("enum") || t.is_ident("union") {
            let mut j = i + 1;
            while j < end && !toks[j].is("{") && !toks[j].is(";") && !toks[j].is("(") {
                j += 1;
            }
            if j < end && toks[j].is("{") {
                let close = match_delim(toks, j);
                if t.is_ident("struct") {
                    collect_buffer_fields(&toks[j + 1..close.saturating_sub(1)], facts);
                }
                i = close;
            } else if j < end && toks[j].is("(") {
                i = match_delim(toks, j); // tuple struct: skip to `)`, then `;`
                if i < end && toks[i].is(";") {
                    i += 1;
                }
            } else {
                i = j + 1;
            }
        } else if t.is_ident("fn") {
            let (f, ni) = parse_fn(toks, i);
            if let Some(f) = f {
                facts.fns.push(f);
            }
            i = ni;
        } else {
            i += 1;
        }
    }
}

/// Skip one `#[...]` / `#![...]` attribute. Returns index after `]`.
fn skip_attr(toks: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    if j < toks.len() && toks[j].is("!") {
        j += 1;
    }
    if j < toks.len() && toks[j].is("[") {
        match_delim(toks, j)
    } else {
        j
    }
}

/// Record struct fields with buffer types from a struct body slice.
fn collect_buffer_fields(toks: &[Token], facts: &mut FileFacts) {
    let mut i = 0;
    while i < toks.len() {
        // field pattern: [pub] name : Type , — find `name :` at depth 0.
        if toks[i].kind == TokKind::Ident && i + 1 < toks.len() && toks[i + 1].is(":") {
            let name = toks[i].text.clone();
            // Type runs to the next top-level comma.
            let mut j = i + 2;
            let mut depth = 0i32;
            let start = j;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "<" | "(" | "[" => depth += 1,
                    ">" | ")" | "]" => depth -= 1,
                    "," if depth <= 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let ty: Vec<&str> = toks[start..j].iter().map(|t| t.text.as_str()).collect();
            let space = if ty.contains(&"SharedBuf") {
                Some(Space::Shared)
            } else if ty.contains(&"LaneLocal") {
                Some(Space::LaneLocal)
            } else if ty.contains(&"GlobalBuf") {
                Some(Space::Global)
            } else {
                None
            };
            if let Some(s) = space {
                facts.buffer_fields.push((name, s));
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
}

/// Parse `fn name<...>(params) -> Ret { body }` starting at the `fn`
/// token. Returns the function (None for bodyless trait fns) and the
/// index just past the body.
fn parse_fn(toks: &[Token], i: usize) -> (Option<FnDef>, usize) {
    let sig_line = toks[i].line;
    let mut j = i + 1;
    if j >= toks.len() || toks[j].kind != TokKind::Ident {
        return (None, j);
    }
    let name = toks[j].text.clone();
    j += 1;
    // Skip generic parameter list `<...>` (no fused shift tokens, so a
    // plain angle-depth count is exact).
    if j < toks.len() && toks[j].is("<") {
        let mut depth = 0i32;
        while j < toks.len() {
            if toks[j].is("<") {
                depth += 1;
            } else if toks[j].is(">") {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    if j >= toks.len() || !toks[j].is("(") {
        return (None, j);
    }
    let params_close = match_delim(toks, j);
    let params = parse_params(&toks[j + 1..params_close.saturating_sub(1)]);
    let ctx_param = params
        .iter()
        .find(|(_, ty)| is_warpctx_ref(ty))
        .map(|(n, _)| n.clone());
    // Skip return type / where clause up to the body `{` or a `;`.
    let mut k = params_close;
    while k < toks.len() && !toks[k].is("{") && !toks[k].is(";") {
        k += 1;
    }
    if k >= toks.len() || toks[k].is(";") {
        return (None, k + 1);
    }
    let body_close = match_delim(toks, k);
    let body_toks = toks[k + 1..body_close.saturating_sub(1)].to_vec();
    let body = parse_block_stmts(&body_toks);
    (
        Some(FnDef {
            name,
            sig_line,
            params,
            ctx_param,
            body,
            body_toks,
        }),
        body_close,
    )
}

/// `true` iff a parameter type is exactly a `&mut WarpCtx` reference
/// (possibly with a lifetime).
fn is_warpctx_ref(ty: &str) -> bool {
    let t = ty.replace(' ', "");
    t == "&mutWarpCtx" || (t.starts_with("&'") && t.ends_with("mutWarpCtx"))
}

/// Split a parameter-list token slice at top-level commas into
/// `(name, type-text)` pairs; `self` receivers are dropped.
fn parse_params(toks: &[Token]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    let mut i = 0;
    loop {
        let at_end = i >= toks.len();
        if at_end || (depth == 0 && toks[i].is(",")) {
            let piece = &toks[start..i];
            if let Some(colon) = piece.iter().position(|t| t.is(":")) {
                // Name = last ident before the colon (skips `mut`).
                let name = piece[..colon]
                    .iter()
                    .rev()
                    .find(|t| t.kind == TokKind::Ident && t.text != "mut")
                    .map(|t| t.text.clone());
                if let Some(name) = name {
                    out.push((name, render(&piece[colon + 1..])));
                }
            }
            if at_end {
                break;
            }
            start = i + 1;
        } else if !at_end {
            match toks[i].text.as_str() {
                "<" | "(" | "[" | "{" => depth += 1,
                ">" | ")" | "]" | "}" => depth -= 1,
                _ => {}
            }
        }
        i += 1;
    }
    out
}

/// Index just past the delimiter-matched partner of the opener at `i`
/// (`(`/`[`/`{`). Counts all three bracket kinds so closures, slices and
/// struct literals nest freely.
pub fn match_delim(toks: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

/// Parse the statements of a `{ ... }` body given its *inner* tokens.
pub fn parse_block_stmts(toks: &[Token]) -> Vec<Stmt> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (stmt, ni) = parse_stmt(toks, i);
        if let Some(s) = stmt {
            out.push(s);
        }
        debug_assert!(ni > i, "parser must make progress");
        i = ni.max(i + 1);
    }
    out
}

/// Parse one statement starting at `i`; returns (stmt, next index).
fn parse_stmt(toks: &[Token], i: usize) -> (Option<Stmt>, usize) {
    let t = &toks[i];
    let line = t.line;
    if t.is(";") {
        return (None, i + 1);
    }
    if t.is("#") {
        return (None, skip_attr(toks, i));
    }
    // Loop labels: `'outer: loop { ... }` — skip the label.
    if t.kind == TokKind::Lifetime && i + 1 < toks.len() && toks[i + 1].is(":") {
        return parse_stmt(toks, i + 2);
    }
    if t.is_ident("let") {
        return parse_let(toks, i);
    }
    if t.is_ident("if") {
        let (cond, then_b, else_b, ni) = parse_if(toks, i);
        return (
            Some(Stmt::If {
                cond,
                then_b,
                else_b,
                line,
            }),
            ni,
        );
    }
    if t.is_ident("while") {
        let (cond, open) = scan_until_block(toks, i + 1);
        let close = match_delim(toks, open);
        let body = parse_block_stmts(&toks[open + 1..close.saturating_sub(1)]);
        return (Some(Stmt::While { cond, body, line }), close);
    }
    if t.is_ident("for") {
        let (head, open) = scan_until_block(toks, i + 1);
        let close = match_delim(toks, open);
        let body = parse_block_stmts(&toks[open + 1..close.saturating_sub(1)]);
        // Split `<pat> in <iter>` at the top-level `in`.
        let in_pos = head.iter().position(|t| t.is_ident("in")).unwrap_or(0);
        let iter: Vec<Token> = head[in_pos.saturating_add(1).min(head.len())..].to_vec();
        if let Some(var) = lane_loop_var(&head[..in_pos], &iter) {
            return (Some(Stmt::ForLane { var, body, line }), close);
        }
        return (Some(Stmt::For { iter, body, line }), close);
    }
    if t.is_ident("loop") {
        let mut j = i + 1;
        while j < toks.len() && !toks[j].is("{") {
            j += 1;
        }
        let close = match_delim(toks, j);
        let body = parse_block_stmts(&toks[j + 1..close.saturating_sub(1)]);
        return (Some(Stmt::Loop { body, line }), close);
    }
    if t.is_ident("match") {
        let (scrutinee, open) = scan_until_block(toks, i + 1);
        let close = match_delim(toks, open);
        let arms = parse_match_arms(&toks[open + 1..close.saturating_sub(1)]);
        let ni = stmt_tail(toks, close);
        return (
            Some(Stmt::Match {
                scrutinee,
                arms,
                line,
            }),
            ni,
        );
    }
    if t.is_ident("break") {
        let ni = scan_past_semi(toks, i);
        return (Some(Stmt::Break { line }), ni);
    }
    if t.is_ident("continue") {
        let ni = scan_past_semi(toks, i);
        return (Some(Stmt::Continue { line }), ni);
    }
    if t.is_ident("return") {
        let ni = scan_past_semi(toks, i);
        return (Some(Stmt::Return { line }), ni);
    }
    if t.is("{") {
        let close = match_delim(toks, i);
        let body = parse_block_stmts(&toks[i + 1..close.saturating_sub(1)]);
        return (Some(Stmt::Block { body, line }), close);
    }
    // Nested items inside fn bodies (closures are expressions and land
    // in Expr; inner `fn`s are rare — skip them wholesale).
    if t.is_ident("fn") {
        let (_, ni) = parse_fn(toks, i);
        return (None, ni);
    }
    // Plain expression statement: everything up to the `;` at depth 0.
    let ni = scan_past_semi(toks, i);
    let mut end = ni.min(toks.len());
    if end > i && toks[end - 1].is(";") {
        end -= 1;
    }
    (
        Some(Stmt::Expr {
            toks: toks[i..end].to_vec(),
            line,
        }),
        ni,
    )
}

/// Skip an optional statement-terminating `;` after a block form.
fn stmt_tail(toks: &[Token], i: usize) -> usize {
    if i < toks.len() && toks[i].is(";") {
        i + 1
    } else {
        i
    }
}

/// Is this `for` a lane loop? True when the iterator is a per-warp lane
/// enumeration: `<mask>.lanes()` or `0..WARP_SIZE`.
fn lane_loop_var(pat: &[Token], iter: &[Token]) -> Option<String> {
    let n = iter.len();
    let is_lanes_call = n >= 4
        && iter[n - 1].is(")")
        && iter[n - 2].is("(")
        && iter[n - 3].is_ident("lanes")
        && iter[n - 4].is(".");
    let is_warp_range =
        n >= 3 && iter[0].kind == TokKind::Num && iter[1].is("..") && iter[2].is_ident("WARP_SIZE");
    if is_lanes_call || is_warp_range {
        pat.iter()
            .find(|t| t.kind == TokKind::Ident && t.text != "mut")
            .map(|t| t.text.clone())
    } else {
        None
    }
}

/// Parse `let` — handles plain initializers and `if`/`else` chains in
/// expression position (common in the kernels for uniform selects).
fn parse_let(toks: &[Token], i: usize) -> (Option<Stmt>, usize) {
    let line = toks[i].line;
    // Pattern: tokens up to the top-level `=` (skipping `==` via fused
    // tokens and type ascription generics via depth count).
    let mut j = i + 1;
    let mut depth = 0i32;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "<" | "(" | "[" => depth += 1,
            ">" | ")" | "]" => depth -= 1,
            "=" if depth <= 0 => break,
            ";" if depth <= 0 => {
                // `let x;` — declaration without initializer.
                let names = pattern_names(&toks[i + 1..j]);
                return (
                    Some(Stmt::Let {
                        names,
                        init: LetInit::Expr(Vec::new()),
                        line,
                    }),
                    j + 1,
                );
            }
            _ => {}
        }
        j += 1;
    }
    let names = pattern_names(&toks[i + 1..j.min(toks.len())]);
    let expr_start = (j + 1).min(toks.len());
    if expr_start < toks.len() && toks[expr_start].is_ident("if") {
        let (cond, then_b, else_b, after) = parse_if(toks, expr_start);
        let ni = scan_past_semi(toks, after);
        return (
            Some(Stmt::Let {
                names,
                init: LetInit::If {
                    cond,
                    then_b,
                    else_b,
                },
                line,
            }),
            ni,
        );
    }
    let ni = scan_past_semi(toks, expr_start);
    let mut end = ni.min(toks.len());
    if end > expr_start && toks[end - 1].is(";") {
        end -= 1;
    }
    (
        Some(Stmt::Let {
            names,
            init: LetInit::Expr(toks[expr_start..end.max(expr_start)].to_vec()),
            line,
        }),
        ni,
    )
}

/// Identifiers bound by a `let` pattern (tuples flattened; `mut`, `ref`
/// and path segments like `Some` dropped — good enough for the passes,
/// which only need "does this name now refer to a tainted value").
fn pattern_names(toks: &[Token]) -> Vec<String> {
    // Strip a trailing type ascription `: T`.
    let mut end = toks.len();
    let mut depth = 0i32;
    for (idx, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "<" => depth += 1,
            ")" | "]" | ">" => depth -= 1,
            ":" if depth == 0 => {
                end = idx;
                break;
            }
            _ => {}
        }
    }
    toks[..end]
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .filter(|t| !matches!(t.text.as_str(), "mut" | "ref" | "_"))
        .filter(|t| !t.text.chars().next().is_some_and(|c| c.is_uppercase()))
        .map(|t| t.text.clone())
        .collect()
}

/// Parse an `if` (or `if let`) chain starting at the `if` token.
/// Returns (cond, then-block, else-block, index past the chain). An
/// `else if` is represented as a nested `Stmt::If` inside `else_b`.
fn parse_if(toks: &[Token], i: usize) -> (Vec<Token>, Vec<Stmt>, Vec<Stmt>, usize) {
    let (cond, open) = scan_until_block(toks, i + 1);
    let close = match_delim(toks, open);
    let then_b = parse_block_stmts(&toks[open + 1..close.saturating_sub(1)]);
    let mut else_b = Vec::new();
    let mut ni = close;
    if ni < toks.len() && toks[ni].is_ident("else") {
        if ni + 1 < toks.len() && toks[ni + 1].is_ident("if") {
            let line = toks[ni + 1].line;
            let (c2, t2, e2, after) = parse_if(toks, ni + 1);
            else_b.push(Stmt::If {
                cond: c2,
                then_b: t2,
                else_b: e2,
                line,
            });
            ni = after;
        } else {
            let mut j = ni + 1;
            while j < toks.len() && !toks[j].is("{") {
                j += 1;
            }
            let eclose = match_delim(toks, j);
            else_b = parse_block_stmts(&toks[j + 1..eclose.saturating_sub(1)]);
            ni = eclose;
        }
    }
    (cond, then_b, else_b, ni)
}

/// Parse the arms of a match body (inner tokens). Each arm's value is
/// parsed as a statement block (single-expression arms become one-item
/// blocks) — pattern guards stay in the (ignored) pattern text.
fn parse_match_arms(toks: &[Token]) -> Vec<Vec<Stmt>> {
    let mut arms = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is(",") {
            i += 1;
            continue;
        }
        // Pattern: up to `=>` at depth 0.
        let mut depth = 0i32;
        let mut j = i;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "=>" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j >= toks.len() {
            break;
        }
        let val_start = j + 1;
        if val_start < toks.len() && toks[val_start].is("{") {
            let close = match_delim(toks, val_start);
            arms.push(parse_block_stmts(
                &toks[val_start + 1..close.saturating_sub(1)],
            ));
            i = close;
        } else {
            // Expression arm: up to `,` at depth 0 or end of body.
            let mut depth = 0i32;
            let mut k = val_start;
            while k < toks.len() {
                match toks[k].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "," if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            arms.push(parse_block_stmts(&toks[val_start..k]));
            i = k + 1;
        }
    }
    arms
}

/// Tokens from `i` up to the opening `{` of the following block at
/// depth 0 (used for `if`/`while`/`for`/`match` heads). Returns the
/// head tokens and the index of the `{`.
fn scan_until_block(toks: &[Token], i: usize) -> (Vec<Token>, usize) {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => break,
            // A closure body brace inside a head (`.any(|l| {...})`)
            // only occurs at paren depth > 0; treat it as nesting.
            "{" => depth += 1,
            "}" => depth -= 1,
            _ => {}
        }
        j += 1;
    }
    (toks[i..j].to_vec(), j)
}

/// Index just past the `;` ending the statement at `i` (brace/paren
/// aware, so closures and `else { ... }` blocks inside expressions
/// don't end it early). A statement-final `}` at depth 0 without a
/// following `;` also ends it (e.g. last expression of a block).
fn scan_past_semi(toks: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    return j; // tail expression of an outer block
                }
            }
            ";" if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernels(src: &str) -> Vec<FnDef> {
        parse_file(src)
            .fns
            .into_iter()
            .filter(FnDef::is_kernel)
            .collect()
    }

    #[test]
    fn kernel_detection_requires_a_warpctx_param() {
        let src = r#"
            pub fn insert(&mut self, ctx: &mut WarpCtx, warp: Mask) {}
            pub fn launch<R, K>(n: usize, kernel: K) -> Vec<R>
            where K: Fn(usize, &mut WarpCtx) -> R + Sync {}
            fn helper(x: &WarpCtx) -> usize { 0 }
        "#;
        let ks = kernels(src);
        assert_eq!(ks.len(), 1);
        assert_eq!(ks[0].name, "insert");
        assert_eq!(ks[0].ctx_param.as_deref(), Some("ctx"));
    }

    #[test]
    fn statements_parse_structurally() {
        let src = r#"
            fn k(ctx: &mut WarpCtx, live: Mask) {
                let mut i = 0;
                while i < 4 && live.any_lane() {
                    ctx.loop_head(live);
                    if i == 2 { break; } else { i += 1; }
                }
                for l in live.lanes() { out[l] = i; }
                match x { Some(v) => consume(v), None => {} }
            }
        "#;
        let ks = kernels(src);
        let body = &ks[0].body;
        assert!(matches!(body[0], Stmt::Let { .. }));
        assert!(matches!(body[1], Stmt::While { .. }));
        assert!(matches!(body[2], Stmt::ForLane { ref var, .. } if var == "l"));
        assert!(matches!(body[3], Stmt::Match { ref arms, .. } if arms.len() == 2));
        if let Stmt::While { body: wb, .. } = &body[1] {
            assert!(matches!(wb[1], Stmt::If { ref else_b, .. } if !else_b.is_empty()));
        }
    }

    #[test]
    fn let_if_expression_keeps_branch_blocks() {
        let src = r#"
            fn k(ctx: &mut WarpCtx) {
                let d = if cold { ctx.op(warp, 1); load(ctx) } else { cached };
            }
        "#;
        let ks = kernels(src);
        match &ks[0].body[0] {
            Stmt::Let {
                names,
                init: LetInit::If { then_b, else_b, .. },
                ..
            } => {
                assert_eq!(names, &["d"]);
                assert_eq!(then_b.len(), 2);
                assert_eq!(else_b.len(), 1);
            }
            other => panic!("expected let-if, got {other:?}"),
        }
    }

    #[test]
    fn buffer_fields_and_test_mods() {
        let src = r#"
            pub struct Q { pub db: SharedBuf<f32>, iq: LaneLocal<u32>, n: usize }
            #[cfg(test)]
            mod tests {
                fn fake(ctx: &mut WarpCtx) {}
            }
        "#;
        let facts = parse_file(src);
        assert_eq!(
            facts.buffer_fields,
            vec![
                ("db".into(), Space::Shared),
                ("iq".into(), Space::LaneLocal)
            ]
        );
        assert!(facts.fns.is_empty(), "test-module fns must be skipped");
    }

    #[test]
    fn cfg_blocks_and_labels_parse() {
        let src = r#"
            fn k(ctx: &mut WarpCtx) {
                #[cfg(feature = "trace")]
                {
                    counters.ops += 1;
                }
                'outer: loop { break; }
            }
        "#;
        let ks = kernels(src);
        assert!(matches!(ks[0].body[0], Stmt::Block { .. }));
        assert!(matches!(ks[0].body[1], Stmt::Loop { .. }));
    }
}
