//! The barrier-divergence pass.
//!
//! A `warp_fence`/`sync` is only sound when every lane of the warp
//! reaches it together. The pass walks a kernel's statement tree with a
//! stack of *tainted* enclosing conditions — branches whose outcome can
//! differ between lanes (see [`crate::taint`] for what taints and what
//! launders). Any fence executed while that stack is non-empty is
//! reported with the full condition chain as the witness. Calls that
//! thread `ctx` into a callee that may (transitively) fence are treated
//! as fence sites too, via the cross-file summaries.
//!
//! Warp-vote conditions (`live.any_lane()`) are *uniform*: every lane
//! computes the same bool, so fencing under them is legal — this is
//! exactly the shared-flag protocol the kernels use. Lane loops
//! (`for l in mask.lanes()`) always push: a fence per lane is never
//! the warp-wide barrier the sanitizer expects.

use crate::lex::Token;
use crate::parse::{FnDef, LetInit, Stmt};
use crate::report::Finding;
use crate::taint::{
    collect_ctx_calls, ctx_method_at, expr_taint, expr_text, Summaries, VarEnv, FENCE_METHODS,
};

struct Walker<'a> {
    env: &'a VarEnv,
    sums: &'a Summaries,
    file: &'a str,
    func: &'a str,
    /// Enclosing lane-divergent conditions: (line, description).
    stack: Vec<(usize, String)>,
    out: Vec<Finding>,
}

pub fn barrier_findings(f: &FnDef, env: &VarEnv, sums: &Summaries, file: &str) -> Vec<Finding> {
    let mut w = Walker {
        env,
        sums,
        file,
        func: &f.name,
        stack: Vec::new(),
        out: Vec::new(),
    };
    w.walk(&f.body);
    w.out
}

impl Walker<'_> {
    fn walk(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            match s {
                Stmt::Expr { toks, line }
                | Stmt::Let {
                    init: LetInit::Expr(toks),
                    line,
                    ..
                } => {
                    self.check_tokens(toks, *line);
                }
                Stmt::If {
                    cond,
                    then_b,
                    else_b,
                    line,
                }
                | Stmt::Let {
                    init:
                        LetInit::If {
                            cond,
                            then_b,
                            else_b,
                        },
                    line,
                    ..
                } => {
                    self.check_tokens(cond, *line);
                    let pushed = self.push_if_tainted(cond, *line, "if");
                    self.walk(then_b);
                    self.walk(else_b);
                    self.pop(pushed);
                }
                Stmt::While { cond, body, line } => {
                    self.check_tokens(cond, *line);
                    let pushed = self.push_if_tainted(cond, *line, "while");
                    self.walk(body);
                    self.pop(pushed);
                }
                Stmt::For { iter, body, line } => {
                    self.check_tokens(iter, *line);
                    let pushed = self.push_if_tainted(iter, *line, "for");
                    self.walk(body);
                    self.pop(pushed);
                }
                Stmt::ForLane { var, body, line } => {
                    self.stack
                        .push((*line, format!("per-lane loop `for {var} in <lanes>`")));
                    self.walk(body);
                    self.stack.pop();
                }
                Stmt::Loop { body, .. } => self.walk(body),
                Stmt::Match {
                    scrutinee,
                    arms,
                    line,
                } => {
                    self.check_tokens(scrutinee, *line);
                    let pushed = self.push_if_tainted(scrutinee, *line, "match");
                    for a in arms {
                        self.walk(a);
                    }
                    self.pop(pushed);
                }
                Stmt::Block { body, .. } => self.walk(body),
                _ => {}
            }
        }
    }

    fn push_if_tainted(&mut self, cond: &[Token], line: usize, kw: &str) -> bool {
        if let Some(wit) = expr_taint(cond, self.env) {
            self.stack.push((
                line,
                format!(
                    "{kw} on `{}` — lane-tainted via `{}`",
                    expr_text(cond),
                    wit.source
                ),
            ));
            true
        } else {
            false
        }
    }

    fn pop(&mut self, pushed: bool) {
        if pushed {
            self.stack.pop();
        }
    }

    /// Report direct fences and calls into may-fence callees executed
    /// under a tainted condition stack.
    fn check_tokens(&mut self, toks: &[Token], line: usize) {
        if self.stack.is_empty() {
            return;
        }
        if let Some(i) = ctx_method_at(toks, &self.env.ctx, &FENCE_METHODS) {
            let method = toks[i + 2].text.clone();
            self.report(
                line,
                format!("`ctx.{method}(..)` under lane-divergent control flow"),
            );
            return;
        }
        for call in collect_ctx_calls(toks, &self.env.ctx) {
            if self.sums.call_fences(call.callee.as_deref()) {
                let callee = call.callee.unwrap_or_default();
                self.report(
                    line,
                    format!(
                        "call to `{callee}(.., ctx, ..)` which may execute a warp fence, \
                         under lane-divergent control flow"
                    ),
                );
                return;
            }
        }
    }

    fn report(&mut self, line: usize, message: String) {
        let mut witness: Vec<String> = self
            .stack
            .iter()
            .map(|(l, d)| format!("line {l}: {d}"))
            .collect();
        witness.push(format!("line {line}: barrier reached here"));
        self.out.push(Finding {
            rule: crate::RULE_BARRIER,
            file: self.file.to_string(),
            line,
            end_line: line,
            function: self.func.to_string(),
            message,
            line_text: String::new(),
            witness,
        });
    }
}
