//! The shared-memory may-alias pass.
//!
//! `SharedBuf` words are visible to every lane, so two lanes writing
//! the same word inside one fence epoch is a race. The pass abstract-
//! interprets index expressions over a three-point residue domain
//! (modulo `WARP_SIZE` = 32):
//!
//! * `Uniform` — every lane addresses the same word (constants, host
//!   scalars, `X * WARP_SIZE` terms, `splat(..)`);
//! * `Lane` — word ≡ `lane_id` (mod 32): the lane-partitioned layout
//!   every per-lane access in the kernels uses (`slot * WARP_SIZE + l`);
//! * `PerLane` — unknown per-lane value: may collide across lanes.
//!
//! Index bindings resolve through `let`s, `lanes_from_fn(|l| ..)`
//! closures and single-expression helper summaries (`slot_idx`). A
//! per-lane `.write` whose residue is not `Lane` is an immediate
//! finding. Within one fence region the pass additionally tracks the
//! broadcast protocol: a `read_broadcast`/`write_broadcast` overlapping
//! an earlier unfenced write to the same buffer is cross-lane
//! communication the dynamic sanitizer would only catch on an executed
//! schedule — here it is flagged on every path. `ctx.warp_fence()` /
//! `ctx.sync(..)` clear regions; so does any call that threads `ctx`
//! into another analyzed function (callees are verified at their own
//! definition and leave memory fenced on the protocol boundaries).

use std::collections::HashMap;

use crate::lex::{TokKind, Token};
use crate::parse::{FnDef, LetInit, Space, Stmt};
use crate::report::Finding;
use crate::taint::{expr_text, Summaries, VarEnv, FENCE_METHODS};

/// Residue of an index expression modulo `WARP_SIZE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Res {
    Uniform,
    Lane,
    PerLane,
}

const BUF_METHODS: [&str; 4] = ["write", "read", "write_broadcast", "read_broadcast"];
/// Buffer/ctx methods that never fence; any *other* callee taking `ctx`
/// is treated as a region boundary.
const NON_CLEARING_CALLEES: [&str; 6] = [
    "write",
    "read",
    "write_broadcast",
    "read_broadcast",
    "write_uniform",
    "read_uniform",
];

#[derive(Debug, Clone, PartialEq)]
enum Acc {
    PerLaneWrite(Res),
    PerLaneRead(Res),
    BcastWrite,
    BcastRead,
}

impl Acc {
    fn is_write(&self) -> bool {
        matches!(self, Acc::PerLaneWrite(_) | Acc::BcastWrite)
    }
}

type Region = HashMap<String, Vec<(Acc, usize)>>;

struct Walker<'a> {
    env: &'a VarEnv,
    sums: &'a Summaries,
    shared_fields: &'a HashMap<String, Space>,
    file: &'a str,
    func: &'a str,
    out: Vec<Finding>,
    seen: std::collections::HashSet<(usize, String)>,
}

pub fn alias_findings(
    f: &FnDef,
    env: &VarEnv,
    sums: &Summaries,
    shared_fields: &HashMap<String, Space>,
    file: &str,
) -> Vec<Finding> {
    let mut w = Walker {
        env,
        sums,
        shared_fields,
        file,
        func: &f.name,
        out: Vec::new(),
        seen: std::collections::HashSet::new(),
    };
    let mut region = Region::new();
    w.walk(&f.body, &mut region);
    w.out
}

impl Walker<'_> {
    fn walk(&mut self, stmts: &[Stmt], region: &mut Region) {
        for s in stmts {
            match s {
                Stmt::Expr { toks, line }
                | Stmt::Let {
                    init: LetInit::Expr(toks),
                    line,
                    ..
                } => {
                    self.scan_tokens(toks, *line, region);
                }
                Stmt::If {
                    cond,
                    then_b,
                    else_b,
                    line,
                }
                | Stmt::Let {
                    init:
                        LetInit::If {
                            cond,
                            then_b,
                            else_b,
                        },
                    line,
                    ..
                } => {
                    self.scan_tokens(cond, *line, region);
                    let mut r_then = region.clone();
                    let mut r_else = region.clone();
                    self.walk(then_b, &mut r_then);
                    self.walk(else_b, &mut r_else);
                    *region = merge(r_then, r_else);
                }
                Stmt::Match {
                    scrutinee,
                    arms,
                    line,
                } => {
                    self.scan_tokens(scrutinee, *line, region);
                    let mut merged = Region::new();
                    for a in arms {
                        let mut r = region.clone();
                        self.walk(a, &mut r);
                        merged = merge(merged, r);
                    }
                    if !arms.is_empty() {
                        *region = merged;
                    }
                }
                Stmt::While { cond, body, line } => {
                    self.scan_tokens(cond, *line, region);
                    // Two body passes: the second sees the first's
                    // trailing accesses, catching back-edge conflicts.
                    self.walk(body, region);
                    self.scan_tokens(cond, *line, region);
                    self.walk(body, region);
                }
                Stmt::For { iter, body, line } => {
                    self.scan_tokens(iter, *line, region);
                    self.walk(body, region);
                    self.walk(body, region);
                }
                Stmt::Loop { body, .. } => {
                    self.walk(body, region);
                    self.walk(body, region);
                }
                Stmt::ForLane { body, line, .. } => {
                    // Raw per-lane element accesses inside lane loops go
                    // through `Lanes` registers, not SharedBuf methods;
                    // still scan for inline buffer calls.
                    let toks = collect_tokens(body);
                    self.scan_tokens(&toks, *line, region);
                }
                Stmt::Block { body, .. } => self.walk(body, region),
                _ => {}
            }
        }
    }

    /// Scan one statement's tokens in order for fences, region-clearing
    /// calls and shared-buffer accesses.
    fn scan_tokens(&mut self, toks: &[Token], line: usize, region: &mut Region) {
        let mut i = 0;
        while i < toks.len() {
            // Fence?
            if toks[i].is_ident(&self.env.ctx)
                && toks.get(i + 1).is_some_and(|t| t.is("."))
                && toks
                    .get(i + 2)
                    .is_some_and(|t| FENCE_METHODS.contains(&t.text.as_str()))
            {
                region.clear();
                i += 3;
                continue;
            }
            // Buffer access: `<path>.<method>(args)`.
            if toks[i].kind == TokKind::Ident
                && BUF_METHODS.contains(&toks[i].text.as_str())
                && i > 0
                && toks[i - 1].is(".")
                && toks.get(i + 1).is_some_and(|t| t.is("("))
            {
                if let Some(buf) = self.shared_receiver(toks, i - 1) {
                    let close = crate::parse::match_delim(toks, i + 1);
                    let args = split_args(&toks[i + 2..close.saturating_sub(1)]);
                    let acc = match toks[i].text.as_str() {
                        "write" => Acc::PerLaneWrite(self.index_residue(args.get(2))),
                        "read" => Acc::PerLaneRead(self.index_residue(args.get(2))),
                        "write_broadcast" => Acc::BcastWrite,
                        _ => Acc::BcastRead,
                    };
                    self.record(buf, acc, line, region, args.get(2));
                    i = close;
                    continue;
                }
            }
            // Region-clearing call: `ctx` passed to a non-buffer callee.
            if toks[i].is_ident(&self.env.ctx)
                && i > 0
                && matches!(toks[i - 1].text.as_str(), "(" | "," | "&" | "mut")
                && toks.get(i + 1).is_some_and(|t| t.is(",") || t.is(")"))
            {
                let callee = enclosing_callee(toks, i);
                if callee
                    .as_deref()
                    .is_none_or(|c| !NON_CLEARING_CALLEES.contains(&c))
                {
                    region.clear();
                }
            }
            i += 1;
        }
    }

    /// Resolve `<ident>(.<ident>)*` ending at the `.` before a buffer
    /// method; Some(key) if it names a SharedBuf field or local.
    fn shared_receiver(&self, toks: &[Token], dot: usize) -> Option<String> {
        let mut j = dot;
        let mut parts: Vec<String> = Vec::new();
        while j >= 1 && toks[j].is(".") && toks[j - 1].kind == TokKind::Ident {
            parts.push(toks[j - 1].text.clone());
            if j < 2 {
                break;
            }
            j -= 2;
        }
        parts.reverse();
        let last = parts.last()?;
        let shared = self.shared_fields.get(last) == Some(&Space::Shared)
            || self.env.shared_locals.contains(last);
        shared.then(|| parts.join("."))
    }

    fn record(
        &mut self,
        buf: String,
        acc: Acc,
        line: usize,
        region: &mut Region,
        idx_arg: Option<&Vec<Token>>,
    ) {
        let prior = region.entry(buf.clone()).or_default();
        let prior_write = prior.iter().find(|(a, _)| a.is_write()).cloned();
        let idx_text = idx_arg.map(|t| expr_text(t)).unwrap_or_default();
        match &acc {
            Acc::PerLaneWrite(res) if *res != Res::Lane => {
                self.report(
                    line,
                    format!(
                        "per-lane write to shared `{buf}` at index `{idx_text}` is not \
                         lane-partitioned (residue {res:?} mod WARP_SIZE): two lanes may \
                         write the same word in one fence epoch"
                    ),
                    vec![format!("line {line}: index `{idx_text}` has residue {res:?}, expected lane_id + k*WARP_SIZE")],
                );
            }
            Acc::PerLaneWrite(_) => {
                if let Some((_, wl)) = prior.iter().find(|(a, _)| matches!(a, Acc::BcastWrite)) {
                    self.report(
                        line,
                        format!(
                            "per-lane write to shared `{buf}` overlaps an unfenced broadcast \
                             write in the same fence region"
                        ),
                        vec![
                            format!("line {wl}: broadcast write to `{buf}`"),
                            format!("line {line}: per-lane write without an intervening ctx.warp_fence()"),
                        ],
                    );
                }
            }
            Acc::PerLaneRead(res) => {
                if *res != Res::Lane {
                    if let Some((_, wl)) = &prior_write {
                        self.report(
                            line,
                            format!(
                                "cross-lane read of shared `{buf}` (index residue {res:?}) after \
                                 an unfenced write in the same fence region"
                            ),
                            vec![
                                format!("line {wl}: write to `{buf}`"),
                                format!("line {line}: cross-lane read without an intervening ctx.warp_fence()"),
                            ],
                        );
                    }
                }
            }
            Acc::BcastWrite => {
                if let Some((_, wl)) = &prior_write {
                    self.report(
                        line,
                        format!(
                            "broadcast write to shared `{buf}` overlaps an unfenced write \
                             in the same fence region"
                        ),
                        vec![
                            format!("line {wl}: earlier write to `{buf}`"),
                            format!("line {line}: broadcast write without an intervening ctx.warp_fence()"),
                        ],
                    );
                }
            }
            Acc::BcastRead => {
                if let Some((_, wl)) = &prior_write {
                    self.report(
                        line,
                        format!(
                            "warp-wide read of shared `{buf}` after an unfenced write in the \
                             same fence region (the flag protocol brackets the write in \
                             ctx.warp_fence() calls)"
                        ),
                        vec![
                            format!("line {wl}: write to `{buf}`"),
                            format!("line {line}: read_broadcast without an intervening ctx.warp_fence()"),
                        ],
                    );
                }
            }
        }
        region.entry(buf).or_default().push((acc, line));
    }

    /// Residue of a buffer index argument (mode: Lanes-valued expr).
    fn index_residue(&self, arg: Option<&Vec<Token>>) -> Res {
        let Some(arg) = arg else { return Res::PerLane };
        let mut toks: &[Token] = arg;
        // Strip leading `&` / `&mut`.
        while toks.first().is_some_and(|t| t.is("&") || t.is_ident("mut")) {
            toks = &toks[1..];
        }
        self.lanes_expr_residue(toks, 4)
    }

    /// Residue of a Lanes-valued expression.
    fn lanes_expr_residue(&self, toks: &[Token], depth: usize) -> Res {
        if depth == 0 || toks.is_empty() {
            return Res::PerLane;
        }
        // `splat(x)` — every lane addresses the same word.
        if toks[0].is_ident("splat") {
            return Res::Uniform;
        }
        // Single identifier: resolve through its `let` binding.
        if toks.len() == 1 && toks[0].kind == TokKind::Ident {
            if let Some(binding) = self.env.bindings.get(&toks[0].text) {
                return self.lanes_expr_residue(binding, depth - 1);
            }
            return Res::PerLane;
        }
        // `lanes_from_fn(|v| expr)` — evaluate the per-lane body.
        if let Some(p) = toks.iter().position(|t| t.is_ident("lanes_from_fn")) {
            if toks.get(p + 1).is_some_and(|t| t.is("(")) {
                let close = crate::parse::match_delim(toks, p + 1);
                let inner = &toks[p + 2..close.saturating_sub(1)];
                if inner.len() >= 3 && inner[0].is("|") && inner[2].is("|") {
                    return self.scalar_residue(&inner[3..], &inner[1].text, depth - 1);
                }
            }
        }
        // `path.helper(args)` / `helper(args)` with a lanes summary.
        if let Some((name, _args)) = trailing_call(toks) {
            if let Some(sum) = self.sums.lanes_exprs.get(&name) {
                let var = sum.closure_var.clone();
                return self.scalar_residue(&sum.expr, &var, depth - 1);
            }
        }
        Res::PerLane
    }

    /// Residue of a scalar (per-lane closure body) expression: additive
    /// combination of multiplicative terms.
    fn scalar_residue(&self, toks: &[Token], lane_var: &str, depth: usize) -> Res {
        if depth == 0 {
            return Res::PerLane;
        }
        let terms = split_top(toks, &["+", "-"]);
        let mut acc = Res::Uniform;
        for term in terms {
            let r = self.term_residue(&term, lane_var, depth);
            acc = match (acc, r) {
                (Res::Uniform, x) | (x, Res::Uniform) => x,
                _ => Res::PerLane, // Lane + Lane (2·l) collides; PerLane dominates
            };
        }
        acc
    }

    fn term_residue(&self, toks: &[Token], lane_var: &str, depth: usize) -> Res {
        let factors = split_top(toks, &["*", "/", "%", "<<", ">>"]);
        let has_div = toks
            .iter()
            .any(|t| t.is("/") || t.is("%") || t.is("<") || t.is(">"));
        // A factor that is a multiple of WARP_SIZE zeroes the product.
        if !has_div
            && factors.iter().any(|f| {
                f.len() == 1
                    && (f[0].is_ident("WARP_SIZE")
                        || (f[0].kind == TokKind::Num
                            && num_value(&f[0].text).is_some_and(|v| v % 32 == 0)))
            })
        {
            return Res::Uniform;
        }
        let residues: Vec<Res> = factors
            .iter()
            .map(|f| self.factor_residue(f, lane_var, depth))
            .collect();
        if residues.iter().all(|r| *r == Res::Uniform) {
            Res::Uniform
        } else if residues.len() == 1 {
            residues[0]
        } else {
            // l*c (c≠multiple-of-32 or unknown), divisions, shifts:
            // not provably lane-bijective.
            Res::PerLane
        }
    }

    fn factor_residue(&self, toks: &[Token], lane_var: &str, depth: usize) -> Res {
        if toks.is_empty() {
            return Res::PerLane;
        }
        // Parenthesized subexpression.
        if toks[0].is("(") && crate::parse::match_delim(toks, 0) == toks.len() {
            return self.scalar_residue(&toks[1..toks.len() - 1], lane_var, depth);
        }
        // Indexing (`a[l]`, `self.cur[l]`) — an arbitrary per-lane value.
        if toks.iter().any(|t| t.is("[")) {
            return Res::PerLane;
        }
        // Calls in scalar position: `splat`-free math helpers — unknown.
        if toks.iter().any(|t| t.is("(")) {
            return Res::PerLane;
        }
        if toks.len() == 1 {
            let t = &toks[0];
            if t.is_ident(lane_var) {
                return Res::Lane;
            }
            if t.kind == TokKind::Num {
                return Res::Uniform;
            }
            if t.is_ident("WARP_SIZE") {
                return Res::Uniform;
            }
            if t.kind == TokKind::Ident {
                if self.env.tainted.contains(&t.text) {
                    return Res::PerLane;
                }
                if let Some(binding) = self.env.bindings.get(&t.text) {
                    // Uniform scalar bindings resolve; per-lane ones
                    // were caught by the taint check above.
                    return self.scalar_residue(binding, lane_var, depth.saturating_sub(1));
                }
                return Res::Uniform; // host scalar (k, n, cursor, ..)
            }
        }
        // Field path `self.k` etc.: uniform host scalar unless tainted.
        if toks
            .iter()
            .all(|t| t.kind == TokKind::Ident || t.is(".") || t.is("::"))
        {
            if let Some(last) = toks.iter().rev().find(|t| t.kind == TokKind::Ident) {
                if self.env.tainted.contains(&last.text) {
                    return Res::PerLane;
                }
            }
            return Res::Uniform;
        }
        Res::PerLane
    }

    fn report(&mut self, line: usize, message: String, witness: Vec<String>) {
        if !self.seen.insert((line, message.clone())) {
            return; // loop bodies walk twice; report once
        }
        self.out.push(Finding {
            rule: crate::RULE_ALIAS,
            file: self.file.to_string(),
            line,
            end_line: line,
            function: self.func.to_string(),
            message,
            line_text: String::new(),
            witness,
        });
    }
}

/// Union-merge two region states (both control-flow paths survive).
fn merge(mut a: Region, b: Region) -> Region {
    for (k, mut v) in b {
        let e = a.entry(k).or_default();
        for acc in v.drain(..) {
            if !e.contains(&acc) {
                e.push(acc);
            }
        }
    }
    a
}

/// Split a token slice at top-level occurrences of the given operators.
fn split_top(toks: &[Token], ops: &[&str]) -> Vec<Vec<Token>> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            s if depth == 0 && ops.contains(&s) && i > start => {
                out.push(toks[start..i].to_vec());
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(toks[start..].to_vec());
    out
}

/// Split call arguments at top-level commas.
fn split_args(toks: &[Token]) -> Vec<Vec<Token>> {
    if toks.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => {
                out.push(toks[start..i].to_vec());
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(toks[start..].to_vec());
    out
}

/// If the expression is one call `path.name(args)` / `name(args)`
/// consuming the whole slice, return (name, args).
fn trailing_call(toks: &[Token]) -> Option<(String, Vec<Token>)> {
    let open = toks.iter().position(|t| t.is("("))?;
    if open == 0 || toks[open - 1].kind != TokKind::Ident {
        return None;
    }
    if crate::parse::match_delim(toks, open) != toks.len() {
        return None;
    }
    // Everything before must be a path.
    if !toks[..open]
        .iter()
        .all(|t| t.kind == TokKind::Ident || t.is(".") || t.is("::"))
    {
        return None;
    }
    Some((
        toks[open - 1].text.clone(),
        toks[open + 1..toks.len() - 1].to_vec(),
    ))
}

/// Parse an integer literal (underscores and suffixes tolerated).
fn num_value(s: &str) -> Option<u64> {
    let cleaned: String = s.chars().filter(|c| c.is_ascii_digit()).collect();
    cleaned.parse().ok()
}

/// Flatten a statement subtree back to tokens (lane-loop scanning).
fn collect_tokens(stmts: &[Stmt]) -> Vec<Token> {
    let mut out = Vec::new();
    for s in stmts {
        match s {
            Stmt::Expr { toks, .. }
            | Stmt::Let {
                init: LetInit::Expr(toks),
                ..
            } => out.extend(toks.iter().cloned()),
            Stmt::If {
                cond,
                then_b,
                else_b,
                ..
            }
            | Stmt::Let {
                init:
                    LetInit::If {
                        cond,
                        then_b,
                        else_b,
                    },
                ..
            } => {
                out.extend(cond.iter().cloned());
                out.extend(collect_tokens(then_b));
                out.extend(collect_tokens(else_b));
            }
            Stmt::While { cond, body, .. } => {
                out.extend(cond.iter().cloned());
                out.extend(collect_tokens(body));
            }
            Stmt::For { iter, body, .. } => {
                out.extend(iter.iter().cloned());
                out.extend(collect_tokens(body));
            }
            Stmt::ForLane { body, .. } | Stmt::Loop { body, .. } | Stmt::Block { body, .. } => {
                out.extend(collect_tokens(body))
            }
            Stmt::Match {
                scrutinee, arms, ..
            } => {
                out.extend(scrutinee.iter().cloned());
                for a in arms {
                    out.extend(collect_tokens(a));
                }
            }
            _ => {}
        }
    }
    out
}

/// Name of the callee whose argument list encloses token `i`.
fn enclosing_callee(toks: &[Token], i: usize) -> Option<String> {
    let mut depth = 0i32;
    let mut j = i;
    while j > 0 {
        j -= 1;
        match toks[j].text.as_str() {
            ")" => depth += 1,
            "(" => {
                if depth == 0 {
                    if j > 0 && toks[j - 1].kind == TokKind::Ident {
                        return Some(toks[j - 1].text.clone());
                    }
                    return None;
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    None
}
