//! Static CFG analyzer for the simulated GPU kernels.
//!
//! The dynamic `sanitize` race detector (PR 2) proves the absence of
//! warp-synchronization bugs *on the schedules the tests execute*. This
//! crate proves three properties over **all** control-flow paths, at
//! build time, with zero runtime cost:
//!
//! * **barrier-divergence** ([`barrier`]) — no `ctx.warp_fence()` /
//!   `ctx.sync(..)` is reachable under lane-divergent control flow;
//! * **shared-alias** ([`alias`]) — per-lane `SharedBuf` writes are
//!   lane-partitioned (word ≡ `lane_id` mod `WARP_SIZE`) and the
//!   broadcast flag protocol is fence-bracketed on every path;
//! * **time-charge** / **charge-divergence** ([`cfg`]) — every loop
//!   cycle and every derived divergence charges simulated time, so the
//!   paper's figures cannot silently undercount work. These are the
//!   path-sensitive successors of the old token-level `loop-head` and
//!   `charge-divergence` lint rules.
//!
//! The pipeline: [`lex`] tokenizes (dropping comments/strings),
//! [`parse`] builds per-function statement trees and extracts kernel
//! functions — those with a `&mut WarpCtx` parameter — plus buffer-
//! typed struct fields, [`taint`] classifies variables and builds
//! cross-file charge/fence summaries to a fixpoint, and the passes run
//! per kernel. Entry points: [`analyze_sources`] for in-memory sources,
//! [`analyze_tree`] to scan directories. Used by `cargo xtask analyze`
//! (and `cargo xtask lint`, which delegates the migrated charge rules).

pub mod alias;
pub mod barrier;
pub mod cfg;
pub mod lex;
pub mod parse;
pub mod report;
pub mod taint;

use std::collections::HashMap;
use std::path::Path;

pub use report::{to_json, Analysis, Finding};

pub const RULE_BARRIER: &str = "barrier-divergence";
pub const RULE_ALIAS: &str = "shared-alias";
pub const RULE_TIME: &str = "time-charge";
pub const RULE_CHARGE: &str = "charge-divergence";

/// Every rule this analyzer can emit (allowlist entries are validated
/// against the union of these and the token lint's rules).
pub const RULES: [&str; 4] = [RULE_BARRIER, RULE_ALIAS, RULE_TIME, RULE_CHARGE];

/// Analyze a set of `(path-label, source)` pairs as one program: struct
/// fields and function summaries are shared across files, so a kernel
/// in `queues.rs` calling a fencing helper defined in `mem.rs` is
/// resolved interprocedurally.
pub fn analyze_sources(files: &[(String, String)]) -> Analysis {
    let parsed: Vec<(usize, parse::FileFacts)> = files
        .iter()
        .enumerate()
        .map(|(i, (_, src))| (i, parse::parse_file(src)))
        .collect();

    // Cross-file facts: buffer fields (later definitions never shadow a
    // Shared marking — collisions resolve toward Shared, the strict
    // direction) and charge/fence/lanes summaries.
    let mut shared_fields: HashMap<String, parse::Space> = HashMap::new();
    for (_, facts) in &parsed {
        for (name, space) in &facts.buffer_fields {
            match shared_fields.get(name) {
                Some(parse::Space::Shared) => {}
                _ => {
                    shared_fields.insert(name.clone(), *space);
                }
            }
        }
    }
    let all_fns: Vec<&parse::FnDef> = parsed.iter().flat_map(|(_, f)| &f.fns).collect();
    let sums = taint::build_summaries(&all_fns);

    let mut analysis = Analysis {
        files_scanned: files.len(),
        ..Analysis::default()
    };
    for (file_idx, facts) in &parsed {
        let (label, src) = &files[*file_idx];
        let lines: Vec<&str> = src.lines().collect();
        for f in facts.fns.iter().filter(|f| f.is_kernel()) {
            analysis.kernels += 1;
            let env = taint::build_env(f);
            let graph = cfg::build_cfg(f, &env, &sums);
            let mut findings = barrier::barrier_findings(f, &env, &sums, label);
            findings.extend(alias::alias_findings(f, &env, &sums, &shared_fields, label));
            findings.extend(cfg::time_charge_findings(f, &graph, label));
            findings.extend(cfg::charge_divergence_findings(f, &env, &graph, label));
            for mut finding in findings {
                finding.line_text = lines
                    .get(finding.line.saturating_sub(1))
                    .map(|l| l.to_string())
                    .unwrap_or_default();
                analysis.findings.push(finding);
            }
        }
    }
    analysis
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    analysis
}

/// Collect `.rs` files under each root (a root may itself be a file),
/// sorted for deterministic reports.
pub fn collect_rs_files(roots: &[&Path]) -> std::io::Result<Vec<std::path::PathBuf>> {
    let mut out = Vec::new();
    for root in roots {
        if root.is_file() {
            out.push(root.to_path_buf());
        } else {
            walk(root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Analyze every `.rs` file under the given roots.
pub fn analyze_tree(roots: &[&Path]) -> std::io::Result<Analysis> {
    let mut files = Vec::new();
    for path in collect_rs_files(roots)? {
        let src = std::fs::read_to_string(&path)?;
        files.push((path.display().to_string(), src));
    }
    Ok(analyze_sources(&files))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        analyze_sources(&[("test.rs".into(), src.into())]).findings
    }

    #[test]
    fn clean_vote_protocol_passes() {
        let findings = run(r#"
            pub struct B { flag: SharedBuf<u32> }
            impl B {
                pub fn push(&mut self, ctx: &mut WarpCtx, warp: Mask) {
                    let raisers = ctx.ballot(warp, full);
                    if raisers.any_lane() {
                        ctx.warp_fence();
                        self.flag.write_broadcast(ctx, raisers, 0, 1);
                        ctx.warp_fence();
                    }
                    let flag = self.flag.read_broadcast(ctx, warp, 0);
                    if flag == 1 { self.flush(ctx, warp); }
                }
                fn flush(&mut self, ctx: &mut WarpCtx, warp: Mask) {
                    ctx.op(warp, 1);
                }
            }
        "#);
        assert!(findings.is_empty(), "unexpected: {findings:?}");
    }

    #[test]
    fn fence_under_tainted_branch_is_flagged() {
        let findings = run(r#"
            pub fn k(ctx: &mut WarpCtx, warp: Mask) {
                let full = lanes_from_fn(|l| l % 2 == 0);
                if full[0] { ctx.warp_fence(); }
            }
        "#);
        // The same kernel also trips charge-divergence (tainted branch,
        // no charge) — check the barrier finding specifically.
        let barrier: Vec<&Finding> = findings.iter().filter(|f| f.rule == RULE_BARRIER).collect();
        assert_eq!(barrier.len(), 1, "got: {findings:?}");
        assert_eq!(barrier[0].line, 4);
        assert!(!barrier[0].witness.is_empty());
    }

    #[test]
    fn lane_partitioned_write_passes_and_scatter_fails() {
        let clean = run(r#"
            pub struct Q { db: SharedBuf<f32> }
            impl Q {
                fn slot_idx(&self, slot: Lanes<usize>) -> Lanes<usize> {
                    lanes_from_fn(|l| slot[l] * WARP_SIZE + l)
                }
                pub fn put(&mut self, ctx: &mut WarpCtx, m: Mask, d: Lanes<f32>) {
                    let idx = self.slot_idx(self.cur);
                    self.db.write(ctx, m, &idx, d);
                }
            }
        "#);
        assert!(clean.is_empty(), "unexpected: {clean:?}");
        let bad = run(r#"
            pub struct Q { db: SharedBuf<f32> }
            impl Q {
                pub fn put(&mut self, ctx: &mut WarpCtx, m: Mask, d: Lanes<f32>) {
                    let idx = lanes_from_fn(|l| l / 2);
                    self.db.write(ctx, m, &idx, d);
                }
            }
        "#);
        assert_eq!(bad.len(), 1, "got: {bad:?}");
        assert_eq!(bad[0].rule, RULE_ALIAS);
    }

    #[test]
    fn uncharged_divergent_loop_is_flagged_with_path() {
        let findings = run(r#"
            pub fn k(ctx: &mut WarpCtx, live: Mask) {
                let mut flip = false;
                while live.any_lane() {
                    if flip { ctx.loop_head(live); }
                    flip = !flip;
                }
            }
        "#);
        assert_eq!(findings.len(), 1, "got: {findings:?}");
        assert_eq!(findings[0].rule, RULE_TIME);
        assert_eq!(findings[0].line, 4);
        assert!(findings[0].witness.len() >= 2, "want a path witness");
    }

    #[test]
    fn charged_divergent_loop_passes() {
        let findings = run(r#"
            pub fn k(ctx: &mut WarpCtx, live: Mask) {
                let mut live = live;
                while live.any_lane() {
                    ctx.loop_head(live);
                    let (cont, _done) = ctx.diverge(live, lanes_from_fn(|l| l > 0));
                    live = cont;
                }
            }
        "#);
        assert!(findings.is_empty(), "unexpected: {findings:?}");
    }

    #[test]
    fn host_shape_loop_is_exempt() {
        let findings = run(r#"
            pub fn build(ctx: &mut WarpCtx, warp: Mask, sizes: &[usize]) {
                let mut acc = 0;
                let mut offsets = Vec::new();
                for s in sizes {
                    offsets.push(acc);
                    acc += s;
                }
                ctx.op(warp, 1);
            }
        "#);
        assert!(findings.is_empty(), "unexpected: {findings:?}");
    }

    #[test]
    fn divergence_without_charge_is_flagged() {
        let findings = run(r#"
            pub fn k(ctx: &mut WarpCtx, warp: Mask, x: Lanes<u32>) {
                let picked = warp.filter(|l| x[l] > 0);
                let n = picked.count();
            }
        "#);
        assert_eq!(findings.len(), 1, "got: {findings:?}");
        assert_eq!(findings[0].rule, RULE_CHARGE);
    }
}
