//! Lane-taint classification and call/charge token analysis.
//!
//! *Taint* here means "varies across lanes of the warp": values built by
//! `lanes_from_fn`, loaded from per-lane buffer reads, or combined from
//! other tainted values. Warp-wide reductions launder taint — a
//! `mask.any_lane()` vote is one uniform bool every lane agrees on, so
//! branching on it is warp-synchronous even though `mask` itself is
//! per-lane. The analysis is deliberately biased toward silence: a
//! reduction anywhere after a source in the same expression neutralizes
//! it, matching how the kernels are written (reductions terminate the
//! method chain).

use std::collections::{HashMap, HashSet};

use crate::lex::{render, TokKind, Token};
use crate::parse::{FnDef, LetInit, Stmt};

/// Methods on `WarpCtx` that charge simulated time.
pub const CHARGE_METHODS: [&str; 11] = [
    "op",
    "diverge",
    "diverge_mask",
    "loop_head",
    "any",
    "all",
    "ballot",
    "shfl",
    "record_global",
    "record_shared",
    "sync",
];

/// Methods on `WarpCtx` that are warp barriers (`sync` both charges and
/// synchronizes; `warp_fence` is the free sanitizer-epoch fence).
pub const FENCE_METHODS: [&str; 2] = ["warp_fence", "sync"];

/// Method idents that produce per-lane (tainted) values.
const TAINT_METHODS: [&str; 7] = [
    "read",
    "read_uniform",
    "filter",
    "and_lanes",
    "ballot",
    "diverge",
    "diverge_mask",
];

/// Free functions that produce per-lane values.
const TAINT_FNS: [&str; 3] = ["lanes_from_fn", "from_fn", "lane_id"];

/// Warp-wide reductions: a call to one of these *after* a taint source
/// in the same expression collapses it to a uniform value.
const LAUNDER_METHODS: [&str; 9] = [
    "any_lane",
    "all_lanes",
    "count",
    "max",
    "min",
    "sum",
    "fold",
    "read_broadcast",
    "shfl",
];

/// Per-function variable environment, built flow-insensitively (a name
/// tainted by any assignment stays tainted — sound for the warp kernels,
/// which never re-purpose a per-lane name as uniform).
#[derive(Debug, Default)]
pub struct VarEnv {
    pub ctx: String,
    pub tainted: HashSet<String>,
    pub masks: HashSet<String>,
    /// `let name = <expr>` bindings (single-name lets only), used by the
    /// alias pass to resolve index expressions.
    pub bindings: HashMap<String, Vec<Token>>,
    /// Local variables holding a `SharedBuf`.
    pub shared_locals: HashSet<String>,
}

/// Summary of a helper whose body is a single `lanes_from_fn(|v| expr)`:
/// the alias pass inlines these to resolve index residues (`slot_idx`).
#[derive(Debug, Clone)]
pub struct LanesSummary {
    pub closure_var: String,
    pub expr: Vec<Token>,
}

/// Cross-file function summaries, computed to a fixpoint over the call
/// edges that pass a `WarpCtx` along. Functions are keyed by bare name:
/// collisions (e.g. `read` on every buffer type) are harmless because
/// every implementation charges, and unknown callees default in the
/// quiet direction for each consumer.
#[derive(Debug, Default)]
pub struct Summaries {
    /// `true` iff the function charges simulated time on some path
    /// (directly or via a ctx-passing call).
    pub charges: HashMap<String, bool>,
    /// `true` iff the function may execute a warp fence/sync.
    pub fences: HashMap<String, bool>,
    pub lanes_exprs: HashMap<String, LanesSummary>,
}

impl Summaries {
    /// Does a call to `name` charge? Unknown callees are assumed to
    /// charge (quiet for the time-charge pass).
    pub fn call_charges(&self, name: Option<&str>) -> bool {
        match name {
            Some(n) => self.charges.get(n).copied().unwrap_or(true),
            None => true,
        }
    }

    /// May a call to `name` fence? Unknown callees are assumed not to
    /// (quiet for the barrier pass).
    pub fn call_fences(&self, name: Option<&str>) -> bool {
        match name {
            Some(n) => self.fences.get(n).copied().unwrap_or(false),
            None => false,
        }
    }
}

/// Build cross-file summaries from every parsed function.
pub fn build_summaries(fns: &[&FnDef]) -> Summaries {
    let mut s = Summaries::default();
    // Seed: direct charges/fences per function. Only kernel functions
    // (those with a `&mut WarpCtx` parameter) can be the target of a
    // ctx-passing call, so only they enter the charge/fence maps — a
    // host-side namesake (e.g. a journal `flush`) must not shadow a
    // kernel. Same-name kernels merge with OR (conservative).
    let mut calls: HashMap<String, Vec<String>> = HashMap::new();
    for f in fns {
        if let Some(sum) = lanes_summary(&f.body_toks) {
            s.lanes_exprs.insert(f.name.clone(), sum);
        }
        if !f.is_kernel() {
            continue;
        }
        let ctx = f.ctx_param.as_deref().unwrap_or("ctx");
        let charge = s.charges.entry(f.name.clone()).or_insert(false);
        *charge = *charge || has_direct_charge(&f.body_toks, ctx);
        let fence = s.fences.entry(f.name.clone()).or_insert(false);
        *fence = *fence || has_direct_fence(&f.body_toks, ctx);
        let callees: Vec<String> = collect_ctx_calls(&f.body_toks, ctx)
            .into_iter()
            .filter_map(|c| c.callee)
            .collect();
        calls.entry(f.name.clone()).or_default().extend(callees);
    }
    // Fixpoint: propagate over ctx-passing call edges.
    loop {
        let mut changed = false;
        for (name, callees) in &calls {
            for callee in callees {
                let callee_charges = s.charges.get(callee).copied().unwrap_or(true);
                let callee_fences = s.fences.get(callee).copied().unwrap_or(false);
                if callee_charges && !s.charges[name] {
                    s.charges.insert(name.clone(), true);
                    changed = true;
                }
                if callee_fences && !s.fences[name] {
                    s.fences.insert(name.clone(), true);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    s
}

/// Extract a [`LanesSummary`] if the body is one `lanes_from_fn` call.
fn lanes_summary(body: &[Token]) -> Option<LanesSummary> {
    let pos = body.iter().position(|t| t.is_ident("lanes_from_fn"))?;
    // Everything before must be path/`return` noise.
    if !body[..pos]
        .iter()
        .all(|t| t.kind == TokKind::Ident && t.text != "fn" || t.is("::"))
    {
        return None;
    }
    let open = pos + 1;
    if body.get(open).is_none_or(|t| !t.is("(")) {
        return None;
    }
    let close = crate::parse::match_delim(body, open);
    // The call must consume the rest of the body (modulo a `;`).
    if body[close..].iter().any(|t| !t.is(";")) {
        return None;
    }
    // Inside: `| v | expr`.
    let inner = &body[open + 1..close.saturating_sub(1)];
    if inner.len() < 3 || !inner[0].is("|") || inner[1].kind != TokKind::Ident || !inner[2].is("|")
    {
        return None;
    }
    Some(LanesSummary {
        closure_var: inner[1].text.clone(),
        expr: inner[3..].to_vec(),
    })
}

/// One `f(.., ctx, ..)` call site: the callee name (None for tuples,
/// macros or other anonymous paren groups) and the token index of the
/// `ctx` argument.
#[derive(Debug)]
pub struct CtxCall {
    pub callee: Option<String>,
    pub tok_idx: usize,
}

/// Find every place `ctx` is passed as an argument (by value or `&mut`).
/// `ctx.method(...)` receiver positions are not arguments and are
/// excluded naturally (the next token is `.`).
pub fn collect_ctx_calls(toks: &[Token], ctx: &str) -> Vec<CtxCall> {
    let mut out = Vec::new();
    let mut stack: Vec<Option<String>> = Vec::new();
    for i in 0..toks.len() {
        match toks[i].text.as_str() {
            "(" => {
                let callee = if i > 0 && toks[i - 1].kind == TokKind::Ident {
                    Some(toks[i - 1].text.clone())
                } else {
                    None
                };
                stack.push(callee);
            }
            ")" => {
                stack.pop();
            }
            _ => {
                if toks[i].is_ident(ctx)
                    && i > 0
                    && matches!(toks[i - 1].text.as_str(), "(" | "," | "&" | "mut")
                    && toks.get(i + 1).is_some_and(|t| t.is(",") || t.is(")"))
                {
                    if let Some(top) = stack.last() {
                        out.push(CtxCall {
                            callee: top.clone(),
                            tok_idx: i,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Does this token slice contain a direct `ctx.<charging-method>(` call?
pub fn has_direct_charge(toks: &[Token], ctx: &str) -> bool {
    ctx_method_at(toks, ctx, &CHARGE_METHODS).is_some()
}

/// Does this token slice contain a direct `ctx.warp_fence()`/`ctx.sync(`?
pub fn has_direct_fence(toks: &[Token], ctx: &str) -> bool {
    ctx_method_at(toks, ctx, &FENCE_METHODS).is_some()
}

/// First token index of a `ctx.<m>(` call with `m` in `methods`.
pub fn ctx_method_at(toks: &[Token], ctx: &str, methods: &[&str]) -> Option<usize> {
    (0..toks.len()).find(|&i| {
        toks[i].is_ident(ctx)
            && toks.get(i + 1).is_some_and(|t| t.is("."))
            && toks
                .get(i + 2)
                .is_some_and(|t| t.kind == TokKind::Ident && methods.contains(&t.text.as_str()))
            && toks.get(i + 3).is_some_and(|t| t.is("("))
    })
}

/// Does this statement charge simulated time — directly, or via a call
/// that threads `ctx` into a (transitively) charging callee?
pub fn stmt_charges(toks: &[Token], env: &VarEnv, sums: &Summaries) -> bool {
    if has_direct_charge(toks, &env.ctx) {
        return true;
    }
    collect_ctx_calls(toks, &env.ctx)
        .iter()
        .any(|c| sums.call_charges(c.callee.as_deref()))
}

/// Why an expression is lane-tainted: the source token and a label.
#[derive(Debug, Clone)]
pub struct TaintWitness {
    pub source: String,
    pub line: usize,
}

/// Is this expression lane-tainted (per-lane-varying) — and if so, why?
/// Returns the first source not neutralized by a later reduction.
pub fn expr_taint(toks: &[Token], env: &VarEnv) -> Option<TaintWitness> {
    // Each reduction call neutralizes every source token before the
    // close of its argument list: both the receiver chain before it
    // (`mask.any_lane()`) and the per-lane arguments inside it
    // (`buf.read_broadcast(ctx, warp, 0)` — `warp` is laundered too).
    let launder_end: Vec<usize> = (0..toks.len())
        .filter(|&i| {
            toks[i].kind == TokKind::Ident
                && LAUNDER_METHODS.contains(&toks[i].text.as_str())
                && i > 0
                && toks[i - 1].is(".")
                && toks.get(i + 1).is_some_and(|t| t.is("("))
        })
        .map(|i| crate::parse::match_delim(toks, i + 1))
        .collect();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let is_source = env.tainted.contains(&t.text)
            || TAINT_FNS.contains(&t.text.as_str())
            || (TAINT_METHODS.contains(&t.text.as_str())
                && i > 0
                && toks[i - 1].is(".")
                && toks.get(i + 1).is_some_and(|t| t.is("(")));
        if is_source && !launder_end.iter().any(|&end| i < end) {
            return Some(TaintWitness {
                source: t.text.clone(),
                line: t.line,
            });
        }
    }
    None
}

/// Does this expression produce a `Mask`?
pub fn expr_is_mask(toks: &[Token], env: &VarEnv) -> bool {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.is_ident("Mask") {
            return true;
        }
        if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "filter" | "and_lanes" | "ballot" | "diverge" | "diverge_mask"
            )
            && i > 0
            && toks[i - 1].is(".")
        {
            return true;
        }
        if env.masks.contains(&t.text) && toks.get(i + 1).is_none_or(|n| !n.is("(")) {
            return true;
        }
    }
    false
}

/// Build the variable environment for one kernel function. Runs the
/// statement walk twice so names tainted late (e.g. loop-carried
/// updates) propagate into earlier classifications.
pub fn build_env(f: &FnDef) -> VarEnv {
    let mut env = VarEnv {
        ctx: f.ctx_param.clone().unwrap_or_else(|| "ctx".into()),
        ..VarEnv::default()
    };
    for (name, ty) in &f.params {
        if ty.contains("Mask") {
            env.masks.insert(name.clone());
            env.tainted.insert(name.clone());
        } else if ty.contains("Lanes") {
            env.tainted.insert(name.clone());
        }
    }
    for _ in 0..2 {
        walk_bindings(&f.body, &mut env);
    }
    env
}

fn walk_bindings(stmts: &[Stmt], env: &mut VarEnv) {
    for s in stmts {
        match s {
            Stmt::Let { names, init, .. } => {
                match init {
                    LetInit::Expr(toks) => {
                        let tainted = expr_taint(toks, env).is_some();
                        let mask = expr_is_mask(toks, env);
                        let shared = toks
                            .windows(2)
                            .any(|w| w[0].is_ident("SharedBuf") && w[1].is("::"));
                        for n in names {
                            if tainted {
                                env.tainted.insert(n.clone());
                            }
                            if mask {
                                env.masks.insert(n.clone());
                            }
                            if shared {
                                env.shared_locals.insert(n.clone());
                            }
                        }
                        if names.len() == 1 && !toks.is_empty() {
                            env.bindings.insert(names[0].clone(), toks.to_vec());
                        }
                    }
                    LetInit::If {
                        cond,
                        then_b,
                        else_b,
                    } => {
                        // The binding is the branch tails; approximate:
                        // tainted if the condition or either branch
                        // mentions taint.
                        let any_taint = expr_taint(cond, env).is_some()
                            || block_mentions_taint(then_b, env)
                            || block_mentions_taint(else_b, env);
                        for n in names {
                            if any_taint {
                                env.tainted.insert(n.clone());
                            }
                        }
                        walk_bindings(then_b, env);
                        walk_bindings(else_b, env);
                    }
                }
            }
            // Plain reassignment `x = expr;` updates taint.
            Stmt::Expr { toks, .. }
                if toks.len() > 2 && toks[0].kind == TokKind::Ident && toks[1].is("=") =>
            {
                if expr_taint(&toks[2..], env).is_some() {
                    env.tainted.insert(toks[0].text.clone());
                }
                if expr_is_mask(&toks[2..], env) {
                    env.masks.insert(toks[0].text.clone());
                }
            }
            Stmt::If { then_b, else_b, .. } => {
                walk_bindings(then_b, env);
                walk_bindings(else_b, env);
            }
            Stmt::While { body, .. }
            | Stmt::For { body, .. }
            | Stmt::Loop { body, .. }
            | Stmt::Block { body, .. } => walk_bindings(body, env),
            Stmt::ForLane { var, body, .. } => {
                env.tainted.insert(var.clone());
                walk_bindings(body, env);
            }
            Stmt::Match { arms, .. } => {
                for a in arms {
                    walk_bindings(a, env);
                }
            }
            _ => {}
        }
    }
}

fn block_mentions_taint(stmts: &[Stmt], env: &VarEnv) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Let {
            init: LetInit::Expr(toks),
            ..
        }
        | Stmt::Expr { toks, .. } => expr_taint(toks, env).is_some(),
        _ => true, // nested control flow: assume tainted (quiet enough)
    })
}

/// Text of an expression for findings.
pub fn expr_text(toks: &[Token]) -> String {
    let mut s = render(toks);
    if s.len() > 80 {
        s.truncate(77);
        s.push_str("...");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;
    use crate::parse::parse_file;

    fn env_of(src: &str) -> VarEnv {
        let facts = parse_file(src);
        build_env(&facts.fns[0])
    }

    #[test]
    fn reductions_launder_taint() {
        let env = env_of(
            "fn k(ctx: &mut WarpCtx, live: Mask) {
                let per_lane = lanes_from_fn(|l| l * 2);
                let uniform = live.lanes().map(|l| x[l]).max().unwrap_or(0);
            }",
        );
        assert!(env.tainted.contains("per_lane"));
        assert!(!env.tainted.contains("uniform"));
        assert!(expr_taint(&lex("live.any_lane()"), &env).is_none());
        assert!(expr_taint(&lex("per_lane"), &env).is_some());
    }

    #[test]
    fn diverge_tuple_binds_masks() {
        let env = env_of(
            "fn k(ctx: &mut WarpCtx, live: Mask) {
                let (cont, done) = ctx.diverge(live, cond);
            }",
        );
        assert!(env.masks.contains("cont") && env.masks.contains("done"));
        assert!(env.tainted.contains("cont"));
    }

    #[test]
    fn ctx_calls_and_charges() {
        let toks = lex("self.flush(ctx, warp); other(1, 2); ctx.warp_fence();");
        let calls = collect_ctx_calls(&toks, "ctx");
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].callee.as_deref(), Some("flush"));
        assert!(!has_direct_charge(&toks, "ctx"));
        assert!(has_direct_fence(&toks, "ctx"));
        assert!(has_direct_charge(&lex("ctx.loop_head(live)"), "ctx"));
    }

    #[test]
    fn lanes_summaries_resolve() {
        let src = "impl Q { fn slot_idx(&self, slot: Lanes<usize>) -> Lanes<usize> {
            lanes_from_fn(|l| slot[l] * WARP_SIZE + l)
        } }";
        let facts = parse_file(src);
        let refs: Vec<&FnDef> = facts.fns.iter().collect();
        let sums = build_summaries(&refs);
        let s = sums.lanes_exprs.get("slot_idx").expect("summary");
        assert_eq!(s.closure_var, "l");
    }
}
