//! Circuit breaker and brownout ladder.
//!
//! Under sustained saturation the server does not fail abruptly; it
//! walks down a ladder of named degradation steps, each trading a
//! little result quality or efficiency for a large reduction in
//! per-request cost, and climbs back up hysteretically once pressure
//! subsides:
//!
//! ```text
//!   full-exact  ──trip──▶  large-tile  ──trip──▶  sampled  ──trip──▶  shed
//!      ▲                      │  ▲                  │  ▲                │
//!      └──────recover─────────┘  └─────recover──────┘  └────recover────┘
//! ```
//!
//! * `full-exact` — streamed-exact resilient pipeline, full quality.
//! * `large-tile` — exact results, larger reference tile + unbuffered
//!   select (smaller shared-memory scratch, fewer kernel launches per
//!   request).
//! * `sampled` — selection over a strided subset of the reference set;
//!   approximate, with a reported recall bound.
//! * `shed` — breaker open: new arrivals are refused outright.
//!
//! Pressure is measured over tumbling windows of request outcomes. A
//! window where at least `trip_frac` of requests ended badly (shed for
//! queue-full, deadline-exceeded, or failed) steps the ladder down;
//! `recover_windows` consecutive windows at or below `recover_frac`
//! step it back up. The gap between the two thresholds is the
//! hysteresis that prevents flapping. Sheds caused by the breaker
//! *being open* are deliberately not counted as pressure — otherwise
//! the open state would feed itself and never recover.

/// One rung of the brownout ladder, ordered best to worst.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradeStep {
    /// Full streamed-exact service.
    #[default]
    FullExact,
    /// Exact service with larger tiles and unbuffered (plain) select:
    /// same answers, bounded scratch, cheaper launch schedule.
    LargeTile,
    /// Selection over a strided sample of the reference set: cheaper
    /// by ~the stride factor, with a reported recall bound.
    Sampled,
    /// Breaker open: shed new arrivals at admission.
    Shed,
}

impl DegradeStep {
    /// Stable kebab-case name used in journals and reports.
    pub fn name(self) -> &'static str {
        match self {
            DegradeStep::FullExact => "full-exact",
            DegradeStep::LargeTile => "large-tile",
            DegradeStep::Sampled => "sampled",
            DegradeStep::Shed => "shed",
        }
    }

    fn down(self) -> DegradeStep {
        match self {
            DegradeStep::FullExact => DegradeStep::LargeTile,
            DegradeStep::LargeTile => DegradeStep::Sampled,
            DegradeStep::Sampled | DegradeStep::Shed => DegradeStep::Shed,
        }
    }

    fn up(self) -> DegradeStep {
        match self {
            DegradeStep::FullExact | DegradeStep::LargeTile => DegradeStep::FullExact,
            DegradeStep::Sampled => DegradeStep::LargeTile,
            DegradeStep::Shed => DegradeStep::Sampled,
        }
    }
}

/// Breaker tuning.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Outcomes per tumbling window.
    pub window: usize,
    /// Pressure fraction at or above which the ladder steps down.
    pub trip_frac: f64,
    /// Pressure fraction at or below which a window counts toward
    /// recovery. Must be below `trip_frac` for hysteresis.
    pub recover_frac: f64,
    /// Consecutive calm windows required before stepping back up.
    pub recover_windows: usize,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 16,
            trip_frac: 0.5,
            recover_frac: 0.125,
            recover_windows: 2,
        }
    }
}

/// Hysteretic state machine walking the [`DegradeStep`] ladder.
#[derive(Debug)]
pub struct Breaker {
    cfg: BreakerConfig,
    step: DegradeStep,
    /// Pressure events in the current window.
    hot: usize,
    /// Outcomes observed in the current window.
    seen: usize,
    /// Consecutive calm windows so far.
    calm_streak: usize,
    /// Total downward transitions (for reports).
    trips: u64,
    /// Total upward transitions (for reports).
    recoveries: u64,
    /// Worst step ever reached.
    worst: DegradeStep,
}

impl Breaker {
    pub fn new(cfg: BreakerConfig) -> Self {
        Breaker {
            cfg,
            step: DegradeStep::FullExact,
            hot: 0,
            seen: 0,
            calm_streak: 0,
            trips: 0,
            recoveries: 0,
            worst: DegradeStep::FullExact,
        }
    }

    /// Current rung of the ladder.
    pub fn step(&self) -> DegradeStep {
        self.step
    }

    /// Total downward transitions taken.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Total upward transitions taken.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Worst rung reached over the whole run.
    pub fn worst(&self) -> DegradeStep {
        self.worst
    }

    /// Record one request outcome. `pressure` is true when the outcome
    /// indicates saturation the ladder should react to (queue-full
    /// shed, deadline miss, or a failed request) — *not* for sheds the
    /// open breaker itself caused. Returns the possibly-updated step.
    pub fn observe(&mut self, pressure: bool) -> DegradeStep {
        self.seen += 1;
        if pressure {
            self.hot += 1;
        }
        if self.seen >= self.cfg.window {
            let frac = self.hot as f64 / self.seen as f64;
            if frac >= self.cfg.trip_frac {
                self.calm_streak = 0;
                let next = self.step.down();
                if next != self.step {
                    self.step = next;
                    self.trips += 1;
                    self.worst = self.worst.max(next);
                }
            } else if frac <= self.cfg.recover_frac {
                self.calm_streak += 1;
                if self.calm_streak >= self.cfg.recover_windows {
                    self.calm_streak = 0;
                    let next = self.step.up();
                    if next != self.step {
                        self.step = next;
                        self.recoveries += 1;
                    }
                }
            } else {
                // Between the thresholds: hold the current step and
                // reset the recovery streak (hysteresis band).
                self.calm_streak = 0;
            }
            self.hot = 0;
            self.seen = 0;
        }
        self.step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BreakerConfig {
        BreakerConfig {
            window: 4,
            trip_frac: 0.5,
            recover_frac: 0.25,
            recover_windows: 2,
        }
    }

    #[test]
    fn ladder_order_and_names() {
        assert!(DegradeStep::FullExact < DegradeStep::LargeTile);
        assert!(DegradeStep::LargeTile < DegradeStep::Sampled);
        assert!(DegradeStep::Sampled < DegradeStep::Shed);
        assert_eq!(DegradeStep::FullExact.name(), "full-exact");
        assert_eq!(DegradeStep::Shed.down(), DegradeStep::Shed);
        assert_eq!(DegradeStep::FullExact.up(), DegradeStep::FullExact);
    }

    #[test]
    fn sustained_pressure_walks_the_full_ladder() {
        let mut b = Breaker::new(tiny());
        for _ in 0..4 {
            b.observe(true);
        }
        assert_eq!(b.step(), DegradeStep::LargeTile);
        for _ in 0..4 {
            b.observe(true);
        }
        assert_eq!(b.step(), DegradeStep::Sampled);
        for _ in 0..4 {
            b.observe(true);
        }
        assert_eq!(b.step(), DegradeStep::Shed);
        // Saturates at the bottom.
        for _ in 0..4 {
            b.observe(true);
        }
        assert_eq!(b.step(), DegradeStep::Shed);
        assert_eq!(b.trips(), 3);
        assert_eq!(b.worst(), DegradeStep::Shed);
    }

    #[test]
    fn recovery_requires_consecutive_calm_windows() {
        let mut b = Breaker::new(tiny());
        for _ in 0..4 {
            b.observe(true);
        }
        assert_eq!(b.step(), DegradeStep::LargeTile);
        // One calm window is not enough.
        for _ in 0..4 {
            b.observe(false);
        }
        assert_eq!(b.step(), DegradeStep::LargeTile);
        // The second consecutive calm window recovers one rung.
        for _ in 0..4 {
            b.observe(false);
        }
        assert_eq!(b.step(), DegradeStep::FullExact);
        assert_eq!(b.recoveries(), 1);
    }

    #[test]
    fn hysteresis_band_holds_and_resets_the_streak() {
        let mut b = Breaker::new(tiny());
        for _ in 0..4 {
            b.observe(true);
        }
        assert_eq!(b.step(), DegradeStep::LargeTile);
        // Calm window, then a mid-band window (1/4 hot = between
        // recover_frac=0.25 exclusive? no: 0.25 <= 0.25 counts calm;
        // use 2/4 = 0.5 trip — instead use 1 hot of 4 = 0.25 which is
        // calm, so craft a mid-band with window 4 and 2 hot? 0.5 trips.
        // With these thresholds the mid band is empty for window=4, so
        // check the streak reset via a tripping window instead.
        for _ in 0..4 {
            b.observe(false);
        }
        assert_eq!(b.step(), DegradeStep::LargeTile);
        for _ in 0..4 {
            b.observe(true); // pressure window resets the calm streak
        }
        assert_eq!(b.step(), DegradeStep::Sampled);
        for _ in 0..4 {
            b.observe(false);
        }
        // Streak restarted: still only one calm window since the trip.
        assert_eq!(b.step(), DegradeStep::Sampled);
    }

    #[test]
    fn mid_band_window_holds_step_without_recovery_credit() {
        // window 8, trip 0.5, recover 0.125: 2/8 = 0.25 sits strictly
        // between the thresholds.
        let cfg = BreakerConfig {
            window: 8,
            trip_frac: 0.5,
            recover_frac: 0.125,
            recover_windows: 1,
        };
        let mut b = Breaker::new(cfg);
        for _ in 0..8 {
            b.observe(true);
        }
        assert_eq!(b.step(), DegradeStep::LargeTile);
        // 2 hot of 8: neither trips nor recovers.
        for i in 0..8 {
            b.observe(i < 2);
        }
        assert_eq!(b.step(), DegradeStep::LargeTile);
        assert_eq!(b.recoveries(), 0);
    }
}
