//! Bounded admission queue with configurable overflow policy.
//!
//! The queue holds requests that arrived while the server was busy.
//! It is strictly bounded: when full, the configured [`QueuePolicy`]
//! decides who pays — the incoming request ([`QueuePolicy::Reject`] /
//! [`QueuePolicy::DropNewest`]) or the oldest queued one
//! ([`QueuePolicy::DropOldest`]). Every drop is a typed, accounted
//! outcome ([`kselect::KnnError::Overloaded`] at the API surface,
//! `shed` in the journal) — the queue never grows unbounded and never
//! loses a request silently.

use std::collections::VecDeque;

use crate::engine::Request;

/// What to do with an arrival when the queue is at capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueuePolicy {
    /// Refuse the incoming request with a typed
    /// [`kselect::KnnError::Overloaded`] rejection. The client knows
    /// immediately and can back off.
    Reject,
    /// Drop the incoming request silently from the queue's point of
    /// view (it is still journaled as shed). Differs from `Reject`
    /// only in intent: the caller treats the drop as best-effort load
    /// shedding rather than an error to surface.
    DropNewest,
    /// Evict the oldest queued request to make room. Freshest-first
    /// service: under overload the head of the queue is the request
    /// most likely to miss its deadline anyway.
    DropOldest,
}

impl QueuePolicy {
    /// Stable kebab-case name for CLI flags and reports.
    pub fn name(self) -> &'static str {
        match self {
            QueuePolicy::Reject => "reject",
            QueuePolicy::DropNewest => "drop-newest",
            QueuePolicy::DropOldest => "drop-oldest",
        }
    }

    /// Parse a kebab-case policy name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "reject" => Some(QueuePolicy::Reject),
            "drop-newest" => Some(QueuePolicy::DropNewest),
            "drop-oldest" => Some(QueuePolicy::DropOldest),
            _ => None,
        }
    }
}

/// Outcome of offering one request to the queue.
#[derive(Debug, PartialEq)]
pub enum Admit {
    /// The request was enqueued.
    Queued,
    /// The queue was full and the incoming request was refused
    /// (`Reject` policy — surfaced as a typed error).
    Rejected(Request),
    /// The queue was full and the incoming request was dropped
    /// (`DropNewest` policy — best-effort shed).
    DroppedNewest(Request),
    /// The queue was full; the oldest queued request was evicted and
    /// the incoming one took its place (`DropOldest` policy).
    EvictedOldest(Request),
}

/// Bounded FIFO admission queue.
#[derive(Debug)]
pub struct AdmissionQueue {
    items: VecDeque<Request>,
    capacity: usize,
    policy: QueuePolicy,
    /// Deepest occupancy ever observed (for reports).
    max_depth: usize,
}

impl AdmissionQueue {
    /// Queue with room for `capacity` waiting requests (≥ 1).
    pub fn new(capacity: usize, policy: QueuePolicy) -> Self {
        AdmissionQueue {
            items: VecDeque::with_capacity(capacity),
            capacity: capacity.max(1),
            policy,
            max_depth: 0,
        }
    }

    /// Requests currently waiting.
    pub fn depth(&self) -> usize {
        self.items.len()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Deepest occupancy observed so far.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Whether the queue holds no requests.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Offer one arrival; see [`Admit`] for the possible outcomes.
    pub fn offer(&mut self, req: Request) -> Admit {
        if self.items.len() < self.capacity {
            self.items.push_back(req);
            self.max_depth = self.max_depth.max(self.items.len());
            return Admit::Queued;
        }
        match self.policy {
            QueuePolicy::Reject => Admit::Rejected(req),
            QueuePolicy::DropNewest => Admit::DroppedNewest(req),
            QueuePolicy::DropOldest => {
                // Capacity ≥ 1, so a full queue has a front to evict.
                let victim = match self.items.pop_front() {
                    Some(v) => v,
                    None => return Admit::Rejected(req),
                };
                self.items.push_back(req);
                Admit::EvictedOldest(victim)
            }
        }
    }

    /// Pop the request that has waited longest.
    pub fn pop(&mut self) -> Option<Request> {
        self.items.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64) -> Request {
        Request {
            id,
            arrival_s: id as f64,
            deadline_s: id as f64 + 1.0,
        }
    }

    #[test]
    fn fifo_within_capacity() {
        let mut q = AdmissionQueue::new(3, QueuePolicy::Reject);
        for i in 0..3 {
            assert_eq!(q.offer(req(i)), Admit::Queued);
        }
        assert_eq!(q.depth(), 3);
        assert_eq!(q.pop().map(|r| r.id), Some(0));
        assert_eq!(q.pop().map(|r| r.id), Some(1));
        assert_eq!(q.pop().map(|r| r.id), Some(2));
        assert!(q.pop().is_none());
        assert_eq!(q.max_depth(), 3);
    }

    #[test]
    fn reject_refuses_the_incoming_request() {
        let mut q = AdmissionQueue::new(1, QueuePolicy::Reject);
        assert_eq!(q.offer(req(0)), Admit::Queued);
        assert_eq!(q.offer(req(1)), Admit::Rejected(req(1)));
        assert_eq!(q.pop().map(|r| r.id), Some(0));
    }

    #[test]
    fn drop_newest_sheds_the_incoming_request() {
        let mut q = AdmissionQueue::new(1, QueuePolicy::DropNewest);
        assert_eq!(q.offer(req(0)), Admit::Queued);
        assert_eq!(q.offer(req(1)), Admit::DroppedNewest(req(1)));
        assert_eq!(q.pop().map(|r| r.id), Some(0));
    }

    #[test]
    fn drop_oldest_evicts_the_head() {
        let mut q = AdmissionQueue::new(2, QueuePolicy::DropOldest);
        assert_eq!(q.offer(req(0)), Admit::Queued);
        assert_eq!(q.offer(req(1)), Admit::Queued);
        assert_eq!(q.offer(req(2)), Admit::EvictedOldest(req(0)));
        assert_eq!(q.pop().map(|r| r.id), Some(1));
        assert_eq!(q.pop().map(|r| r.id), Some(2));
    }

    #[test]
    fn policy_names_round_trip() {
        for p in [
            QueuePolicy::Reject,
            QueuePolicy::DropNewest,
            QueuePolicy::DropOldest,
        ] {
            assert_eq!(QueuePolicy::parse(p.name()), Some(p));
        }
        assert_eq!(QueuePolicy::parse("lifo"), None);
    }
}
