//! Seeded open-loop arrival generation.
//!
//! Overload experiments need *open-loop* arrivals: the generator keeps
//! producing requests at the configured rate regardless of whether the
//! server keeps up, which is exactly the condition that exposes queue
//! growth, shedding, and deadline misses. A closed-loop generator
//! (wait-for-response) self-throttles and can never drive the system
//! past saturation.
//!
//! Arrivals are drawn on the *simulated* clock from a seeded splitmix64
//! stream, so every overload scenario replays byte-identically: same
//! seed → same arrival instants → same queue states → same journal.

/// Arrival process shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Exponential inter-arrival times (memoryless). The realistic
    /// default: arrivals cluster, which is what stresses a bounded
    /// queue hardest at a given mean rate.
    Poisson,
    /// Fixed inter-arrival times (1/rate). Useful as a control: the
    /// same mean rate with zero burstiness.
    Uniform,
}

impl ArrivalProcess {
    /// Stable kebab-case name for CLI flags and reports.
    pub fn name(self) -> &'static str {
        match self {
            ArrivalProcess::Poisson => "poisson",
            ArrivalProcess::Uniform => "uniform",
        }
    }

    /// Parse a kebab-case process name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "poisson" => Some(ArrivalProcess::Poisson),
            "uniform" => Some(ArrivalProcess::Uniform),
            _ => None,
        }
    }
}

/// splitmix64: tiny, seedable, and stable across platforms. Quality is
/// more than sufficient for inter-arrival sampling, and keeping the
/// generator local means the arrival schedule can never shift under a
/// `rand` stub upgrade.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform draw in the half-open interval (0, 1]; never returns 0 so
/// `-ln(u)` stays finite.
fn unit_open(state: &mut u64) -> f64 {
    // 53 mantissa bits, then shift from [0,1) to (0,1].
    let bits = splitmix64(state) >> 11;
    (bits as f64 + 1.0) / (1u64 << 53) as f64
}

/// Generate every arrival instant in `[0, duration_s)` for a process
/// with mean rate `rate_hz`, seeded by `seed`. The vector is strictly
/// increasing and finite because `rate_hz` must be positive.
pub fn arrival_times(
    process: ArrivalProcess,
    rate_hz: f64,
    duration_s: f64,
    seed: u64,
) -> Vec<f64> {
    assert!(
        rate_hz > 0.0 && rate_hz.is_finite(),
        "arrival rate must be positive and finite"
    );
    let mut state = seed ^ 0x6c62_272e_07bb_0142; // decorrelate seed 0 from state 0
    let mut t = 0.0_f64;
    let mut out = Vec::new();
    loop {
        let gap = match process {
            ArrivalProcess::Poisson => -unit_open(&mut state).ln() / rate_hz,
            ArrivalProcess::Uniform => 1.0 / rate_hz,
        };
        t += gap;
        if t >= duration_s {
            return out;
        }
        out.push(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_reproduces_the_schedule() {
        let a = arrival_times(ArrivalProcess::Poisson, 100.0, 10.0, 42);
        let b = arrival_times(ArrivalProcess::Poisson, 100.0, 10.0, 42);
        assert_eq!(a, b);
        let c = arrival_times(ArrivalProcess::Poisson, 100.0, 10.0, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_mean_rate_is_close() {
        // 10s at 1 kHz → ~10k arrivals; CLT puts the count within a
        // few percent with overwhelming probability for a fixed seed.
        let times = arrival_times(ArrivalProcess::Poisson, 1000.0, 10.0, 7);
        let n = times.len() as f64;
        assert!(
            (n - 10_000.0).abs() < 400.0,
            "expected ~10000 arrivals, got {n}"
        );
    }

    #[test]
    fn arrivals_are_strictly_increasing_and_in_range() {
        let times = arrival_times(ArrivalProcess::Poisson, 500.0, 4.0, 9);
        for w in times.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(times.iter().all(|&t| (0.0..4.0).contains(&t)));
    }

    #[test]
    fn uniform_process_is_evenly_spaced() {
        let times = arrival_times(ArrivalProcess::Uniform, 10.0, 1.05, 1);
        assert_eq!(times.len(), 10);
        for (i, &t) in times.iter().enumerate() {
            assert!((t - (i + 1) as f64 * 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn process_names_round_trip() {
        for p in [ArrivalProcess::Poisson, ArrivalProcess::Uniform] {
            assert_eq!(ArrivalProcess::parse(p.name()), Some(p));
        }
        assert_eq!(ArrivalProcess::parse("bursty"), None);
    }
}
