//! Overload-resilient serving layer over the gpu-kselect pipelines.
//!
//! A k-NN service that is merely *fast* still falls over when offered
//! load exceeds capacity: queues grow without bound, every request
//! times out, and throughput collapses. This crate adds the classic
//! overload defenses on top of the repository's deterministic
//! pipelines, all advancing on the simulated clock so every overload
//! scenario replays byte-identically:
//!
//! * **Admission control** ([`queue`]) — a bounded queue with
//!   `reject` / `drop-newest` / `drop-oldest` overflow policies and a
//!   typed [`kselect::KnnError::Overloaded`] rejection.
//! * **Deadlines** ([`engine`]) — per-request budgets propagate into
//!   the pipelines as cooperative cancellation (warp-launch gating in
//!   the simulated path, tile-boundary budgets in the streamed path);
//!   a late request stops consuming work instead of finishing late.
//! * **Brownout ladder** ([`breaker`]) — under sustained saturation
//!   the service degrades in named steps (`full-exact` →
//!   `large-tile` → `sampled` → `shed`) and recovers hysteretically.
//! * **Seeded load generation** ([`arrivals`]) — open-loop Poisson
//!   arrivals on the simulated clock, so a 2× overload campaign is a
//!   deterministic, replayable artifact rather than a flaky stress
//!   test.
//!
//! Per-request outcomes (`served-exact`, `served-degraded-*`, `shed`,
//! `deadline-exceeded`, `failed`) flow into the existing
//! [`trace::MetricsRegistry`] and [`trace::EventJournal`], so the
//! `knn-cli report` / `xtask slogate` tooling works on serving
//! journals unchanged.
//!
//! Everything here is simulated-time only: no wall clocks, no
//! threads racing the scheduler. The `xtask lint` wall-clock rule is
//! enforced over this crate's sources to keep it that way.

pub mod arrivals;
pub mod breaker;
pub mod engine;
pub mod queue;

pub use arrivals::{arrival_times, ArrivalProcess};
pub use breaker::{Breaker, BreakerConfig, DegradeStep};
pub use engine::{
    run, run_timelined, DeadlinePhase, Outcome, Request, ServeConfig, ServeSummary, ShedCause,
};
pub use queue::{AdmissionQueue, Admit, QueuePolicy};
