//! Property tests for the serving layer's core promises.
//!
//! Whatever the load, queue policy, deadline pressure, or chaos plan:
//!
//! * **Conservation** — every offered request terminates in exactly
//!   one named outcome, and the outcome counts sum back to the
//!   offered load (no lost requests, no double counting).
//! * **Journal completeness** — the journal holds exactly one record
//!   per offered request, every status drawn from the stable outcome
//!   taxonomy.
//! * **Determinism** — replaying the same config reproduces the
//!   journal byte-identically.

use proptest::prelude::*;
use serve::{ArrivalProcess, QueuePolicy, ServeConfig, ServeSummary};
use trace::{EventJournal, JournalConfig, MetricsRegistry};

const OUTCOMES: [&str; 6] = [
    "served-exact",
    "served-degraded-large-tile",
    "served-degraded-sampled",
    "shed",
    "deadline-exceeded",
    "failed",
];

/// Small-but-adversarial configs: loads from comfortable to 4×
/// saturation, tight to generous deadlines, tiny queues, every
/// overflow policy, and an optional PCIe chaos plan.
fn configs() -> impl Strategy<Value = ServeConfig> {
    (
        (1u64..1024, 0u8..3, 1usize..6),
        (
            1u8..8,  // load in units of 0.5×
            1u8..24, // deadline factor in units of 0.5×
            1usize..6,
            0u8..2, // chaos on/off
        ),
    )
        .prop_map(
            |((seed, policy, capacity), (load_halves, dl_halves, stride, chaos))| ServeConfig {
                n: 128,
                dim: 4,
                k: 8,
                queries_per_request: 32,
                seed,
                duration_s: 0.0,
                process: ArrivalProcess::Poisson,
                rate_hz: None,
                load: f64::from(load_halves) * 0.5,
                deadline_s: None,
                deadline_factor: f64::from(dl_halves) * 0.5,
                capacity,
                policy: match policy {
                    0 => QueuePolicy::Reject,
                    1 => QueuePolicy::DropNewest,
                    _ => QueuePolicy::DropOldest,
                },
                large_tile: 64,
                sample_stride: stride,
                faults: if chaos == 1 {
                    Some(simt::FaultPlan::seeded(seed).with_pcie(0.1, 0.05))
                } else {
                    None
                },
                ..ServeConfig::default()
            },
        )
}

fn run_with_journal(cfg: &ServeConfig) -> (ServeSummary, Vec<trace::QueryRecord>, String) {
    let reg = MetricsRegistry::new();
    let journal = EventJournal::new(JournalConfig::default());
    let summary = serve::run(cfg, &reg, &journal).expect("serve::run");
    let jsonl = journal.to_jsonl();
    (summary, journal.snapshot(), jsonl)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_offered_request_reaches_exactly_one_outcome(cfg in configs()) {
        let (summary, records, _) = run_with_journal(&cfg);
        prop_assert!(summary.offered > 0, "campaign generated no arrivals");
        // Outcome counts conserve the offered load.
        prop_assert_eq!(
            summary.accounted(),
            summary.offered,
            "outcomes {:?} must sum to offered load",
            summary
        );
        prop_assert!(summary.verify().is_ok());
        // The journal holds exactly one record per request, ids dense.
        prop_assert_eq!(records.len() as u64, summary.offered);
        let mut ids: Vec<u64> = records.iter().map(|r| r.query).collect();
        ids.sort_unstable();
        for (expect, got) in ids.iter().enumerate() {
            prop_assert_eq!(*got, expect as u64, "request ids must be dense, no loss");
        }
        // Every status is a named member of the outcome taxonomy, and
        // the per-status journal counts agree with the summary.
        for r in &records {
            prop_assert!(
                OUTCOMES.contains(&r.status.as_str()),
                "unknown outcome status {:?}",
                &r.status
            );
        }
        let count = |s: &str| records.iter().filter(|r| r.status == s).count() as u64;
        prop_assert_eq!(count("served-exact"), summary.served_exact);
        prop_assert_eq!(
            count("served-degraded-large-tile"),
            summary.served_degraded_large_tile
        );
        prop_assert_eq!(count("served-degraded-sampled"), summary.served_degraded_sampled);
        prop_assert_eq!(count("shed"), summary.shed);
        prop_assert_eq!(count("deadline-exceeded"), summary.deadline_exceeded);
        prop_assert_eq!(count("failed"), summary.failed);
    }

    #[test]
    fn same_seed_reproduces_the_journal_byte_identically(cfg in configs()) {
        let (sum_a, _, jsonl_a) = run_with_journal(&cfg);
        let (sum_b, _, jsonl_b) = run_with_journal(&cfg);
        prop_assert_eq!(sum_a.offered, sum_b.offered);
        prop_assert_eq!(jsonl_a, jsonl_b, "same config must replay byte for byte");
    }
}
