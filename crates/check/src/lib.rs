//! # check — correctness tooling for the k-selection workspace
//!
//! The paper's three techniques (Merge Queue, Buffered Search,
//! Hierarchical Partition) are correct only under subtle invariants:
//! level-wise sorted order with decreasing heads, warp-synchronous buffer
//! flushes, bitonic pre/post-conditions, tournament-tree min-consistency.
//! This crate makes those invariants *mechanically checkable* instead of
//! eyeballed from fig5 outputs:
//!
//! * [`audit`] — pure functions that verify each queue/structure
//!   invariant over plain slices and return an actionable
//!   [`audit::AuditError`] naming the level/index/values involved. The
//!   native queues and the simulated GPU kernels call these from tests
//!   and, under the workspace `sanitize` feature, at flush/merge
//!   boundaries.
//! * [`lint`] — a token-level static scanner enforcing the
//!   kernel-authoring rules (no host-side buffer access inside kernels,
//!   no wall-clock time, no `unwrap` in kernel hot paths), with an
//!   allowlist for deliberate exceptions. Run it via `cargo xtask lint`.
//!   The divergence/time-accounting rules formerly approximated here at
//!   the token level are proved path-sensitively by the `analyze` crate
//!   (`cargo xtask analyze`); the lint delegates to it.
//!
//! The third layer of the tooling — the intra-warp race sanitizer —
//! lives in `simt::sanitize` (it must instrument the memory buffers
//! directly); this crate documents and tests the invariants it guards.

pub mod audit;
pub mod lint;
