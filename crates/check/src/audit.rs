//! Queue/structure invariant auditors.
//!
//! Every auditor is a pure function over plain slices so it can run
//! against native queues, simulated lane-local queues (via host-side
//! peeks), and hand-built fault-injection fixtures alike. On violation
//! it returns an [`AuditError`] naming the invariant, the offending
//! level/index, and the values involved — the report a developer needs
//! to locate the bug, not just a boolean.
//!
//! The invariants come straight from the paper (Tang et al., IPDPS
//! 2015):
//!
//! * **Merge Queue** (§III-C, Fig. 1b): levels sized `m, m, 2m, 4m, …`,
//!   each sorted decreasing, heads decreasing top-to-bottom — together
//!   they put the global maximum at position 0.
//! * **Reverse Bitonic Merge** (§III-C, Fig. 2b): precondition — both
//!   halves sorted decreasing; postcondition — the whole run decreasing.
//! * **Buffered Search with Local Sorting** (§III-D): a flushed buffer's
//!   filled prefix is sorted ascending so the smallest candidate is
//!   inserted first.
//! * **Hierarchical Partition** (§III-E): every reduced-level entry is
//!   the minimum of its child group — the tournament-tree
//!   min-consistency that makes Top-Down search exact.

// Negated float comparisons (`!(a >= b)`) are deliberate throughout:
// unlike `a < b`, they flag NaN-poisoned entries as violations too.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

/// One failed invariant check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditError {
    /// Stable kebab-case name of the violated invariant.
    pub invariant: &'static str,
    /// What exactly is wrong: level/index/values.
    pub detail: String,
}

impl core::fmt::Display for AuditError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "invariant '{}' violated: {}",
            self.invariant, self.detail
        )
    }
}

impl std::error::Error for AuditError {}

fn fail(invariant: &'static str, detail: String) -> Result<(), AuditError> {
    Err(AuditError { invariant, detail })
}

/// `vals` must be sorted decreasing (ties allowed). `what` names the
/// structure in the report (e.g. `"merge-queue level 2"`).
pub fn audit_sorted_desc(vals: &[f32], what: &str) -> Result<(), AuditError> {
    for (i, w) in vals.windows(2).enumerate() {
        if !(w[0] >= w[1]) {
            return fail(
                "sorted-decreasing",
                format!(
                    "{what}: position {i} holds {} but position {} holds {}",
                    w[0],
                    i + 1,
                    w[1]
                ),
            );
        }
    }
    Ok(())
}

/// `vals` must be sorted ascending (ties allowed).
pub fn audit_sorted_asc(vals: &[f32], what: &str) -> Result<(), AuditError> {
    for (i, w) in vals.windows(2).enumerate() {
        if !(w[0] <= w[1]) {
            return fail(
                "sorted-ascending",
                format!(
                    "{what}: position {i} holds {} but position {} holds {}",
                    w[0],
                    i + 1,
                    w[1]
                ),
            );
        }
    }
    Ok(())
}

/// The `[start, end)` bounds of each Merge Queue level for capacity `k`
/// and level-0 size `m`: sizes `m, m, 2m, 4m, …`. Errors when `k` is not
/// `m · 2^j` (the shape the paper's balanced merges require).
pub fn merge_level_bounds(k: usize, m: usize) -> Result<Vec<(usize, usize)>, AuditError> {
    let shape_ok = k > 0
        && m > 0
        && m.is_power_of_two()
        && k >= m
        && k.is_multiple_of(m)
        && (k / m).is_power_of_two();
    if !shape_ok {
        return Err(AuditError {
            invariant: "merge-queue-shape",
            detail: format!("capacity k={k} is not m·2^j for level-0 size m={m}"),
        });
    }
    let mut bounds = Vec::new();
    let mut start = 0;
    let mut size = m;
    while start < k {
        bounds.push((start, (start + size).min(k)));
        start += size;
        if bounds.len() >= 2 {
            size *= 2;
        }
    }
    Ok(bounds)
}

/// The full Merge Queue invariant over one queue's distances: valid
/// level shape, every level sorted decreasing, and level heads
/// decreasing top-to-bottom (paper Fig. 1b).
pub fn audit_merge_queue(dist: &[f32], m: usize) -> Result<(), AuditError> {
    let bounds = merge_level_bounds(dist.len(), m)?;
    for (li, &(start, end)) in bounds.iter().enumerate() {
        audit_sorted_desc(&dist[start..end], &format!("merge-queue level {li}")).map_err(|e| {
            AuditError {
                invariant: "merge-queue-level-sorted",
                detail: e.detail,
            }
        })?;
    }
    for (li, w) in bounds.windows(2).enumerate() {
        let (head_a, head_b) = (dist[w[0].0], dist[w[1].0]);
        if !(head_a >= head_b) {
            return fail(
                "merge-queue-heads-decreasing",
                format!(
                    "level {li} head {head_a} is below level {} head {head_b} \
                     (a repair merge is overdue)",
                    li + 1
                ),
            );
        }
    }
    Ok(())
}

/// Precondition of the Reverse Bitonic Merge (paper Fig. 2b): both
/// halves of `dist` sorted decreasing. Length must be a power of two.
pub fn audit_bitonic_merge_pre(dist: &[f32]) -> Result<(), AuditError> {
    let n = dist.len();
    if !n.is_power_of_two() || n < 2 {
        return fail(
            "bitonic-merge-shape",
            format!("reverse merge needs a power-of-two length ≥ 2, got {n}"),
        );
    }
    for (half, range) in [(0, 0..n / 2), (1, n / 2..n)] {
        audit_sorted_desc(&dist[range], &format!("reverse-merge input half {half}")).map_err(
            |e| AuditError {
                invariant: "bitonic-merge-precondition",
                detail: e.detail,
            },
        )?;
    }
    Ok(())
}

/// Postcondition of any descending merge/sort network: the whole run is
/// sorted decreasing.
pub fn audit_bitonic_merge_post(dist: &[f32]) -> Result<(), AuditError> {
    audit_sorted_desc(dist, "merge-network output").map_err(|e| AuditError {
        invariant: "bitonic-merge-postcondition",
        detail: e.detail,
    })
}

/// Buffer-flush ordering under Local Sorting (paper §III-D): the filled
/// prefix `[0, fill)` of one lane's buffer must be ascending so the
/// smallest candidate is inserted first and tightens the queue max for
/// the rest of the drain.
pub fn audit_flush_sorted(buf: &[f32], fill: usize) -> Result<(), AuditError> {
    if fill > buf.len() {
        return fail(
            "flush-fill-level",
            format!("fill level {fill} exceeds buffer capacity {}", buf.len()),
        );
    }
    audit_sorted_asc(&buf[..fill], "local-sorted flush buffer").map_err(|e| AuditError {
        invariant: "flush-order-ascending",
        detail: e.detail,
    })
}

/// Binary max-heap invariant: every parent ≥ its children (NaN parents
/// tolerated, matching the native queue's sentinel semantics).
pub fn audit_heap(dist: &[f32]) -> Result<(), AuditError> {
    for i in 1..dist.len() {
        let p = (i - 1) / 2;
        let parent = dist[p];
        if !(parent >= dist[i]) && !parent.is_nan() {
            return fail(
                "heap-parent-dominates",
                format!(
                    "parent at {p} holds {parent} but child at {i} holds {} \
                     (max-heap property broken)",
                    dist[i]
                ),
            );
        }
    }
    Ok(())
}

/// Hierarchical Partition min-consistency (paper Algorithm 4): reduced
/// `level[i]` must equal the minimum of its child group
/// `below[i·g .. (i+1)·g]`, and the level must have exactly
/// `ceil(|below| / g)` entries.
pub fn audit_hierarchy_level(below: &[f32], level: &[f32], g: usize) -> Result<(), AuditError> {
    if g < 2 {
        return fail(
            "hierarchy-shape",
            format!("group size must be ≥ 2, got {g}"),
        );
    }
    let expect_len = below.len().div_ceil(g);
    if level.len() != expect_len {
        return fail(
            "hierarchy-shape",
            format!(
                "reduced level has {} entries but {} groups of size {g} were expected",
                level.len(),
                expect_len
            ),
        );
    }
    for (i, &v) in level.iter().enumerate() {
        let group = &below[i * g..((i + 1) * g).min(below.len())];
        let min = group.iter().copied().fold(f32::INFINITY, f32::min);
        if v != min {
            return fail(
                "hierarchy-min-consistency",
                format!(
                    "group {i} (children {}..{}) has minimum {min} but the \
                     reduced level records {v}",
                    i * g,
                    ((i + 1) * g).min(below.len())
                ),
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const INF: f32 = f32::INFINITY;

    #[test]
    fn sorted_desc_accepts_ties_and_sentinels() {
        assert!(audit_sorted_desc(&[INF, INF, 3.0, 3.0, 1.0], "q").is_ok());
        assert!(audit_sorted_desc(&[], "q").is_ok());
        let e = audit_sorted_desc(&[3.0, 1.0, 2.0], "lane 5 queue").unwrap_err();
        assert!(e.detail.contains("lane 5 queue"), "{e}");
        assert!(e.detail.contains("position 1"), "{e}");
    }

    #[test]
    fn level_bounds_match_paper_shape() {
        // k = 8m: [0,m) [m,2m) [2m,4m) [4m,8m)
        assert_eq!(
            merge_level_bounds(64, 8).unwrap(),
            vec![(0, 8), (8, 16), (16, 32), (32, 64)]
        );
        assert_eq!(merge_level_bounds(8, 8).unwrap(), vec![(0, 8)]);
        assert_eq!(merge_level_bounds(16, 8).unwrap(), vec![(0, 8), (8, 16)]);
        assert_eq!(
            merge_level_bounds(24, 8).unwrap_err().invariant,
            "merge-queue-shape"
        );
        assert_eq!(
            merge_level_bounds(8, 3).unwrap_err().invariant,
            "merge-queue-shape"
        );
    }

    #[test]
    fn merge_queue_audit_names_the_broken_level() {
        // 7,6 / 5,4 — valid (Fig. 1b example).
        assert!(audit_merge_queue(&[7.0, 6.0, 5.0, 4.0], 2).is_ok());
        // level 1 unsorted
        let e = audit_merge_queue(&[7.0, 6.0, 4.0, 5.0], 2).unwrap_err();
        assert_eq!(e.invariant, "merge-queue-level-sorted");
        assert!(e.detail.contains("level 1"), "{e}");
        // heads out of order: level 0 head 5 < level 1 head 6
        let e = audit_merge_queue(&[5.0, 4.0, 6.0, 3.0], 2).unwrap_err();
        assert_eq!(e.invariant, "merge-queue-heads-decreasing");
        assert!(e.detail.contains("level 0 head 5"), "{e}");
    }

    #[test]
    fn bitonic_pre_post() {
        assert!(audit_bitonic_merge_pre(&[7.0, 5.0, 4.0, 0.0, 6.0, 3.0, 2.0, 1.0]).is_ok());
        let e = audit_bitonic_merge_pre(&[7.0, 5.0, 4.0, 0.0, 3.0, 6.0, 2.0, 1.0]).unwrap_err();
        assert_eq!(e.invariant, "bitonic-merge-precondition");
        assert!(e.detail.contains("half 1"), "{e}");
        assert_eq!(
            audit_bitonic_merge_pre(&[1.0, 2.0, 3.0])
                .unwrap_err()
                .invariant,
            "bitonic-merge-shape"
        );
        assert!(audit_bitonic_merge_post(&[4.0, 3.0, 2.0, 2.0]).is_ok());
        assert!(audit_bitonic_merge_post(&[4.0, 3.0, 3.5]).is_err());
    }

    #[test]
    fn flush_order_checks_only_the_filled_prefix() {
        assert!(audit_flush_sorted(&[1.0, 2.0, 9.0, 0.0], 2).is_ok());
        let e = audit_flush_sorted(&[2.0, 1.0, 9.0, 0.0], 2).unwrap_err();
        assert_eq!(e.invariant, "flush-order-ascending");
        assert_eq!(
            audit_flush_sorted(&[1.0], 5).unwrap_err().invariant,
            "flush-fill-level"
        );
    }

    #[test]
    fn heap_audit_names_parent_and_child() {
        assert!(audit_heap(&[9.0, 7.0, 8.0, 1.0, 6.0]).is_ok());
        assert!(audit_heap(&[INF, INF, 1.0]).is_ok()); // sentinels
        let e = audit_heap(&[9.0, 7.0, 8.0, 7.5, 6.0]).unwrap_err();
        assert_eq!(e.invariant, "heap-parent-dominates");
        assert!(e.detail.contains("parent at 1"), "{e}");
        assert!(e.detail.contains("child at 3"), "{e}");
    }

    #[test]
    fn hierarchy_audit_detects_stale_minimum() {
        let below = [5.0, 3.0, 8.0, 1.0, 2.0];
        assert!(audit_hierarchy_level(&below, &[3.0, 1.0, 2.0], 2).is_ok());
        // group 1's recorded value is not its minimum
        let e = audit_hierarchy_level(&below, &[3.0, 8.0, 2.0], 2).unwrap_err();
        assert_eq!(e.invariant, "hierarchy-min-consistency");
        assert!(e.detail.contains("group 1"), "{e}");
        assert!(e.detail.contains("minimum 1"), "{e}");
        // wrong level length
        assert_eq!(
            audit_hierarchy_level(&below, &[3.0, 1.0], 2)
                .unwrap_err()
                .invariant,
            "hierarchy-shape"
        );
    }
}
