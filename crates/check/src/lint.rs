//! Token-level kernel-authoring lint.
//!
//! Scans the kernel sources (`crates/core/src/gpu/` and
//! `crates/simt/src/`) for violations of the warp-synchronous authoring
//! rules that keep the simulator's cost model honest. The scanner is
//! deliberately token-level — no parser dependency, no macro expansion —
//! because every rule is expressible over a comment/string-stripped
//! token stream, and a tool with zero dependencies can run in any CI
//! container this workspace builds in.
//!
//! A **kernel function** is any `fn` whose signature mentions
//! `&mut WarpCtx` — the execution context through which all simulated
//! cost must flow. `#[cfg(test)] mod tests` blocks are stripped before
//! scanning (test harnesses legitimately peek, unwrap and branch
//! host-side).
//!
//! # Rules
//!
//! | rule | meaning |
//! |------|---------|
//! | `no-host-access` | kernel code must not reach around the costed buffer APIs via host-side accessors (`.peek(`, `.poke(`, `.lane_vec(`, `.as_slice(`, `.as_mut_slice(`) |
//! | `no-wall-clock` | kernel sources must not read host time (`std::time`, `Instant`, `SystemTime`) — simulated time comes from the timing model |
//! | `no-unwrap` | kernel hot paths must not `.unwrap()` / `.expect(` — fail with a diagnostic (`panic!`/`assert!` with context) or handle the case |
//! | `no-unwrap-io` | host-side I/O and parse paths (see [`lint_host_source`], applied to user-facing crates like the CLI) must not `.unwrap()` / `.expect(` anywhere outside tests — user input failures must surface as typed errors and exit codes, not panics |
//! | `no-row-alloc` | host hot paths (see [`lint_row_alloc_source`], applied to `crates/knn/src`) must not materialize distance buffers as `Vec<Vec<f32>>` — a heap allocation per query row; use a flat `knn::block::FlatMatrix` (or a reused scratch slice) instead |
//!
//! The former token-level `charge-divergence` and `loop-head` rules have
//! been superseded by the path-sensitive CFG analyzer in
//! `crates/analyze` (`cargo xtask analyze`), whose `charge-divergence`
//! and `time-charge` rules prove the same properties per execution path
//! instead of per token window. Their identifiers remain valid in the
//! allowlist (see [`ANALYZER_RULES`]) because both tools share it.
//!
//! Deliberate exceptions live in an allowlist file (`lint-allow.txt` at
//! the workspace root): one entry per line, `rule | file-suffix |
//! line-substring | reason`.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// The stable token-rule identifiers, in reporting order.
pub const RULES: [&str; 5] = [
    "no-host-access",
    "no-wall-clock",
    "no-unwrap",
    "no-unwrap-io",
    "no-row-alloc",
];

/// Rule identifiers owned by the CFG analyzer (`crates/analyze`). The
/// allowlist file is shared between `cargo xtask lint` and `cargo xtask
/// analyze`, so entries naming these rules are valid too. Kept as a
/// hardcoded mirror of `analyze::RULES` (checked against it by the
/// xtask) so this crate stays dependency-free.
pub const ANALYZER_RULES: [&str; 4] = [
    "barrier-divergence",
    "shared-alias",
    "time-charge",
    "charge-divergence",
];

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// File the violation is in (workspace-relative when produced by
    /// [`lint_tree`]).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired (one of [`RULES`]).
    pub rule: &'static str,
    /// What to do about it.
    pub message: String,
    /// The offending source line, verbatim (used for allowlist matching
    /// and shown in reports).
    pub line_text: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    > {}",
            self.file,
            self.line,
            self.rule,
            self.message,
            self.line_text.trim()
        )
    }
}

/// One allowlist entry: suppresses violations of `rule` in files whose
/// path ends with `file_suffix`, on lines containing `line_substring`.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    /// Rule to suppress (must be one of [`RULES`]).
    pub rule: String,
    /// Path suffix the entry applies to.
    pub file_suffix: String,
    /// Substring the offending source line must contain.
    pub line_substring: String,
    /// Why the exception is deliberate (documentation only).
    pub reason: String,
}

/// Parse an allowlist file: `rule | file-suffix | line-substring |
/// reason` per line; `#` comments and blank lines ignored. Malformed
/// lines are returned as errors so CI fails loudly instead of silently
/// allowing everything.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.splitn(4, '|').map(str::trim).collect();
        if parts.len() < 4 {
            return Err(format!(
                "allowlist line {}: expected 'rule | file-suffix | line-substring | reason', got '{line}'",
                i + 1
            ));
        }
        if !RULES.contains(&parts[0]) && !ANALYZER_RULES.contains(&parts[0]) {
            return Err(format!(
                "allowlist line {}: unknown rule '{}' (known: {}, {})",
                i + 1,
                parts[0],
                RULES.join(", "),
                ANALYZER_RULES.join(", ")
            ));
        }
        entries.push(AllowEntry {
            rule: parts[0].to_string(),
            file_suffix: parts[1].to_string(),
            line_substring: parts[2].to_string(),
            reason: parts[3].to_string(),
        });
    }
    Ok(entries)
}

/// Whether `v` is covered by an allowlist entry.
pub fn is_allowed(v: &Violation, allow: &[AllowEntry]) -> bool {
    allow.iter().any(|a| {
        a.rule == v.rule
            && v.file.ends_with(&a.file_suffix)
            && v.line_text.contains(&a.line_substring)
    })
}

/// Outcome of a lint run over a source tree.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations not covered by the allowlist.
    pub violations: Vec<Violation>,
    /// Violations suppressed by allowlist entries.
    pub suppressed: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Lint every `.rs` file under `roots` (recursively) with the kernel
/// rules, filtering through `allow`. File labels in the report are the
/// paths as given + the relative walk below them.
pub fn lint_tree(roots: &[&Path], allow: &[AllowEntry]) -> io::Result<LintReport> {
    lint_tree_with(roots, allow, lint_source)
}

/// [`lint_tree`], but applying the host-path rules
/// ([`lint_host_source`]) instead of the kernel rules.
pub fn lint_host_tree(roots: &[&Path], allow: &[AllowEntry]) -> io::Result<LintReport> {
    lint_tree_with(roots, allow, lint_host_source)
}

/// [`lint_tree`], but applying the hot-path allocation rule
/// ([`lint_row_alloc_source`]) instead of the kernel rules.
pub fn lint_row_alloc_tree(roots: &[&Path], allow: &[AllowEntry]) -> io::Result<LintReport> {
    lint_tree_with(roots, allow, lint_row_alloc_source)
}

fn lint_tree_with(
    roots: &[&Path],
    allow: &[AllowEntry],
    lint: fn(&str, &str) -> Vec<Violation>,
) -> io::Result<LintReport> {
    let mut report = LintReport::default();
    for root in roots {
        let mut files = Vec::new();
        collect_rs_files(root, &mut files)?;
        files.sort();
        for f in files {
            let src = fs::read_to_string(&f)?;
            report.files_scanned += 1;
            for v in lint(&f.display().to_string(), &src) {
                if is_allowed(&v, allow) {
                    report.suppressed.push(v);
                } else {
                    report.violations.push(v);
                }
            }
        }
    }
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    if dir.is_file() {
        if dir.extension().is_some_and(|e| e == "rs") {
            out.push(dir.to_path_buf());
        }
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint one source file's text. Pure — the unit the fault-injection
/// tests drive with seeded-violation snippets.
pub fn lint_source(file: &str, src: &str) -> Vec<Violation> {
    let masked = strip_test_modules(&mask_comments_and_strings(src));
    let lines: Vec<&str> = src.lines().collect();
    let line_of = |offset: usize| -> usize { masked[..offset].matches('\n').count() + 1 };
    let text_of = |line: usize| -> String {
        lines
            .get(line - 1)
            .map(|s| s.to_string())
            .unwrap_or_default()
    };
    let mut out = Vec::new();

    // no-wall-clock applies file-wide (a helper reading host time skews
    // the model even outside kernel fns).
    for token in ["std::time", "Instant", "SystemTime"] {
        for off in find_all(&masked, token) {
            let line = line_of(off);
            out.push(Violation {
                file: file.to_string(),
                line,
                rule: "no-wall-clock",
                message: format!(
                    "'{token}' reads host wall-clock time; simulated kernels must \
                     derive time from the analytic TimingModel only"
                ),
                line_text: text_of(line),
            });
        }
    }

    // The remaining rules apply to kernel fn bodies.
    for kf in kernel_fns(&masked) {
        let body = &masked[kf.body_start..kf.body_end];
        let body_off = kf.body_start;

        // no-host-access
        for token in [
            ".peek(",
            ".poke(",
            ".lane_vec(",
            ".as_slice(",
            ".as_mut_slice(",
        ] {
            for off in find_all(body, token) {
                let line = line_of(body_off + off);
                out.push(Violation {
                    file: file.to_string(),
                    line,
                    rule: "no-host-access",
                    message: format!(
                        "kernel fn '{}' uses host-side accessor '{token}' which bypasses \
                         the costed GlobalBuf/LaneLocal/SharedBuf APIs; route the access \
                         through ctx-charging reads/writes or move it to a non-kernel helper",
                        kf.name
                    ),
                    line_text: text_of(line),
                });
            }
        }

        // no-unwrap
        for token in [".unwrap()", ".expect("] {
            for off in find_all(body, token) {
                let line = line_of(body_off + off);
                out.push(Violation {
                    file: file.to_string(),
                    line,
                    rule: "no-unwrap",
                    message: format!(
                        "kernel fn '{}' calls '{token}' in a hot path; handle the case or \
                         fail with a contextual assert/panic message",
                        kf.name
                    ),
                    line_text: text_of(line),
                });
            }
        }

        // Divergence/time accounting (the former token-level
        // `charge-divergence` and `loop-head` rules) is now proved
        // path-sensitively by the CFG analyzer — see `crates/analyze`.
    }

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Lint one *host-side* source file: in user-facing crates every
/// `.unwrap()` / `.expect(` outside `#[cfg(test)]` modules is a
/// `no-unwrap-io` violation — file loads, argument parsing and
/// serialization must turn failures into typed errors and exit codes,
/// never panics. Pure, like [`lint_source`].
pub fn lint_host_source(file: &str, src: &str) -> Vec<Violation> {
    let masked = strip_test_modules(&mask_comments_and_strings(src));
    let lines: Vec<&str> = src.lines().collect();
    let line_of = |offset: usize| -> usize { masked[..offset].matches('\n').count() + 1 };
    let text_of = |line: usize| -> String {
        lines
            .get(line - 1)
            .map(|s| s.to_string())
            .unwrap_or_default()
    };
    let mut out = Vec::new();
    for token in [".unwrap()", ".expect("] {
        for off in find_all(&masked, token) {
            let line = line_of(off);
            out.push(Violation {
                file: file.to_string(),
                line,
                rule: "no-unwrap-io",
                message: format!(
                    "'{token}' on a host I/O/parse path panics on bad user input; \
                     return a typed error (KnnError / io::Error) and a nonzero exit \
                     code instead"
                ),
                line_text: text_of(line),
            });
        }
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Lint one *hot-path* source file for per-row distance-buffer
/// allocations: any `Vec<Vec<f32>>` outside `#[cfg(test)]` modules is a
/// `no-row-alloc` violation. A heap allocation per query row defeats
/// the blocked distance kernel's cache tiling and shows up directly in
/// wall-clock QPS; hot paths must use a flat row-major buffer
/// (`knn::block::FlatMatrix`) or a reused scratch slice instead.
/// Legacy compatibility wrappers are allowlisted, not exempted in code.
/// Pure, like [`lint_source`].
pub fn lint_row_alloc_source(file: &str, src: &str) -> Vec<Violation> {
    let masked = strip_test_modules(&mask_comments_and_strings(src));
    let lines: Vec<&str> = src.lines().collect();
    let line_of = |offset: usize| -> usize { masked[..offset].matches('\n').count() + 1 };
    let text_of = |line: usize| -> String {
        lines
            .get(line - 1)
            .map(|s| s.to_string())
            .unwrap_or_default()
    };
    let mut out = Vec::new();
    for off in find_all(&masked, "Vec<Vec<f32>>") {
        let line = line_of(off);
        out.push(Violation {
            file: file.to_string(),
            line,
            rule: "no-row-alloc",
            message: "'Vec<Vec<f32>>' materializes a distance buffer as one heap \
                      allocation per query row; use a flat row-major buffer \
                      (knn::block::FlatMatrix) or a reused scratch slice in hot paths"
                .to_string(),
            line_text: text_of(line),
        });
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

struct KernelFn {
    name: String,
    body_start: usize,
    body_end: usize,
}

/// Locate `fn`s whose signature (from `fn` to the opening brace)
/// mentions `&mut WarpCtx`.
fn kernel_fns(masked: &str) -> Vec<KernelFn> {
    let mut out = Vec::new();
    for off in find_all(masked, "fn ") {
        // `fn` must be token-initial (not e.g. `lanes_from_fn `).
        if off > 0 {
            let prev = masked.as_bytes()[off - 1];
            if prev.is_ascii_alphanumeric() || prev == b'_' {
                continue;
            }
        }
        let Some(brace_rel) = masked[off..].find('{') else {
            continue;
        };
        let sig = &masked[off..off + brace_rel];
        // A `;` before the brace means this was a prototype/different item.
        if sig.contains(';') || !sig.contains("&mut WarpCtx") {
            continue;
        }
        let name = sig[3..]
            .split(['(', '<'])
            .next()
            .unwrap_or("?")
            .trim()
            .to_string();
        let body_start = off + brace_rel;
        let Some(body_end) = match_brace(masked, body_start) else {
            continue;
        };
        out.push(KernelFn {
            name,
            body_start,
            body_end,
        });
    }
    out
}

/// Byte offsets of every occurrence of `needle` in `hay`.
fn find_all(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(p) = hay[start..].find(needle) {
        out.push(start + p);
        start += p + needle.len();
    }
    out
}

/// Offset one past the `}` matching the `{` at `open` (which must point
/// at a `{`). Returns `None` on unbalanced input.
fn match_brace(text: &str, open: usize) -> Option<usize> {
    let bytes = text.as_bytes();
    debug_assert_eq!(bytes[open], b'{');
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// Replace comments and string/char literals with spaces, preserving
/// newlines so line numbers survive. Handles `//`, `/* */` (nested),
/// `"…"` with escapes, raw strings `r"…"`/`r#"…"#`, and char literals
/// (without confusing lifetimes like `&'static`).
fn mask_comments_and_strings(src: &str) -> String {
    let b = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut i = 0;
    let blank = |c: u8| if c == b'\n' { b'\n' } else { b' ' };
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1;
                out.push(b' ');
                out.push(b' ');
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                    } else {
                        out.push(blank(b[i]));
                        i += 1;
                    }
                }
            }
            b'r' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                // Raw string r"…" / r#"…"# / r##"…"## …
                let mut j = i + 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    out.extend(std::iter::repeat_n(b' ', j + 1 - i));
                    i = j + 1;
                    // find closing "###…
                    'raw: while i < b.len() {
                        if b[i] == b'"' {
                            let mut h = 0;
                            while i + 1 + h < b.len() && b[i + 1 + h] == b'#' && h < hashes {
                                h += 1;
                            }
                            if h == hashes {
                                out.extend(std::iter::repeat_n(b' ', 1 + hashes));
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        out.push(blank(b[i]));
                        i += 1;
                    }
                } else {
                    out.push(b[i]);
                    i += 1;
                }
            }
            b'"' => {
                out.push(b' ');
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        out.push(b' ');
                        out.push(blank(b[i + 1]));
                        i += 2;
                    } else if b[i] == b'"' {
                        out.push(b' ');
                        i += 1;
                        break;
                    } else {
                        out.push(blank(b[i]));
                        i += 1;
                    }
                }
            }
            b'\'' => {
                // Char literal vs lifetime: '\x' or 'c' followed by a
                // closing quote is a literal; otherwise a lifetime.
                let is_char = (i + 2 < b.len() && b[i + 1] == b'\\')
                    || (i + 2 < b.len() && b[i + 2] == b'\'');
                if is_char {
                    out.push(b' ');
                    i += 1;
                    if i < b.len() && b[i] == b'\\' {
                        out.push(b' ');
                        out.push(b' ');
                        i += 2;
                    } else {
                        out.push(b' ');
                        i += 1;
                    }
                    if i < b.len() && b[i] == b'\'' {
                        out.push(b' ');
                        i += 1;
                    }
                } else {
                    out.push(b[i]);
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8(out).unwrap_or_default()
}

/// Blank out `#[cfg(test)] mod … { … }` blocks (newlines preserved).
fn strip_test_modules(masked: &str) -> String {
    let mut out = masked.to_string();
    for off in find_all(masked, "#[cfg(test)]") {
        // Next `mod` after the attribute (possibly with more attributes
        // or whitespace between).
        let Some(mod_rel) = masked[off..].find("mod ") else {
            continue;
        };
        let Some(brace_rel) = masked[off + mod_rel..].find('{') else {
            continue;
        };
        let brace = off + mod_rel + brace_rel;
        if let Some(end) = match_brace(masked, brace) {
            // SAFETY of slicing: all offsets are on byte boundaries of
            // ASCII structural chars.
            let blanked: String = masked[off..end]
                .chars()
                .map(|c| if c == '\n' { '\n' } else { ' ' })
                .collect();
            out.replace_range(off..end, &blanked);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_preserves_lines_and_hides_strings() {
        let src = "let a = \"std::time\"; // Instant\nlet b = 1;\n";
        let m = mask_comments_and_strings(src);
        assert_eq!(m.matches('\n').count(), src.matches('\n').count());
        assert!(!m.contains("std::time"));
        assert!(!m.contains("Instant"));
        assert!(m.contains("let b = 1;"));
    }

    #[test]
    fn lifetimes_survive_masking() {
        let src = "fn f<'a>(x: &'a str, c: char) { let y = 'z'; }";
        let m = mask_comments_and_strings(src);
        assert!(m.contains("&'a str"), "{m}");
        assert!(!m.contains('z'), "{m}");
    }

    #[test]
    fn test_modules_are_stripped() {
        let src = "fn live(ctx: &mut WarpCtx) { }\n#[cfg(test)]\nmod tests {\n    fn t(ctx: &mut WarpCtx) { x.unwrap() }\n}\n";
        let v = lint_source("f.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn kernel_fn_detection_requires_warpctx() {
        let src = "fn host(a: usize) { b.unwrap() }\nfn kern(ctx: &mut WarpCtx) { b.unwrap() }\n";
        let v = lint_source("f.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-unwrap");
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("'kern'"));
    }

    #[test]
    fn wall_clock_flagged_anywhere() {
        let src = "use std::time::Instant;\nfn host() { let t = Instant::now(); }\n";
        let v = lint_source("f.rs", src);
        assert!(v.iter().any(|v| v.rule == "no-wall-clock" && v.line == 1));
        assert!(v.iter().any(|v| v.rule == "no-wall-clock" && v.line == 2));
    }

    #[test]
    fn divergence_rules_are_delegated_to_the_analyzer() {
        // The old token-level loop-head / charge-divergence heuristics
        // are gone: uncharged divergent control flow no longer trips the
        // token lint (the CFG analyzer owns those proofs now), but the
        // rule ids survive in the allowlist vocabulary.
        let bad = "fn kern(ctx: &mut WarpCtx) {\n    while live.any_lane() {\n        step();\n    }\n}\n";
        assert!(lint_source("f.rs", bad).is_empty());
        assert!(ANALYZER_RULES.contains(&"time-charge"));
        assert!(ANALYZER_RULES.contains(&"charge-divergence"));
        assert!(!RULES.contains(&"loop-head"));
        assert!(!RULES.contains(&"charge-divergence"));
    }

    #[test]
    fn host_accessors_flagged_in_kernels_only() {
        let bad = "fn kern(ctx: &mut WarpCtx) {\n    let v = buf.peek(3, 0);\n}\n";
        let v = lint_source("f.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "no-host-access");
        assert!(v[0].message.contains(".peek("));
        let host = "fn extract(buf: &LaneLocal<f32>) -> f32 { buf.peek(3, 0) }\n";
        assert!(lint_source("f.rs", host).is_empty());
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let src = "fn kern(ctx: &mut WarpCtx) { let m = it.max().unwrap_or(0); }\n";
        assert!(lint_source("f.rs", src).is_empty());
    }

    #[test]
    fn host_lint_flags_every_unwrap_outside_tests() {
        let src = "fn load(p: &Path) -> Vec<u8> {\n    std::fs::read(p).unwrap()\n}\nfn parse(s: &str) -> usize {\n    s.parse().expect(\"number\")\n}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let v = lint_host_source("cli/src/io.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == "no-unwrap-io"));
        assert_eq!(v[0].line, 2);
        assert_eq!(v[1].line, 5);
        // unlike the kernel rule, no WarpCtx signature is required
        assert!(lint_source("cli/src/io.rs", src).is_empty());
        // unwrap_or / unwrap_or_else / unwrap_or_default are handling, not panicking
        let ok = "fn f() { let v = it.next().unwrap_or(0); let w = g().unwrap_or_else(h); }\n";
        assert!(lint_host_source("f.rs", ok).is_empty());
    }

    #[test]
    fn row_alloc_flagged_outside_tests() {
        let src = "pub fn distances(q: &PointSet, r: &PointSet) -> Vec<Vec<f32>> {\n    todo()\n}\n#[cfg(test)]\nmod tests {\n    fn rows() -> Vec<Vec<f32>> { vec![] }\n}\n";
        let v = lint_row_alloc_source("knn/src/d.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "no-row-alloc");
        assert_eq!(v[0].line, 1);
        assert!(v[0].message.contains("FlatMatrix"));
        // flat buffers and borrowed rows are fine
        let ok = "pub fn distances(q: &PointSet) -> FlatMatrix { todo() }\nfn select(rows: &[Vec<f32>], k: usize) {}\n";
        assert!(lint_row_alloc_source("knn/src/d.rs", ok).is_empty());
        // mentions inside comments and strings are masked out
        let doc =
            "/// Returns what used to be a Vec<Vec<f32>>.\nfn f() { let s = \"Vec<Vec<f32>>\"; }\n";
        assert!(lint_row_alloc_source("knn/src/d.rs", doc).is_empty());
    }

    #[test]
    fn allowlist_roundtrip() {
        // Analyzer-owned rules are valid allowlist vocabulary too: the
        // file is shared between `xtask lint` and `xtask analyze`.
        let text = "# comment\n\ntime-charge | gpu/queues.rs | while next < k | uniform cascade\n";
        let allow = parse_allowlist(text).unwrap();
        assert_eq!(allow.len(), 1);
        let v = Violation {
            file: "crates/core/src/gpu/queues.rs".into(),
            line: 1,
            rule: "time-charge",
            message: String::new(),
            line_text: "        while next < k && live.any_lane() {".into(),
        };
        assert!(is_allowed(&v, &allow));
        let other = Violation {
            rule: "no-unwrap",
            ..v.clone()
        };
        assert!(!is_allowed(&other, &allow));
        assert!(parse_allowlist("bogus-rule | a | b | c").is_err());
        assert!(parse_allowlist("loop-head | a | b | c").is_err());
        assert!(parse_allowlist("time-charge | missing-fields").is_err());
    }
}
