//! End-to-end lint fault-injection: one fixture kernel seeding every
//! kernel authoring-rule violation at once must trip all of them (and a
//! host fixture the host-path rule), each with an actionable message
//! naming the rule and the kernel, and the checked-in workspace
//! allowlist must stay well-formed.

use check::lint::{
    is_allowed, lint_host_source, lint_row_alloc_source, lint_source, parse_allowlist, RULES,
};

const SEEDED: &str = r#"
use std::time::Instant;

fn kernel(ctx: &mut WarpCtx, buf: &GlobalBuf<f32>) {
    let t = Instant::now();
    let v = buf.peek(0, 0);
    let x = opt.unwrap();
}
"#;

#[test]
fn all_kernel_rules_fire_on_seeded_kernel() {
    let violations = lint_source("fixture.rs", SEEDED);
    let fired: Vec<&str> = violations.iter().map(|v| v.rule).collect();
    // The host-path rules (no-unwrap-io, no-row-alloc) have their own
    // scanners and fixtures below.
    for rule in RULES
        .iter()
        .filter(|r| **r != "no-unwrap-io" && **r != "no-row-alloc")
    {
        assert!(fired.contains(rule), "rule {rule} missed; fired: {fired:?}");
    }
    for v in &violations {
        let msg = v.to_string();
        assert!(msg.contains(v.rule), "{msg}");
        assert!(msg.contains("fixture.rs"), "{msg}");
    }
    // The kernel-body rules name the offending fn.
    assert!(violations
        .iter()
        .filter(|v| v.rule != "no-wall-clock")
        .all(|v| v.message.contains("'kernel'")));
}

#[test]
fn host_rule_fires_on_seeded_host_code() {
    let seeded = "fn load(p: &Path) -> String {\n    std::fs::read_to_string(p).unwrap()\n}\n";
    let violations = lint_host_source("host.rs", seeded);
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].rule, "no-unwrap-io");
    assert_eq!(violations[0].line, 2);
    // ...and only on host scans: the kernel rules ignore host fns.
    assert!(lint_source("host.rs", seeded).is_empty());
}

#[test]
fn row_alloc_rule_fires_on_seeded_hot_path() {
    let seeded = "pub fn distances(q: &PointSet, r: &PointSet) -> Vec<Vec<f32>> {\n    todo()\n}\n";
    let violations = lint_row_alloc_source("knn/src/hot.rs", seeded);
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].rule, "no-row-alloc");
    assert_eq!(violations[0].line, 1);
    // ...and only on hot-path scans: the kernel and host rules ignore it.
    assert!(lint_source("knn/src/hot.rs", seeded).is_empty());
    assert!(lint_host_source("knn/src/hot.rs", seeded).is_empty());
}

#[test]
fn allowlist_suppresses_only_the_named_line() {
    let allow =
        parse_allowlist("no-unwrap | fixture.rs | opt.unwrap() | fixture exception\n").unwrap();
    let violations = lint_source("fixture.rs", SEEDED);
    let (suppressed, kept): (Vec<_>, Vec<_>) =
        violations.into_iter().partition(|v| is_allowed(v, &allow));
    assert_eq!(suppressed.len(), 1);
    assert_eq!(suppressed[0].rule, "no-unwrap");
    assert!(kept.iter().all(|v| v.rule != "no-unwrap"));
    assert!(!kept.is_empty());
}

#[test]
fn repo_allowlist_stays_well_formed() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../lint-allow.txt");
    let text = std::fs::read_to_string(path).expect("lint-allow.txt at workspace root");
    let entries = parse_allowlist(&text).expect("allowlist must parse");
    assert_eq!(entries.len(), 5, "update this test when adding entries");
    assert!(entries.iter().all(|e| !e.reason.is_empty()));
}
