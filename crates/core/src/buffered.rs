//! **Buffered Search** (paper §III-D, Algorithm 3) — native semantic model.
//!
//! On the GPU, buffering exists to raise SIMT efficiency: candidates are
//! staged in a small buffer and the expensive queue insertions happen for
//! the whole warp together. The *semantics*, however, are
//! architecture-independent and captured here: an element is buffered when
//! it beats the queue maximum at scan time, and re-checked against the
//! (possibly tighter) maximum when the buffer is flushed.
//!
//! Correctness argument: the queue maximum is monotonically non-increasing
//! and always ≥ the k-th smallest of the elements seen so far; an element
//! `d ≥ max` therefore already has k smaller elements before it and can
//! never be in the final answer, so skipping it is safe. Elements that are
//! buffered are eventually offered, so nothing eligible is lost. The
//! property tests pin this down.
//!
//! **Local Sort**: sorting the buffer ascending before flushing inserts
//! the smallest candidate first, tightening the queue maximum so that the
//! remaining buffered elements are often rejected by the cheap re-check
//! instead of paying a full insertion — the effect the paper measures as
//! "full+sorted" in Fig. 6.

use serde::{Deserialize, Serialize};

use crate::queues::KQueue;
use crate::types::Neighbor;

/// Configuration for Buffered Search.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BufferConfig {
    /// Buffer capacity per query (the paper's `bsize`).
    pub size: usize,
    /// Sort the buffer ascending before flushing ("Local Sort").
    pub sorted: bool,
    /// GPU-only knob: flush all lanes of the warp when *any* lane's buffer
    /// fills (intra-warp communication) instead of each lane flushing its
    /// own. No semantic effect natively; the simulated kernels use it.
    pub intra_warp: bool,
}

impl Default for BufferConfig {
    fn default() -> Self {
        BufferConfig {
            size: 16,
            sorted: true,
            intra_warp: true,
        }
    }
}

/// Statistics from a buffered run, used by tests and the harness to show
/// the local-sort rejection effect.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Elements that entered the buffer.
    pub buffered: u64,
    /// Buffer flushes performed.
    pub flushes: u64,
    /// Buffered elements rejected by the flush-time re-check (saved a
    /// full insertion).
    pub recheck_rejects: u64,
}

/// Run k-selection over `dists` with buffering in front of `queue`.
pub fn buffered_select_into<Q: KQueue>(
    queue: &mut Q,
    dists: &[f32],
    cfg: &BufferConfig,
) -> BufferStats {
    assert!(cfg.size > 0, "buffer size must be positive");
    let mut stats = BufferStats::default();
    let mut buf: Vec<Neighbor> = Vec::with_capacity(cfg.size);
    for (id, &d) in dists.iter().enumerate() {
        if d < queue.max() {
            buf.push(Neighbor::new(d, id as u32));
            stats.buffered += 1;
            if buf.len() == cfg.size {
                flush(queue, &mut buf, cfg, &mut stats);
            }
        }
    }
    if !buf.is_empty() {
        flush(queue, &mut buf, cfg, &mut stats);
    }
    stats
}

fn flush<Q: KQueue>(
    queue: &mut Q,
    buf: &mut Vec<Neighbor>,
    cfg: &BufferConfig,
    stats: &mut BufferStats,
) {
    if cfg.sorted {
        // Ascending: smallest first tightens the max earliest.
        buf.sort_by(|a, b| a.dist.partial_cmp(&b.dist).unwrap());
    }
    for n in buf.drain(..) {
        if n.dist < queue.max() {
            queue.offer(n.dist, n.id);
        } else {
            stats.recheck_rejects += 1;
        }
    }
    stats.flushes += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queues::{select_into, HeapQueue, InsertionQueue, MergeQueue};
    use rand::{Rng, SeedableRng};

    fn data(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn buffered_equals_direct_for_all_queues_and_sizes() {
        let dists = data(5000, 41);
        for k in [8usize, 64] {
            for size in [1usize, 4, 16, 128] {
                for sorted in [false, true] {
                    let cfg = BufferConfig {
                        size,
                        sorted,
                        intra_warp: true,
                    };
                    // insertion
                    let mut direct = InsertionQueue::new(k);
                    select_into(&mut direct, &dists);
                    let mut buffered = InsertionQueue::new(k);
                    buffered_select_into(&mut buffered, &dists, &cfg);
                    assert_eq!(
                        direct
                            .into_sorted()
                            .iter()
                            .map(|n| n.dist)
                            .collect::<Vec<_>>(),
                        buffered
                            .into_sorted()
                            .iter()
                            .map(|n| n.dist)
                            .collect::<Vec<_>>(),
                        "insertion k={k} size={size} sorted={sorted}"
                    );
                    // heap
                    let mut direct = HeapQueue::new(k);
                    select_into(&mut direct, &dists);
                    let mut buffered = HeapQueue::new(k);
                    buffered_select_into(&mut buffered, &dists, &cfg);
                    assert_eq!(
                        direct
                            .into_sorted()
                            .iter()
                            .map(|n| n.dist)
                            .collect::<Vec<_>>(),
                        buffered
                            .into_sorted()
                            .iter()
                            .map(|n| n.dist)
                            .collect::<Vec<_>>(),
                        "heap k={k} size={size} sorted={sorted}"
                    );
                    // merge
                    let mut direct = MergeQueue::new(k, 8);
                    select_into(&mut direct, &dists);
                    let mut buffered = MergeQueue::new(k, 8);
                    buffered_select_into(&mut buffered, &dists, &cfg);
                    assert_eq!(
                        direct
                            .into_sorted()
                            .iter()
                            .map(|n| n.dist)
                            .collect::<Vec<_>>(),
                        buffered
                            .into_sorted()
                            .iter()
                            .map(|n| n.dist)
                            .collect::<Vec<_>>(),
                        "merge k={k} size={size} sorted={sorted}"
                    );
                }
            }
        }
    }

    #[test]
    fn local_sort_increases_recheck_rejects() {
        // The whole point of Local Sort: with the buffer sorted ascending,
        // more buffered elements get rejected by the cheap re-check.
        let dists = data(20000, 42);
        let k = 64;
        let mut q1 = InsertionQueue::new(k);
        let unsorted = buffered_select_into(
            &mut q1,
            &dists,
            &BufferConfig {
                size: 32,
                sorted: false,
                intra_warp: true,
            },
        );
        let mut q2 = InsertionQueue::new(k);
        let sorted = buffered_select_into(
            &mut q2,
            &dists,
            &BufferConfig {
                size: 32,
                sorted: true,
                intra_warp: true,
            },
        );
        assert!(
            sorted.recheck_rejects >= unsorted.recheck_rejects,
            "sorted {} vs unsorted {}",
            sorted.recheck_rejects,
            unsorted.recheck_rejects
        );
        assert!(sorted.recheck_rejects > 0);
    }

    #[test]
    fn final_partial_flush_preserved() {
        // Fewer candidates than the buffer size: everything must still
        // reach the queue via the final flush.
        let mut q = InsertionQueue::new(4);
        let stats = buffered_select_into(
            &mut q,
            &[0.3, 0.1, 0.2],
            &BufferConfig {
                size: 64,
                sorted: true,
                intra_warp: true,
            },
        );
        assert_eq!(stats.flushes, 1);
        assert_eq!(
            q.into_sorted().iter().map(|n| n.dist).collect::<Vec<_>>(),
            vec![0.1, 0.2, 0.3]
        );
    }

    #[test]
    fn buffer_size_one_degenerates_to_direct() {
        let dists = data(1000, 43);
        let mut q = HeapQueue::new(16);
        let stats = buffered_select_into(
            &mut q,
            &dists,
            &BufferConfig {
                size: 1,
                sorted: true,
                intra_warp: false,
            },
        );
        assert_eq!(stats.buffered, stats.flushes);
    }
}
