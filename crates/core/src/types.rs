//! Common types for k-selection.

use serde::{Deserialize, Serialize};

/// Sentinel distance used to pre-fill queues: larger than any real
/// distance, so the first `k` candidates always displace sentinels.
pub const INF: f32 = f32::INFINITY;

/// Sentinel id paired with [`INF`] slots.
pub const NO_ID: u32 = u32::MAX;

/// One k-NN result entry: a distance and the reference index it belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Neighbor {
    /// Distance between the query and reference `id`.
    pub dist: f32,
    /// Index of the reference item.
    pub id: u32,
}

impl Neighbor {
    /// Construct a neighbor entry.
    pub fn new(dist: f32, id: u32) -> Self {
        Neighbor { dist, id }
    }

    /// The sentinel entry queues are pre-filled with.
    pub fn sentinel() -> Self {
        Neighbor {
            dist: INF,
            id: NO_ID,
        }
    }

    /// True for sentinel (never-written) slots.
    pub fn is_sentinel(&self) -> bool {
        self.dist.is_infinite() && self.id == NO_ID
    }
}

/// Sort a slice of neighbors ascending by distance (ties by id, for
/// deterministic comparisons in tests).
pub fn sort_neighbors(ns: &mut [Neighbor]) {
    ns.sort_by(|a, b| {
        a.dist
            .partial_cmp(&b.dist)
            .unwrap_or(core::cmp::Ordering::Equal)
            .then(a.id.cmp(&b.id))
    });
}

/// Which queue structure maintains the running k best candidates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueueKind {
    /// Fully-sorted insertion queue: O(k) per insert, very regular.
    Insertion,
    /// Binary max-heap: O(log k) per insert, irregular tree walks.
    Heap,
    /// The paper's Merge Queue: lazily-merged sorted levels,
    /// amortised O(log² k) per insert, regular bitonic-merge repairs.
    Merge,
}

impl QueueKind {
    /// All three kinds, in the paper's presentation order.
    pub const ALL: [QueueKind; 3] = [QueueKind::Insertion, QueueKind::Heap, QueueKind::Merge];

    /// Human-readable name matching the paper's terminology.
    pub fn name(&self) -> &'static str {
        match self {
            QueueKind::Insertion => "Insertion Queue",
            QueueKind::Heap => "Heap Queue",
            QueueKind::Merge => "Merge Queue",
        }
    }
}

impl core::fmt::Display for QueueKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinel_detection() {
        assert!(Neighbor::sentinel().is_sentinel());
        assert!(!Neighbor::new(0.5, 3).is_sentinel());
        // An INF distance with a real id is not a sentinel (it was written).
        assert!(!Neighbor::new(INF, 3).is_sentinel());
    }

    #[test]
    fn sorting_is_stable_on_ties() {
        let mut v = vec![
            Neighbor::new(2.0, 7),
            Neighbor::new(1.0, 9),
            Neighbor::new(2.0, 3),
        ];
        sort_neighbors(&mut v);
        assert_eq!(v[0].id, 9);
        assert_eq!(v[1].id, 3); // tie broken by id
        assert_eq!(v[2].id, 7);
    }

    #[test]
    fn queue_kind_names() {
        assert_eq!(QueueKind::Merge.to_string(), "Merge Queue");
        assert_eq!(QueueKind::ALL.len(), 3);
    }
}
