//! Bitonic sorting networks, including the paper's **Reverse Bitonic
//! Merge** (Fig. 2b).
//!
//! The Merge Queue repairs its invariant by merging two runs that are both
//! sorted in the *same* (decreasing) order — something the classic bitonic
//! merge does not support (it needs opposite orders). The paper's fix is to
//! cross-compare the first stage (element `i` against element `n-1-i`) and
//! then run the ordinary halving stages. This module provides:
//!
//! * in-place network executors over `(dist, id)` pairs, used by the native
//!   queues; and
//! * **comparator schedules** — the explicit `(i, j)` pair sequence of each
//!   network — shared with the simulated GPU kernels so that the native and
//!   simulated code provably execute the same network.
//!
//! All comparators here use the convention *"ensure `v[a] ≥ v[b]`"* (the
//! networks produce descending order, matching the Merge Queue's levels).

/// A compare-exchange pair `(a, b)`: after execution `v[a] >= v[b]`.
pub type Comparator = (usize, usize);

/// Comparator schedule for the classic bitonic merge of a bitonic sequence
/// of length `n` (power of two) into **descending** order.
///
/// `log2(n)` stages of `n/2` comparators each.
pub fn bitonic_merge_schedule(n: usize) -> Vec<Comparator> {
    assert!(
        n.is_power_of_two(),
        "bitonic merge needs a power-of-two length"
    );
    let mut out = Vec::with_capacity(n / 2 * n.trailing_zeros() as usize);
    let mut stride = n / 2;
    while stride > 0 {
        for block in (0..n).step_by(stride * 2) {
            for i in block..block + stride {
                out.push((i, i + stride));
            }
        }
        stride /= 2;
    }
    out
}

/// Comparator schedule for the paper's **Reverse Bitonic Merge**: merges
/// two adjacent runs `v[0..n/2]` and `v[n/2..n]`, both sorted descending,
/// into one descending run of length `n`.
///
/// Stage 1 cross-compares `v[i]` with `v[n-1-i]` (the dashed box in the
/// paper's Fig. 2b); the remaining stages are two independent classic
/// bitonic merges on the halves.
pub fn reverse_bitonic_merge_schedule(n: usize) -> Vec<Comparator> {
    assert!(
        n.is_power_of_two() && n >= 2,
        "reverse merge needs power-of-two length ≥ 2"
    );
    let half = n / 2;
    let mut out = Vec::with_capacity(half * n.trailing_zeros() as usize);
    for i in 0..half {
        out.push((i, n - 1 - i));
    }
    if half >= 2 {
        out.extend(bitonic_merge_schedule(half));
        out.extend(
            bitonic_merge_schedule(half)
                .into_iter()
                .map(|(a, b)| (a + half, b + half)),
        );
    }
    out
}

/// Comparator schedule for a full bitonic **descending** sort of length `n`
/// (power of two): `O(n log² n)` comparators.
pub fn bitonic_sort_schedule(n: usize) -> Vec<Comparator> {
    bitonic_sort_stages(n).into_iter().flatten().collect()
}

/// The same descending sort network grouped into its parallel **stages**:
/// all comparators within one stage touch disjoint elements and can
/// execute concurrently (how a cooperating thread block runs them).
pub fn bitonic_sort_stages(n: usize) -> Vec<Vec<Comparator>> {
    assert!(
        n.is_power_of_two(),
        "bitonic sort needs a power-of-two length"
    );
    let mut stages = Vec::new();
    let mut k = 2;
    while k <= n {
        let mut j = k / 2;
        while j > 0 {
            let mut stage = Vec::with_capacity(n / 2);
            for i in 0..n {
                let l = i ^ j;
                if l > i {
                    // For a descending sort, blocks with (i & k) == 0 keep
                    // the larger element at the lower index.
                    if i & k == 0 {
                        stage.push((i, l));
                    } else {
                        stage.push((l, i));
                    }
                }
            }
            stages.push(stage);
            j /= 2;
        }
        k *= 2;
    }
    stages
}

/// The classic bitonic merge grouped into parallel stages (descending).
pub fn bitonic_merge_stages(n: usize) -> Vec<Vec<Comparator>> {
    assert!(
        n.is_power_of_two(),
        "bitonic merge needs a power-of-two length"
    );
    let mut stages = Vec::new();
    let mut stride = n / 2;
    while stride > 0 {
        let mut stage = Vec::with_capacity(n / 2);
        for block in (0..n).step_by(stride * 2) {
            for i in block..block + stride {
                stage.push((i, i + stride));
            }
        }
        stages.push(stage);
        stride /= 2;
    }
    stages
}

/// The Reverse Bitonic Merge grouped into parallel stages: the cross
/// stage, then the two half-merges interleaved stage-by-stage (their
/// comparators are disjoint, so corresponding stages fuse).
pub fn reverse_bitonic_merge_stages(n: usize) -> Vec<Vec<Comparator>> {
    assert!(n.is_power_of_two() && n >= 2);
    let half = n / 2;
    let mut stages = vec![(0..half).map(|i| (i, n - 1 - i)).collect::<Vec<_>>()];
    if half >= 2 {
        let lo = bitonic_merge_stages(half);
        for stage in lo {
            let mut fused = stage.clone();
            fused.extend(stage.iter().map(|&(a, b)| (a + half, b + half)));
            stages.push(fused);
        }
    }
    stages
}

/// Execute a comparator schedule in place over parallel `dist`/`id` slices.
/// Each comparator `(a, b)` swaps both arrays when `dist[a] < dist[b]`.
pub fn run_schedule(schedule: &[Comparator], dist: &mut [f32], id: &mut [u32]) {
    assert_eq!(
        dist.len(),
        id.len(),
        "run_schedule needs parallel dist/id slices (ids must track values)"
    );
    for &(a, b) in schedule {
        if dist[a] < dist[b] {
            dist.swap(a, b);
            id.swap(a, b);
        }
    }
}

/// In-place Reverse Bitonic Merge (descending) of two same-length
/// descending runs stored contiguously in `dist`/`id`.
pub fn reverse_bitonic_merge(dist: &mut [f32], id: &mut [u32]) {
    #[cfg(feature = "sanitize")]
    if let Err(e) = check::audit::audit_bitonic_merge_pre(dist) {
        panic!("sanitize audit: reverse_bitonic_merge input: {e}");
    }
    let schedule = reverse_bitonic_merge_schedule(dist.len());
    run_schedule(&schedule, dist, id);
    #[cfg(feature = "sanitize")]
    if let Err(e) = check::audit::audit_bitonic_merge_post(dist) {
        panic!("sanitize audit: reverse_bitonic_merge output: {e}");
    }
}

/// In-place full bitonic sort, descending.
pub fn bitonic_sort_desc(dist: &mut [f32], id: &mut [u32]) {
    let schedule = bitonic_sort_schedule(dist.len());
    run_schedule(&schedule, dist, id);
}

/// Number of comparators in a reverse bitonic merge of length `n` —
/// `(n/2)·log2(n)`, the paper's `(l/2)·log l` cost.
pub fn reverse_merge_cost(n: usize) -> usize {
    (n / 2) * n.trailing_zeros() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_desc(v: &[f32]) -> bool {
        v.windows(2).all(|w| w[0] >= w[1])
    }

    fn ids_track(dist: &[f32], id: &[u32], orig: &[(f32, u32)]) -> bool {
        dist.iter()
            .zip(id)
            .all(|(&d, &i)| orig.iter().any(|&(od, oi)| od == d && oi == i))
    }

    #[test]
    fn merge_schedule_sizes() {
        assert_eq!(bitonic_merge_schedule(8).len(), 4 * 3);
        assert_eq!(reverse_bitonic_merge_schedule(8).len(), 4 + 2 * 2 + 2 * 2);
        assert_eq!(reverse_bitonic_merge_schedule(2).len(), 1);
        assert_eq!(reverse_merge_cost(16), 8 * 4);
    }

    #[test]
    fn reverse_merge_merges_same_order_runs() {
        // Paper Fig. 2b style input: both halves sorted descending.
        let mut d = vec![7.0, 5.0, 4.0, 0.0, 6.0, 3.0, 2.0, 1.0];
        let mut i: Vec<u32> = (0..8).collect();
        let orig: Vec<(f32, u32)> = d.iter().copied().zip(i.iter().copied()).collect();
        reverse_bitonic_merge(&mut d, &mut i);
        assert!(is_desc(&d), "{d:?}");
        assert_eq!(d, vec![7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 0.0]);
        assert!(ids_track(&d, &i, &orig));
    }

    #[test]
    fn reverse_merge_length_two() {
        let mut d = vec![1.0, 3.0];
        let mut i = vec![0u32, 1];
        reverse_bitonic_merge(&mut d, &mut i);
        assert_eq!(d, vec![3.0, 1.0]);
        assert_eq!(i, vec![1, 0]);
    }

    #[test]
    fn reverse_merge_with_duplicates_and_inf() {
        let mut d = vec![f32::INFINITY, 2.0, 2.0, 1.0, 2.0, 2.0, 0.5, 0.5];
        let mut i: Vec<u32> = (0..8).collect();
        reverse_bitonic_merge(&mut d, &mut i);
        assert!(is_desc(&d));
        assert_eq!(&d[1..], &[2.0, 2.0, 2.0, 2.0, 1.0, 0.5, 0.5]);
    }

    #[test]
    fn reverse_merge_exhaustive_small() {
        // All 0/1 patterns of length 8 with both halves descending —
        // by the 0-1 principle this certifies the network for length 8.
        for bits in 0..256u32 {
            let mut d: Vec<f32> = (0..8).map(|b| ((bits >> b) & 1) as f32).collect();
            d[0..4].sort_by(|a, b| b.partial_cmp(a).unwrap());
            d[4..8].sort_by(|a, b| b.partial_cmp(a).unwrap());
            let mut i = vec![0u32; 8];
            let mut expect = d.clone();
            expect.sort_by(|a, b| b.partial_cmp(a).unwrap());
            reverse_bitonic_merge(&mut d, &mut i);
            assert_eq!(d, expect, "failed for pattern {bits:08b}");
        }
    }

    #[test]
    fn full_sort_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for &n in &[2usize, 4, 16, 64, 256] {
            let mut d: Vec<f32> = (0..n).map(|_| rng.gen::<f32>()).collect();
            let mut i: Vec<u32> = (0..n as u32).collect();
            let mut expect = d.clone();
            expect.sort_by(|a, b| b.partial_cmp(a).unwrap());
            bitonic_sort_desc(&mut d, &mut i);
            assert_eq!(d, expect, "n = {n}");
        }
    }

    #[test]
    fn classic_merge_requires_bitonic_input() {
        // ascending-then-descending (bitonic) input sorts correctly
        let mut d = vec![1.0, 3.0, 5.0, 7.0, 6.0, 4.0, 2.0, 0.0];
        let mut i = vec![0u32; 8];
        run_schedule(&bitonic_merge_schedule(8), &mut d, &mut i);
        assert!(is_desc(&d));
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        bitonic_sort_schedule(12);
    }

    #[test]
    fn stages_are_parallel_safe_and_complete() {
        use std::collections::HashSet;
        for n in [2usize, 8, 64, 256] {
            for stages in [reverse_bitonic_merge_stages(n), bitonic_sort_stages(n)] {
                for stage in &stages {
                    // comparators within a stage touch disjoint elements
                    let mut seen = HashSet::new();
                    for &(a, b) in stage {
                        assert!(seen.insert(a), "n={n}: element {a} reused in stage");
                        assert!(seen.insert(b), "n={n}: element {b} reused in stage");
                    }
                }
            }
            // flattening the staged sort equals the flat schedule
            let flat: Vec<Comparator> = bitonic_sort_stages(n).into_iter().flatten().collect();
            assert_eq!(flat, bitonic_sort_schedule(n));
        }
    }

    #[test]
    fn staged_reverse_merge_sorts() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for n in [2usize, 8, 64] {
            let mut d: Vec<f32> = (0..n).map(|_| rng.gen()).collect();
            let half = n / 2;
            d[..half].sort_by(|a, b| b.partial_cmp(a).unwrap());
            d[half..].sort_by(|a, b| b.partial_cmp(a).unwrap());
            let mut expect = d.clone();
            expect.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let mut ids = vec![0u32; n];
            for stage in reverse_bitonic_merge_stages(n) {
                run_schedule(&stage, &mut d, &mut ids);
            }
            assert_eq!(d, expect, "n={n}");
        }
    }

    #[test]
    fn schedules_have_no_out_of_range_indices() {
        for n in [2usize, 4, 8, 32, 128] {
            for (a, b) in reverse_bitonic_merge_schedule(n) {
                assert!(a < n && b < n && a != b);
            }
            for (a, b) in bitonic_sort_schedule(n) {
                assert!(a < n && b < n && a != b);
            }
        }
    }
}
