//! Top-level native k-selection API combining the paper's techniques.
//!
//! [`SelectConfig`] mirrors the rows of the paper's Table I: pick a queue
//! kind, optionally put Buffered Search in front of it, and optionally
//! search through a Hierarchical Partition instead of the raw list. The
//! "aligned" flag only affects the simulated GPU kernels (intra-warp merge
//! synchronisation has no native analogue) but lives here so one config
//! type describes both back ends.

use serde::{Deserialize, Serialize};

use crate::buffered::{buffered_select_into, BufferConfig};
use crate::hierarchical::{select_top_down, Hierarchy, HpConfig};
use crate::queues::{select_into, HeapQueue, InsertionQueue, KQueue, MergeQueue};
use crate::types::{Neighbor, QueueKind};

/// Full description of a k-selection algorithm variant.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SelectConfig {
    /// Number of nearest neighbors to retain.
    pub k: usize,
    /// Queue structure maintaining the running k best.
    pub queue: QueueKind,
    /// Merge Queue level-0 size (the paper fixes `m = 8`).
    pub m: usize,
    /// Synchronise Merge Queue repairs across the warp (GPU only).
    pub aligned: bool,
    /// Buffered Search in front of the queue, if any.
    pub buffer: Option<BufferConfig>,
    /// Hierarchical Partition pre-filter, if any.
    pub hp: Option<HpConfig>,
}

impl SelectConfig {
    /// Plain queue-only selection (the paper's "original" rows).
    pub fn plain(queue: QueueKind, k: usize) -> Self {
        SelectConfig {
            k,
            queue,
            m: 8,
            aligned: false,
            buffer: None,
            hp: None,
        }
    }

    /// The paper's best variant: aligned Merge Queue with Buffered Search
    /// and Hierarchical Partition ("Merge Queue aligned+buf+hp").
    pub fn optimized(queue: QueueKind, k: usize) -> Self {
        SelectConfig {
            k,
            queue,
            m: 8,
            aligned: true,
            buffer: Some(BufferConfig::default()),
            hp: Some(HpConfig::default()),
        }
    }

    /// Builder-style: set the buffer configuration.
    pub fn with_buffer(mut self, cfg: BufferConfig) -> Self {
        self.buffer = Some(cfg);
        self
    }

    /// Builder-style: set the hierarchical-partition configuration.
    pub fn with_hp(mut self, cfg: HpConfig) -> Self {
        self.hp = Some(cfg);
        self
    }

    /// Builder-style: set aligned merges (GPU kernels only).
    pub fn with_aligned(mut self, aligned: bool) -> Self {
        self.aligned = aligned;
        self
    }

    /// Short human-readable label ("Merge Queue aligned+buf+hp").
    pub fn label(&self) -> String {
        let mut s = self.queue.name().to_string();
        let mut tags = Vec::new();
        if self.aligned {
            tags.push("aligned");
        }
        if self.buffer.is_some() {
            tags.push("buf");
        }
        if self.hp.is_some() {
            tags.push("hp");
        }
        if !tags.is_empty() {
            s.push(' ');
            s.push_str(&tags.join("+"));
        }
        s
    }
}

fn run_with_queue<Q: KQueue>(queue: &mut Q, dists: &[f32], cfg: &SelectConfig) {
    match (&cfg.hp, &cfg.buffer) {
        (None, None) => select_into(queue, dists),
        (None, Some(b)) => {
            buffered_select_into(queue, dists, b);
        }
        (Some(h), buf) => {
            // Hierarchical partition does its own exact selection; the
            // queue kind and buffering apply *inside* the simulated GPU
            // kernels — natively HP already touches only ~G·k·log
            // elements, so we run it directly and feed the result through
            // the queue for a uniform interface.
            let hier = Hierarchy::build(dists, h.g, cfg.k);
            let picked = select_top_down(dists, &hier, cfg.k);
            match buf {
                None => {
                    for n in picked {
                        if n.dist < queue.max() {
                            queue.offer(n.dist, n.id);
                        }
                    }
                }
                Some(b) => {
                    // Preserve buffering semantics over the picked set.
                    let vals: Vec<f32> = picked.iter().map(|n| n.dist).collect();
                    let ids: Vec<u32> = picked.iter().map(|n| n.id).collect();
                    let mut remapped = InsertionQueue::new(cfg.k);
                    buffered_select_into(&mut remapped, &vals, b);
                    for n in remapped.into_sorted() {
                        if n.dist < queue.max() {
                            queue.offer(n.dist, ids[n.id as usize]);
                        }
                    }
                }
            }
        }
    }
}

/// Select the `cfg.k` smallest distances natively, returning neighbors
/// sorted ascending by distance.
pub fn select_k(dists: &[f32], cfg: &SelectConfig) -> Vec<Neighbor> {
    match cfg.queue {
        QueueKind::Insertion => {
            let mut q = InsertionQueue::new(cfg.k);
            run_with_queue(&mut q, dists, cfg);
            q.into_sorted()
        }
        QueueKind::Heap => {
            let mut q = HeapQueue::new(cfg.k);
            run_with_queue(&mut q, dists, cfg);
            q.into_sorted()
        }
        QueueKind::Merge => {
            let mut q = MergeQueue::new(cfg.k, cfg.m);
            run_with_queue(&mut q, dists, cfg);
            q.into_sorted()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn oracle(dists: &[f32], k: usize) -> Vec<f32> {
        let mut v = dists.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v.truncate(k);
        v
    }

    #[test]
    fn every_variant_matches_oracle() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(51);
        let dists: Vec<f32> = (0..4000).map(|_| rng.gen()).collect();
        let k = 32;
        for queue in QueueKind::ALL {
            for buffer in [None, Some(BufferConfig::default())] {
                for hp in [None, Some(HpConfig::default())] {
                    let cfg = SelectConfig {
                        k,
                        queue,
                        m: 8,
                        aligned: false,
                        buffer,
                        hp,
                    };
                    let got: Vec<f32> = select_k(&dists, &cfg).iter().map(|n| n.dist).collect();
                    assert_eq!(got, oracle(&dists, k), "{}", cfg.label());
                }
            }
        }
    }

    #[test]
    fn labels() {
        assert_eq!(
            SelectConfig::plain(QueueKind::Heap, 8).label(),
            "Heap Queue"
        );
        assert_eq!(
            SelectConfig::optimized(QueueKind::Merge, 16).label(),
            "Merge Queue aligned+buf+hp"
        );
    }

    #[test]
    fn ids_valid_in_all_variants() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(52);
        let dists: Vec<f32> = (0..2000).map(|_| rng.gen()).collect();
        for queue in QueueKind::ALL {
            let cfg = SelectConfig::optimized(queue, 16);
            for n in select_k(&dists, &cfg) {
                assert_eq!(dists[n.id as usize], n.dist, "{}", cfg.label());
            }
        }
    }

    #[test]
    fn k_larger_than_n() {
        let dists = vec![0.5, 0.25];
        let cfg = SelectConfig::plain(QueueKind::Insertion, 8);
        let got = select_k(&dists, &cfg);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].dist, 0.25);
    }
}
