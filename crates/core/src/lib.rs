//! # kselect — efficient k-selection for k-NN search
//!
//! A full reimplementation of *"Efficient Selection Algorithm for Fast
//! k-NN Search on GPU"* (Tang, Huang, Eyers, Mills, Guo — IPDPS 2015).
//!
//! k-NN search ends with *k-selection*: finding the k smallest of each
//! query's N distances. The paper contributes three techniques that make
//! this fast on SIMT hardware, all implemented here:
//!
//! * **Merge Queue** ([`queues::MergeQueue`]) — a multi-level,
//!   lazily-merged queue with O(log² k) amortised inserts whose repairs
//!   are regular bitonic-merge networks ([`bitonic`]);
//! * **Buffered Search** ([`buffered`]) — candidate staging that batches
//!   the divergent insertion work of a warp;
//! * **Hierarchical Partition** ([`hierarchical`]) — a tournament of group
//!   minima that shrinks the searched set from N to ~G·k·log_G(N/k).
//!
//! Every structure exists in two forms:
//!
//! * **native** (this crate's top level) — scalar Rust, used as the
//!   correctness oracle and as a genuinely fast CPU k-selection library
//!   (see the `knn` crate for the rayon-parallel pipeline);
//! * **simulated GPU** ([`gpu`]) — warp-synchronous kernels over the
//!   [`simt`] simulator, reproducing the paper's measurements (branch
//!   divergence, coalescing, intra-warp communication).
//!
//! ## Quick start
//!
//! ```
//! use kselect::{select_k, SelectConfig, QueueKind};
//!
//! let dists: Vec<f32> = (0..1000).map(|i| ((i * 37) % 1000) as f32).collect();
//! let cfg = SelectConfig::optimized(QueueKind::Merge, 16);
//! let knn = select_k(&dists, &cfg);
//! assert_eq!(knn.len(), 16);
//! assert_eq!(knn[0].dist, 0.0);
//! assert!(knn.windows(2).all(|w| w[0].dist <= w[1].dist));
//! ```

pub mod bitonic;
pub mod buffered;
pub mod chunked;
pub mod error;
pub mod gpu;
pub mod hierarchical;
pub mod queues;
pub mod select;
pub mod types;

pub use buffered::{buffered_select_into, BufferConfig};
pub use chunked::select_k_chunked;
pub use error::KnnError;
pub use hierarchical::{hierarchical_select, Hierarchy, HpConfig};
pub use queues::{HeapQueue, InsertionQueue, KQueue, MergeQueue, UpdateCounter};
pub use select::{select_k, SelectConfig};
pub use types::{Neighbor, QueueKind, INF, NO_ID};
