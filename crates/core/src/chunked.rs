//! Divide-and-merge k-selection for very large N.
//!
//! The paper evaluates N ∈ [2^13, 2^16] and notes (§IV) that "a
//! divide-and-merge method [Arefin et al., GPU-FS-kNN] can be applied to
//! support N larger than the range without hurting the performance". This
//! module is that extension: split the list into chunks, run any
//! configured k-selection variant per chunk, and merge the per-chunk
//! top-k sets with one final selection over ≤ k·⌈N/chunk⌉ candidates.
//!
//! Chunking is exact for any chunk size: an element in the global top-k
//! is necessarily in its own chunk's top-k.

use crate::select::{select_k, SelectConfig};
use crate::types::{sort_neighbors, Neighbor};

/// Incremental top-k merge over per-chunk selections — the host-side
/// "global merge" state of the divide-and-merge literature, factored out
/// so streaming pipelines (which see one chunk at a time and never hold
/// the full list) share the exact merge semantics of
/// [`select_k_chunked`].
///
/// Feed it each chunk's top-k (with the chunk's global id offset); it
/// keeps at most `k + chunk_topk` candidates alive, so memory stays
/// O(k) regardless of how many chunks stream through. Ties resolve by
/// `(dist, id)` — identical to a single [`select_k`] over the
/// concatenated list.
#[derive(Clone, Debug)]
pub struct StreamMerger {
    k: usize,
    acc: Vec<Neighbor>,
    stats: MergeStats,
}

/// Lifetime totals of one [`StreamMerger`]: how many candidates were
/// pushed into it and how many the running top-k evicted. Cheap enough
/// to track unconditionally (two integer adds per *chunk*), and the
/// push/reject ratio is the signal tile-size tuning needs — a tile
/// whose selections mostly get rejected is paying merge cost for
/// nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Candidates fed in via [`StreamMerger::push_chunk`].
    pub pushed: u64,
    /// Candidates evicted by the running top-k truncation.
    pub rejected: u64,
}

impl StreamMerger {
    /// A merger retaining the `k` smallest candidates seen.
    ///
    /// # Panics
    /// When `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        StreamMerger {
            k,
            acc: Vec::with_capacity(2 * k),
            stats: MergeStats::default(),
        }
    }

    /// Merge one chunk's survivors, rebasing their chunk-local ids by
    /// `id_offset`.
    pub fn push_chunk(&mut self, chunk: Vec<Neighbor>, id_offset: u32) {
        self.stats.pushed += chunk.len() as u64;
        for mut nb in chunk {
            nb.id += id_offset;
            self.acc.push(nb);
        }
        // The running set is ≤ k + |chunk| entries; sorting it is exact
        // and cheap, and truncation is lossless: an element of the
        // global top-k is necessarily in the running top-k of every
        // prefix of chunks.
        sort_neighbors(&mut self.acc);
        let before = self.acc.len();
        self.acc.truncate(self.k);
        self.stats.rejected += (before - self.acc.len()) as u64;
    }

    /// Lifetime push/reject totals.
    pub fn stats(&self) -> MergeStats {
        self.stats
    }

    /// The current top-k of everything pushed so far, sorted ascending.
    pub fn current(&self) -> &[Neighbor] {
        &self.acc
    }

    /// Finish: the global top-k, sorted ascending by `(dist, id)`.
    pub fn finish(self) -> Vec<Neighbor> {
        self.acc
    }
}

/// k smallest of `dists` computed chunk-by-chunk. `chunk_size` bounds the
/// working set of each inner selection (e.g. what fits device memory).
///
/// # Panics
/// When `chunk_size` is zero.
pub fn select_k_chunked(dists: &[f32], cfg: &SelectConfig, chunk_size: usize) -> Vec<Neighbor> {
    assert!(chunk_size > 0, "chunk size must be positive");
    if dists.len() <= chunk_size {
        return select_k(dists, cfg);
    }
    let mut merger = StreamMerger::new(cfg.k);
    for (ci, chunk) in dists.chunks(chunk_size).enumerate() {
        merger.push_chunk(select_k(chunk, cfg), (ci * chunk_size) as u32);
    }
    merger.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::QueueKind;
    use rand::{Rng, SeedableRng};

    fn oracle(dists: &[f32], k: usize) -> Vec<f32> {
        let mut v = dists.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v.truncate(k);
        v
    }

    #[test]
    fn matches_oracle_across_chunk_sizes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(301);
        let dists: Vec<f32> = (0..10_000).map(|_| rng.gen()).collect();
        let cfg = SelectConfig::optimized(QueueKind::Merge, 32);
        let expect = oracle(&dists, 32);
        for chunk in [17usize, 100, 1024, 9_999, 100_000] {
            let got: Vec<f32> = select_k_chunked(&dists, &cfg, chunk)
                .iter()
                .map(|n| n.dist)
                .collect();
            assert_eq!(got, expect, "chunk = {chunk}");
        }
    }

    #[test]
    fn merge_stats_account_for_every_candidate() {
        let mut m = StreamMerger::new(2);
        assert_eq!(m.stats(), MergeStats::default());
        m.push_chunk(vec![Neighbor::new(3.0, 0), Neighbor::new(1.0, 1)], 0);
        // 2 pushed, all kept (k = 2)
        assert_eq!(
            m.stats(),
            MergeStats {
                pushed: 2,
                rejected: 0
            }
        );
        m.push_chunk(vec![Neighbor::new(0.5, 0), Neighbor::new(9.0, 1)], 10);
        // 4 pushed lifetime; the running set held 4 and truncated to 2
        assert_eq!(
            m.stats(),
            MergeStats {
                pushed: 4,
                rejected: 2
            }
        );
        let out = m.finish();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].dist, 0.5);
    }

    #[test]
    fn chunk_smaller_than_k_still_exact() {
        // Each chunk yields fewer than k survivors; the merge must still
        // recover the global top-k.
        let mut rng = rand::rngs::StdRng::seed_from_u64(302);
        let dists: Vec<f32> = (0..500).map(|_| rng.gen()).collect();
        let cfg = SelectConfig::plain(QueueKind::Insertion, 64);
        let got: Vec<f32> = select_k_chunked(&dists, &cfg, 16)
            .iter()
            .map(|n| n.dist)
            .collect();
        assert_eq!(got, oracle(&dists, 64));
    }

    #[test]
    fn ids_are_globally_offset() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(303);
        let dists: Vec<f32> = (0..3_000).map(|_| rng.gen()).collect();
        let cfg = SelectConfig::plain(QueueKind::Heap, 16);
        for nb in select_k_chunked(&dists, &cfg, 250) {
            assert_eq!(dists[nb.id as usize], nb.dist);
        }
    }

    #[test]
    fn very_large_synthetic_n() {
        // Beyond the paper's 2^16 range — the reason this module exists.
        let n = 1 << 20;
        let dists: Vec<f32> = (0..n)
            .map(|i| ((i as u64 * 2654435761) % 1_000_003) as f32)
            .collect();
        let cfg = SelectConfig::optimized(QueueKind::Merge, 16);
        let got: Vec<f32> = select_k_chunked(&dists, &cfg, 1 << 16)
            .iter()
            .map(|n| n.dist)
            .collect();
        assert_eq!(got, oracle(&dists, 16));
    }

    #[test]
    #[should_panic]
    fn zero_chunk_rejected() {
        select_k_chunked(&[1.0], &SelectConfig::plain(QueueKind::Heap, 1), 0);
    }
}
