//! Divide-and-merge k-selection for very large N.
//!
//! The paper evaluates N ∈ [2^13, 2^16] and notes (§IV) that "a
//! divide-and-merge method [Arefin et al., GPU-FS-kNN] can be applied to
//! support N larger than the range without hurting the performance". This
//! module is that extension: split the list into chunks, run any
//! configured k-selection variant per chunk, and merge the per-chunk
//! top-k sets with one final selection over ≤ k·⌈N/chunk⌉ candidates.
//!
//! Chunking is exact for any chunk size: an element in the global top-k
//! is necessarily in its own chunk's top-k.

use crate::select::{select_k, SelectConfig};
use crate::types::{sort_neighbors, Neighbor};

/// k smallest of `dists` computed chunk-by-chunk. `chunk_size` bounds the
/// working set of each inner selection (e.g. what fits device memory).
///
/// # Panics
/// When `chunk_size` is zero.
pub fn select_k_chunked(dists: &[f32], cfg: &SelectConfig, chunk_size: usize) -> Vec<Neighbor> {
    assert!(chunk_size > 0, "chunk size must be positive");
    if dists.len() <= chunk_size {
        return select_k(dists, cfg);
    }
    let mut candidates: Vec<Neighbor> =
        Vec::with_capacity(cfg.k * dists.len().div_ceil(chunk_size));
    for (ci, chunk) in dists.chunks(chunk_size).enumerate() {
        let base = (ci * chunk_size) as u32;
        for mut nb in select_k(chunk, cfg) {
            nb.id += base;
            candidates.push(nb);
        }
    }
    // Final merge: the candidate set is tiny (≤ k per chunk); a sort is
    // exact and cheap. (On the GPU this is the "global merge" kernel of
    // the divide-and-merge literature.)
    sort_neighbors(&mut candidates);
    candidates.truncate(cfg.k);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::QueueKind;
    use rand::{Rng, SeedableRng};

    fn oracle(dists: &[f32], k: usize) -> Vec<f32> {
        let mut v = dists.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v.truncate(k);
        v
    }

    #[test]
    fn matches_oracle_across_chunk_sizes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(301);
        let dists: Vec<f32> = (0..10_000).map(|_| rng.gen()).collect();
        let cfg = SelectConfig::optimized(QueueKind::Merge, 32);
        let expect = oracle(&dists, 32);
        for chunk in [17usize, 100, 1024, 9_999, 100_000] {
            let got: Vec<f32> = select_k_chunked(&dists, &cfg, chunk)
                .iter()
                .map(|n| n.dist)
                .collect();
            assert_eq!(got, expect, "chunk = {chunk}");
        }
    }

    #[test]
    fn chunk_smaller_than_k_still_exact() {
        // Each chunk yields fewer than k survivors; the merge must still
        // recover the global top-k.
        let mut rng = rand::rngs::StdRng::seed_from_u64(302);
        let dists: Vec<f32> = (0..500).map(|_| rng.gen()).collect();
        let cfg = SelectConfig::plain(QueueKind::Insertion, 64);
        let got: Vec<f32> = select_k_chunked(&dists, &cfg, 16)
            .iter()
            .map(|n| n.dist)
            .collect();
        assert_eq!(got, oracle(&dists, 64));
    }

    #[test]
    fn ids_are_globally_offset() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(303);
        let dists: Vec<f32> = (0..3_000).map(|_| rng.gen()).collect();
        let cfg = SelectConfig::plain(QueueKind::Heap, 16);
        for nb in select_k_chunked(&dists, &cfg, 250) {
            assert_eq!(dists[nb.id as usize], nb.dist);
        }
    }

    #[test]
    fn very_large_synthetic_n() {
        // Beyond the paper's 2^16 range — the reason this module exists.
        let n = 1 << 20;
        let dists: Vec<f32> = (0..n)
            .map(|i| ((i as u64 * 2654435761) % 1_000_003) as f32)
            .collect();
        let cfg = SelectConfig::optimized(QueueKind::Merge, 16);
        let got: Vec<f32> = select_k_chunked(&dists, &cfg, 1 << 16)
            .iter()
            .map(|n| n.dist)
            .collect();
        assert_eq!(got, oracle(&dists, 16));
    }

    #[test]
    #[should_panic]
    fn zero_chunk_rejected() {
        select_k_chunked(&[1.0], &SelectConfig::plain(QueueKind::Heap, 1), 0);
    }
}
