//! **Hierarchical Partition** (paper §III-E, Fig. 4, Algorithm 4) —
//! native reference implementation.
//!
//! # Bottom-Up Construction
//!
//! The distance list is split into groups of `G`; each group's minimum
//! forms the next level. Repeat until a level has at most `k` elements.
//! Construction is a linear scan per level, `O(N · G/(G-1))` total work
//! and `O(N/(G-1))` extra space.
//!
//! # Top-Down Search
//!
//! Insert the (≤ k) top-level elements into a queue; then, level by level,
//! expand only the child groups of the current k best candidates and
//! re-select the k best among the expanded elements. At most `G·k`
//! elements are touched per level, over `log_G(N/k)` levels.
//!
//! # Exactness
//!
//! *Claim*: at every level `ℓ`, the candidate set (the k smallest values
//! of level `ℓ` restricted to expanded groups) contains the parents of all
//! of level `ℓ-1`'s true k smallest.
//!
//! *Proof sketch*: let `x` be among the k smallest of level `ℓ-1`. Its
//! parent `p = min(x's group) ≤ x`. Suppose `p` were not among the k
//! smallest of level `ℓ`: then k values at level `ℓ` are `< p`, each the
//! minimum of a distinct group, so each witnesses a distinct element of
//! level `ℓ-1` that is `< p ≤ x` — contradicting `x` being in the k
//! smallest at level `ℓ-1`. Induction from the top level (all elements
//! are candidates) down to the original list gives exactness. ∎
//!
//! Unlike the paper's in-place description (which can insert a group
//! minimum twice — once as the parent, once as the child), we rebuild the
//! candidate queue at each level, which avoids duplicate entries
//! displacing genuine candidates. The property tests in this module
//! verify exactness against a full sort.

use serde::{Deserialize, Serialize};

use crate::queues::{InsertionQueue, KQueue};
use crate::types::Neighbor;

/// Configuration for Hierarchical Partition.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HpConfig {
    /// Group size `G` (the paper sweeps 2, 4, 6, 8 and defaults to 4).
    pub g: usize,
}

impl Default for HpConfig {
    fn default() -> Self {
        HpConfig { g: 4 }
    }
}

/// The bottom-up structure: `levels[0]` is the first *reduced* level
/// (group minima of the input); the input itself is not duplicated.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    levels: Vec<Vec<f32>>,
    g: usize,
}

impl Hierarchy {
    /// Build the hierarchy over `dists` with group size `g`, stopping once
    /// a level has at most `k` elements (Algorithm 4).
    ///
    /// # Panics
    /// When `g < 2` (a group size of 1 never reduces) or `k == 0`.
    pub fn build(dists: &[f32], g: usize, k: usize) -> Self {
        assert!(g >= 2, "group size must be at least 2");
        assert!(k > 0, "k must be positive");
        let mut levels: Vec<Vec<f32>> = Vec::new();
        let mut cur: &[f32] = dists;
        while cur.len() > k {
            let next: Vec<f32> = cur
                .chunks(g)
                .map(|c| c.iter().copied().fold(f32::INFINITY, f32::min))
                .collect();
            levels.push(next);
            cur = levels.last().unwrap();
            // A level of length ≤ k terminates; chunks() guarantees strict
            // shrinkage for g ≥ 2 whenever len > 1.
            if cur.len() <= k {
                break;
            }
        }
        Hierarchy { levels, g }
    }

    /// Group size used to build this hierarchy.
    pub fn g(&self) -> usize {
        self.g
    }

    /// Number of reduced levels (0 when the input already had ≤ k
    /// elements).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Extra storage consumed, in elements. The paper bounds this by
    /// `N/(G-1)`.
    pub fn extra_space(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Borrow level `i` (0 = first reduced level; the deepest index is the
    /// top of the pyramid).
    pub fn level(&self, i: usize) -> &[f32] {
        &self.levels[i]
    }
}

/// Pick the k smallest of `(value, index-in-level)` pairs using an
/// insertion queue (candidate counts here are ≤ G·k, so the simple queue
/// is fine natively; the GPU kernels plug in any queue kind).
fn k_best(pairs: impl Iterator<Item = (f32, u32)>, k: usize) -> Vec<(f32, u32)> {
    let mut q = InsertionQueue::new(k);
    for (d, i) in pairs {
        if d < q.max() {
            q.offer(d, i);
        }
    }
    q.into_sorted()
        .into_iter()
        .map(|n| (n.dist, n.id))
        .collect()
}

/// Exact k-selection of `dists` using a prebuilt [`Hierarchy`]
/// (Top-Down search). Returns neighbors sorted ascending.
pub fn select_top_down(dists: &[f32], h: &Hierarchy, k: usize) -> Vec<Neighbor> {
    assert!(k > 0);
    if h.depth() == 0 {
        // Input already ≤ k elements (or build was skipped): direct scan.
        return k_best(dists.iter().copied().zip(0u32..), k)
            .into_iter()
            .map(|(d, i)| Neighbor::new(d, i))
            .collect();
    }
    let g = h.g;
    // Top level: every element is a candidate.
    let top = h.depth() - 1;
    let mut cands: Vec<(f32, u32)> = k_best(h.level(top).iter().copied().zip(0u32..), k);
    // Descend through reduced levels, expanding child groups.
    for li in (0..top).rev() {
        let below = h.level(li);
        cands = k_best(
            expand(&cands, g, below.len()).map(|i| (below[i as usize], i)),
            k,
        );
    }
    // Final level: the original list.
    let res = k_best(
        expand(&cands, g, dists.len()).map(|i| (dists[i as usize], i)),
        k,
    );
    res.into_iter().map(|(d, i)| Neighbor::new(d, i)).collect()
}

/// Child indices of the candidate set: for candidate index `i`, the group
/// `[i·g, min((i+1)·g, len))` in the level below.
fn expand<'a>(
    cands: &'a [(f32, u32)],
    g: usize,
    below_len: usize,
) -> impl Iterator<Item = u32> + 'a {
    cands.iter().flat_map(move |&(_, i)| {
        let start = i as usize * g;
        let end = (start + g).min(below_len);
        (start as u32)..(end as u32)
    })
}

/// Convenience wrapper: build the hierarchy and search in one call.
pub fn hierarchical_select(dists: &[f32], k: usize, cfg: HpConfig) -> Vec<Neighbor> {
    let h = Hierarchy::build(dists, cfg.g, k);
    select_top_down(dists, &h, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn oracle(dists: &[f32], k: usize) -> Vec<f32> {
        let mut v = dists.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v.truncate(k);
        v
    }

    #[test]
    fn paper_figure_4_example() {
        // Fig. 4: N = 16, k = 2, G = 2.
        let dists = vec![
            9.0, 0.0, 12.0, 1.0, 8.0, 2.0, 0.0, 15.0, 13.0, 2.0, 0.0, 2.0, 4.0, 10.0, 14.0, 5.0,
        ];
        let h = Hierarchy::build(&dists, 2, 2);
        // Levels: 8, 4, 2 elements.
        assert_eq!(h.depth(), 3);
        assert_eq!(h.level(0), &[0.0, 1.0, 2.0, 0.0, 2.0, 0.0, 4.0, 5.0]);
        assert_eq!(h.level(1), &[0.0, 0.0, 0.0, 4.0]);
        assert_eq!(h.level(2), &[0.0, 0.0]);
        let res = select_top_down(&dists, &h, 2);
        assert_eq!(
            res.iter().map(|n| n.dist).collect::<Vec<_>>(),
            vec![0.0, 0.0]
        );
    }

    #[test]
    fn matches_oracle_across_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for &n in &[1usize, 7, 64, 100, 1000, 4096] {
            for &k in &[1usize, 2, 8, 32] {
                for &g in &[2usize, 3, 4, 6, 8] {
                    let dists: Vec<f32> = (0..n).map(|_| rng.gen()).collect();
                    let got: Vec<f32> = hierarchical_select(&dists, k, HpConfig { g })
                        .iter()
                        .map(|n| n.dist)
                        .collect();
                    let want = oracle(&dists, k.min(n));
                    assert_eq!(got, want, "n={n} k={k} g={g}");
                }
            }
        }
    }

    #[test]
    fn ids_point_at_matching_values() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        let dists: Vec<f32> = (0..500).map(|_| rng.gen()).collect();
        for nb in hierarchical_select(&dists, 16, HpConfig::default()) {
            assert_eq!(dists[nb.id as usize], nb.dist);
        }
    }

    #[test]
    fn duplicates_do_not_displace_candidates() {
        // The regression the rebuild-per-level design prevents: a group
        // minimum appearing both as parent and child. All-equal input with
        // a single strictly-smaller element.
        let mut dists = vec![1.0f32; 64];
        dists[37] = 0.5;
        dists[11] = 0.75;
        let got: Vec<f32> = hierarchical_select(&dists, 3, HpConfig { g: 2 })
            .iter()
            .map(|n| n.dist)
            .collect();
        assert_eq!(got, vec![0.5, 0.75, 1.0]);
    }

    #[test]
    fn extra_space_bounded() {
        let dists = vec![0.0f32; 1 << 14];
        for g in [2usize, 4, 8] {
            let h = Hierarchy::build(&dists, g, 16);
            let bound = dists.len() / (g - 1) + h.depth() * 2;
            assert!(
                h.extra_space() <= bound,
                "g={g}: {} > {}",
                h.extra_space(),
                bound
            );
        }
    }

    #[test]
    fn depth_is_logarithmic() {
        let dists = vec![0.0f32; 1 << 16];
        let h = Hierarchy::build(&dists, 4, 256);
        // 65536 → 16384 → 4096 → 1024 → 256: four reduced levels.
        assert_eq!(h.depth(), 4);
    }

    #[test]
    fn n_smaller_than_k() {
        let dists = vec![3.0, 1.0, 2.0];
        let res = hierarchical_select(&dists, 10, HpConfig::default());
        assert_eq!(
            res.iter().map(|n| n.dist).collect::<Vec<_>>(),
            vec![1.0, 2.0, 3.0]
        );
    }

    #[test]
    fn non_divisible_group_tail() {
        // N not a multiple of G: the last (short) group must still be
        // represented by its minimum.
        let mut dists: Vec<f32> = (0..21).map(|i| 21.0 - i as f32).collect();
        dists[20] = 0.25; // minimum lives in the 1-element tail group
        let got = hierarchical_select(&dists, 2, HpConfig { g: 4 });
        assert_eq!(got[0].dist, 0.25);
        assert_eq!(got[0].id, 20);
    }

    #[test]
    #[should_panic]
    fn group_size_one_rejected() {
        Hierarchy::build(&[1.0, 2.0], 1, 1);
    }
}
