//! The classic insertion queue (paper Fig. 1a, top).
//!
//! A fully-sorted array in decreasing order: position 0 holds the maximum
//! (the eviction candidate), position `k-1` the minimum. Inserting shifts
//! every larger element one step towards the head — O(k) per insert on
//! average, but perfectly regular, which is why it is the GPU folklore
//! choice for small `k` (Garcia et al.).

use super::{KQueue, NoStats, UpdateSink};
use crate::types::{Neighbor, INF, NO_ID};

/// Sorted-array queue retaining the k smallest values.
#[derive(Clone, Debug)]
pub struct InsertionQueue<S: UpdateSink = NoStats> {
    dist: Vec<f32>,
    id: Vec<u32>,
    sink: S,
}

impl InsertionQueue<NoStats> {
    /// A queue of capacity `k`, pre-filled with sentinels.
    pub fn new(k: usize) -> Self {
        Self::with_stats(k, NoStats)
    }
}

impl<S: UpdateSink> InsertionQueue<S> {
    /// A queue of capacity `k` reporting every position write to `sink`.
    pub fn with_stats(k: usize, sink: S) -> Self {
        assert!(k > 0, "k must be positive");
        InsertionQueue {
            dist: vec![INF; k],
            id: vec![NO_ID; k],
            sink,
        }
    }

    /// Decompose into `(sorted contents, sink)` — used to recover an
    /// [`super::UpdateCounter`] after an instrumented run.
    pub fn into_parts(self) -> (Vec<Neighbor>, S) {
        let contents = self
            .dist
            .iter()
            .zip(&self.id)
            .map(|(&d, &i)| Neighbor::new(d, i))
            .collect();
        (contents, self.sink)
    }

    /// The queue's distances, head (maximum) first. Always sorted
    /// decreasing — this is the structure's invariant.
    pub fn dists(&self) -> &[f32] {
        &self.dist
    }

    /// Full invariant audit (sorted decreasing) with an actionable
    /// diagnosis naming the offending positions and values on failure.
    pub fn audit(&self) -> Result<(), check::audit::AuditError> {
        check::audit::audit_sorted_desc(&self.dist, "insertion queue")
    }
}

impl<S: UpdateSink> KQueue for InsertionQueue<S> {
    fn k(&self) -> usize {
        self.dist.len()
    }

    #[inline]
    fn max(&self) -> f32 {
        self.dist[0]
    }

    fn offer(&mut self, dist: f32, id: u32) -> bool {
        if dist >= self.dist[0] {
            return false;
        }
        let k = self.dist.len();
        // Shift larger elements one step towards the head (position 0);
        // the old maximum falls off the front.
        let mut i = 1;
        while i < k && self.dist[i] > dist {
            self.dist[i - 1] = self.dist[i];
            self.id[i - 1] = self.id[i];
            self.sink.record(i - 1);
            i += 1;
        }
        self.dist[i - 1] = dist;
        self.id[i - 1] = id;
        self.sink.record(i - 1);
        #[cfg(feature = "sanitize")]
        if let Err(e) = self.audit() {
            panic!("sanitize audit: InsertionQueue after offer({dist}, {id}): {e}");
        }
        true
    }

    fn contents(&self) -> Vec<Neighbor> {
        self.dist
            .iter()
            .zip(&self.id)
            .map(|(&d, &i)| Neighbor::new(d, i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queues::UpdateCounter;

    #[test]
    fn stays_sorted_decreasing() {
        let mut q = InsertionQueue::new(4);
        for d in [5.0, 2.0, 9.0, 1.0, 3.0, 0.5] {
            q.offer(d, 0);
            assert!(
                q.dists().windows(2).all(|w| w[0] >= w[1]),
                "{:?}",
                q.dists()
            );
        }
        assert_eq!(q.dists(), &[3.0, 2.0, 1.0, 0.5]);
    }

    #[test]
    fn paper_figure_1a_example() {
        // Fig. 1a: queue (7,6,5,4,2,1,0) with k = 7; inserting 3 shifts
        // 6,5,4 forward and lands 3 before 2.
        let mut q = InsertionQueue::new(7);
        for (i, d) in [7.0, 6.0, 5.0, 4.0, 2.0, 1.0, 0.0].iter().enumerate() {
            q.offer(*d, i as u32);
        }
        assert_eq!(q.dists(), &[7.0, 6.0, 5.0, 4.0, 2.0, 1.0, 0.0]);
        q.offer(3.0, 99);
        assert_eq!(q.dists(), &[6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 0.0]);
    }

    #[test]
    fn rejects_larger_and_equal() {
        let mut q = InsertionQueue::new(2);
        assert!(q.offer(1.0, 0));
        assert!(q.offer(2.0, 1));
        assert_eq!(q.max(), 2.0);
        assert!(!q.offer(2.0, 2)); // equal to max: rejected
        assert!(!q.offer(5.0, 3));
        assert!(q.offer(1.5, 4));
        assert_eq!(q.dists(), &[1.5, 1.0]);
    }

    #[test]
    fn duplicate_values_allowed_below_max() {
        let mut q = InsertionQueue::new(3);
        q.offer(1.0, 0);
        q.offer(1.0, 1);
        q.offer(1.0, 2);
        let (contents, _) = q.into_parts();
        assert!(contents.iter().all(|n| n.dist == 1.0));
    }

    #[test]
    fn update_counts_decrease_towards_tail() {
        // The paper's Fig. 5a: insertion queue updates fall off linearly
        // towards the tail because every shift touches positions nearer
        // the head.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let k = 32;
        let mut q = InsertionQueue::with_stats(k, UpdateCounter::new(k));
        for _ in 0..4096 {
            let d: f32 = rng.gen();
            if d < q.max() {
                q.offer(d, 0);
            }
        }
        let (_, counter) = q.into_parts();
        let c = counter.per_position();
        // head quarter strictly busier than tail quarter
        let head: u64 = c[..k / 4].iter().sum();
        let tail: u64 = c[k - k / 4..].iter().sum();
        assert!(head > 2 * tail, "head {head} tail {tail}");
    }

    #[test]
    fn k_equals_one() {
        let mut q = InsertionQueue::new(1);
        q.offer(5.0, 7);
        q.offer(3.0, 8);
        q.offer(9.0, 9);
        assert_eq!(q.max(), 3.0);
        let s = q.into_sorted();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].id, 8);
    }
}
