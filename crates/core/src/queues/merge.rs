//! The paper's **Merge Queue** (Fig. 1b, Algorithm 2).
//!
//! # Structure
//!
//! Capacity `k` is split into levels of sizes `m, m, 2m, 4m, …` (the first
//! two levels share size `m`; every later level doubles), so `k` must be
//! `m · 2^j` (or exactly `m`, the degenerate single-level case). Level
//! boundaries for `k = 8m`: `[0,m) [m,2m) [2m,4m) [4m,8m)`.
//!
//! # Invariant
//!
//! Every level is sorted decreasing, and the level *heads* (first element
//! of each level) are decreasing from level 0 downwards. Together these
//! guarantee `queue[0]` is the global maximum — the only value an incoming
//! candidate has to beat.
//!
//! # Lazy update
//!
//! An insert is an insertion-sort into level 0 (evicting the old global
//! maximum off the front). Only when the fresh level-0 head drops below the
//! level-1 head does a repair run: the fully-sorted prefix `[0, S)` is
//! merged with the next level `[S, 2S)` by the **Reverse Bitonic Merge**
//! (both runs sorted the same direction — see [`crate::bitonic`]), cascading
//! down while heads remain out of order. Because the prefix above level
//! `ℓ+1` has exactly level-`ℓ+1`'s size, every merge is a balanced
//! power-of-two merge. Amortised cost per insert: O(log² k).
//!
//! # Erratum note
//!
//! Algorithm 2 in the paper triggers the merge when
//! `dqueue[prev] >= dqueue[next]`, which contradicts its own prose ("if the
//! head of the first level is *smaller* than that of the second level, a
//! merge operation is applied") and would repair a *satisfied* invariant.
//! We follow the prose; the property tests in this module and in
//! `tests/` confirm the queue then retains exactly the k smallest values.

use super::{KQueue, NoStats, UpdateSink};
use crate::bitonic::{reverse_bitonic_merge_schedule, Comparator};
use crate::types::{Neighbor, INF, NO_ID};

/// Multi-level lazily-merged queue retaining the k smallest values.
#[derive(Clone, Debug)]
pub struct MergeQueue<S: UpdateSink = NoStats> {
    dist: Vec<f32>,
    id: Vec<u32>,
    m: usize,
    /// Reverse-bitonic-merge schedules for prefix sizes 2m, 4m, …, k.
    schedules: Vec<Vec<Comparator>>,
    merges: u64,
    sink: S,
}

/// Check that `k` is a valid Merge Queue capacity for level-0 size `m`:
/// `k == m` or `k == m · 2^j` with `j ≥ 1`. Both must be powers of two.
pub fn valid_capacity(k: usize, m: usize) -> bool {
    k > 0
        && m > 0
        && m.is_power_of_two()
        && k >= m
        && k.is_multiple_of(m)
        && (k / m).is_power_of_two()
}

impl MergeQueue<NoStats> {
    /// A queue of capacity `k` with level-0 size `m` (the paper uses
    /// `m = 8`), pre-filled with sentinels.
    ///
    /// # Panics
    /// When `k` is not `m · 2^j` (see [`valid_capacity`]).
    pub fn new(k: usize, m: usize) -> Self {
        Self::with_stats(k, m, NoStats)
    }
}

impl<S: UpdateSink> MergeQueue<S> {
    /// Instrumented constructor; every position write goes to `sink`.
    pub fn with_stats(k: usize, m: usize, sink: S) -> Self {
        assert!(
            valid_capacity(k, m),
            "MergeQueue requires k = m·2^j (got k={k}, m={m})"
        );
        let mut schedules = Vec::new();
        let mut s = 2 * m;
        while s <= k {
            schedules.push(reverse_bitonic_merge_schedule(s));
            s *= 2;
        }
        MergeQueue {
            dist: vec![INF; k],
            id: vec![NO_ID; k],
            m,
            schedules,
            merges: 0,
            sink,
        }
    }

    /// Level-0 size `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of merge (invariant-repair) operations performed so far.
    /// The lazy-update claim of the paper is that this stays far below the
    /// number of accepted inserts.
    pub fn merge_count(&self) -> u64 {
        self.merges
    }

    /// Start offsets of each level: `0, m, 2m, 4m, …`.
    pub fn level_offsets(&self) -> Vec<usize> {
        let k = self.dist.len();
        let mut offs = vec![0];
        let mut o = self.m;
        while o < k {
            offs.push(o);
            o *= 2;
        }
        offs
    }

    /// Full invariant audit — each level sorted decreasing, level heads
    /// decreasing top-to-bottom — with an actionable diagnosis naming the
    /// offending level and positions on failure.
    pub fn audit(&self) -> Result<(), check::audit::AuditError> {
        check::audit::audit_merge_queue(&self.dist, self.m)
    }

    /// Verify the Merge Queue invariant: each level sorted decreasing and
    /// level heads decreasing top-to-bottom. Exposed for tests; see
    /// [`Self::audit`] for the diagnosing variant.
    pub fn invariant_holds(&self) -> bool {
        self.audit().is_ok()
    }

    /// Decompose into `(contents, sink)`.
    pub fn into_parts(self) -> (Vec<Neighbor>, S) {
        let contents = self
            .dist
            .iter()
            .zip(&self.id)
            .map(|(&d, &i)| Neighbor::new(d, i))
            .collect();
        (contents, self.sink)
    }

    fn flat_insert(&mut self, dist: f32, id: u32) {
        let m = self.m.min(self.dist.len());
        let mut i = 1;
        while i < m && self.dist[i] > dist {
            self.dist[i - 1] = self.dist[i];
            self.id[i - 1] = self.id[i];
            self.sink.record(i - 1);
            i += 1;
        }
        self.dist[i - 1] = dist;
        self.id[i - 1] = id;
        self.sink.record(i - 1);
    }

    fn merge_prefix(&mut self, size: usize) {
        let sched_idx = (size / (2 * self.m)).trailing_zeros() as usize;
        // Clone the schedule handle out to appease the borrow checker —
        // schedules are shared immutable data.
        let schedule = core::mem::take(&mut self.schedules[sched_idx]);
        for &(a, b) in &schedule {
            if self.dist[a] < self.dist[b] {
                self.dist.swap(a, b);
                self.id.swap(a, b);
                self.sink.record(a);
                self.sink.record(b);
            }
        }
        self.schedules[sched_idx] = schedule;
        self.merges += 1;
    }
}

impl<S: UpdateSink> KQueue for MergeQueue<S> {
    fn k(&self) -> usize {
        self.dist.len()
    }

    #[inline]
    fn max(&self) -> f32 {
        self.dist[0]
    }

    fn offer(&mut self, dist: f32, id: u32) -> bool {
        if dist >= self.dist[0] {
            return false;
        }
        self.flat_insert(dist, id);
        // Lazy repair (Algorithm 2, comparison corrected — see module docs).
        let k = self.dist.len();
        let mut prev = 0;
        let mut next = self.m;
        while next < k {
            if self.dist[prev] >= self.dist[next] {
                break; // invariant satisfied — stay lazy
            }
            self.merge_prefix(2 * next);
            prev = next;
            next *= 2;
        }
        #[cfg(feature = "sanitize")]
        if let Err(e) = self.audit() {
            panic!("sanitize audit: MergeQueue after offer({dist}, {id}): {e}");
        }
        true
    }

    fn contents(&self) -> Vec<Neighbor> {
        self.dist
            .iter()
            .zip(&self.id)
            .map(|(&d, &i)| Neighbor::new(d, i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queues::UpdateCounter;
    use rand::{Rng, SeedableRng};

    #[test]
    fn capacity_validation() {
        assert!(valid_capacity(8, 8)); // degenerate single level
        assert!(valid_capacity(16, 8));
        assert!(valid_capacity(64, 8));
        assert!(valid_capacity(1024, 8));
        assert!(valid_capacity(4, 1));
        assert!(!valid_capacity(24, 8)); // 3·m
        assert!(!valid_capacity(8, 3)); // m not a power of two
        assert!(!valid_capacity(4, 8)); // k < m
        assert!(!valid_capacity(0, 8));
    }

    #[test]
    fn level_offsets_shape() {
        let q = MergeQueue::new(64, 8);
        assert_eq!(q.level_offsets(), vec![0, 8, 16, 32]);
        let q1 = MergeQueue::new(8, 8);
        assert_eq!(q1.level_offsets(), vec![0]);
    }

    #[test]
    fn invariant_held_after_every_offer() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let mut q = MergeQueue::new(32, 8);
        for _ in 0..2000 {
            let d: f32 = rng.gen();
            q.offer(d, 0);
            assert!(q.invariant_holds());
        }
    }

    #[test]
    fn retains_k_smallest() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        for k in [8usize, 16, 32, 128] {
            let dists: Vec<f32> = (0..2000).map(|_| rng.gen()).collect();
            let mut q = MergeQueue::new(k, 8);
            for (i, &d) in dists.iter().enumerate() {
                q.offer(d, i as u32);
            }
            let got: Vec<f32> = q.into_sorted().iter().map(|n| n.dist).collect();
            let mut expect = dists.clone();
            expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(got, &expect[..k], "k = {k}");
        }
    }

    #[test]
    fn lazy_update_paper_example() {
        // Fig. 1b with m = 2, k = 4 (levels of size 2 + 2): queue holds
        // 7,6 / 5,4. Inserting 3 evicts 7; head 6 ≥ 5 so NO merge happens.
        let mut q = MergeQueue::new(4, 2);
        for d in [7.0, 6.0, 5.0, 4.0] {
            q.offer(d, 0);
        }
        // After the queue fills, levels settle to heads (max first).
        let before_merges = q.merge_count();
        q.offer(3.0, 9);
        assert_eq!(q.merge_count(), before_merges, "lazy: no merge needed");
        assert!(q.invariant_holds());
        // Now inserting another small value pushes the level-0 head below
        // the level-1 head and forces a merge (the paper's follow-up
        // example inserting a duplicate 4).
        let before = q.merge_count();
        q.offer(3.5, 10);
        assert!(q.merge_count() > before, "eager case must merge");
        assert!(q.invariant_holds());
    }

    #[test]
    fn merges_are_rare_relative_to_inserts() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let mut q = MergeQueue::new(256, 8);
        let mut inserts = 0u64;
        for _ in 0..100_000 {
            let d: f32 = rng.gen();
            if q.offer(d, 0) {
                inserts += 1;
            }
        }
        assert!(inserts > 1000);
        // Lazy update: at least m/2-ish inserts between merges on average.
        assert!(
            q.merge_count() * 2 < inserts,
            "merges {} inserts {}",
            q.merge_count(),
            inserts
        );
    }

    #[test]
    fn degenerate_single_level_acts_like_insertion_queue() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(24);
        let dists: Vec<f32> = (0..500).map(|_| rng.gen()).collect();
        let mut mq = MergeQueue::new(8, 8);
        let mut iq = crate::queues::InsertionQueue::new(8);
        for (i, &d) in dists.iter().enumerate() {
            mq.offer(d, i as u32);
            iq.offer(d, i as u32);
        }
        assert_eq!(mq.merge_count(), 0);
        let a: Vec<f32> = mq.into_sorted().iter().map(|n| n.dist).collect();
        let b: Vec<f32> = iq.into_sorted().iter().map(|n| n.dist).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn update_counts_grow_slower_than_insertion_queue() {
        // Fig. 5b: as k grows, merge queue total updates grow much slower
        // than the insertion queue's (which are ~linear in k).
        let mut rng = rand::rngs::StdRng::seed_from_u64(25);
        let n = 1 << 13;
        let dists: Vec<f32> = (0..n).map(|_| rng.gen()).collect();
        let run_merge = |k: usize| {
            let mut q = MergeQueue::with_stats(k, 8, UpdateCounter::new(k));
            for (i, &d) in dists.iter().enumerate() {
                if d < q.max() {
                    q.offer(d, i as u32);
                }
            }
            q.into_parts().1.total()
        };
        let run_insertion = |k: usize| {
            let mut q = crate::queues::InsertionQueue::with_stats(k, UpdateCounter::new(k));
            for (i, &d) in dists.iter().enumerate() {
                if d < q.max() {
                    q.offer(d, i as u32);
                }
            }
            q.into_parts().1.total()
        };
        let merge_growth = run_merge(256) as f64 / run_merge(32) as f64;
        let ins_growth = run_insertion(256) as f64 / run_insertion(32) as f64;
        assert!(
            merge_growth < ins_growth,
            "merge growth {merge_growth:.1} vs insertion growth {ins_growth:.1}"
        );
        // And at k = 256 the merge queue does far fewer updates overall.
        assert!(run_merge(256) * 2 < run_insertion(256));
    }

    #[test]
    fn ids_follow_values_through_merges() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(26);
        let dists: Vec<f32> = (0..3000).map(|_| rng.gen()).collect();
        let mut q = MergeQueue::new(64, 8);
        for (i, &d) in dists.iter().enumerate() {
            q.offer(d, i as u32);
        }
        for n in q.into_sorted() {
            assert_eq!(dists[n.id as usize], n.dist);
        }
    }
}
