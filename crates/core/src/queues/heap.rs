//! The classic heap queue (paper Fig. 1a, bottom).
//!
//! A binary max-heap stored in an array: the root (position 0) is the
//! maximum. A candidate smaller than the root replaces it and sifts down —
//! O(log k) per insert, but the tree walk makes memory accesses irregular,
//! which the paper identifies as its weakness on SIMT hardware.

use super::{KQueue, NoStats, UpdateSink};
use crate::types::{Neighbor, INF, NO_ID};

/// Binary max-heap queue retaining the k smallest values.
#[derive(Clone, Debug)]
pub struct HeapQueue<S: UpdateSink = NoStats> {
    dist: Vec<f32>,
    id: Vec<u32>,
    sink: S,
}

impl HeapQueue<NoStats> {
    /// A queue of capacity `k`, pre-filled with sentinels.
    pub fn new(k: usize) -> Self {
        Self::with_stats(k, NoStats)
    }
}

impl<S: UpdateSink> HeapQueue<S> {
    /// A queue of capacity `k` reporting every position write to `sink`.
    pub fn with_stats(k: usize, sink: S) -> Self {
        assert!(k > 0, "k must be positive");
        HeapQueue {
            dist: vec![INF; k],
            id: vec![NO_ID; k],
            sink,
        }
    }

    /// Decompose into `(contents in heap order, sink)`.
    pub fn into_parts(self) -> (Vec<Neighbor>, S) {
        let contents = self
            .dist
            .iter()
            .zip(&self.id)
            .map(|(&d, &i)| Neighbor::new(d, i))
            .collect();
        (contents, self.sink)
    }

    /// Full invariant audit with an actionable diagnosis naming the
    /// offending parent/child positions and values on failure.
    pub fn audit(&self) -> Result<(), check::audit::AuditError> {
        check::audit::audit_heap(&self.dist)
    }

    /// Check the max-heap invariant (every parent ≥ its children).
    /// Exposed for tests and property checks; see [`Self::audit`] for
    /// the diagnosing variant.
    pub fn is_valid_heap(&self) -> bool {
        self.audit().is_ok()
    }
}

impl<S: UpdateSink> KQueue for HeapQueue<S> {
    fn k(&self) -> usize {
        self.dist.len()
    }

    #[inline]
    fn max(&self) -> f32 {
        self.dist[0]
    }

    fn offer(&mut self, dist: f32, id: u32) -> bool {
        if dist >= self.dist[0] {
            return false;
        }
        let k = self.dist.len();
        // Replace the root and sift the hole down, pulling the larger
        // child up until the new value fits.
        let mut pos = 0;
        loop {
            let left = 2 * pos + 1;
            let right = left + 1;
            if left >= k {
                break;
            }
            let child = if right < k && self.dist[right] > self.dist[left] {
                right
            } else {
                left
            };
            if self.dist[child] <= dist {
                break;
            }
            self.dist[pos] = self.dist[child];
            self.id[pos] = self.id[child];
            self.sink.record(pos);
            pos = child;
        }
        self.dist[pos] = dist;
        self.id[pos] = id;
        self.sink.record(pos);
        #[cfg(feature = "sanitize")]
        if let Err(e) = self.audit() {
            panic!("sanitize audit: HeapQueue after offer({dist}, {id}): {e}");
        }
        true
    }

    fn contents(&self) -> Vec<Neighbor> {
        self.dist
            .iter()
            .zip(&self.id)
            .map(|(&d, &i)| Neighbor::new(d, i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queues::UpdateCounter;
    use rand::{Rng, SeedableRng};

    #[test]
    fn heap_invariant_held_throughout() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut q = HeapQueue::new(15);
        for _ in 0..1000 {
            let d: f32 = rng.gen();
            q.offer(d, 0);
            assert!(q.is_valid_heap());
        }
    }

    #[test]
    fn retains_k_smallest() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let dists: Vec<f32> = (0..300).map(|_| rng.gen()).collect();
        let mut q = HeapQueue::new(10);
        for (i, &d) in dists.iter().enumerate() {
            q.offer(d, i as u32);
        }
        let got: Vec<f32> = q.into_sorted().iter().map(|n| n.dist).collect();
        let mut expect = dists.clone();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(got, &expect[..10]);
    }

    #[test]
    fn rejects_at_or_above_max() {
        let mut q = HeapQueue::new(2);
        q.offer(1.0, 0);
        q.offer(3.0, 1);
        assert!(!q.offer(3.0, 2));
        assert!(!q.offer(4.0, 3));
        assert!(q.offer(2.0, 4));
        assert_eq!(q.max(), 2.0);
    }

    #[test]
    fn non_full_heap_keeps_sentinels_at_leaves() {
        let mut q = HeapQueue::new(7);
        q.offer(0.5, 1);
        q.offer(0.25, 2);
        assert!(q.is_valid_heap());
        let real: Vec<Neighbor> = q
            .contents()
            .into_iter()
            .filter(|n| !n.is_sentinel())
            .collect();
        assert_eq!(real.len(), 2);
    }

    #[test]
    fn update_counts_concentrate_near_root() {
        // Fig. 5a: heap updates depend on tree level — the root region is
        // written far more often than the leaves.
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let k = 64;
        let mut q = HeapQueue::with_stats(k, UpdateCounter::new(k));
        for _ in 0..32768 {
            let d: f32 = rng.gen();
            if d < q.max() {
                q.offer(d, 0);
            }
        }
        let (_, counter) = q.into_parts();
        let c = counter.per_position();
        let root_level = c[0];
        let leaf_avg: u64 = c[k / 2..].iter().sum::<u64>() / (k / 2) as u64;
        assert!(
            root_level > 4 * leaf_avg.max(1),
            "root {root_level} leaf {leaf_avg}"
        );
    }

    #[test]
    fn k_one_degenerates_to_min_tracker() {
        let mut q = HeapQueue::new(1);
        for d in [9.0, 4.0, 6.0, 2.0, 3.0] {
            q.offer(d, 0);
        }
        assert_eq!(q.max(), 2.0);
    }
}
