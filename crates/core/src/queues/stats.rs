//! Update-count instrumentation (Fig. 5 of the paper).
//!
//! The paper characterises the three queues by *where* and *how often*
//! queue positions are written during k-selection: the insertion queue
//! updates positions near the head constantly, the heap spreads updates by
//! tree level, and the Merge Queue behaves like the heap with slightly more
//! updates. Queues in this crate report every position write through an
//! [`UpdateSink`]; the zero-sized [`NoStats`] compiles the hook away.

/// Receives one event per queue-position write.
pub trait UpdateSink {
    /// Position `pos` (0 = queue head) was written.
    fn record(&mut self, pos: usize);
}

/// No-op sink: instrumentation compiles to nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoStats;

impl UpdateSink for NoStats {
    #[inline(always)]
    fn record(&mut self, _pos: usize) {}
}

/// Per-position write histogram.
#[derive(Clone, Debug)]
pub struct UpdateCounter {
    counts: Vec<u64>,
}

impl UpdateCounter {
    /// Histogram over `k` positions.
    pub fn new(k: usize) -> Self {
        UpdateCounter {
            counts: vec![0; k],
        }
    }

    /// Writes observed at each position (index 0 = queue head).
    pub fn per_position(&self) -> &[u64] {
        &self.counts
    }

    /// Total writes across all positions.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merge another histogram (e.g. across queries).
    pub fn merge(&mut self, other: &UpdateCounter) {
        assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

impl UpdateSink for UpdateCounter {
    #[inline]
    fn record(&mut self, pos: usize) {
        self.counts[pos] += 1;
    }
}

impl UpdateSink for &mut UpdateCounter {
    #[inline]
    fn record(&mut self, pos: usize) {
        self.counts[pos] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_records_and_totals() {
        let mut c = UpdateCounter::new(4);
        c.record(0);
        c.record(0);
        c.record(3);
        assert_eq!(c.per_position(), &[2, 0, 0, 1]);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn merge_adds() {
        let mut a = UpdateCounter::new(2);
        a.record(0);
        let mut b = UpdateCounter::new(2);
        b.record(1);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.per_position(), &[1, 2]);
    }

    #[test]
    #[should_panic]
    fn merge_length_mismatch_panics() {
        let mut a = UpdateCounter::new(2);
        a.merge(&UpdateCounter::new(3));
    }
}
