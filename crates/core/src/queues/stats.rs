//! Update-count instrumentation (Fig. 5 of the paper).
//!
//! The paper characterises the three queues by *where* and *how often*
//! queue positions are written during k-selection: the insertion queue
//! updates positions near the head constantly, the heap spreads updates by
//! tree level, and the Merge Queue behaves like the heap with slightly more
//! updates. Queues in this crate report every position write through an
//! [`UpdateSink`]; the zero-sized [`NoStats`] compiles the hook away.
//!
//! The histogram storage itself now lives in [`trace::PositionHistogram`]
//! so the tracing layer and the figure-5 experiments share one
//! implementation; [`UpdateCounter`] remains as a thin back-compat shim
//! with its original API.

/// Receives one event per queue-position write.
pub trait UpdateSink {
    /// Position `pos` (0 = queue head) was written.
    fn record(&mut self, pos: usize);
}

/// No-op sink: instrumentation compiles to nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoStats;

impl UpdateSink for NoStats {
    #[inline(always)]
    fn record(&mut self, _pos: usize) {}
}

/// Per-position write histogram — a back-compat shim over
/// [`trace::PositionHistogram`] keeping the original `kselect` API.
#[derive(Clone, Debug)]
pub struct UpdateCounter {
    hist: trace::PositionHistogram,
}

impl UpdateCounter {
    /// Histogram over `k` positions.
    pub fn new(k: usize) -> Self {
        UpdateCounter {
            hist: trace::PositionHistogram::new(k),
        }
    }

    /// Writes observed at each position (index 0 = queue head).
    pub fn per_position(&self) -> &[u64] {
        self.hist.per_position()
    }

    /// Total writes across all positions.
    pub fn total(&self) -> u64 {
        self.hist.total()
    }

    /// Merge another histogram (e.g. across queries).
    pub fn merge(&mut self, other: &UpdateCounter) {
        self.hist.merge(&other.hist);
    }

    /// Borrow the underlying shared histogram type.
    pub fn histogram(&self) -> &trace::PositionHistogram {
        &self.hist
    }

    /// Consume into the shared histogram type.
    pub fn into_histogram(self) -> trace::PositionHistogram {
        self.hist
    }
}

impl From<trace::PositionHistogram> for UpdateCounter {
    fn from(hist: trace::PositionHistogram) -> Self {
        UpdateCounter { hist }
    }
}

impl UpdateSink for UpdateCounter {
    #[inline]
    fn record(&mut self, pos: usize) {
        self.hist.record(pos);
    }
}

impl UpdateSink for &mut UpdateCounter {
    #[inline]
    fn record(&mut self, pos: usize) {
        self.hist.record(pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_records_and_totals() {
        let mut c = UpdateCounter::new(4);
        c.record(0);
        c.record(0);
        c.record(3);
        assert_eq!(c.per_position(), &[2, 0, 0, 1]);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn merge_adds() {
        let mut a = UpdateCounter::new(2);
        a.record(0);
        let mut b = UpdateCounter::new(2);
        b.record(1);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.per_position(), &[1, 2]);
    }

    #[test]
    #[should_panic]
    fn merge_length_mismatch_panics() {
        let mut a = UpdateCounter::new(2);
        a.merge(&UpdateCounter::new(3));
    }
}
