//! Native (scalar) queue structures for k-selection.
//!
//! These are the CPU-side reference implementations of the three queues the
//! paper compares (Fig. 1): the classic **insertion queue** and **heap
//! queue**, and the paper's **Merge Queue**. They serve three roles:
//!
//! 1. correctness oracles for the simulated GPU kernels;
//! 2. the building block of the native (rayon) k-NN library in the `knn`
//!    crate;
//! 3. the instrumented subjects of Fig. 5 (update counts per position) via
//!    the [`UpdateSink`] hook.
//!
//! All queues share the same contract, captured by [`KQueue`]: they are
//! pre-filled with `(INF, NO_ID)` sentinels, expose the current maximum
//! (the element a new candidate must beat), and accept candidates through
//! [`KQueue::offer`].

mod heap;
mod insertion;
pub mod merge;
pub mod stats;

pub use heap::HeapQueue;
pub use insertion::InsertionQueue;
pub use merge::MergeQueue;
pub use stats::{NoStats, UpdateCounter, UpdateSink};

use crate::types::{sort_neighbors, Neighbor, QueueKind};

/// A bounded priority structure retaining the `k` smallest offered values.
pub trait KQueue {
    /// Capacity `k` of the queue.
    fn k(&self) -> usize;

    /// Current maximum (the "queue head" in the paper — the value a new
    /// candidate must be smaller than to enter). `INF` until `k` real
    /// values have been offered.
    fn max(&self) -> f32;

    /// Offer a candidate; returns true if it entered the queue.
    fn offer(&mut self, dist: f32, id: u32) -> bool;

    /// Snapshot the current contents in arbitrary internal order
    /// (sentinels included when fewer than `k` candidates entered).
    fn contents(&self) -> Vec<Neighbor>;

    /// Extract the retained neighbors sorted ascending by distance,
    /// sentinels stripped.
    fn into_sorted(self) -> Vec<Neighbor>
    where
        Self: Sized,
    {
        let mut v: Vec<Neighbor> = self
            .contents()
            .into_iter()
            .filter(|n| !n.is_sentinel())
            .collect();
        sort_neighbors(&mut v);
        v
    }
}

/// Run plain sequential k-selection (Algorithm 1 of the paper) over a
/// distance list with the given queue.
pub fn select_into<Q: KQueue + ?Sized>(queue: &mut Q, dists: &[f32]) {
    for (id, &d) in dists.iter().enumerate() {
        if d < queue.max() {
            queue.offer(d, id as u32);
        }
    }
}

/// Construct a queue of the requested kind. `m` is the Merge Queue's
/// level-0 size (ignored by the other kinds).
///
/// # Panics
/// For `QueueKind::Merge` when `k` is not `m · 2^j` (see [`MergeQueue`]).
pub fn make_queue(kind: QueueKind, k: usize, m: usize) -> Box<dyn KQueue> {
    match kind {
        QueueKind::Insertion => Box::new(InsertionQueue::new(k)),
        QueueKind::Heap => Box::new(HeapQueue::new(k)),
        QueueKind::Merge => Box::new(MergeQueue::new(k, m)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_into_matches_sort_for_all_kinds() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let dists: Vec<f32> = (0..500).map(|_| rng.gen::<f32>()).collect();
        let mut expect = dists.clone();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for kind in QueueKind::ALL {
            let mut q = make_queue(kind, 32, 8);
            select_into(q.as_mut(), &dists);
            let mut got = q.contents();
            got.retain(|n| !n.is_sentinel());
            sort_neighbors(&mut got);
            let got_d: Vec<f32> = got.iter().map(|n| n.dist).collect();
            assert_eq!(got_d, &expect[..32], "{kind}");
            for n in &got {
                assert_eq!(dists[n.id as usize], n.dist, "{kind}: id must match value");
            }
        }
    }

    #[test]
    fn fewer_candidates_than_k() {
        for kind in QueueKind::ALL {
            let mut q = make_queue(kind, 16, 8);
            select_into(q.as_mut(), &[3.0, 1.0, 2.0]);
            let mut got = q.contents();
            got.retain(|n| !n.is_sentinel());
            sort_neighbors(&mut got);
            assert_eq!(
                got.iter().map(|n| n.dist).collect::<Vec<_>>(),
                vec![1.0, 2.0, 3.0],
                "{kind}"
            );
        }
    }
}
