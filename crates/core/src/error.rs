//! The typed error surface of the k-NN pipeline.
//!
//! Untrusted-input and fault-recovery paths return [`KnnError`] instead
//! of panicking; each variant has a stable kebab-case [`KnnError::name`]
//! that the CLI prints and tests match on. Kernel-internal bugs (an
//! out-of-bounds simulated access, a broken queue invariant in a clean
//! run) still panic — those are programming errors, not inputs.

/// Why a k-NN request (or one of its queries) could not be served.
///
/// Marked `#[non_exhaustive]`: the serving layer keeps growing this
/// surface (admission control added [`KnnError::Overloaded`] and
/// [`KnnError::DeadlineExceeded`]), and downstream crates must be able
/// to `?`-propagate without a new variant being a breaking change.
/// Match with a `_` arm.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum KnnError {
    /// `k` is zero or exceeds the number of reference points.
    InvalidK { k: usize, n: usize },
    /// Points with zero dimensions carry no information to search.
    ZeroDim,
    /// An input coordinate was NaN or infinite. `kind` says which side
    /// (`"query"` / `"reference"`), `index` which point.
    NonFiniteInput { kind: &'static str, index: usize },
    /// The Merge Queue needs `k = m·2^j`; this `(k, m)` pair is not.
    MergeShape { k: usize, m: usize },
    /// The configured candidate buffer exceeds the device's shared
    /// memory.
    BufferTooLarge { bytes: u64, limit: u64 },
    /// No queries / no reference points were supplied.
    EmptyInput { what: &'static str },
    /// A fault campaign was requested but the binary was built without
    /// the `fault` feature, so the injection hooks do not exist.
    FaultsNotCompiled,
    /// A PCIe transfer kept failing its integrity check after every
    /// allowed retry.
    TransferFailed { attempts: u32 },
    /// The serving layer refused admission: the bounded queue already
    /// holds `depth` requests against a capacity of `capacity` (or the
    /// circuit breaker is open, in which case `depth == capacity`).
    Overloaded { depth: usize, capacity: usize },
    /// The request's deadline expired before service completed; the
    /// remaining work was cancelled cooperatively. `budget_ns` is the
    /// deadline budget the request arrived with, in simulated
    /// nanoseconds.
    DeadlineExceeded { budget_ns: u64 },
}

impl KnnError {
    /// Stable kebab-case error name for CLI output and counters.
    pub fn name(&self) -> &'static str {
        match self {
            KnnError::InvalidK { .. } => "invalid-k",
            KnnError::ZeroDim => "zero-dim",
            KnnError::NonFiniteInput { .. } => "non-finite-input",
            KnnError::MergeShape { .. } => "merge-shape",
            KnnError::BufferTooLarge { .. } => "buffer-too-large",
            KnnError::EmptyInput { .. } => "empty-input",
            KnnError::FaultsNotCompiled => "faults-not-compiled",
            KnnError::TransferFailed { .. } => "transfer-failed",
            KnnError::Overloaded { .. } => "overloaded",
            KnnError::DeadlineExceeded { .. } => "deadline-exceeded",
        }
    }
}

impl core::fmt::Display for KnnError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            KnnError::InvalidK { k, n } => {
                write!(
                    f,
                    "k = {k} is invalid for {n} reference points (need 1 <= k <= n)"
                )
            }
            KnnError::ZeroDim => f.write_str("points must have at least one dimension"),
            KnnError::NonFiniteInput { kind, index } => {
                write!(f, "{kind} point {index} contains a non-finite coordinate")
            }
            KnnError::MergeShape { k, m } => {
                write!(
                    f,
                    "merge queue requires k = m·2^j, got k = {k} with m = {m}"
                )
            }
            KnnError::BufferTooLarge { bytes, limit } => {
                write!(
                    f,
                    "candidate buffer needs {bytes} B of shared memory but the device has {limit} B"
                )
            }
            KnnError::EmptyInput { what } => write!(f, "no {what} supplied"),
            KnnError::FaultsNotCompiled => f.write_str(
                "fault injection requested but this binary was built without the `fault` feature",
            ),
            KnnError::TransferFailed { attempts } => {
                write!(
                    f,
                    "PCIe transfer failed integrity check after {attempts} attempts"
                )
            }
            KnnError::Overloaded { depth, capacity } => {
                write!(
                    f,
                    "admission refused: queue holds {depth} of {capacity} requests"
                )
            }
            KnnError::DeadlineExceeded { budget_ns } => {
                write!(
                    f,
                    "deadline of {budget_ns} ns expired before service completed"
                )
            }
        }
    }
}

impl std::error::Error for KnnError {}

impl From<simt::ResilienceError> for KnnError {
    fn from(e: simt::ResilienceError) -> Self {
        match e {
            simt::ResilienceError::FaultsNotCompiled => KnnError::FaultsNotCompiled,
            // A zero-attempt policy is a configuration bug surfaced as an
            // invalid input rather than a panic.
            simt::ResilienceError::ZeroAttempts => KnnError::InvalidK { k: 0, n: 0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_messages_are_stable() {
        let cases: Vec<(KnnError, &str, &str)> = vec![
            (KnnError::InvalidK { k: 0, n: 10 }, "invalid-k", "k = 0"),
            (KnnError::ZeroDim, "zero-dim", "dimension"),
            (
                KnnError::NonFiniteInput {
                    kind: "query",
                    index: 3,
                },
                "non-finite-input",
                "query point 3",
            ),
            (KnnError::MergeShape { k: 24, m: 8 }, "merge-shape", "m·2^j"),
            (
                KnnError::BufferTooLarge {
                    bytes: 1 << 20,
                    limit: 49152,
                },
                "buffer-too-large",
                "49152",
            ),
            (
                KnnError::EmptyInput { what: "queries" },
                "empty-input",
                "queries",
            ),
            (KnnError::FaultsNotCompiled, "faults-not-compiled", "fault"),
            (
                KnnError::TransferFailed { attempts: 4 },
                "transfer-failed",
                "4 attempts",
            ),
            (
                KnnError::Overloaded {
                    depth: 8,
                    capacity: 8,
                },
                "overloaded",
                "8 of 8",
            ),
            (
                KnnError::DeadlineExceeded { budget_ns: 5_000 },
                "deadline-exceeded",
                "5000 ns",
            ),
        ];
        for (err, name, fragment) in cases {
            assert_eq!(err.name(), name);
            let msg = err.to_string();
            assert!(msg.contains(fragment), "{name}: {msg}");
        }
    }

    #[test]
    fn propagates_as_std_error() {
        // Downstream crates `?`-propagate into `Box<dyn Error>`.
        fn fallible() -> Result<(), Box<dyn std::error::Error>> {
            Err(KnnError::Overloaded {
                depth: 1,
                capacity: 1,
            })?
        }
        let e = fallible().unwrap_err();
        assert!(e.to_string().contains("admission refused"));
    }

    #[test]
    fn resilience_error_converts() {
        assert_eq!(
            KnnError::from(simt::ResilienceError::FaultsNotCompiled),
            KnnError::FaultsNotCompiled
        );
    }
}
