//! Warp-synchronous queue kernels for the three queue structures.
//!
//! One warp serves 32 k-NN queries: lane `l` owns the queue of query
//! `warp_base + l`. Queues live in [`LaneLocal`] storage (CUDA "local
//! memory": interleaved, so lockstep same-index access coalesces). The
//! current queue maximum is cached in a register ([`WarpQueues::qmax`]),
//! refreshed after every insert — exactly what the CUDA code does to avoid
//! re-loading `dqueue[0]` for every scanned element.
//!
//! The cost characteristics the paper measures emerge from the access
//! patterns, not from hand-tuned constants:
//!
//! * **insertion queue** — the shift loop advances a *uniform* index, so
//!   accesses coalesce, but the warp iterates until its *deepest* inserting
//!   lane finishes: O(k) serialized trips;
//! * **heap queue** — the sift-down walks per-lane tree paths: few trips
//!   (O(log k)) but scattered accesses;
//! * **merge queue** — inserts touch only the m-element level 0; repairs
//!   are bitonic-merge networks over uniform indices (fully coalesced).
//!   Unaligned, a repair runs whenever *some* lane needs one (most lanes
//!   idle); **aligned** (intra-warp flag), every lane merges together,
//!   which amortises repairs across the warp and postpones everyone's next
//!   repair — the 10.5× effect in Table I.

use simt::mem::{LaneLocal, SharedBuf};
use simt::{lanes_from_fn, splat, Lanes, Mask, WarpCtx, WARP_SIZE};

use crate::bitonic::{reverse_bitonic_merge_schedule, Comparator};
use crate::queues::merge::valid_capacity;
use crate::types::{sort_neighbors, Neighbor, QueueKind, INF, NO_ID};

/// How the Merge Queue repairs its invariant (paper §V names work-
/// optimal merges — Merge Path, Adaptive Bitonic — as future work; this
/// knob lets the repro quantify the trade-off).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairKind {
    /// The paper's Reverse Bitonic Merge network: O(s log s) comparators,
    /// every access at a uniform index (fully coalesced).
    BitonicNetwork,
    /// A work-optimal two-pointer merge (the sequential core of Merge
    /// Path): O(s) steps, but the per-lane pointers diverge, so every
    /// read scatters — the trade-off that justifies the paper's choice.
    LinearMerge,
}

/// Per-warp queue state: 32 independent queues, one per lane.
pub struct WarpQueues {
    /// Queue distances, `k` per lane.
    pub dq: LaneLocal<f32>,
    /// Queue ids, `k` per lane.
    pub iq: LaneLocal<u32>,
    /// Register cache of each lane's `dq[0]` (the value to beat).
    pub qmax: Lanes<f32>,
    k: usize,
    kind: QueueKind,
    m: usize,
    aligned: bool,
    /// Shared-memory word used as the intra-warp merge flag.
    flag: SharedBuf<u32>,
    /// Reverse-merge schedules for prefix sizes 2m … k (merge queue only).
    schedules: Vec<Vec<Comparator>>,
    /// Number of merge-repair passes executed (for tests/diagnostics).
    pub merge_passes: u64,
    /// Merge-repair algorithm (Merge Queue only).
    pub repair: RepairKind,
    /// Ablation switch: when true, the Merge Queue repairs *eagerly*
    /// (full cascade after every accepted insert) instead of lazily
    /// (only when a level head goes out of order). Quantifies the
    /// paper's Lazy Update contribution. Default false.
    pub eager: bool,
    /// Technique-level event counters. The queue owns the registry for
    /// the whole warp (buffer and hierarchy code reach it through their
    /// `&mut WarpQueues`); increments only happen under the `trace`
    /// feature.
    pub counters: super::KernelCounters,
}

impl WarpQueues {
    /// Fresh queues of capacity `k` for every lane.
    ///
    /// # Panics
    /// For [`QueueKind::Merge`] when `k` is not `m·2^j`.
    pub fn new(kind: QueueKind, k: usize, m: usize, aligned: bool) -> Self {
        assert!(k > 0);
        let schedules = if kind == QueueKind::Merge {
            assert!(
                valid_capacity(k, m),
                "Merge Queue requires k = m·2^j (got k={k}, m={m})"
            );
            let mut v = Vec::new();
            let mut s = 2 * m;
            while s <= k {
                v.push(reverse_bitonic_merge_schedule(s));
                s *= 2;
            }
            v
        } else {
            Vec::new()
        };
        WarpQueues {
            dq: LaneLocal::new(k, INF),
            iq: LaneLocal::new(k, NO_ID),
            qmax: splat(INF),
            k,
            kind,
            m,
            aligned,
            flag: SharedBuf::new(1),
            schedules,
            merge_passes: 0,
            repair: RepairKind::BitonicNetwork,
            eager: false,
            counters: super::KernelCounters::default(),
        }
    }

    /// Queue capacity.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Queue structure in use.
    pub fn kind(&self) -> QueueKind {
        self.kind
    }

    /// Reset all lanes' queues to sentinels (used by Hierarchical
    /// Partition between levels). Costs `k` coalesced writes per array.
    pub fn reset(&mut self, ctx: &mut WarpCtx, warp: Mask) {
        for i in 0..self.k {
            self.dq.write_uniform(ctx, warp, i, &splat(INF));
            self.iq.write_uniform(ctx, warp, i, &splat(NO_ID));
        }
        self.qmax = splat(INF);
    }

    /// Insert candidates into the lanes' queues.
    ///
    /// * `warp` — lanes executing the surrounding code (for aligned
    ///   merge participation);
    /// * `ins` — lanes whose candidate passed the `dist < qmax` check
    ///   (must be a subset of `warp`).
    pub fn insert(
        &mut self,
        ctx: &mut WarpCtx,
        warp: Mask,
        ins: Mask,
        dist: &Lanes<f32>,
        id: &Lanes<u32>,
    ) {
        #[cfg(feature = "trace")]
        {
            self.counters.queue_inserts += ins.lanes().count() as u64;
        }
        if !ins.any_lane() {
            return;
        }
        match self.kind {
            QueueKind::Insertion => {
                ctx.mark("queues::insertion_insert");
                self.insertion_insert(ctx, ins, dist, id, self.k);
            }
            QueueKind::Heap => {
                ctx.mark("queues::heap_insert");
                self.heap_insert(ctx, ins, dist, id);
            }
            QueueKind::Merge => {
                // Flat insert into level 0, then lazy repair.
                ctx.mark("queues::merge_insert");
                self.insertion_insert(ctx, ins, dist, id, self.m.min(self.k));
                ctx.mark("queues::merge_repair");
                self.merge_repair(ctx, warp, ins);
            }
        }
        // Refresh the register cache of the queue head. The head can move
        // for any lane that inserted — and, under aligned merges, for any
        // lane that was dragged into a repair — so refresh the whole warp.
        let head = self.dq.read_uniform(ctx, warp, 0);
        for l in warp.lanes() {
            self.qmax[l] = head[l];
        }
        #[cfg(feature = "sanitize")]
        self.audit_lanes(warp);
    }

    /// Host-side invariant audit of every live lane's queue, run after
    /// each insert under the `sanitize` feature. Charges no simulated
    /// cost (it inspects state the way a debugger would) and panics with
    /// the offending lane and the [`check::audit`] diagnosis.
    #[cfg(feature = "sanitize")]
    fn audit_lanes(&self, warp: Mask) {
        use check::audit;
        for l in warp.lanes() {
            let vals: Vec<f32> = (0..self.k).map(|i| self.dq.peek(l, i)).collect();
            let res = match self.kind {
                QueueKind::Insertion => audit::audit_sorted_desc(&vals, "insertion queue"),
                QueueKind::Heap => audit::audit_heap(&vals),
                QueueKind::Merge => audit::audit_merge_queue(&vals, self.m),
            };
            if let Err(e) = res {
                panic!("sanitize audit: lane {l} {} queue: {e}", self.kind);
            }
        }
    }

    /// Insertion-sort a candidate into the first `bound` positions
    /// (the whole queue for the insertion queue; level 0 for the merge
    /// queue's flat insert). The scan index is uniform across lanes, so
    /// every access coalesces; the warp iterates until its deepest lane
    /// finishes.
    fn insertion_insert(
        &mut self,
        ctx: &mut WarpCtx,
        ins: Mask,
        dist: &Lanes<f32>,
        id: &Lanes<u32>,
        bound: usize,
    ) {
        let mut live = ins;
        let mut i = 1usize;
        while live.any_lane() {
            if i >= bound {
                // Remaining lanes shifted everything: candidate lands at
                // the tail position.
                self.dq.write_uniform(ctx, live, bound - 1, dist);
                self.iq.write_uniform(ctx, live, bound - 1, id);
                break;
            }
            ctx.loop_head(live);
            let cur = self.dq.read_uniform(ctx, live, i);
            let cond = lanes_from_fn(|l| cur[l] > dist[l]);
            let (cont, done) = ctx.diverge(live, cond);
            if done.any_lane() {
                self.dq.write_uniform(ctx, done, i - 1, dist);
                self.iq.write_uniform(ctx, done, i - 1, id);
            }
            if cont.any_lane() {
                // Shift the larger element one step towards the head.
                self.dq.write_uniform(ctx, cont, i - 1, &cur);
                let cur_id = self.iq.read_uniform(ctx, cont, i);
                self.iq.write_uniform(ctx, cont, i - 1, &cur_id);
            }
            live = cont;
            i += 1;
        }
    }

    /// Replace-root sift-down. Tree paths differ per lane, so reads and
    /// writes scatter — the heap's SIMT weakness.
    fn heap_insert(&mut self, ctx: &mut WarpCtx, ins: Mask, dist: &Lanes<f32>, id: &Lanes<u32>) {
        let k = self.k;
        let mut pos: Lanes<usize> = splat(0);
        let mut live = ins;
        while live.any_lane() {
            ctx.loop_head(live);
            // Leaf check is pure index arithmetic.
            ctx.op(live, 1);
            let leaf_pred = lanes_from_fn(|l| 2 * pos[l] + 1 >= k);
            let (leaf, inner) = ctx.diverge(live, leaf_pred);
            if leaf.any_lane() {
                self.dq.write(ctx, leaf, &pos, dist);
                self.iq.write(ctx, leaf, &pos, id);
            }
            if !inner.any_lane() {
                break;
            }
            let left_idx = lanes_from_fn(|l| 2 * pos[l] + 1);
            let left = self.dq.read(ctx, inner, &left_idx);
            // Lanes whose right child exists read it; others reuse left.
            let has_right = lanes_from_fn(|l| 2 * pos[l] + 2 < k);
            let right_mask = inner.and_lanes(&has_right);
            let right_idx = lanes_from_fn(|l| (2 * pos[l] + 2).min(k - 1));
            let right = if right_mask.any_lane() {
                self.dq.read(ctx, right_mask, &right_idx)
            } else {
                splat(f32::NEG_INFINITY)
            };
            // Pick the larger child (branch-free select).
            ctx.op(inner, 2);
            let child_idx = lanes_from_fn(|l| {
                if right_mask.get(l) && right[l] > left[l] {
                    right_idx[l]
                } else {
                    left_idx[l]
                }
            });
            let child_val = lanes_from_fn(|l| {
                if right_mask.get(l) && right[l] > left[l] {
                    right[l]
                } else {
                    left[l]
                }
            });
            let sink_pred = lanes_from_fn(|l| child_val[l] > dist[l]);
            let (sink, settle) = ctx.diverge(inner, sink_pred);
            if settle.any_lane() {
                self.dq.write(ctx, settle, &pos, dist);
                self.iq.write(ctx, settle, &pos, id);
            }
            if sink.any_lane() {
                // Pull the larger child up and descend.
                self.dq.write(ctx, sink, &pos, &child_val);
                let child_id = self.iq.read(ctx, sink, &child_idx);
                self.iq.write(ctx, sink, &pos, &child_id);
                for l in sink.lanes() {
                    pos[l] = child_idx[l];
                }
            }
            live = sink;
        }
    }

    /// The Merge Queue's lazy repair cascade (Algorithm 2). Unaligned:
    /// only lanes whose invariant broke participate. Aligned: an
    /// intra-warp shared flag drags the whole warp into the repair.
    fn merge_repair(&mut self, ctx: &mut WarpCtx, warp: Mask, ins: Mask) {
        let k = self.k;
        let mut prev = 0usize;
        let mut next = self.m;
        let mut live = if self.aligned { warp } else { ins };
        while next < k && live.any_lane() {
            let head_prev = self.dq.read_uniform(ctx, live, prev);
            let head_next = self.dq.read_uniform(ctx, live, next);
            let need = if self.eager {
                lanes_from_fn(|l| live.get(l))
            } else {
                lanes_from_fn(|l| head_prev[l] < head_next[l])
            };
            if self.aligned {
                // Intra-warp communication: any lane raises the shared
                // flag; everyone reads it and merges together. The
                // warp_fence calls are free lockstep markers that tell
                // the race sanitizer the flag write and the subsequent
                // warp-wide read are ordered by SIMT lockstep, not racing.
                let raisers = ctx.ballot(live, &need);
                ctx.warp_fence();
                self.flag
                    .write_broadcast(ctx, raisers, 0, u32::from(raisers.any_lane()));
                ctx.warp_fence();
                let flag = self.flag.read_broadcast(ctx, live, 0);
                #[cfg(feature = "trace")]
                {
                    self.counters.aligned_syncs += 1;
                }
                if flag == 0 {
                    break;
                }
                self.run_merge(ctx, live, 2 * next);
                // Reset the flag for the next level check.
                ctx.warp_fence();
                self.flag.write_broadcast(ctx, live, 0, 0);
                ctx.warp_fence();
            } else {
                let (merge_m, _) = ctx.diverge(live, need);
                if !merge_m.any_lane() {
                    break;
                }
                self.run_merge(ctx, merge_m, 2 * next);
                live = merge_m;
            }
            prev = next;
            next *= 2;
        }
    }

    /// Repair the prefix `[0, size)` for the given lanes, dispatching on
    /// [`RepairKind`].
    fn run_merge(&mut self, ctx: &mut WarpCtx, lanes: Mask, size: usize) {
        match self.repair {
            RepairKind::BitonicNetwork => self.run_bitonic_merge(ctx, lanes, size),
            RepairKind::LinearMerge => self.run_linear_merge(ctx, lanes, size),
        }
        self.merge_passes += 1;
        #[cfg(feature = "trace")]
        {
            // Cascade level: size = 2m·2^level.
            let level = (size / (2 * self.m)).trailing_zeros() as usize;
            if self.counters.merge_repairs_by_level.len() <= level {
                self.counters.merge_repairs_by_level.resize(level + 1, 0);
            }
            self.counters.merge_repairs_by_level[level] += 1;
        }
    }

    /// Execute the reverse-bitonic-merge network over prefix
    /// `[0, size)` for the given lanes. Every comparator is a branch-free
    /// compare-exchange at uniform indices: 4 coalesced accesses + ALU.
    fn run_bitonic_merge(&mut self, ctx: &mut WarpCtx, lanes: Mask, size: usize) {
        let sched_idx = (size / (2 * self.m)).trailing_zeros() as usize;
        let schedule = core::mem::take(&mut self.schedules[sched_idx]);
        for &(a, b) in &schedule {
            let va = self.dq.read_uniform(ctx, lanes, a);
            let vb = self.dq.read_uniform(ctx, lanes, b);
            let ia = self.iq.read_uniform(ctx, lanes, a);
            let ib = self.iq.read_uniform(ctx, lanes, b);
            // Branch-free min/max + select: no divergence.
            ctx.op(lanes, 2);
            let swap = lanes_from_fn(|l| va[l] < vb[l]);
            let na = lanes_from_fn(|l| if swap[l] { vb[l] } else { va[l] });
            let nb = lanes_from_fn(|l| if swap[l] { va[l] } else { vb[l] });
            let nia = lanes_from_fn(|l| if swap[l] { ib[l] } else { ia[l] });
            let nib = lanes_from_fn(|l| if swap[l] { ia[l] } else { ib[l] });
            self.dq.write_uniform(ctx, lanes, a, &na);
            self.dq.write_uniform(ctx, lanes, b, &nb);
            self.iq.write_uniform(ctx, lanes, a, &nia);
            self.iq.write_uniform(ctx, lanes, b, &nib);
        }
        self.schedules[sched_idx] = schedule;
    }

    /// Work-optimal two-pointer merge of the two descending halves of
    /// `[0, size)` into a scratch area, then copy back. O(size) steps,
    /// but the per-lane read pointers differ, so reads scatter.
    fn run_linear_merge(&mut self, ctx: &mut WarpCtx, lanes: Mask, size: usize) {
        let half = size / 2;
        let mut sd = LaneLocal::new(size, INF);
        let mut si = LaneLocal::new(size, NO_ID);
        let mut pa: Lanes<usize> = splat(0);
        let mut pb: Lanes<usize> = splat(half);
        for out in 0..size {
            // Guarded scattered reads; an exhausted side yields -inf so
            // the other side wins the descending merge.
            ctx.op(lanes, 2);
            let a_live = lanes.filter(|l| pa[l] < half);
            let b_live = lanes.filter(|l| pb[l] < size);
            let ia = lanes_from_fn(|l| pa[l].min(half.saturating_sub(1)));
            let ib = lanes_from_fn(|l| pb[l].min(size - 1));
            let va_raw = self.dq.read(ctx, a_live, &ia);
            let vb_raw = self.dq.read(ctx, b_live, &ib);
            let ja = self.iq.read(ctx, a_live, &ia);
            let jb = self.iq.read(ctx, b_live, &ib);
            let va = lanes_from_fn(|l| {
                if a_live.get(l) {
                    va_raw[l]
                } else {
                    f32::NEG_INFINITY
                }
            });
            let vb = lanes_from_fn(|l| {
                if b_live.get(l) {
                    vb_raw[l]
                } else {
                    f32::NEG_INFINITY
                }
            });
            ctx.op(lanes, 2);
            let take_a = lanes_from_fn(|l| va[l] >= vb[l]);
            let od = lanes_from_fn(|l| if take_a[l] { va[l] } else { vb[l] });
            let oi = lanes_from_fn(|l| if take_a[l] { ja[l] } else { jb[l] });
            sd.write_uniform(ctx, lanes, out, &od);
            si.write_uniform(ctx, lanes, out, &oi);
            for l in lanes.lanes() {
                if take_a[l] {
                    pa[l] += 1;
                } else {
                    pb[l] += 1;
                }
            }
        }
        // Copy back (uniform, coalesced).
        for i in 0..size {
            let d = sd.read_uniform(ctx, lanes, i);
            let j = si.read_uniform(ctx, lanes, i);
            self.dq.write_uniform(ctx, lanes, i, &d);
            self.iq.write_uniform(ctx, lanes, i, &j);
        }
    }

    /// Host-side result extraction for one lane: non-sentinel entries,
    /// sorted ascending. No simulated cost (results stay on-device in the
    /// real pipeline).
    pub fn lane_results(&self, lane: usize) -> Vec<Neighbor> {
        assert!(lane < WARP_SIZE);
        let mut v: Vec<Neighbor> = (0..self.k)
            .map(|i| Neighbor::new(self.dq.peek(lane, i), self.iq.peek(lane, i)))
            .filter(|n| !n.is_sentinel())
            .collect();
        sort_neighbors(&mut v);
        v
    }
}

// Test harnesses drive element streams by index (`streams[lane][e]`)
// to mirror the kernel's per-element loop; the range loop is the idiom.
#[allow(clippy::needless_range_loop)]
#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn ctx() -> WarpCtx {
        WarpCtx::new(128, 32)
    }

    /// Drive candidates through the warp queues, each lane receiving an
    /// independent stream, and compare to a per-lane sort oracle.
    fn drive(kind: QueueKind, k: usize, aligned: bool, n: usize, seed: u64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let streams: Vec<Vec<f32>> = (0..WARP_SIZE)
            .map(|_| (0..n).map(|_| rng.gen()).collect())
            .collect();
        let mut c = ctx();
        let mut q = WarpQueues::new(kind, k, 8, aligned);
        let warp = Mask::full();
        for e in 0..n {
            let d = lanes_from_fn(|l| streams[l][e]);
            let pred = lanes_from_fn(|l| d[l] < q.qmax[l]);
            let (ins, _) = c.diverge(warp, pred);
            q.insert(&mut c, warp, ins, &d, &splat(e as u32));
        }
        for l in 0..WARP_SIZE {
            let got: Vec<f32> = q.lane_results(l).iter().map(|n| n.dist).collect();
            let mut expect = streams[l].clone();
            expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
            expect.truncate(k);
            assert_eq!(got, expect, "{kind} k={k} aligned={aligned} lane={l}");
        }
    }

    #[test]
    fn insertion_kernel_selects_k_smallest() {
        drive(QueueKind::Insertion, 16, false, 800, 61);
    }

    #[test]
    fn heap_kernel_selects_k_smallest() {
        drive(QueueKind::Heap, 16, false, 800, 62);
        drive(QueueKind::Heap, 13, false, 500, 63); // non-power-of-two k
    }

    #[test]
    fn merge_kernel_selects_k_smallest_unaligned() {
        drive(QueueKind::Merge, 32, false, 800, 64);
    }

    #[test]
    fn merge_kernel_selects_k_smallest_aligned() {
        drive(QueueKind::Merge, 32, true, 800, 65);
        drive(QueueKind::Merge, 64, true, 1500, 66);
    }

    #[test]
    fn aligned_merge_does_fewer_repair_passes() {
        // The headline effect: synchronising repairs across the warp
        // slashes the number of merge passes the warp serializes through.
        let run = |aligned: bool| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(67);
            let n = 4000;
            let streams: Vec<Vec<f32>> = (0..WARP_SIZE)
                .map(|_| (0..n).map(|_| rng.gen()).collect())
                .collect();
            let mut c = ctx();
            let mut q = WarpQueues::new(QueueKind::Merge, 64, 8, aligned);
            let warp = Mask::full();
            for e in 0..n {
                let d = lanes_from_fn(|l| streams[l][e]);
                let pred = lanes_from_fn(|l| d[l] < q.qmax[l]);
                let (ins, _) = c.diverge(warp, pred);
                q.insert(&mut c, warp, ins, &d, &splat(e as u32));
            }
            (q.merge_passes, c.into_metrics())
        };
        let (passes_unaligned, m_unaligned) = run(false);
        let (passes_aligned, m_aligned) = run(true);
        assert!(
            passes_aligned * 2 < passes_unaligned,
            "aligned {passes_aligned} vs unaligned {passes_unaligned}"
        );
        // and the aligned variant issues fewer instructions overall
        assert!(m_aligned.issued < m_unaligned.issued);
        // while achieving better SIMT efficiency
        assert!(m_aligned.simt_efficiency() > m_unaligned.simt_efficiency());
    }

    #[test]
    fn insertion_coalesces_heap_scatters() {
        let run = |kind: QueueKind| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(68);
            let n = 2000;
            let streams: Vec<Vec<f32>> = (0..WARP_SIZE)
                .map(|_| (0..n).map(|_| rng.gen()).collect())
                .collect();
            let mut c = ctx();
            let mut q = WarpQueues::new(kind, 64, 8, false);
            let warp = Mask::full();
            for e in 0..n {
                let d = lanes_from_fn(|l| streams[l][e]);
                let pred = lanes_from_fn(|l| d[l] < q.qmax[l]);
                let (ins, _) = c.diverge(warp, pred);
                q.insert(&mut c, warp, ins, &d, &splat(e as u32));
            }
            let m = c.into_metrics();
            m.coalescing_efficiency(128)
        };
        let ins_eff = run(QueueKind::Insertion);
        let heap_eff = run(QueueKind::Heap);
        assert!(
            ins_eff > heap_eff,
            "insertion {ins_eff:.3} vs heap {heap_eff:.3}"
        );
    }

    #[test]
    fn partial_warp_mask() {
        // Only 5 lanes live (trailing warp): results must still be exact
        // and inactive lanes untouched.
        let mut rng = rand::rngs::StdRng::seed_from_u64(69);
        let n = 300;
        let streams: Vec<Vec<f32>> = (0..WARP_SIZE)
            .map(|_| (0..n).map(|_| rng.gen()).collect())
            .collect();
        let mut c = ctx();
        let warp = Mask::first(5);
        let mut q = WarpQueues::new(QueueKind::Merge, 16, 8, true);
        for e in 0..n {
            let d = lanes_from_fn(|l| streams[l][e]);
            let pred = lanes_from_fn(|l| d[l] < q.qmax[l]);
            let (ins, _) = c.diverge(warp, pred);
            q.insert(&mut c, warp, ins, &d, &splat(e as u32));
        }
        for l in 0..5 {
            let got: Vec<f32> = q.lane_results(l).iter().map(|n| n.dist).collect();
            let mut expect = streams[l].clone();
            expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
            expect.truncate(16);
            assert_eq!(got, expect, "lane {l}");
        }
        for l in 5..WARP_SIZE {
            assert!(q.lane_results(l).is_empty(), "inactive lane {l} touched");
        }
    }

    #[test]
    fn linear_merge_repair_is_exact() {
        // The Merge-Path-style repair must compute the same queue
        // contents as the bitonic network.
        let mut rng = rand::rngs::StdRng::seed_from_u64(70);
        let n = 2000;
        let streams: Vec<Vec<f32>> = (0..WARP_SIZE)
            .map(|_| (0..n).map(|_| rng.gen()).collect())
            .collect();
        let run = |repair: super::RepairKind| {
            let mut c = ctx();
            let mut q = WarpQueues::new(QueueKind::Merge, 64, 8, true);
            q.repair = repair;
            let warp = Mask::full();
            for e in 0..n {
                let d = lanes_from_fn(|l| streams[l][e]);
                let pred = lanes_from_fn(|l| d[l] < q.qmax[l]);
                let (ins, _) = c.diverge(warp, pred);
                q.insert(&mut c, warp, ins, &d, &splat(e as u32));
            }
            let results: Vec<Vec<f32>> = (0..WARP_SIZE)
                .map(|l| q.lane_results(l).iter().map(|nb| nb.dist).collect())
                .collect();
            (results, c.into_metrics())
        };
        let (bitonic_res, bitonic_m) = run(super::RepairKind::BitonicNetwork);
        let (linear_res, linear_m) = run(super::RepairKind::LinearMerge);
        assert_eq!(bitonic_res, linear_res);
        // The linear merge does fewer issue slots (work-optimal) but far
        // worse coalescing — the paper's rationale for bitonic networks.
        assert!(
            linear_m.coalescing_efficiency(128) < bitonic_m.coalescing_efficiency(128),
            "linear {:.3} vs bitonic {:.3}",
            linear_m.coalescing_efficiency(128),
            bitonic_m.coalescing_efficiency(128)
        );
    }

    #[test]
    fn reset_restores_sentinels() {
        let mut c = ctx();
        let mut q = WarpQueues::new(QueueKind::Insertion, 8, 8, false);
        let warp = Mask::full();
        q.insert(&mut c, warp, warp, &splat(0.5), &splat(7));
        assert_eq!(q.qmax[0], INF); // k=8, one insert: head still sentinel
        q.reset(&mut c, warp);
        for l in 0..WARP_SIZE {
            assert!(q.lane_results(l).is_empty());
        }
        assert_eq!(q.qmax[3], INF);
    }
}
