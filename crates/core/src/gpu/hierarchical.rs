//! Warp-level **Hierarchical Partition** (paper §III-E).
//!
//! Each lane builds and searches its own hierarchy over its own distance
//! column. Construction is the SIMT sweet spot the paper advertises: a
//! linear scan with branch-free min-accumulation, perfectly coalesced
//! reads from the distance matrix and coalesced writes of the group
//! minima. Top-down search then touches only ~G·k elements per level; the
//! child expansions read at per-lane indices (scattered — the honest cost
//! of the descent, which the paper's speedup figures already absorb).

use simt::mem::{GlobalBuf, LaneLocal};
use simt::{lanes_from_fn, splat, Lanes, Mask, WarpCtx};

use crate::types::{INF, NO_ID};

use super::buffered::WarpBuffer;
use super::queues::WarpQueues;

/// Sizes of the reduced levels for an input of `n` elements, group size
/// `g`, stopping at ≤ `k` (mirrors the native `Hierarchy::build`).
pub fn level_sizes(n: usize, g: usize, k: usize) -> Vec<usize> {
    assert!(g >= 2 && k > 0);
    let mut sizes = Vec::new();
    let mut cur = n;
    while cur > k {
        cur = cur.div_ceil(g);
        sizes.push(cur);
        if cur <= k {
            break;
        }
    }
    sizes
}

/// Per-warp staging area for one level's expanded children during
/// Top-Down search: holds up to `G·k` `(value, index)` pairs per lane so
/// the scattered child reads happen exactly once per level.
pub struct ChildStash {
    /// Stashed child values (poisoned with `INF` where not offerable).
    pub d: LaneLocal<f32>,
    /// Stashed child indices.
    pub i: LaneLocal<u32>,
}

impl ChildStash {
    /// Allocate room for `g * k` children per lane.
    pub fn new(g: usize, k: usize) -> Self {
        let cap = (g * k).max(1);
        ChildStash {
            d: LaneLocal::new(cap, INF),
            i: LaneLocal::new(cap, NO_ID),
        }
    }

    /// Children the stash can hold per lane.
    pub fn capacity(&self) -> usize {
        self.d.len_per_lane()
    }
}

/// One warp's hierarchies: 32 per-lane pyramids stored in lane-local
/// memory, all sharing the same shape.
pub struct WarpHierarchy {
    /// Concatenated reduced levels, per lane.
    vals: LaneLocal<f32>,
    /// Start offset of each reduced level inside `vals`.
    offsets: Vec<usize>,
    sizes: Vec<usize>,
    g: usize,
    n: usize,
}

impl WarpHierarchy {
    /// Bottom-Up Construction (Algorithm 4) for the warp's 32 queries.
    ///
    /// `dlist` is the distance matrix in query-major element order:
    /// element `e` of query `q` lives at `e * q_stride + q`; the warp
    /// covers queries `q_base + lane`.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        ctx: &mut WarpCtx,
        warp: Mask,
        dlist: &GlobalBuf<f32>,
        q_base: usize,
        q_stride: usize,
        n: usize,
        g: usize,
        k: usize,
    ) -> Self {
        ctx.mark("hierarchical::build");
        let sizes = level_sizes(n, g, k);
        let total: usize = sizes.iter().sum();
        let mut offsets = Vec::with_capacity(sizes.len());
        let mut acc = 0;
        for &s in &sizes {
            offsets.push(acc);
            acc += s;
        }
        let mut h = WarpHierarchy {
            vals: LaneLocal::new(total.max(1), INF),
            offsets,
            sizes,
            g,
            n,
        };
        // Level 0 → first reduced level: scan the distance matrix.
        if !h.sizes.is_empty() {
            let mut min: Lanes<f32> = splat(INF);
            let mut out = h.offsets[0];
            for e in 0..n {
                let idx = lanes_from_fn(|l| e * q_stride + q_base + l);
                let d = dlist.read(ctx, warp, &idx);
                // Branch-free min accumulation.
                ctx.op(warp, 1);
                for l in warp.lanes() {
                    if d[l] < min[l] {
                        min[l] = d[l];
                    }
                }
                if (e + 1) % g == 0 || e + 1 == n {
                    h.vals.write_uniform(ctx, warp, out, &min);
                    out += 1;
                    min = splat(INF);
                }
            }
            debug_assert_eq!(out, h.offsets[0] + h.sizes[0]);
            // Higher reduced levels: scan the level below (uniform,
            // coalesced lane-local reads).
            for li in 1..h.sizes.len() {
                let below_off = h.offsets[li - 1];
                let below_n = h.sizes[li - 1];
                let mut min: Lanes<f32> = splat(INF);
                let mut out = h.offsets[li];
                for e in 0..below_n {
                    let d = h.vals.read_uniform(ctx, warp, below_off + e);
                    ctx.op(warp, 1);
                    for l in warp.lanes() {
                        if d[l] < min[l] {
                            min[l] = d[l];
                        }
                    }
                    if (e + 1) % g == 0 || e + 1 == below_n {
                        h.vals.write_uniform(ctx, warp, out, &min);
                        out += 1;
                        min = splat(INF);
                    }
                }
                debug_assert_eq!(out, h.offsets[li] + h.sizes[li]);
            }
        }
        #[cfg(feature = "sanitize")]
        h.audit_levels(warp, dlist, q_base, q_stride);
        h
    }

    /// Host-side audit of the freshly built pyramid, run under the
    /// `sanitize` feature: every reduced level must have the tournament
    /// shape (`ceil(|below| / G)` entries) and each entry must be the
    /// exact minimum of its child group. Charges no simulated cost;
    /// panics with the offending lane/level and the [`check::audit`]
    /// diagnosis.
    #[cfg(feature = "sanitize")]
    fn audit_levels(&self, warp: Mask, dlist: &GlobalBuf<f32>, q_base: usize, q_stride: usize) {
        for l in warp.lanes() {
            for li in 0..self.sizes.len() {
                let below: Vec<f32> = if li == 0 {
                    (0..self.n)
                        .map(|e| dlist.as_slice()[e * q_stride + q_base + l])
                        .collect()
                } else {
                    self.peek_level(l, li - 1)
                };
                let level = self.peek_level(l, li);
                if let Err(e) = check::audit::audit_hierarchy_level(&below, &level, self.g) {
                    panic!("sanitize audit: lane {l} hierarchy level {li}: {e}");
                }
            }
        }
    }

    /// Number of reduced levels.
    pub fn depth(&self) -> usize {
        self.sizes.len()
    }

    /// Group size.
    pub fn g(&self) -> usize {
        self.g
    }

    /// Host-side peek of one lane's level (tests only).
    pub fn peek_level(&self, lane: usize, level: usize) -> Vec<f32> {
        (0..self.sizes[level])
            .map(|i| self.vals.peek(lane, self.offsets[level] + i))
            .collect()
    }

    /// Top-Down search: fills `queues` with each lane's k smallest
    /// original elements (ids = element indices in the input list).
    ///
    /// The descent is *incremental*, as the paper intends: the queue is
    /// never reset between levels. At each level, every surviving entry
    /// `(v, i)` — where `v` is by construction the minimum of its child
    /// group `[iG, (i+1)G)` — has its index *translated in place* to the
    /// position of that minimum child (the value does not move, so the
    /// queue invariants are untouched), and only the *other* children are
    /// offered through the normal threshold/insert path. This keeps the
    /// queue warm (critical for the Merge Queue's lazy state), avoids the
    /// duplicate-minimum problem of a naive re-insertion descent, and
    /// performs exactly the ≤ G·k child reads per level the paper counts.
    ///
    /// *Exactness*: before a level, the queue holds the k smallest values
    /// of the candidate set C (each the min of its child group, hence a
    /// member of the expanded child multiset E). Translating the copies
    /// and offering E's remaining elements yields the k smallest of E —
    /// the invariant the module-level proof needs at the next level.
    ///
    /// `stash` must hold at least `G·k` f32/u32 per lane (it buffers one
    /// level's expanded children so the scattered reads happen once);
    /// `buffer` optionally routes inserts through Buffered Search.
    #[allow(clippy::too_many_arguments)]
    pub fn top_down(
        &self,
        ctx: &mut WarpCtx,
        warp: Mask,
        dlist: &GlobalBuf<f32>,
        q_base: usize,
        q_stride: usize,
        queues: &mut WarpQueues,
        mut buffer: Option<&mut WarpBuffer>,
        stash: &mut ChildStash,
    ) {
        ctx.mark("hierarchical::top_down");
        let k = queues.k();
        assert!(stash.capacity() >= self.g * k, "stash too small");
        if self.depth() == 0 {
            // Input already ≤ k elements: plain scan.
            for e in 0..self.n {
                let idx = lanes_from_fn(|l| e * q_stride + q_base + l);
                let d = dlist.read(ctx, warp, &idx);
                self.offer(ctx, warp, warp, &d, &splat(e as u32), queues, &mut buffer);
            }
            if let Some(buf) = buffer.as_deref_mut() {
                buf.flush_all(ctx, warp, queues);
            }
            return;
        }
        // Top level: every element is a candidate.
        let top = self.depth() - 1;
        for e in 0..self.sizes[top] {
            let d = self.vals.read_uniform(ctx, warp, self.offsets[top] + e);
            self.offer(ctx, warp, warp, &d, &splat(e as u32), queues, &mut buffer);
        }
        if let Some(buf) = buffer.as_deref_mut() {
            buf.flush_all(ctx, warp, queues);
        }
        // Descend through reduced levels, then the original list.
        for li in (0..self.depth()).rev() {
            let (below_off, below_n, from_input) = if li == 0 {
                (0, self.n, true)
            } else {
                (self.offsets[li - 1], self.sizes[li - 1], false)
            };
            // Pass 1 — expand & translate: read each queue slot, gather
            // its child group (the one scattered access per child), stash
            // the non-minimum children, and rewrite the slot's id to the
            // minimum child's index in the level below.
            for s in 0..k {
                let v = queues.dq.read_uniform(ctx, warp, s);
                let i = queues.iq.read_uniform(ctx, warp, s);
                ctx.op(warp, 1);
                let valid = lanes_from_fn(|l| i[l] != NO_ID);
                let vmask = warp.and_lanes(&valid);
                // Invalid slots: poison their stash region host-side
                // cost-free is unrealistic — charge the uniform writes.
                let mut matched: Lanes<bool> = splat(false);
                let mut trans: Lanes<u32> = i;
                for j in 0..self.g {
                    ctx.op(vmask, 1);
                    let child = lanes_from_fn(|l| i[l] as usize * self.g + j);
                    let in_range = lanes_from_fn(|l| child[l] < below_n);
                    let active = vmask.and_lanes(&in_range);
                    #[cfg(feature = "trace")]
                    {
                        queues.counters.hp_expansions += active.lanes().count() as u64;
                    }
                    let d = if !active.any_lane() {
                        splat(INF)
                    } else if from_input {
                        let idx = lanes_from_fn(|l| {
                            (child[l] * q_stride + q_base + l).min(dlist.len() - 1)
                        });
                        dlist.read(ctx, active, &idx)
                    } else {
                        let idx = lanes_from_fn(|l| {
                            (below_off + child[l]).min(self.vals.len_per_lane() - 1)
                        });
                        self.vals.read(ctx, active, &idx)
                    };
                    // First child equal to the parent value is the
                    // propagated minimum: translate instead of offering.
                    ctx.op(active, 1);
                    let is_min = lanes_from_fn(|l| active.get(l) && !matched[l] && d[l] == v[l]);
                    for l in warp.lanes() {
                        if is_min[l] {
                            matched[l] = true;
                            trans[l] = child[l] as u32;
                        }
                    }
                    // Stash the offer-candidates (poisoned with INF where
                    // translated or out of range / invalid).
                    let stash_d = lanes_from_fn(|l| {
                        if active.get(l) && !is_min[l] {
                            d[l]
                        } else {
                            INF
                        }
                    });
                    let stash_i = lanes_from_fn(|l| {
                        if active.get(l) && !is_min[l] {
                            child[l] as u32
                        } else {
                            NO_ID
                        }
                    });
                    stash.d.write_uniform(ctx, warp, s * self.g + j, &stash_d);
                    stash.i.write_uniform(ctx, warp, s * self.g + j, &stash_i);
                }
                if vmask.any_lane() {
                    queues.iq.write_uniform(ctx, vmask, s, &trans);
                }
            }
            // Pass 2 — offer the stashed children (uniform, coalesced
            // reads; inserts may now freely reshuffle the queue).
            for t in 0..k * self.g {
                let d = stash.d.read_uniform(ctx, warp, t);
                let ids = stash.i.read_uniform(ctx, warp, t);
                self.offer(ctx, warp, warp, &d, &ids, queues, &mut buffer);
            }
            if let Some(buf) = buffer.as_deref_mut() {
                buf.flush_all(ctx, warp, queues);
            }
        }
    }

    /// Threshold-check + insert (optionally through the buffer).
    #[allow(clippy::too_many_arguments)]
    fn offer(
        &self,
        ctx: &mut WarpCtx,
        warp: Mask,
        active: Mask,
        d: &Lanes<f32>,
        ids: &Lanes<u32>,
        queues: &mut WarpQueues,
        buffer: &mut Option<&mut WarpBuffer>,
    ) {
        let pred = lanes_from_fn(|l| d[l] < queues.qmax[l]);
        let (cand, _) = ctx.diverge(active, pred);
        #[cfg(feature = "trace")]
        {
            queues.counters.cheap_rejects += (active.lanes().count() - cand.lanes().count()) as u64;
        }
        match buffer {
            Some(buf) => buf.push_and_maybe_flush(ctx, warp, cand, d, ids, queues),
            None => queues.insert(ctx, warp, cand, d, ids),
        }
    }
}

// Test harnesses drive element streams by index (`streams[lane][e]`)
// to mirror the kernel's per-element loop; the range loop is the idiom.
#[allow(clippy::needless_range_loop)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffered::BufferConfig;
    use crate::types::QueueKind;
    use rand::{Rng, SeedableRng};
    use simt::WARP_SIZE;

    fn column_major(streams: &[Vec<f32>], q_stride: usize) -> GlobalBuf<f32> {
        let n = streams[0].len();
        let mut data = vec![0.0f32; n * q_stride];
        for (q, s) in streams.iter().enumerate() {
            for (e, &v) in s.iter().enumerate() {
                data[e * q_stride + q] = v;
            }
        }
        GlobalBuf::from_vec(data)
    }

    fn random_streams(n: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..WARP_SIZE)
            .map(|_| (0..n).map(|_| rng.gen()).collect())
            .collect()
    }

    #[test]
    fn level_size_shapes() {
        assert_eq!(level_sizes(16, 2, 2), vec![8, 4, 2]);
        assert_eq!(level_sizes(1 << 16, 4, 256), vec![16384, 4096, 1024, 256]);
        assert_eq!(level_sizes(10, 16, 16), Vec::<usize>::new());
        assert_eq!(level_sizes(100, 3, 8), vec![34, 12, 4]);
    }

    #[test]
    fn build_matches_native_hierarchy() {
        let n = 777;
        let streams = random_streams(n, 81);
        let dlist = column_major(&streams, WARP_SIZE);
        let mut ctx = WarpCtx::new(128, 32);
        let h = WarpHierarchy::build(&mut ctx, Mask::full(), &dlist, 0, WARP_SIZE, n, 4, 16);
        for lane in [0usize, 7, 31] {
            let native = crate::hierarchical::Hierarchy::build(&streams[lane], 4, 16);
            assert_eq!(h.depth(), native.depth());
            for li in 0..h.depth() {
                assert_eq!(
                    h.peek_level(lane, li),
                    native.level(li),
                    "lane {lane} level {li}"
                );
            }
        }
    }

    #[test]
    fn construction_is_fully_coalesced() {
        let n = 1024;
        let streams = random_streams(n, 82);
        let dlist = column_major(&streams, WARP_SIZE);
        let mut ctx = WarpCtx::new(128, 32);
        WarpHierarchy::build(&mut ctx, Mask::full(), &dlist, 0, WARP_SIZE, n, 4, 16);
        let m = ctx.into_metrics();
        assert!(
            m.coalescing_efficiency(128) > 0.99,
            "{}",
            m.coalescing_efficiency(128)
        );
        assert_eq!(m.divergent_branches, 0);
        assert!((m.simt_efficiency() - 1.0).abs() < 1e-9);
    }

    fn top_down_case(kind: QueueKind, k: usize, g: usize, n: usize, buffered: bool, seed: u64) {
        let streams = random_streams(n, seed);
        let dlist = column_major(&streams, WARP_SIZE);
        let mut ctx = WarpCtx::new(128, 32);
        let warp = Mask::full();
        let h = WarpHierarchy::build(&mut ctx, warp, &dlist, 0, WARP_SIZE, n, g, k);
        let mut q = WarpQueues::new(kind, k, 8, true);
        let mut stash = ChildStash::new(g, k);
        let mut buf = buffered.then(|| WarpBuffer::new(BufferConfig::default()));
        h.top_down(
            &mut ctx,
            warp,
            &dlist,
            0,
            WARP_SIZE,
            &mut q,
            buf.as_mut(),
            &mut stash,
        );
        for l in 0..WARP_SIZE {
            let got: Vec<f32> = q.lane_results(l).iter().map(|n| n.dist).collect();
            let mut expect = streams[l].clone();
            expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
            expect.truncate(k);
            assert_eq!(
                got, expect,
                "{kind} k={k} g={g} n={n} buffered={buffered} lane={l}"
            );
            // ids must reference the original list
            for nb in q.lane_results(l) {
                assert_eq!(streams[l][nb.id as usize], nb.dist);
            }
        }
    }

    #[test]
    fn top_down_exact_plain() {
        top_down_case(QueueKind::Insertion, 16, 4, 2000, false, 83);
        top_down_case(QueueKind::Heap, 16, 2, 1500, false, 84);
        top_down_case(QueueKind::Merge, 16, 8, 2000, false, 85);
    }

    #[test]
    fn top_down_exact_buffered() {
        top_down_case(QueueKind::Merge, 32, 4, 3000, true, 86);
        top_down_case(QueueKind::Insertion, 16, 6, 1000, true, 87);
    }

    #[test]
    fn top_down_small_n() {
        // n ≤ k: degenerate, no levels.
        top_down_case(QueueKind::Insertion, 16, 4, 10, false, 88);
        top_down_case(QueueKind::Merge, 16, 4, 16, true, 89);
    }

    #[test]
    fn hp_reduces_issue_count_versus_plain_scan() {
        // The whole point of Hierarchical Partition: far fewer elements
        // reach the queue, so the kernel issues far fewer instructions.
        let n = 8192;
        let k = 32;
        let streams = random_streams(n, 90);
        let dlist = column_major(&streams, WARP_SIZE);
        let warp = Mask::full();
        // plain scan
        let mut ctx_scan = WarpCtx::new(128, 32);
        let mut q1 = WarpQueues::new(QueueKind::Insertion, k, 8, false);
        for e in 0..n {
            let idx = lanes_from_fn(|l| e * WARP_SIZE + l);
            let d = dlist.read(&mut ctx_scan, warp, &idx);
            let pred = lanes_from_fn(|l| d[l] < q1.qmax[l]);
            let (ins, _) = ctx_scan.diverge(warp, pred);
            q1.insert(&mut ctx_scan, warp, ins, &d, &splat(e as u32));
        }
        let scan_m = ctx_scan.into_metrics();
        // hierarchical partition (construction included, as in the paper)
        let mut ctx_hp = WarpCtx::new(128, 32);
        let h = WarpHierarchy::build(&mut ctx_hp, warp, &dlist, 0, WARP_SIZE, n, 4, k);
        let mut q2 = WarpQueues::new(QueueKind::Insertion, k, 8, false);
        let mut stash = ChildStash::new(4, k);
        h.top_down(
            &mut ctx_hp,
            warp,
            &dlist,
            0,
            WARP_SIZE,
            &mut q2,
            None,
            &mut stash,
        );
        let hp_m = ctx_hp.into_metrics();
        assert!(
            hp_m.issued < scan_m.issued,
            "hp {} vs scan {}",
            hp_m.issued,
            scan_m.issued
        );
    }
}
