//! The full simulated k-selection kernel: plain scan, Buffered Search,
//! Hierarchical Partition, or both — one lane per query, launched over as
//! many warps as the workload needs.

use simt::mem::GlobalBuf;
use simt::{lanes_from_fn, launch, splat, GpuSpec, Mask, Metrics, WarpCtx, WARP_SIZE};

use crate::select::SelectConfig;
use crate::types::Neighbor;

use super::buffered::WarpBuffer;
use super::hierarchical::WarpHierarchy;
use super::queues::WarpQueues;

/// The k-NN distance matrix as it sits in device global memory after the
/// distance-calculation kernel: element `e` of query `q` at
/// `e * q + q_index` (query-major within each element row), so a warp's 32
/// lanes read 32 consecutive floats — one coalesced transaction.
pub struct DistanceMatrix {
    buf: GlobalBuf<f32>,
    n: usize,
    q: usize,
}

impl DistanceMatrix {
    /// Build from one flat row-major buffer (`flat[qi * n + e]`, the
    /// layout host distance kernels produce), transposing into the
    /// coalescing-friendly query-major device layout. One pass, one
    /// allocation — no intermediate heap-of-rows.
    pub fn from_row_major(flat: &[f32], q: usize, n: usize) -> Self {
        assert!(q > 0, "need at least one query");
        assert_eq!(flat.len(), q * n, "flat buffer does not match q × n");
        let mut data = vec![0.0f32; n * q];
        for (qi, row) in flat.chunks_exact(n.max(1)).enumerate() {
            for (e, &v) in row.iter().enumerate() {
                data[e * q + qi] = v;
            }
        }
        DistanceMatrix {
            buf: GlobalBuf::from_vec(data),
            n,
            q,
        }
    }

    /// Build from per-query rows (`rows[q][e]`).
    #[deprecated(
        since = "0.1.0",
        note = "copies each row twice; build a flat row-major buffer and use `from_row_major` \
                (or `from_flat` for already query-major data)"
    )]
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let q = rows.len();
        assert!(q > 0, "need at least one query");
        let n = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == n), "ragged distance rows");
        let mut data = vec![0.0f32; n * q];
        for (qi, row) in rows.iter().enumerate() {
            for (e, &v) in row.iter().enumerate() {
                data[e * q + qi] = v;
            }
        }
        DistanceMatrix {
            buf: GlobalBuf::from_vec(data),
            n,
            q,
        }
    }

    /// Wrap an already query-major flat buffer (`data[e * q + qi]`).
    pub fn from_flat(data: Vec<f32>, n: usize, q: usize) -> Self {
        assert_eq!(data.len(), n * q);
        DistanceMatrix {
            buf: GlobalBuf::from_vec(data),
            n,
            q,
        }
    }

    /// Elements (references) per query.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of queries.
    pub fn q(&self) -> usize {
        self.q
    }

    /// The underlying device buffer — for custom kernels (e.g. the
    /// baseline implementations) that read the matrix directly.
    pub fn buf(&self) -> &GlobalBuf<f32> {
        &self.buf
    }

    /// Host-side element access (no simulated cost).
    pub fn value(&self, query: usize, element: usize) -> f32 {
        self.buf.as_slice()[element * self.q + query]
    }

    /// Bytes occupied on the device (distance values only).
    pub fn bytes(&self) -> u64 {
        (self.n * self.q * core::mem::size_of::<f32>()) as u64
    }
}

/// Outcome of a simulated k-selection launch.
#[derive(Debug)]
pub struct GpuSelectResult {
    /// Per-query neighbors, sorted ascending by distance.
    pub neighbors: Vec<Vec<Neighbor>>,
    /// Aggregated metrics over all warps (HP construction included,
    /// as in the paper's timings).
    pub metrics: Metrics,
    /// The Hierarchical Partition construction share of `metrics`
    /// (zero when HP is off) — for the construction-cost ablation.
    pub build_metrics: Metrics,
    /// Warps launched.
    pub n_warps: usize,
    /// Technique-level event counters summed over all warps. All-zero
    /// unless the crate is built with the `trace` feature.
    pub counters: super::KernelCounters,
}

/// Run k-selection for every query of `dm` on the simulated GPU.
///
/// # Panics
/// When `cfg.k` is larger than the number of elements per query, or (for
/// the Merge Queue) when `cfg.k` is not `m·2^j`.
pub fn gpu_select_k(spec: &GpuSpec, dm: &DistanceMatrix, cfg: &SelectConfig) -> GpuSelectResult {
    assert!(
        cfg.k <= dm.n(),
        "k = {} exceeds the {} elements per query",
        cfg.k,
        dm.n()
    );
    if let Some(buf) = &cfg.buffer {
        // The candidate buffer must fit the device's shared memory:
        // padded slots × 32 lanes × (f32 + u32) + the intra-warp flag.
        let bytes = (buf.size.next_power_of_two() * WARP_SIZE * 8 + 4) as u64;
        assert!(
            bytes <= spec.shared_mem_bytes,
            "buffer of {bytes} B exceeds the device's {} B of shared memory",
            spec.shared_mem_bytes
        );
    }
    let n_warps = dm.q().div_ceil(WARP_SIZE);
    let (per_warp, metrics) = launch(spec, n_warps, |warp_id, ctx| {
        warp_kernel(ctx, warp_id, dm, cfg)
    });
    let mut neighbors = Vec::with_capacity(dm.q());
    let mut build_metrics = Metrics::new();
    let mut counters = super::KernelCounters::default();
    for (lane_results, build, warp_counters) in per_warp {
        build_metrics.add(&build);
        counters.merge(&warp_counters);
        for r in lane_results {
            if neighbors.len() < dm.q() {
                neighbors.push(r);
            }
        }
    }
    GpuSelectResult {
        neighbors,
        metrics,
        build_metrics,
        n_warps,
        counters,
    }
}

/// One warp's worth of k-selection. Returns the 32 lanes' results, the
/// metrics attributable to HP construction, and the warp's event
/// counters. Shared with [`super::resilient`], whose launcher re-runs
/// individual warps on failure.
pub(super) fn warp_kernel(
    ctx: &mut WarpCtx,
    warp_id: usize,
    dm: &DistanceMatrix,
    cfg: &SelectConfig,
) -> (Vec<Vec<Neighbor>>, Metrics, super::KernelCounters) {
    ctx.mark("select::warp_kernel");
    let q_base = warp_id * WARP_SIZE;
    let lanes_live = dm.q().saturating_sub(q_base).min(WARP_SIZE);
    let warp = Mask::first(lanes_live);
    let mut queues = WarpQueues::new(cfg.queue, cfg.k, cfg.m, cfg.aligned);
    let mut buffer = cfg.buffer.map(WarpBuffer::new);
    let mut build_metrics = Metrics::new();

    match cfg.hp {
        None => {
            ctx.mark("select::scan");
            for e in 0..dm.n() {
                let idx = lanes_from_fn(|l| e * dm.q() + (q_base + l).min(dm.q() - 1));
                let d = dm.buf.read(ctx, warp, &idx);
                let pred = lanes_from_fn(|l| d[l] < queues.qmax[l]);
                let (cand, _) = ctx.diverge(warp, pred);
                #[cfg(feature = "trace")]
                {
                    queues.counters.cheap_rejects +=
                        (warp.lanes().count() - cand.lanes().count()) as u64;
                }
                match buffer.as_mut() {
                    Some(buf) => {
                        buf.push_and_maybe_flush(ctx, warp, cand, &d, &splat(e as u32), &mut queues)
                    }
                    None => queues.insert(ctx, warp, cand, &d, &splat(e as u32)),
                }
            }
            if let Some(buf) = buffer.as_mut() {
                buf.flush_all(ctx, warp, &mut queues);
            }
        }
        Some(hp) => {
            let before = ctx.checkpoint();
            let hier =
                WarpHierarchy::build(ctx, warp, &dm.buf, q_base, dm.q(), dm.n(), hp.g, cfg.k);
            build_metrics = ctx.checkpoint().delta_since(&before);
            let mut stash = super::hierarchical::ChildStash::new(hp.g, cfg.k);
            hier.top_down(
                ctx,
                warp,
                &dm.buf,
                q_base,
                dm.q(),
                &mut queues,
                buffer.as_mut(),
                &mut stash,
            );
        }
    }

    let results: Vec<Vec<Neighbor>> = (0..lanes_live).map(|l| queues.lane_results(l)).collect();
    let counters = core::mem::take(&mut queues.counters);
    (results, build_metrics, counters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffered::BufferConfig;
    use crate::hierarchical::HpConfig;
    use crate::types::QueueKind;
    use rand::{Rng, SeedableRng};

    fn random_rows(q: usize, n: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..q)
            .map(|_| (0..n).map(|_| rng.gen()).collect())
            .collect()
    }

    fn dm_from(rows: &[Vec<f32>]) -> DistanceMatrix {
        DistanceMatrix::from_row_major(&rows.concat(), rows.len(), rows[0].len())
    }

    fn oracle(row: &[f32], k: usize) -> Vec<f32> {
        let mut v = row.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v.truncate(k);
        v
    }

    #[test]
    fn matrix_layout_roundtrip() {
        let rows = random_rows(5, 9, 90);
        let dm = dm_from(&rows);
        assert_eq!(dm.n(), 9);
        assert_eq!(dm.q(), 5);
        for (q, row) in rows.iter().enumerate() {
            for (e, &v) in row.iter().enumerate() {
                assert_eq!(dm.value(q, e), v);
            }
        }
        assert_eq!(dm.bytes(), 5 * 9 * 4);
        // The deprecated rows-of-Vecs constructor stays equivalent.
        #[allow(deprecated)]
        let legacy = DistanceMatrix::from_rows(&rows);
        assert_eq!(legacy.buf().as_slice(), dm.buf().as_slice());
    }

    #[test]
    fn every_variant_exact_end_to_end() {
        let spec = GpuSpec::tesla_c2075();
        // 3 warps worth of queries, one of them partial.
        let rows = random_rows(70, 600, 91);
        let dm = dm_from(&rows);
        let k = 16;
        for queue in QueueKind::ALL {
            for aligned in [false, true] {
                for buffer in [None, Some(BufferConfig::default())] {
                    for hp in [None, Some(HpConfig::default())] {
                        let cfg = SelectConfig {
                            k,
                            queue,
                            m: 8,
                            aligned,
                            buffer,
                            hp,
                        };
                        let res = gpu_select_k(&spec, &dm, &cfg);
                        assert_eq!(res.neighbors.len(), 70);
                        assert_eq!(res.n_warps, 3);
                        for (q, row) in rows.iter().enumerate() {
                            let got: Vec<f32> = res.neighbors[q].iter().map(|n| n.dist).collect();
                            assert_eq!(got, oracle(row, k), "{} query {q}", cfg.label());
                            for nb in &res.neighbors[q] {
                                assert_eq!(row[nb.id as usize], nb.dist);
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn build_metrics_attributed_only_with_hp() {
        let spec = GpuSpec::tesla_c2075();
        let dm = dm_from(&random_rows(32, 1024, 92));
        let plain = gpu_select_k(&spec, &dm, &SelectConfig::plain(QueueKind::Merge, 16));
        assert_eq!(plain.build_metrics, Metrics::new());
        let hp = gpu_select_k(
            &spec,
            &dm,
            &SelectConfig::plain(QueueKind::Merge, 16).with_hp(HpConfig::default()),
        );
        assert!(hp.build_metrics.issued > 0);
        assert!(hp.build_metrics.issued < hp.metrics.issued);
    }

    #[test]
    fn optimized_beats_original_in_simulated_time() {
        // The paper's bottom line, in miniature: aligned+buf+hp Merge
        // Queue beats the plain Merge Queue.
        let spec = GpuSpec::tesla_c2075();
        let dm = dm_from(&random_rows(32, 4096, 93));
        let tm = simt::TimingModel::tesla_c2075();
        let orig = gpu_select_k(&spec, &dm, &SelectConfig::plain(QueueKind::Merge, 64));
        let opt = gpu_select_k(&spec, &dm, &SelectConfig::optimized(QueueKind::Merge, 64));
        let t_orig = tm.kernel_time(&orig.metrics);
        let t_opt = tm.kernel_time(&opt.metrics);
        assert!(
            t_opt < t_orig,
            "optimized {t_opt:.6} vs original {t_orig:.6}"
        );
    }

    #[test]
    #[should_panic]
    fn oversized_buffer_rejected() {
        let spec = GpuSpec::tesla_c2075();
        let dm = dm_from(&random_rows(32, 64, 95));
        let cfg = SelectConfig::plain(QueueKind::Heap, 8).with_buffer(BufferConfig {
            size: 1 << 20, // would need megabytes of shared memory
            sorted: false,
            intra_warp: true,
        });
        gpu_select_k(&spec, &dm, &cfg);
    }

    #[test]
    #[should_panic]
    fn k_larger_than_n_rejected() {
        let spec = GpuSpec::tesla_c2075();
        let dm = dm_from(&random_rows(4, 8, 94));
        gpu_select_k(&spec, &dm, &SelectConfig::plain(QueueKind::Heap, 16));
    }
}
