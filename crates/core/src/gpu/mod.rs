//! Simulated GPU kernels for the paper's k-selection techniques.
//!
//! Everything in this module is warp-synchronous code over the [`simt`]
//! simulator: one lane per k-NN query, 32 queries per warp, queues in
//! interleaved lane-local memory, candidate buffers and intra-warp flags
//! in shared memory. The entry point is [`gpu_select_k`], which takes the
//! same [`crate::SelectConfig`] as the native API and returns both the
//! per-query neighbors and the execution [`simt::Metrics`] from which
//! simulated kernel times are derived.
//!
//! See `DESIGN.md` §2 for why a simulator substitutes for the paper's
//! CUDA testbed and what behaviour the substitution preserves.

pub mod buffered;
pub mod hierarchical;
pub mod queues;
pub mod select;

pub use buffered::WarpBuffer;
pub use hierarchical::{level_sizes, WarpHierarchy};
pub use queues::{RepairKind, WarpQueues};
pub use select::{gpu_select_k, DistanceMatrix, GpuSelectResult};
