//! Simulated GPU kernels for the paper's k-selection techniques.
//!
//! Everything in this module is warp-synchronous code over the [`simt`]
//! simulator: one lane per k-NN query, 32 queries per warp, queues in
//! interleaved lane-local memory, candidate buffers and intra-warp flags
//! in shared memory. The entry point is [`gpu_select_k`], which takes the
//! same [`crate::SelectConfig`] as the native API and returns both the
//! per-query neighbors and the execution [`simt::Metrics`] from which
//! simulated kernel times are derived.
//!
//! See `DESIGN.md` §2 for why a simulator substitutes for the paper's
//! CUDA testbed and what behaviour the substitution preserves.

pub mod buffered;
pub mod hierarchical;
pub mod queues;
pub mod resilient;
pub mod select;

pub use buffered::WarpBuffer;
pub use hierarchical::{level_sizes, WarpHierarchy};
pub use queues::{RepairKind, WarpQueues};
pub use resilient::{
    gpu_select_k_checked, gpu_select_k_resilient, gpu_select_k_resilient_gated, GpuResilience,
    GpuResilientSelect, QueryStatus, ResilienceCounters, SearchReport,
};
pub use select::{gpu_select_k, DistanceMatrix, GpuSelectResult};

/// Technique-level event counters accumulated inside the simulated
/// kernels: how often each of the paper's mechanisms actually fired.
///
/// The struct is always present (it appears in [`GpuSelectResult`]), but
/// the increments at the kernel call sites are compiled only under the
/// `trace` cargo feature — without it every field stays zero and the hot
/// loops carry no bookkeeping.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KernelCounters {
    /// Candidates accepted into a queue (any structure).
    pub queue_inserts: u64,
    /// Candidates rejected by the cheap `d >= qmax` guard (at the scan
    /// or at buffer drain) before any queue work.
    pub cheap_rejects: u64,
    /// Candidates staged into a Buffered Search buffer.
    pub buffer_pushes: u64,
    /// Buffer flush events.
    pub buffer_flushes: u64,
    /// Local-Sort networks run over a buffer before draining.
    pub local_sorts: u64,
    /// Reverse-bitonic (or linear) merge repairs, indexed by cascade
    /// level: `[0]` repairs the `2m` prefix, `[1]` the `4m` prefix, …
    pub merge_repairs_by_level: Vec<u64>,
    /// Intra-warp ballot/flag rounds of the aligned Merge Queue.
    pub aligned_syncs: u64,
    /// Hierarchical-Partition child-group expansions during Top-Down
    /// search (one per queue slot × child read, summed over lanes).
    pub hp_expansions: u64,
}

impl KernelCounters {
    /// Fold another warp's counters into this one.
    pub fn merge(&mut self, other: &KernelCounters) {
        self.queue_inserts += other.queue_inserts;
        self.cheap_rejects += other.cheap_rejects;
        self.buffer_pushes += other.buffer_pushes;
        self.buffer_flushes += other.buffer_flushes;
        self.local_sorts += other.local_sorts;
        if self.merge_repairs_by_level.len() < other.merge_repairs_by_level.len() {
            self.merge_repairs_by_level
                .resize(other.merge_repairs_by_level.len(), 0);
        }
        for (a, b) in self
            .merge_repairs_by_level
            .iter_mut()
            .zip(&other.merge_repairs_by_level)
        {
            *a += b;
        }
        self.aligned_syncs += other.aligned_syncs;
        self.hp_expansions += other.hp_expansions;
    }

    /// Total merge repairs across all cascade levels.
    pub fn merge_repairs(&self) -> u64 {
        self.merge_repairs_by_level.iter().sum()
    }

    /// Export as a named [`trace::CounterSet`] under the canonical
    /// [`trace::names`]. Zero-valued counters are omitted so traces of
    /// un-exercised techniques stay clean.
    pub fn to_counter_set(&self) -> trace::CounterSet {
        let mut set = trace::CounterSet::new();
        let mut put = |name: &str, v: u64| {
            if v > 0 {
                set.add(name, v);
            }
        };
        put(trace::names::QUEUE_INSERT, self.queue_inserts);
        put(trace::names::QUEUE_CHEAP_REJECT, self.cheap_rejects);
        put(trace::names::BUFFER_PUSH, self.buffer_pushes);
        put(trace::names::BUFFER_FLUSH, self.buffer_flushes);
        put(trace::names::LOCAL_SORT, self.local_sorts);
        for (level, &v) in self.merge_repairs_by_level.iter().enumerate() {
            put(&trace::names::merge_repair_level(level), v);
        }
        put(trace::names::MERGE_ALIGNED_SYNC, self.aligned_syncs);
        put(trace::names::HP_NODE_EXPANSION, self.hp_expansions);
        set
    }

    /// Record every non-zero counter into `tracer` at its current clock.
    pub fn record(&self, tracer: &mut trace::Tracer) {
        for (name, v) in self.to_counter_set().iter() {
            tracer.add(name, v);
        }
    }
}
