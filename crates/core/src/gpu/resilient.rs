//! Resilient k-selection: checked inputs, per-warp retry, output
//! verification, and graceful degradation to exact host selection.
//!
//! Two entry points wrap [`super::gpu_select_k`]:
//!
//! * [`gpu_select_k_checked`] — same execution, but untrusted inputs
//!   (`k`, merge shape, buffer size) come back as typed
//!   [`KnnError`]s instead of panics.
//! * [`gpu_select_k_resilient`] — additionally runs every warp through
//!   [`simt::launch_resilient`]: injected or genuine failures are
//!   retried with simulated backoff, each completed attempt is
//!   validated structurally (sorted, ids in range, distances match the
//!   device matrix — via [`check::audit`]) and optionally against a
//!   host oracle, and a warp that exhausts its attempts degrades to an
//!   exact host-side selection for its queries. The outcome of every
//!   query is recorded in a [`SearchReport`] — results are never
//!   silently wrong, only slower or explicitly failed.

use simt::{GpuSpec, Metrics, WarpCtx, WARP_SIZE};

use crate::error::KnnError;
use crate::select::SelectConfig;
use crate::types::{sort_neighbors, Neighbor, QueueKind};

use super::select::{warp_kernel, DistanceMatrix};
use super::KernelCounters;

/// Configuration of the resilient launch around the selection kernel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GpuResilience {
    /// Kernel attempts per warp before degrading (≥ 1).
    pub max_attempts: u32,
    /// Simulated watchdog deadline in issue slots per warp attempt.
    pub watchdog_issue_limit: Option<u64>,
    /// First-retry backoff in simulated seconds; doubles per attempt.
    pub backoff_base_s: f64,
    /// Verify every completed attempt against a host-computed top-k
    /// oracle. Catches corruption that is structurally plausible (e.g. a
    /// bit-flipped distance that pushed a true neighbor out). Costs a
    /// host-side sort per query; structural validation always runs.
    pub verify_oracle: bool,
    /// Degrade a warp that exhausts its attempts to exact host
    /// selection (true) or report its queries as failed (false).
    pub fallback: bool,
    /// Fault campaign to inject, if any.
    pub faults: Option<simt::FaultPlan>,
}

impl Default for GpuResilience {
    fn default() -> Self {
        GpuResilience {
            max_attempts: 3,
            watchdog_issue_limit: None,
            backoff_base_s: 1e-6,
            verify_oracle: true,
            fallback: true,
            faults: None,
        }
    }
}

impl GpuResilience {
    /// Builder: attach a fault plan.
    pub fn with_faults(mut self, plan: simt::FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    fn retry_policy(&self) -> simt::RetryPolicy {
        simt::RetryPolicy {
            max_attempts: self.max_attempts,
            watchdog_issue_limit: self.watchdog_issue_limit,
            backoff_base_s: self.backoff_base_s,
            fault_plan: self.faults,
        }
    }
}

/// How one query's result was obtained.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryStatus {
    /// Clean first-attempt GPU result.
    Ok,
    /// GPU result delivered after `attempts` tries (≥ 2).
    Recovered { attempts: u32 },
    /// The GPU path kept failing; the result came from exact host
    /// selection after `attempts` kernel tries.
    Fallback { attempts: u32 },
    /// No result: the GPU path failed `after_attempts` times and
    /// fallback was disabled. `reason` is the last failure.
    Failed { after_attempts: u32, reason: String },
    /// No result and no work consumed: the caller's launch gate (a
    /// deadline check — see [`gpu_select_k_resilient_gated`]) closed
    /// before this query's warp started, so the query stopped consuming
    /// work instead of finishing late.
    DeadlineExceeded,
}

impl QueryStatus {
    /// Stable kebab-case name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            QueryStatus::Ok => "ok",
            QueryStatus::Recovered { .. } => "recovered",
            QueryStatus::Fallback { .. } => "fallback",
            QueryStatus::Failed { .. } => "failed",
            QueryStatus::DeadlineExceeded => "deadline-exceeded",
        }
    }
}

/// Recovery-event totals for one resilient run. Mirrors
/// [`KernelCounters`]' pattern: plain struct, [`merge`](Self::merge) to
/// fold, [`to_counter_set`](Self::to_counter_set) to export under the
/// canonical [`trace::names`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResilienceCounters {
    /// Warp attempts beyond each warp's first.
    pub retries: u64,
    /// Queries degraded to exact host selection.
    pub fallbacks: u64,
    /// Kernel aborts observed (injected or genuine).
    pub aborts: u64,
    /// Warp attempts killed at the watchdog deadline.
    pub watchdog_timeouts: u64,
    /// Non-injected kernel panics caught.
    pub panics: u64,
    /// Completed attempts rejected by validation.
    pub validation_failures: u64,
    /// Bit flips injected into simulated DRAM loads.
    pub bitflips_injected: u64,
    /// PCIe transfer attempts that stalled (filled by the `knn` layer).
    pub pcie_stalls: u64,
    /// PCIe transfer attempts with corrupt payload (filled by `knn`).
    pub pcie_corruptions: u64,
    /// Warps never launched because the deadline gate closed first.
    pub deadline_skips: u64,
}

impl ResilienceCounters {
    /// Fold another run's counters into this one.
    pub fn merge(&mut self, other: &ResilienceCounters) {
        self.retries += other.retries;
        self.fallbacks += other.fallbacks;
        self.aborts += other.aborts;
        self.watchdog_timeouts += other.watchdog_timeouts;
        self.panics += other.panics;
        self.validation_failures += other.validation_failures;
        self.bitflips_injected += other.bitflips_injected;
        self.pcie_stalls += other.pcie_stalls;
        self.pcie_corruptions += other.pcie_corruptions;
        self.deadline_skips += other.deadline_skips;
    }

    /// Export as a named [`trace::CounterSet`]; zero counters omitted.
    pub fn to_counter_set(&self) -> trace::CounterSet {
        let mut set = trace::CounterSet::new();
        let mut put = |name: &str, v: u64| {
            if v > 0 {
                set.add(name, v);
            }
        };
        put(trace::names::RESILIENCE_RETRY, self.retries);
        put(trace::names::RESILIENCE_FALLBACK, self.fallbacks);
        put(trace::names::RESILIENCE_ABORT, self.aborts);
        put(trace::names::RESILIENCE_WATCHDOG, self.watchdog_timeouts);
        put(trace::names::RESILIENCE_PANIC, self.panics);
        put(
            trace::names::RESILIENCE_VALIDATION,
            self.validation_failures,
        );
        put(trace::names::RESILIENCE_BITFLIP, self.bitflips_injected);
        put(trace::names::RESILIENCE_PCIE_STALL, self.pcie_stalls);
        put(trace::names::RESILIENCE_PCIE_CORRUPT, self.pcie_corruptions);
        put(trace::names::RESILIENCE_DEADLINE_SKIP, self.deadline_skips);
        set
    }

    /// Record every non-zero counter into `tracer` at its current clock.
    pub fn record(&self, tracer: &mut trace::Tracer) {
        for (name, v) in self.to_counter_set().iter() {
            tracer.add(name, v);
        }
    }
}

/// Per-query outcomes plus recovery totals for one resilient search.
#[derive(Clone, Debug, PartialEq)]
pub struct SearchReport {
    /// One status per query, in query order.
    pub statuses: Vec<QueryStatus>,
    /// Recovery-event totals.
    pub counters: ResilienceCounters,
    /// Simulated seconds spent in retry backoff.
    pub backoff_s: f64,
    /// Simulated seconds spent copying failed warps' distance rows back
    /// to the host for fallback selection.
    pub fallback_transfer_s: f64,
}

impl SearchReport {
    /// Queries answered by a clean first attempt.
    pub fn ok_count(&self) -> usize {
        self.count("ok")
    }

    /// Queries answered by the GPU after at least one retry.
    pub fn recovered_count(&self) -> usize {
        self.count("recovered")
    }

    /// Queries answered by the exact host fallback.
    pub fn fallback_count(&self) -> usize {
        self.count("fallback")
    }

    /// Queries with no result.
    pub fn failed_count(&self) -> usize {
        self.count("failed")
    }

    /// Queries whose warp was never launched because the deadline gate
    /// closed first.
    pub fn deadline_exceeded_count(&self) -> usize {
        self.count("deadline-exceeded")
    }

    fn count(&self, name: &str) -> usize {
        self.statuses.iter().filter(|s| s.name() == name).count()
    }
}

/// Outcome of [`gpu_select_k_resilient`].
#[derive(Clone, Debug)]
pub struct GpuResilientSelect {
    /// Per-query neighbors sorted ascending by distance; `None` only for
    /// queries whose status is [`QueryStatus::Failed`] or
    /// [`QueryStatus::DeadlineExceeded`].
    pub neighbors: Vec<Option<Vec<Neighbor>>>,
    /// Metrics of the accepted kernel attempts (the delivered work).
    pub metrics: Metrics,
    /// Metrics of rejected attempts — real simulated work, thrown away.
    pub wasted: Metrics,
    /// Warps launched.
    pub n_warps: usize,
    /// Technique-level event counters from accepted attempts.
    pub counters: KernelCounters,
    /// Per-query outcomes and recovery totals.
    pub report: SearchReport,
}

/// Validate a selection request against the device and the matrix,
/// returning the typed error a caller can act on. Shared by the checked
/// and resilient entry points (and, through them, the `knn` pipeline).
pub fn validate_request(
    spec: &GpuSpec,
    dm: &DistanceMatrix,
    cfg: &SelectConfig,
) -> Result<(), KnnError> {
    if dm.n() == 0 {
        return Err(KnnError::EmptyInput {
            what: "reference points",
        });
    }
    if cfg.k == 0 || cfg.k > dm.n() {
        return Err(KnnError::InvalidK {
            k: cfg.k,
            n: dm.n(),
        });
    }
    if cfg.queue == QueueKind::Merge && check::audit::merge_level_bounds(cfg.k, cfg.m).is_err() {
        return Err(KnnError::MergeShape { k: cfg.k, m: cfg.m });
    }
    if let Some(buf) = &cfg.buffer {
        // Same capacity rule as `gpu_select_k`'s assert: padded slots ×
        // 32 lanes × (f32 + u32) + the intra-warp flag word.
        let bytes = (buf.size.next_power_of_two() * WARP_SIZE * 8 + 4) as u64;
        if bytes > spec.shared_mem_bytes {
            return Err(KnnError::BufferTooLarge {
                bytes,
                limit: spec.shared_mem_bytes,
            });
        }
    }
    Ok(())
}

/// [`super::gpu_select_k`] with typed input validation instead of
/// panics. Execution, results and metrics are identical.
pub fn gpu_select_k_checked(
    spec: &GpuSpec,
    dm: &DistanceMatrix,
    cfg: &SelectConfig,
) -> Result<super::GpuSelectResult, KnnError> {
    validate_request(spec, dm, cfg)?;
    Ok(super::gpu_select_k(spec, dm, cfg))
}

/// Exact host-side selection for one query: the degraded path warps
/// fall back to. Sorts the query's full distance row (ties by id).
fn host_exact_select(dm: &DistanceMatrix, query: usize, k: usize) -> Vec<Neighbor> {
    let mut row: Vec<Neighbor> = (0..dm.n())
        .map(|e| Neighbor::new(dm.value(query, e), e as u32))
        .collect();
    sort_neighbors(&mut row);
    row.truncate(k);
    row
}

type WarpOutput = (Vec<Vec<Neighbor>>, Metrics, KernelCounters);

/// Run k-selection with per-warp retry, validation and degraded-mode
/// fallback. See the module docs for semantics; fault plans in
/// `res.faults` inject deterministically keyed on `(warp, attempt)`, so
/// the entire output — including the [`SearchReport`] — is reproducible
/// byte for byte from the same inputs.
pub fn gpu_select_k_resilient(
    spec: &GpuSpec,
    dm: &DistanceMatrix,
    cfg: &SelectConfig,
    res: &GpuResilience,
) -> Result<GpuResilientSelect, KnnError> {
    resilient_select(spec, dm, cfg, res, None::<fn(usize, &Metrics, f64) -> bool>)
}

/// [`gpu_select_k_resilient`] with a cooperative deadline gate at
/// warp-launch boundaries.
///
/// Before each warp launches, `gate(warp_id, consumed, backoff_s)` is
/// consulted with the metrics of all selection work already executed
/// (accepted and wasted attempts) and the simulated backoff spent so
/// far; the caller converts those to seconds with its
/// [`simt::TimingModel`] and compares against the request's remaining
/// budget. Once the gate closes, no further warp launches: each
/// skipped warp's queries report [`QueryStatus::DeadlineExceeded`]
/// with `None` neighbors — past-deadline queries stop consuming work
/// rather than finishing late (no host fallback either; that would
/// consume *more* work after the deadline). Gated launches run warps
/// sequentially in warp-id order (see
/// [`simt::launch_resilient_gated`]); per-warp results and fault draws
/// are unchanged, so an always-open gate reproduces
/// [`gpu_select_k_resilient`] byte for byte.
pub fn gpu_select_k_resilient_gated<G>(
    spec: &GpuSpec,
    dm: &DistanceMatrix,
    cfg: &SelectConfig,
    res: &GpuResilience,
    gate: G,
) -> Result<GpuResilientSelect, KnnError>
where
    G: FnMut(usize, &Metrics, f64) -> bool,
{
    resilient_select(spec, dm, cfg, res, Some(gate))
}

fn resilient_select<G>(
    spec: &GpuSpec,
    dm: &DistanceMatrix,
    cfg: &SelectConfig,
    res: &GpuResilience,
    gate: Option<G>,
) -> Result<GpuResilientSelect, KnnError>
where
    G: FnMut(usize, &Metrics, f64) -> bool,
{
    validate_request(spec, dm, cfg)?;
    if res.faults.is_some_and(|p| p.wants_kernel_faults()) && !simt::fault::compiled() {
        return Err(KnnError::FaultsNotCompiled);
    }

    // Host oracle: the exact ascending top-k distances per query.
    // Computed once, outside the retry loop, from the pristine matrix.
    let oracle: Option<Vec<Vec<f32>>> = res.verify_oracle.then(|| {
        (0..dm.q())
            .map(|qi| {
                let mut row: Vec<f32> = (0..dm.n()).map(|e| dm.value(qi, e)).collect();
                row.sort_by(f32::total_cmp);
                row.truncate(cfg.k);
                row
            })
            .collect()
    });

    let validate = |warp_id: usize, out: &WarpOutput| -> Result<(), String> {
        let q_base = warp_id * WARP_SIZE;
        for (l, lane) in out.0.iter().enumerate() {
            let query = q_base + l;
            if query >= dm.q() {
                continue;
            }
            if lane.len() != cfg.k {
                return Err(format!(
                    "query {query}: {} neighbors delivered, expected {}",
                    lane.len(),
                    cfg.k
                ));
            }
            let dists: Vec<f32> = lane.iter().map(|nb| nb.dist).collect();
            check::audit::audit_sorted_asc(&dists, &format!("query {query} top-k"))
                .map_err(|e| e.to_string())?;
            for nb in lane {
                if nb.id as usize >= dm.n() {
                    return Err(format!("query {query}: id {} out of range", nb.id));
                }
                if dm.value(query, nb.id as usize).to_bits() != nb.dist.to_bits() {
                    return Err(format!(
                        "query {query}: delivered distance {} disagrees with the \
                         stored distance for id {}",
                        nb.dist, nb.id
                    ));
                }
            }
            if let Some(oracle) = oracle.as_ref() {
                if dists != oracle[query] {
                    return Err(format!(
                        "query {query}: top-k differs from the exact oracle"
                    ));
                }
            }
        }
        Ok(())
    };

    let n_warps = dm.q().div_ceil(WARP_SIZE);
    let kernel = |warp_id: usize, ctx: &mut WarpCtx| warp_kernel(ctx, warp_id, dm, cfg);
    let launched = match gate {
        Some(g) => {
            simt::launch_resilient_gated(spec, n_warps, &res.retry_policy(), kernel, validate, g)?
        }
        None => simt::launch_resilient(spec, n_warps, &res.retry_policy(), kernel, validate)?,
    };

    let mut neighbors: Vec<Option<Vec<Neighbor>>> = Vec::with_capacity(dm.q());
    let mut statuses: Vec<QueryStatus> = Vec::with_capacity(dm.q());
    let mut counters = KernelCounters::default();
    let mut rc = ResilienceCounters::default();
    let mut fallback_bytes = 0u64;

    for (w, run) in launched.runs.iter().enumerate() {
        rc.retries += u64::from(run.attempts.saturating_sub(1));
        rc.bitflips_injected += run.bitflips_injected;
        for f in &run.failures {
            match f {
                simt::WarpFailure::Abort { .. } => rc.aborts += 1,
                simt::WarpFailure::WatchdogTimeout { .. } => rc.watchdog_timeouts += 1,
                simt::WarpFailure::Panic { .. } => rc.panics += 1,
                simt::WarpFailure::Validation { .. } => rc.validation_failures += 1,
            }
        }
        let q_base = w * WARP_SIZE;
        let live = dm.q().saturating_sub(q_base).min(WARP_SIZE);
        if run.attempts == 0 {
            // Never launched: the deadline gate closed first. The
            // query consumed no work and gets none retroactively.
            rc.deadline_skips += 1;
            for _ in 0..live {
                neighbors.push(None);
                statuses.push(QueryStatus::DeadlineExceeded);
            }
            continue;
        }
        match &run.result {
            Some((lanes, _, warp_counters)) => {
                counters.merge(warp_counters);
                for lane in lanes.iter().take(live) {
                    neighbors.push(Some(lane.clone()));
                    statuses.push(if run.attempts == 1 {
                        QueryStatus::Ok
                    } else {
                        QueryStatus::Recovered {
                            attempts: run.attempts,
                        }
                    });
                }
            }
            None if res.fallback => {
                for l in 0..live {
                    let query = q_base + l;
                    neighbors.push(Some(host_exact_select(dm, query, cfg.k)));
                    statuses.push(QueryStatus::Fallback {
                        attempts: run.attempts,
                    });
                    rc.fallbacks += 1;
                    // The host must pull this query's distance row over
                    // PCIe to select on it.
                    fallback_bytes += (dm.n() * core::mem::size_of::<f32>()) as u64;
                }
            }
            None => {
                let reason = run
                    .failures
                    .last()
                    .map(|f| f.to_string())
                    .unwrap_or_else(|| "unknown failure".to_string());
                for _ in 0..live {
                    neighbors.push(None);
                    statuses.push(QueryStatus::Failed {
                        after_attempts: run.attempts,
                        reason: reason.clone(),
                    });
                }
            }
        }
    }

    let fallback_transfer_s = fallback_bytes as f64 / (spec.pcie_gbps * 1e9);
    Ok(GpuResilientSelect {
        neighbors,
        metrics: launched.metrics,
        wasted: launched.wasted,
        n_warps,
        counters,
        report: SearchReport {
            statuses,
            counters: rc,
            backoff_s: launched.backoff_s,
            fallback_transfer_s,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffered::BufferConfig;
    use rand::{Rng, SeedableRng};

    fn random_dm(q: usize, n: usize, seed: u64) -> DistanceMatrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let flat: Vec<f32> = (0..q * n).map(|_| rng.gen()).collect();
        DistanceMatrix::from_row_major(&flat, q, n)
    }

    #[test]
    fn checked_rejects_bad_inputs_with_typed_errors() {
        let spec = GpuSpec::tesla_c2075();
        let dm = random_dm(8, 32, 1);
        let err = |cfg: SelectConfig| gpu_select_k_checked(&spec, &dm, &cfg).unwrap_err();

        assert_eq!(
            err(SelectConfig::plain(QueueKind::Heap, 0)).name(),
            "invalid-k"
        );
        assert_eq!(
            err(SelectConfig::plain(QueueKind::Heap, 64)).name(),
            "invalid-k"
        );
        let mut bad_shape = SelectConfig::plain(QueueKind::Merge, 24);
        bad_shape.m = 8;
        assert_eq!(err(bad_shape).name(), "merge-shape");
        let huge_buffer = SelectConfig::plain(QueueKind::Heap, 8).with_buffer(BufferConfig {
            size: 1 << 20,
            sorted: false,
            intra_warp: true,
        });
        assert_eq!(err(huge_buffer).name(), "buffer-too-large");
    }

    #[test]
    fn checked_matches_unchecked_on_valid_input() {
        let spec = GpuSpec::tesla_c2075();
        let dm = random_dm(40, 256, 2);
        let cfg = SelectConfig::optimized(QueueKind::Merge, 16);
        let a = super::super::gpu_select_k(&spec, &dm, &cfg);
        let b = gpu_select_k_checked(&spec, &dm, &cfg).unwrap();
        assert_eq!(a.neighbors, b.neighbors);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn resilient_without_faults_matches_plain_launch() {
        let spec = GpuSpec::tesla_c2075();
        let dm = random_dm(70, 300, 3);
        let cfg = SelectConfig::optimized(QueueKind::Merge, 16);
        let plain = super::super::gpu_select_k(&spec, &dm, &cfg);
        let res = gpu_select_k_resilient(&spec, &dm, &cfg, &GpuResilience::default()).unwrap();
        assert_eq!(res.metrics, plain.metrics, "accepted work identical");
        assert_eq!(res.wasted, Metrics::new());
        assert_eq!(res.counters, plain.counters);
        for (qi, got) in res.neighbors.iter().enumerate() {
            assert_eq!(got.as_deref(), Some(&plain.neighbors[qi][..]));
        }
        assert!(res.report.statuses.iter().all(|s| *s == QueryStatus::Ok));
        assert_eq!(res.report.counters, ResilienceCounters::default());
        assert_eq!(res.report.backoff_s, 0.0);
    }

    #[test]
    fn gated_with_open_gate_matches_ungated() {
        let spec = GpuSpec::tesla_c2075();
        let dm = random_dm(70, 300, 3);
        let cfg = SelectConfig::optimized(QueueKind::Merge, 16);
        let res = GpuResilience::default();
        let a = gpu_select_k_resilient(&spec, &dm, &cfg, &res).unwrap();
        let b = gpu_select_k_resilient_gated(&spec, &dm, &cfg, &res, |_, _, _| true).unwrap();
        assert_eq!(a.neighbors, b.neighbors);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn closed_gate_reports_deadline_exceeded_without_consuming_work() {
        let spec = GpuSpec::tesla_c2075();
        let dm = random_dm(90, 200, 6); // 3 warps: 32 + 32 + 26 queries
        let cfg = SelectConfig::plain(QueueKind::Heap, 8);
        let res = GpuResilience::default();
        // Admit only the first warp's launch.
        let out = gpu_select_k_resilient_gated(&spec, &dm, &cfg, &res, |w, _, _| w == 0).unwrap();
        assert_eq!(out.report.deadline_exceeded_count(), 90 - 32);
        assert_eq!(out.report.counters.deadline_skips, 2);
        assert_eq!(out.report.counters.retries, 0);
        for (qi, (nb, status)) in out.neighbors.iter().zip(&out.report.statuses).enumerate() {
            if qi < 32 {
                assert_eq!(*status, QueryStatus::Ok);
                assert!(nb.is_some());
            } else {
                assert_eq!(*status, QueryStatus::DeadlineExceeded);
                assert!(nb.is_none(), "a past-deadline query gets no result");
            }
        }
        // Only the launched warp's work is accounted.
        let dm1 = random_dm(90, 200, 6);
        let full = gpu_select_k_resilient(&spec, &dm1, &cfg, &res).unwrap();
        assert!(out.metrics.issued < full.metrics.issued);
        assert_eq!(out.wasted, Metrics::new());
    }

    #[test]
    fn gate_sees_monotone_consumption() {
        let spec = GpuSpec::tesla_c2075();
        let dm = random_dm(128, 100, 7);
        let cfg = SelectConfig::plain(QueueKind::Insertion, 4);
        let mut issued_at_gate = Vec::new();
        gpu_select_k_resilient_gated(&spec, &dm, &cfg, &GpuResilience::default(), |w, m, _| {
            issued_at_gate.push(m.issued);
            let _ = w;
            true
        })
        .unwrap();
        assert_eq!(issued_at_gate.len(), 4);
        assert_eq!(issued_at_gate[0], 0, "nothing consumed before warp 0");
        assert!(issued_at_gate.windows(2).all(|p| p[0] < p[1]));
    }

    #[test]
    fn resilient_rejects_kernel_fault_plan_without_feature() {
        let spec = GpuSpec::tesla_c2075();
        let dm = random_dm(4, 32, 4);
        let cfg = SelectConfig::plain(QueueKind::Heap, 8);
        let res = GpuResilience::default().with_faults(simt::FaultPlan::seeded(1).with_aborts(0.5));
        let out = gpu_select_k_resilient(&spec, &dm, &cfg, &res);
        if simt::fault::compiled() {
            assert!(out.is_ok());
        } else {
            assert_eq!(out.unwrap_err(), KnnError::FaultsNotCompiled);
        }
    }

    #[test]
    fn host_fallback_is_exact() {
        let dm = random_dm(3, 100, 5);
        for qi in 0..3 {
            let got = host_exact_select(&dm, qi, 7);
            let mut want: Vec<f32> = (0..100).map(|e| dm.value(qi, e)).collect();
            want.sort_by(f32::total_cmp);
            want.truncate(7);
            let got_d: Vec<f32> = got.iter().map(|nb| nb.dist).collect();
            assert_eq!(got_d, want);
            for nb in &got {
                assert_eq!(dm.value(qi, nb.id as usize), nb.dist);
            }
        }
    }

    #[test]
    fn counter_set_export_uses_canonical_names() {
        let rc = ResilienceCounters {
            retries: 3,
            fallbacks: 1,
            bitflips_injected: 7,
            ..ResilienceCounters::default()
        };
        let set = rc.to_counter_set();
        assert_eq!(set.get(trace::names::RESILIENCE_RETRY), 3);
        assert_eq!(set.get(trace::names::RESILIENCE_FALLBACK), 1);
        assert_eq!(set.get(trace::names::RESILIENCE_BITFLIP), 7);
        // Zero counters are omitted.
        assert_eq!(set.iter().count(), 3);
        let mut merged = ResilienceCounters::default();
        merged.merge(&rc);
        merged.merge(&rc);
        assert_eq!(merged.retries, 6);
    }
}
