//! Warp-level **Buffered Search** (paper §III-D, Algorithm 3).
//!
//! Each lane stages its k-NN candidates in a per-lane region of shared
//! memory. Three escalating variants, matching Fig. 6's series:
//!
//! * `buffer` — a lane flushes when *its own* buffer fills. The flush is a
//!   divergent event: other lanes idle while one lane drains 16 inserts.
//! * `full` (intra-warp communication) — a shared flag is raised when any
//!   lane's buffer fills; the whole warp flushes together, so the
//!   expensive insertion loops run at full SIMT efficiency.
//! * `full+sorted` (local sort) — before flushing, each lane's buffer is
//!   sorted ascending by a bitonic network in shared memory. The smallest
//!   candidate is inserted first, which tightens the queue maximum so
//!   that later buffered candidates often fail the cheap re-check instead
//!   of paying a full insertion.
//!
//! Buffer layout: slot `s` of lane `l` is shared-memory word
//! `s · 32 + l` — lanes hit distinct banks in lockstep, so buffered
//! traffic is conflict-free.

use simt::mem::SharedBuf;
use simt::{lanes_from_fn, splat, Lanes, Mask, WarpCtx, WARP_SIZE};

use crate::bitonic::{bitonic_sort_schedule, Comparator};
use crate::buffered::BufferConfig;
use crate::types::{INF, NO_ID};

use super::queues::WarpQueues;

/// Per-warp candidate buffer for Buffered Search.
pub struct WarpBuffer {
    db: SharedBuf<f32>,
    ib: SharedBuf<u32>,
    /// Per-lane fill level (register).
    cur: Lanes<usize>,
    flag: SharedBuf<u32>,
    cfg: BufferConfig,
    /// Ascending sort network over the (power-of-two padded) buffer.
    sort_schedule: Vec<Comparator>,
    padded: usize,
    /// Flush events executed (diagnostics).
    pub flushes: u64,
}

impl WarpBuffer {
    /// Allocate a buffer of `cfg.size` slots per lane.
    pub fn new(cfg: BufferConfig) -> Self {
        assert!(cfg.size > 0, "buffer size must be positive");
        let padded = cfg.size.next_power_of_two();
        // An ascending network is the descending network with every
        // comparator's *direction* flipped once: the flush executor below
        // applies "ensure buffer[a] <= buffer[b]" to these pairs, turning
        // the descending schedule into an ascending sorter.
        let sort_schedule = bitonic_sort_schedule(padded);
        WarpBuffer {
            db: SharedBuf::new(padded * WARP_SIZE),
            ib: SharedBuf::new(padded * WARP_SIZE),
            cur: splat(0),
            flag: SharedBuf::new(1),
            cfg,
            sort_schedule,
            padded,
            flushes: 0,
        }
    }

    /// The configuration this buffer was built with.
    pub fn config(&self) -> &BufferConfig {
        &self.cfg
    }

    #[inline]
    fn slot_idx(&self, slot: Lanes<usize>) -> Lanes<usize> {
        lanes_from_fn(|l| slot[l] * WARP_SIZE + l)
    }

    /// Stage candidates (lanes in `cand` hold a value below their queue
    /// max) and flush when the policy says so.
    pub fn push_and_maybe_flush(
        &mut self,
        ctx: &mut WarpCtx,
        warp: Mask,
        cand: Mask,
        dist: &Lanes<f32>,
        id: &Lanes<u32>,
        queues: &mut WarpQueues,
    ) {
        if cand.any_lane() {
            #[cfg(feature = "trace")]
            {
                queues.counters.buffer_pushes += cand.lanes().count() as u64;
            }
            let idx = self.slot_idx(self.cur);
            self.db.write(ctx, cand, &idx, dist);
            self.ib.write(ctx, cand, &idx, id);
            ctx.op(cand, 1); // cur++
            for l in cand.lanes() {
                self.cur[l] += 1;
            }
        }
        let full_pred = lanes_from_fn(|l| self.cur[l] == self.cfg.size);
        if self.cfg.intra_warp {
            // Shared flag: any full lane raises it; everyone flushes. The
            // warp_fence calls are free lockstep markers telling the race
            // sanitizer that the raise, the warp-wide read and the reset
            // are ordered by SIMT lockstep rather than racing.
            let raisers = ctx.ballot(warp, &full_pred);
            if raisers.any_lane() {
                ctx.warp_fence();
                self.flag.write_broadcast(ctx, raisers, 0, 1);
                ctx.warp_fence();
            }
            let flag = self.flag.read_broadcast(ctx, warp, 0);
            if flag == 1 {
                self.flush(ctx, warp, warp, queues);
                ctx.warp_fence();
                self.flag.write_broadcast(ctx, warp, 0, 0);
                ctx.warp_fence();
            }
        } else {
            // Each lane flushes alone when its own buffer fills — a
            // divergent flush.
            let (full_m, _) = ctx.diverge(warp, full_pred);
            if full_m.any_lane() {
                self.flush(ctx, warp, full_m, queues);
            }
        }
    }

    /// Drain all lanes' buffers (used at the end of the scan and between
    /// Hierarchical Partition levels).
    pub fn flush_all(&mut self, ctx: &mut WarpCtx, warp: Mask, queues: &mut WarpQueues) {
        let nonempty = lanes_from_fn(|l| self.cur[l] > 0);
        let m = warp.and_lanes(&nonempty);
        if m.any_lane() {
            self.flush(ctx, warp, m, queues);
        }
    }

    /// Flush the buffers of `participants`: optional local sort, then
    /// re-check + insert each staged candidate.
    fn flush(
        &mut self,
        ctx: &mut WarpCtx,
        warp: Mask,
        participants: Mask,
        queues: &mut WarpQueues,
    ) {
        self.flushes += 1;
        #[cfg(feature = "trace")]
        {
            queues.counters.buffer_flushes += 1;
        }
        let max_cur = participants.lanes().map(|l| self.cur[l]).max().unwrap_or(0);
        if max_cur == 0 {
            return;
        }
        if self.cfg.sorted {
            #[cfg(feature = "trace")]
            {
                queues.counters.local_sorts += 1;
            }
            // Pad unfilled slots with INF so the network is well-defined;
            // ascending order keeps real elements in slots [0, cur).
            for s in 0..self.padded {
                let pad = participants.filter(|l| s >= self.cur[l]);
                if pad.any_lane() {
                    let idx = self.slot_idx(splat(s));
                    self.db.write(ctx, pad, &idx, &splat(INF));
                    self.ib.write(ctx, pad, &idx, &splat(NO_ID));
                }
            }
            for i in 0..self.sort_schedule.len() {
                let (a, b) = self.sort_schedule[i];
                let ia = self.slot_idx(splat(a));
                let ib_ = self.slot_idx(splat(b));
                let va = self.db.read(ctx, participants, &ia);
                let vb = self.db.read(ctx, participants, &ib_);
                let ja = self.ib.read(ctx, participants, &ia);
                let jb = self.ib.read(ctx, participants, &ib_);
                ctx.op(participants, 2);
                // ascending: ensure buffer[a] <= buffer[b]
                let swap = lanes_from_fn(|l| va[l] > vb[l]);
                let na = lanes_from_fn(|l| if swap[l] { vb[l] } else { va[l] });
                let nb = lanes_from_fn(|l| if swap[l] { va[l] } else { vb[l] });
                let nja = lanes_from_fn(|l| if swap[l] { jb[l] } else { ja[l] });
                let njb = lanes_from_fn(|l| if swap[l] { ja[l] } else { jb[l] });
                self.db.write(ctx, participants, &ia, &na);
                self.db.write(ctx, participants, &ib_, &nb);
                self.ib.write(ctx, participants, &ia, &nja);
                self.ib.write(ctx, participants, &ib_, &njb);
            }
            #[cfg(feature = "sanitize")]
            self.audit_sorted_flush(participants);
        }
        // Drain: slot by slot (uniform index → conflict-free), re-check
        // against the current queue max, insert survivors.
        for s in 0..max_cur {
            let has = participants.filter(|l| s < self.cur[l]);
            if !has.any_lane() {
                continue;
            }
            let idx = self.slot_idx(splat(s));
            let d = self.db.read(ctx, has, &idx);
            let i = self.ib.read(ctx, has, &idx);
            let pred = lanes_from_fn(|l| d[l] < queues.qmax[l]);
            let (ins, _) = ctx.diverge(has, pred);
            #[cfg(feature = "trace")]
            {
                queues.counters.cheap_rejects += (has.lanes().count() - ins.lanes().count()) as u64;
            }
            queues.insert(ctx, warp, ins, &d, &i);
        }
        for l in participants.lanes() {
            self.cur[l] = 0;
        }
    }

    /// Host-side audit, run between the local sort and the drain under
    /// the `sanitize` feature: every participating lane's staged prefix
    /// must be ascending (Local Sorting's whole point is that the
    /// smallest candidate is inserted first). Charges no simulated cost;
    /// panics with the offending lane and the [`check::audit`] diagnosis.
    #[cfg(feature = "sanitize")]
    fn audit_sorted_flush(&self, participants: Mask) {
        for l in participants.lanes() {
            let vals: Vec<f32> = (0..self.padded)
                .map(|s| self.db.as_slice()[s * WARP_SIZE + l])
                .collect();
            if let Err(e) = check::audit::audit_flush_sorted(&vals, self.cur[l]) {
                panic!("sanitize audit: lane {l} buffer flush: {e}");
            }
        }
    }
}

// Test harnesses drive element streams by index (`streams[lane][e]`)
// to mirror the kernel's per-element loop; the range loop is the idiom.
#[allow(clippy::needless_range_loop)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::QueueKind;
    use rand::{Rng, SeedableRng};

    fn scan(
        kind: QueueKind,
        k: usize,
        cfg: BufferConfig,
        n: usize,
        seed: u64,
    ) -> (WarpQueues, Vec<Vec<f32>>, simt::Metrics) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let streams: Vec<Vec<f32>> = (0..WARP_SIZE)
            .map(|_| (0..n).map(|_| rng.gen()).collect())
            .collect();
        let mut ctx = WarpCtx::new(128, 32);
        let warp = Mask::full();
        let mut q = WarpQueues::new(kind, k, 8, true);
        let mut buf = WarpBuffer::new(cfg);
        for e in 0..n {
            let d = lanes_from_fn(|l| streams[l][e]);
            let pred = lanes_from_fn(|l| d[l] < q.qmax[l]);
            let (cand, _) = ctx.diverge(warp, pred);
            buf.push_and_maybe_flush(&mut ctx, warp, cand, &d, &splat(e as u32), &mut q);
        }
        buf.flush_all(&mut ctx, warp, &mut q);
        (q, streams, ctx.into_metrics())
    }

    fn check_exact(q: &WarpQueues, streams: &[Vec<f32>], k: usize, tag: &str) {
        for l in 0..WARP_SIZE {
            let got: Vec<f32> = q.lane_results(l).iter().map(|n| n.dist).collect();
            let mut expect = streams[l].clone();
            expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
            expect.truncate(k);
            assert_eq!(got, expect, "{tag} lane {l}");
        }
    }

    #[test]
    fn all_variants_exact_for_all_queues() {
        for kind in QueueKind::ALL {
            for (sorted, intra) in [(false, false), (false, true), (true, true)] {
                let cfg = BufferConfig {
                    size: 8,
                    sorted,
                    intra_warp: intra,
                };
                let (q, streams, _) = scan(kind, 16, cfg, 600, 71);
                check_exact(
                    &q,
                    &streams,
                    16,
                    &format!("{kind} sorted={sorted} intra={intra}"),
                );
            }
        }
    }

    #[test]
    fn odd_buffer_size_padded() {
        let cfg = BufferConfig {
            size: 5,
            sorted: true,
            intra_warp: true,
        };
        let (q, streams, _) = scan(QueueKind::Insertion, 8, cfg, 400, 72);
        check_exact(&q, &streams, 8, "padded");
    }

    #[test]
    fn intra_warp_flush_raises_simt_efficiency() {
        // Fig. 6's "full" vs "buffer": synchronising flushes across the
        // warp improves SIMT efficiency of the insertion-heavy phase.
        let base = BufferConfig {
            size: 16,
            sorted: false,
            intra_warp: false,
        };
        let full = BufferConfig {
            intra_warp: true,
            ..base
        };
        let (_, _, m_solo) = scan(QueueKind::Insertion, 64, base, 4000, 73);
        let (_, _, m_full) = scan(QueueKind::Insertion, 64, full, 4000, 73);
        assert!(
            m_full.simt_efficiency() > m_solo.simt_efficiency(),
            "full {:.3} vs solo {:.3}",
            m_full.simt_efficiency(),
            m_solo.simt_efficiency()
        );
    }

    #[test]
    fn buffering_beats_unbuffered_scan_for_insertion_queue() {
        // Fig. 6a: buffered search improves the insertion queue's issue
        // count substantially at moderate k.
        let n = 4000;
        let k = 64;
        // unbuffered baseline
        let mut rng = rand::rngs::StdRng::seed_from_u64(74);
        let streams: Vec<Vec<f32>> = (0..WARP_SIZE)
            .map(|_| (0..n).map(|_| rng.gen()).collect())
            .collect();
        let mut ctx = WarpCtx::new(128, 32);
        let warp = Mask::full();
        let mut q = WarpQueues::new(QueueKind::Insertion, k, 8, false);
        for e in 0..n {
            let d = lanes_from_fn(|l| streams[l][e]);
            let pred = lanes_from_fn(|l| d[l] < q.qmax[l]);
            let (ins, _) = ctx.diverge(warp, pred);
            q.insert(&mut ctx, warp, ins, &d, &splat(e as u32));
        }
        let unbuffered = ctx.into_metrics();
        let (_, _, buffered) = scan(
            QueueKind::Insertion,
            k,
            BufferConfig {
                size: 16,
                sorted: true,
                intra_warp: true,
            },
            n,
            74,
        );
        assert!(
            buffered.issued < unbuffered.issued,
            "buffered {} vs unbuffered {}",
            buffered.issued,
            unbuffered.issued
        );
    }

    #[test]
    fn flush_resets_fill_levels() {
        let cfg = BufferConfig {
            size: 4,
            sorted: true,
            intra_warp: true,
        };
        let mut ctx = WarpCtx::new(128, 32);
        let warp = Mask::full();
        let mut q = WarpQueues::new(QueueKind::Heap, 8, 8, false);
        let mut buf = WarpBuffer::new(cfg);
        for e in 0..4 {
            buf.push_and_maybe_flush(
                &mut ctx,
                warp,
                warp,
                &splat(0.1 * (e + 1) as f32),
                &splat(e as u32),
                &mut q,
            );
        }
        // all lanes filled simultaneously → exactly one flush, buffers empty
        assert_eq!(buf.flushes, 1);
        assert!(buf.cur.iter().all(|&c| c == 0));
        // flush_all on empty buffers is a no-op
        buf.flush_all(&mut ctx, warp, &mut q);
        assert_eq!(buf.flushes, 1);
    }
}
