//! Ground-truth checks for the `trace`-feature kernel counters: every
//! count is validated against an invariant of the selection algorithm
//! itself, not against recorded expectations.
#![cfg(feature = "trace")]

use kselect::buffered::BufferConfig;
use kselect::gpu::{gpu_select_k, DistanceMatrix, WarpQueues};
use kselect::hierarchical::HpConfig;
use kselect::types::QueueKind;
use kselect::SelectConfig;
use rand::{Rng, SeedableRng};
use simt::{lanes_from_fn, splat, GpuSpec, Mask, WarpCtx, WARP_SIZE};

fn dm_from(rows: &[Vec<f32>]) -> DistanceMatrix {
    DistanceMatrix::from_row_major(&rows.concat(), rows.len(), rows[0].len())
}

fn random_rows(q: usize, n: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..q)
        .map(|_| (0..n).map(|_| rng.gen()).collect())
        .collect()
}

/// Plain scan: each of the `n` elements of each of the `q` queries is
/// either accepted into the queue or rejected by the cheap guard —
/// nothing else can happen to it.
#[test]
fn insert_plus_reject_accounts_for_every_element_scanned() {
    let spec = GpuSpec::tesla_c2075();
    let (q, n, k) = (70, 600, 16); // 3 warps, one partial
    let dm = dm_from(&random_rows(q, n, 201));
    for queue in QueueKind::ALL {
        for aligned in [false, true] {
            let cfg = SelectConfig {
                aligned,
                ..SelectConfig::plain(queue, k)
            };
            let res = gpu_select_k(&spec, &dm, &cfg);
            let c = &res.counters;
            assert_eq!(
                c.queue_inserts + c.cheap_rejects,
                (n * q) as u64,
                "{queue} aligned={aligned}: every scanned element inserts or rejects"
            );
            assert!(
                c.queue_inserts >= (k * q) as u64,
                "at least k inserts per query"
            );
            assert_eq!(c.buffer_pushes, 0);
            assert_eq!(c.buffer_flushes, 0);
            assert_eq!(c.hp_expansions, 0);
        }
    }
}

/// Buffered Search: scan rejections + pushes cover the scan, and the
/// drain balance telescopes so inserts + total rejects still equal the
/// elements scanned. With the sorted variant, every non-empty flush
/// runs exactly one local sort.
#[test]
fn buffered_path_balances_and_counts_flushes() {
    let spec = GpuSpec::tesla_c2075();
    let (q, n, k) = (64, 2000, 32);
    let dm = dm_from(&random_rows(q, n, 202));
    for (sorted, intra_warp) in [(false, false), (false, true), (true, true)] {
        let cfg = SelectConfig::plain(QueueKind::Merge, k).with_buffer(BufferConfig {
            size: 16,
            sorted,
            intra_warp,
        });
        let res = gpu_select_k(&spec, &dm, &cfg);
        let c = &res.counters;
        // scan: pushes + scan-rejects = n·q; drain: pushes = inserts +
        // drain-rejects ⇒ inserts + rejects(total) = n·q
        assert_eq!(
            c.queue_inserts + c.cheap_rejects,
            (n * q) as u64,
            "sorted={sorted} intra={intra_warp}"
        );
        assert!(c.buffer_pushes >= c.queue_inserts);
        assert!(c.buffer_flushes > 0);
        if sorted {
            assert_eq!(
                c.local_sorts, c.buffer_flushes,
                "one sort per non-empty flush"
            );
        } else {
            assert_eq!(c.local_sorts, 0);
        }
    }
}

/// The merge-repair level counters must agree exactly with the queue's
/// own (always-on) `merge_passes` diagnostic, and the aligned variant
/// must record its ballot/flag synchronisation rounds.
#[test]
// The element stream is indexed per lane (`streams[l][e]`) to mirror the
// kernel's per-element loop; the range loop is the idiom here.
#[allow(clippy::needless_range_loop)]
fn merge_repair_counters_match_merge_passes_ground_truth() {
    for aligned in [false, true] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(203);
        let n = 3000;
        let streams: Vec<Vec<f32>> = (0..WARP_SIZE)
            .map(|_| (0..n).map(|_| rng.gen()).collect())
            .collect();
        let mut ctx = WarpCtx::new(128, 32);
        let mut q = WarpQueues::new(QueueKind::Merge, 64, 8, aligned);
        let warp = Mask::full();
        for e in 0..n {
            let d = lanes_from_fn(|l| streams[l][e]);
            let pred = lanes_from_fn(|l| d[l] < q.qmax[l]);
            let (ins, _) = ctx.diverge(warp, pred);
            q.insert(&mut ctx, warp, ins, &d, &splat(e as u32));
        }
        assert_eq!(
            q.counters.merge_repairs(),
            q.merge_passes,
            "aligned={aligned}: per-level counters must sum to merge_passes"
        );
        // k=64, m=8 ⇒ levels 0..=2 (prefixes 16, 32, 64)
        assert!(q.counters.merge_repairs_by_level.len() <= 3);
        assert!(q.counters.merge_repairs_by_level[0] >= q.counters.merge_repairs_by_level[1]);
        if aligned {
            assert!(q.counters.aligned_syncs > 0);
            // every repair pass was preceded by a ballot round
            assert!(q.counters.aligned_syncs >= q.counters.merge_repairs());
        } else {
            assert_eq!(q.counters.aligned_syncs, 0);
        }
    }
}

/// Hierarchical Partition: expansions happen only when HP is on, and
/// the exported counter set carries the canonical names.
#[test]
fn hp_expansions_and_counter_set_export() {
    let spec = GpuSpec::tesla_c2075();
    let dm = dm_from(&random_rows(32, 4096, 204));
    let plain = gpu_select_k(&spec, &dm, &SelectConfig::plain(QueueKind::Merge, 16));
    assert_eq!(plain.counters.hp_expansions, 0);

    let cfg = SelectConfig::plain(QueueKind::Merge, 16).with_hp(HpConfig::default());
    let res = gpu_select_k(&spec, &dm, &cfg);
    assert!(res.counters.hp_expansions > 0);

    let set = res.counters.to_counter_set();
    assert_eq!(
        set.get(trace::names::QUEUE_INSERT),
        res.counters.queue_inserts
    );
    assert_eq!(
        set.get(trace::names::HP_NODE_EXPANSION),
        res.counters.hp_expansions
    );
    assert_eq!(
        set.sum_prefix(trace::names::MERGE_REPAIR_PREFIX),
        res.counters.merge_repairs()
    );
    // zero-valued counters are omitted from the export
    assert_eq!(set.get(trace::names::BUFFER_PUSH), 0);
    assert!(set.iter().all(|(_, v)| v > 0));
}
