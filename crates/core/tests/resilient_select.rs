//! Seeded fault campaign against the resilient k-selection path.
//!
//! Every scenario runs a deterministic `FaultPlan` against
//! `gpu_select_k_resilient` and checks the contract the resilience
//! layer promises: each query either receives the *exact* fault-free
//! top-k (clean, recovered or fallback) or an explicit named error —
//! never a silently corrupted result.
//!
//! Compiled only with the `fault` feature; a default build has no
//! injection hooks to exercise.
#![cfg(feature = "fault")]

use kselect::gpu::{
    gpu_select_k, gpu_select_k_resilient, DistanceMatrix, GpuResilience, QueryStatus,
};
use kselect::{QueueKind, SelectConfig};
use rand::{Rng, SeedableRng};
use simt::{FaultPlan, GpuSpec};

fn random_dm(q: usize, n: usize, seed: u64) -> DistanceMatrix {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let flat: Vec<f32> = (0..q * n).map(|_| rng.gen()).collect();
    DistanceMatrix::from_row_major(&flat, q, n)
}

struct Scenario {
    name: &'static str,
    plan: FaultPlan,
    cfg: SelectConfig,
    max_attempts: u32,
    fallback: bool,
}

fn scenarios() -> Vec<Scenario> {
    let plain = SelectConfig::plain(QueueKind::Merge, 16);
    let optimized = SelectConfig::optimized(QueueKind::Merge, 16);
    let heap = SelectConfig::plain(QueueKind::Heap, 16);
    let insertion = SelectConfig::plain(QueueKind::Insertion, 16);
    vec![
        Scenario {
            name: "abort-light-merge",
            plan: FaultPlan::seeded(101).with_aborts(0.2),
            cfg: plain,
            max_attempts: 6,
            fallback: true,
        },
        Scenario {
            name: "abort-heavy-merge-fallback",
            plan: FaultPlan::seeded(102).with_aborts(0.9),
            cfg: plain,
            max_attempts: 3,
            fallback: true,
        },
        Scenario {
            name: "abort-heavy-no-fallback",
            plan: FaultPlan::seeded(103).with_aborts(1.0),
            cfg: heap,
            max_attempts: 2,
            fallback: false,
        },
        Scenario {
            name: "hang-light-optimized",
            plan: FaultPlan::seeded(104).with_hangs(0.25),
            cfg: optimized,
            max_attempts: 6,
            fallback: true,
        },
        Scenario {
            name: "hang-always-fallback",
            plan: FaultPlan::seeded(105).with_hangs(1.0),
            cfg: insertion,
            max_attempts: 2,
            fallback: true,
        },
        Scenario {
            name: "bitflip-light-merge",
            plan: FaultPlan::seeded(106).with_bitflips(1e-4),
            cfg: plain,
            max_attempts: 6,
            fallback: true,
        },
        Scenario {
            name: "bitflip-heavy-heap",
            plan: FaultPlan::seeded(107).with_bitflips(2e-3),
            cfg: heap,
            max_attempts: 8,
            fallback: true,
        },
        Scenario {
            name: "bitflip-optimized-hp",
            plan: FaultPlan::seeded(108).with_bitflips(5e-4),
            cfg: optimized,
            max_attempts: 8,
            fallback: true,
        },
        Scenario {
            name: "abort-and-bitflip-mix",
            plan: FaultPlan::seeded(109).with_aborts(0.3).with_bitflips(5e-4),
            cfg: plain,
            max_attempts: 8,
            fallback: true,
        },
        Scenario {
            name: "everything-at-once",
            plan: FaultPlan::seeded(110)
                .with_aborts(0.2)
                .with_hangs(0.2)
                .with_bitflips(5e-4),
            cfg: optimized,
            max_attempts: 10,
            fallback: true,
        },
    ]
}

/// The central promise: delivered results equal the fault-free oracle
/// exactly; undelivered queries carry a named error.
#[test]
fn no_silent_corruption_across_scenarios() {
    let spec = GpuSpec::tesla_c2075();
    let dm = random_dm(70, 400, 7);
    for sc in scenarios() {
        let oracle = gpu_select_k(&spec, &dm, &sc.cfg);
        let res = GpuResilience {
            max_attempts: sc.max_attempts,
            fallback: sc.fallback,
            ..GpuResilience::default()
        }
        .with_faults(sc.plan);
        let out = gpu_select_k_resilient(&spec, &dm, &sc.cfg, &res)
            .unwrap_or_else(|e| panic!("{}: launch failed: {e}", sc.name));

        let injected = out.report.counters.bitflips_injected
            + out.report.counters.aborts
            + out.report.counters.watchdog_timeouts;
        // Rates are calibrated so every scenario actually injects.
        assert!(injected > 0, "{}: campaign injected nothing", sc.name);

        for (qi, got) in out.neighbors.iter().enumerate() {
            match got {
                Some(neigh) => {
                    let want: Vec<f32> = oracle.neighbors[qi].iter().map(|n| n.dist).collect();
                    let got_d: Vec<f32> = neigh.iter().map(|n| n.dist).collect();
                    assert_eq!(got_d, want, "{}: query {qi} corrupted", sc.name);
                    for nb in neigh {
                        assert_eq!(
                            dm.value(qi, nb.id as usize),
                            nb.dist,
                            "{}: query {qi} id/dist mismatch",
                            sc.name
                        );
                    }
                }
                None => {
                    assert!(
                        !sc.fallback,
                        "{}: fallback must never leave a hole",
                        sc.name
                    );
                    match &out.report.statuses[qi] {
                        QueryStatus::Failed { reason, .. } => {
                            assert!(!reason.is_empty(), "{}: unnamed failure", sc.name)
                        }
                        other => panic!("{}: hole with status {other:?}", sc.name),
                    }
                }
            }
        }
    }
}

/// Same plan, same inputs → byte-identical report (Debug formatting
/// covers every field, including failure strings and counters).
#[test]
fn reports_are_deterministic() {
    let spec = GpuSpec::tesla_c2075();
    let dm = random_dm(64, 300, 8);
    let cfg = SelectConfig::optimized(QueueKind::Merge, 16);
    let res = GpuResilience {
        max_attempts: 4,
        ..GpuResilience::default()
    }
    .with_faults(
        FaultPlan::seeded(77)
            .with_aborts(0.3)
            .with_hangs(0.1)
            .with_bitflips(3e-4),
    );
    let a = gpu_select_k_resilient(&spec, &dm, &cfg, &res).unwrap();
    let b = gpu_select_k_resilient(&spec, &dm, &cfg, &res).unwrap();
    assert_eq!(format!("{:?}", a.report), format!("{:?}", b.report));
    assert_eq!(a.neighbors, b.neighbors);
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.wasted, b.wasted);
}

/// A different seed changes the campaign (the plan is not a constant).
#[test]
fn different_seeds_draw_different_campaigns() {
    let spec = GpuSpec::tesla_c2075();
    let dm = random_dm(64, 200, 9);
    let cfg = SelectConfig::plain(QueueKind::Merge, 16);
    let run = |seed: u64| {
        let res = GpuResilience {
            max_attempts: 5,
            ..GpuResilience::default()
        }
        .with_faults(FaultPlan::seeded(seed).with_aborts(0.5));
        format!(
            "{:?}",
            gpu_select_k_resilient(&spec, &dm, &cfg, &res)
                .unwrap()
                .report
        )
    };
    assert_ne!(run(1), run(2));
}

/// Retry and fallback cost real simulated resources: wasted metrics,
/// backoff seconds and fallback transfer time all become non-zero under
/// a hot campaign, and the accounting is visible in the report.
#[test]
fn recovery_cost_is_accounted() {
    let spec = GpuSpec::tesla_c2075();
    let dm = random_dm(96, 256, 10);
    let cfg = SelectConfig::plain(QueueKind::Merge, 16);
    let res = GpuResilience {
        max_attempts: 3,
        ..GpuResilience::default()
    }
    .with_faults(FaultPlan::seeded(55).with_aborts(0.8));
    let out = gpu_select_k_resilient(&spec, &dm, &cfg, &res).unwrap();
    assert!(out.report.counters.retries > 0);
    assert!(out.wasted.issued > 0, "aborted attempts did real work");
    assert!(out.report.backoff_s > 0.0);
    if out.report.fallback_count() > 0 {
        assert!(out.report.fallback_transfer_s > 0.0);
    }
    let set = out.report.counters.to_counter_set();
    assert!(set.get(trace::names::RESILIENCE_RETRY) > 0);
}
