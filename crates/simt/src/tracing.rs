//! Trace-emission helpers for simulated launches (`trace` feature).
//!
//! The simulator has no wall clock worth recording — a launch's "time"
//! is an analytic function of its [`Metrics`]. These helpers convert
//! that modelled duration into [`trace`] spans on a [`Tracer`]'s
//! simulated clock, so a whole pipeline of launches lays out on one
//! consistent timeline.

use trace::{Category, Tracer};

use crate::{Metrics, TimingModel};

/// Record a kernel launch as a [`Category::Kernel`] span: opens at the
/// tracer's current clock, advances by the modelled kernel time for
/// `metrics`, closes. Returns the modelled duration in seconds.
pub fn kernel_span(tracer: &mut Tracer, name: &str, tm: &TimingModel, metrics: &Metrics) -> f64 {
    let dur = tm.kernel_time(metrics);
    tracer.span(Category::Kernel, name, dur);
    dur
}

/// Record a host↔device PCIe transfer as a [`Category::Phase`] span of
/// the modelled transfer time for `bytes`. Returns the duration.
pub fn transfer_span(tracer: &mut Tracer, name: &str, tm: &TimingModel, bytes: u64) -> f64 {
    let dur = tm.pcie_transfer_time(bytes);
    tracer.span(Category::Phase, name, dur);
    dur
}

/// Lay out one concurrent [`Category::Warp`] span per warp under the
/// last kernel: all `n_warps` spans cover the same `[now, now + dur_s)`
/// window, each on its own thread lane (`tid = warp + 1`; tid 0 is the
/// main timeline). The clock is **not** advanced — warps run inside
/// their kernel's span, which the caller accounts for.
pub fn warp_spans(tracer: &mut Tracer, name: &str, n_warps: usize, dur_s: f64) {
    let start = tracer.clock_s();
    let ids: Vec<_> = (0..n_warps)
        .map(|w| tracer.open_span_on(w as u32 + 1, Category::Warp, format!("{name}.warp{w}")))
        .collect();
    tracer.advance(dur_s);
    for id in ids.into_iter().rev() {
        tracer.close_span(id);
    }
    // rewind-free restore: set_clock only moves forward, so re-assert
    // the end point and leave the cursor where the kernel span ends
    tracer.set_clock(start + dur_s.max(0.0));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_span_advances_clock_by_modelled_time() {
        let tm = TimingModel::tesla_c2075();
        let mut m = Metrics::new();
        m.issued = 1_000;
        m.lane_work = 32_000;
        let mut t = Tracer::new();
        let dur = kernel_span(&mut t, "gpu_select_k", &tm, &m);
        assert!(dur > 0.0);
        assert!((t.clock_s() - dur).abs() < 1e-15);
        assert!(t.is_balanced());
        assert_eq!(t.events().len(), 2);
    }

    #[test]
    fn warp_spans_share_the_window_on_distinct_tids() {
        let mut t = Tracer::new();
        warp_spans(&mut t, "select", 3, 2e-6);
        assert!(t.is_balanced());
        let begins: Vec<u32> = t
            .events()
            .iter()
            .filter(|e| e.kind == trace::EventKind::Begin)
            .map(|e| e.tid)
            .collect();
        assert_eq!(begins, [1, 2, 3]);
        assert!((t.clock_us() - 2.0).abs() < 1e-9);
    }
}
