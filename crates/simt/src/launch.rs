//! Kernel launch machinery: fan a kernel out over many warps.
//!
//! Warps are independent in every kernel in this workspace (one k-NN query
//! per lane, 32 queries per warp), so the launcher runs them across host
//! cores with rayon. Each warp owns a private [`WarpCtx`]; metrics are
//! reduced at the end, which keeps the simulation deterministic regardless
//! of host scheduling.

use rayon::prelude::*;

use crate::{GpuSpec, Metrics, WarpCtx};

/// Execute `kernel` for `n_warps` warps in parallel on the host.
///
/// Returns each warp's result (ordered by warp id) and the summed metrics.
/// The kernel must be `Sync` because warps may run concurrently; all
/// simulated mutable state should live inside the kernel invocation (e.g.
/// [`crate::mem::LaneLocal`] buffers created per warp) or be returned.
pub fn launch<R, K>(spec: &GpuSpec, n_warps: usize, kernel: K) -> (Vec<R>, Metrics)
where
    K: Fn(usize, &mut WarpCtx) -> R + Sync,
    R: Send,
{
    let per_warp: Vec<(R, Metrics)> = (0..n_warps)
        .into_par_iter()
        .map(|w| {
            let mut ctx = WarpCtx::for_spec(spec);
            let r = kernel(w, &mut ctx);
            (r, ctx.into_metrics())
        })
        .collect();

    let mut results = Vec::with_capacity(n_warps);
    let mut total = Metrics::new();
    for (r, m) in per_warp {
        results.push(r);
        total.add(&m);
    }
    (results, total)
}

/// Sequential variant of [`launch`] — identical semantics, single-threaded.
/// Useful under `proptest` (avoids nested thread pools) and when
/// debugging a kernel warp by warp.
pub fn launch_seq<R, K>(spec: &GpuSpec, n_warps: usize, mut kernel: K) -> (Vec<R>, Metrics)
where
    K: FnMut(usize, &mut WarpCtx) -> R,
{
    let mut results = Vec::with_capacity(n_warps);
    let mut total = Metrics::new();
    for w in 0..n_warps {
        let mut ctx = WarpCtx::for_spec(spec);
        results.push(kernel(w, &mut ctx));
        total.add(&ctx.into_metrics());
    }
    (results, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mask, WARP_SIZE};

    #[test]
    fn parallel_and_sequential_agree() {
        let spec = GpuSpec::tesla_c2075();
        let kernel = |w: usize, ctx: &mut WarpCtx| {
            ctx.op(Mask::full(), (w as u64 % 7) + 1);
            w * 2
        };
        let (r1, m1) = launch(&spec, 64, kernel);
        let (r2, m2) = launch_seq(&spec, 64, kernel);
        assert_eq!(r1, r2);
        assert_eq!(m1, m2);
    }

    #[test]
    fn results_ordered_by_warp_id() {
        let spec = GpuSpec::tesla_c2075();
        let (r, _) = launch(&spec, 100, |w, _| w);
        assert_eq!(r, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn metrics_sum_over_warps() {
        let spec = GpuSpec::tesla_c2075();
        let (_, m) = launch(&spec, 10, |_, ctx| ctx.op(Mask::full(), 3));
        assert_eq!(m.issued, 30);
        assert_eq!(m.lane_work, 30 * WARP_SIZE as u64);
    }

    #[test]
    fn zero_warps() {
        let spec = GpuSpec::tesla_c2075();
        let (r, m) = launch(&spec, 0, |w, _| w);
        assert!(r.is_empty());
        assert_eq!(m, Metrics::new());
    }
}
