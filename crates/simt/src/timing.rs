//! Analytic timing model: metrics → simulated seconds.
//!
//! The model is intentionally simple and fully parameterised, because the
//! reproduction target is the *shape* of the paper's results (who wins, by
//! what factor, where crossovers fall) rather than absolute seconds:
//!
//! ```text
//! compute_cycles = issued·issue_cpi + shared·shared_cpi + global_tx·mem_stall
//! t_compute      = compute_cycles / (sm_count · clock)
//! t_memory       = global_tx · transaction_bytes / bandwidth
//! kernel_time    = max(t_compute, t_memory) + launch_overhead
//! ```
//!
//! Dividing total warp cycles by the SM count models warps spreading evenly
//! across SMs; `mem_stall` is the *effective* (post-latency-hiding) stall a
//! warp pays per DRAM transaction it issues. The defaults were calibrated
//! once against the relative ordering in Table I of the paper and then
//! frozen; every experiment uses the same constants.

use serde::{Deserialize, Serialize};

use crate::{GpuSpec, Metrics};

/// Converts [`Metrics`] into simulated wall-clock seconds.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimingModel {
    /// Device parameters (clock, SM count, bandwidth…).
    pub spec: GpuSpec,
    /// Cycles per issued warp instruction (1.0 = one instruction per
    /// cycle per SM).
    pub issue_cpi: f64,
    /// Cycles per shared-memory replay.
    pub shared_cpi: f64,
    /// Effective stall cycles a warp pays per DRAM transaction after
    /// latency hiding by other resident warps.
    pub mem_stall_cycles: f64,
    /// Fixed kernel-launch overhead in seconds.
    pub launch_overhead_s: f64,
}

impl TimingModel {
    /// Model calibrated for the paper's Tesla C2075 testbed.
    pub fn tesla_c2075() -> Self {
        TimingModel {
            spec: GpuSpec::tesla_c2075(),
            issue_cpi: 1.0,
            shared_cpi: 1.0,
            mem_stall_cycles: 8.0,
            launch_overhead_s: 10e-6,
        }
    }

    /// Build a model for an arbitrary device with default cost weights.
    pub fn for_spec(spec: GpuSpec) -> Self {
        TimingModel {
            spec,
            issue_cpi: 1.0,
            shared_cpi: 1.0,
            mem_stall_cycles: 8.0,
            launch_overhead_s: 10e-6,
        }
    }

    /// Total compute cycles implied by `m` (summed over all warps).
    pub fn compute_cycles(&self, m: &Metrics) -> f64 {
        m.issued as f64 * self.issue_cpi
            + m.shared_accesses as f64 * self.shared_cpi
            + m.global_transactions as f64 * self.mem_stall_cycles
    }

    /// Compute-side time: cycles spread across all SMs.
    pub fn compute_time(&self, m: &Metrics) -> f64 {
        self.compute_cycles(m) / (self.spec.sm_count as f64 * self.spec.clock_ghz * 1e9)
    }

    /// Memory-side time: DRAM traffic at peak bandwidth.
    pub fn memory_time(&self, m: &Metrics) -> f64 {
        let bytes = m.global_transactions as f64 * self.spec.transaction_bytes as f64;
        bytes / (self.spec.mem_bandwidth_gbps * 1e9)
    }

    /// Simulated duration of one kernel whose aggregated metrics are `m`.
    pub fn kernel_time(&self, m: &Metrics) -> f64 {
        self.compute_time(m).max(self.memory_time(m)) + self.launch_overhead_s
    }

    /// Simulated duration when the measured metrics cover only a sample of
    /// the real workload (e.g. 32 of 8192 queries): the steady-state part
    /// scales by `replication`, the launch overhead does not.
    ///
    /// `replication` must be ≥ 1 — it is the factor by which the full
    /// workload exceeds the simulated sample.
    pub fn kernel_time_scaled(&self, m: &Metrics, replication: f64) -> f64 {
        assert!(replication >= 1.0, "replication factor must be ≥ 1");
        (self.kernel_time(m) - self.launch_overhead_s) * replication + self.launch_overhead_s
    }

    /// Host↔device transfer time for `bytes` over PCIe (Table I's
    /// "Data Copy" row).
    pub fn pcie_transfer_time(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.spec.pcie_gbps * 1e9)
    }

    /// Occupancy given each warp's shared-memory footprint: the fraction
    /// of the SM's maximum resident warps that can actually be resident.
    /// Fermi runs up to 48 warps per SM; shared memory is the binding
    /// resource for buffered kernels.
    pub fn occupancy(&self, shared_bytes_per_warp: u64) -> f64 {
        const MAX_RESIDENT_WARPS: u64 = 48;
        if shared_bytes_per_warp == 0 {
            return 1.0;
        }
        let by_shared = self.spec.shared_mem_bytes / shared_bytes_per_warp;
        (by_shared.min(MAX_RESIDENT_WARPS) as f64 / MAX_RESIDENT_WARPS as f64).min(1.0)
    }

    /// [`Self::kernel_time`] with an occupancy correction. Latency hiding
    /// needs only a fraction of full occupancy (~12 resident warps on
    /// Fermi keep the memory pipeline covered); below that threshold the
    /// per-transaction stall grows inversely with occupancy. Deliberately
    /// first-order — see the crate-level fidelity notes.
    pub fn kernel_time_occupancy(&self, m: &Metrics, shared_bytes_per_warp: u64) -> f64 {
        /// Occupancy at which latency is still fully hidden (12/48 warps).
        const FULL_HIDING_OCCUPANCY: f64 = 0.25;
        let occ = self.occupancy(shared_bytes_per_warp).max(1.0 / 48.0);
        let stall = self.mem_stall_cycles * (FULL_HIDING_OCCUPANCY / occ).max(1.0);
        let compute_cycles = m.issued as f64 * self.issue_cpi
            + m.shared_accesses as f64 * self.shared_cpi
            + m.global_transactions as f64 * stall;
        let t_compute = compute_cycles / (self.spec.sm_count as f64 * self.spec.clock_ghz * 1e9);
        t_compute.max(self.memory_time(m)) + self.launch_overhead_s
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        Self::tesla_c2075()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute_heavy() -> Metrics {
        Metrics {
            issued: 14_000_000, // 1M cycles across 14 SMs at CPI 1
            lane_work: 14_000_000 * 32,
            ..Default::default()
        }
    }

    #[test]
    fn compute_bound_kernel() {
        let tm = TimingModel::tesla_c2075();
        let m = compute_heavy();
        let t = tm.kernel_time(&m);
        // 14e6 cycles / (14 SM × 1.15 GHz) ≈ 0.87 ms, plus 10 µs overhead.
        let expect = 1e6 / 1.15e9 + 10e-6;
        assert!((t - expect).abs() / expect < 1e-9, "t = {t}");
    }

    #[test]
    fn memory_bound_kernel() {
        let tm = TimingModel::tesla_c2075();
        let m = Metrics {
            issued: 1,
            global_transactions: 144_000_000 / 128, // exactly 144 MB of traffic
            ..Default::default()
        };
        let t = tm.kernel_time(&m) - tm.launch_overhead_s;
        // 144 MB at 144 GB/s = 1 ms; the stall-cycle compute term is smaller.
        assert!((t - 1e-3).abs() < 1e-4, "t = {t}");
        assert!(tm.memory_time(&m) > tm.compute_time(&m));
    }

    #[test]
    fn scaling_preserves_overhead_once() {
        let tm = TimingModel::tesla_c2075();
        let m = compute_heavy();
        let t1 = tm.kernel_time(&m);
        let t4 = tm.kernel_time_scaled(&m, 4.0);
        let body = t1 - tm.launch_overhead_s;
        assert!((t4 - (4.0 * body + tm.launch_overhead_s)).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn replication_below_one_rejected() {
        let tm = TimingModel::tesla_c2075();
        tm.kernel_time_scaled(&Metrics::default(), 0.5);
    }

    #[test]
    fn pcie_time() {
        let tm = TimingModel::tesla_c2075();
        // Paper Table I: copying N=2^15 × Q=2^13 f32 distances ≈ 1.07 GB
        // takes ~0.19 s at 5.7 GB/s — same order as the paper's 0.46 s
        // (which includes both distance and index arrays → 2×).
        let bytes = (1u64 << 15) * (1u64 << 13) * 4 * 2;
        let t = tm.pcie_transfer_time(bytes);
        assert!(t > 0.3 && t < 0.6, "t = {t}");
    }

    #[test]
    fn occupancy_model() {
        let tm = TimingModel::tesla_c2075();
        assert_eq!(tm.occupancy(0), 1.0);
        assert_eq!(tm.occupancy(1024), 1.0); // 48 warps × 1 KB = 48 KB fits
        assert!((tm.occupancy(2048) - 0.5).abs() < 1e-12); // 24 of 48 warps
        assert!((tm.occupancy(48 * 1024) - 1.0 / 48.0).abs() < 1e-12);
        // Moderate shared usage keeps full latency hiding…
        let m = Metrics {
            issued: 1_000_000,
            global_transactions: 200_000,
            ..Metrics::default()
        };
        let full = tm.kernel_time_occupancy(&m, 0);
        assert!((tm.kernel_time_occupancy(&m, 2048) - full).abs() < 1e-12);
        // …but dropping below ~12 resident warps starts costing.
        let starved = tm.kernel_time_occupancy(&m, 8192); // 6 warps
        assert!(starved > full);
        // and with no shared usage it matches the plain model
        assert!((full - tm.kernel_time(&m)).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_all_counters() {
        let tm = TimingModel::tesla_c2075();
        let base = Metrics {
            issued: 1000,
            shared_accesses: 50,
            global_transactions: 20,
            ..Default::default()
        };
        for bump in [
            Metrics {
                issued: 1,
                ..Default::default()
            },
            Metrics {
                shared_accesses: 1,
                ..Default::default()
            },
            Metrics {
                global_transactions: 1,
                ..Default::default()
            },
        ] {
            let more = base + bump;
            assert!(tm.kernel_time(&more) >= tm.kernel_time(&base));
        }
    }
}
