//! Hardware specifications for the simulated device.

use serde::{Deserialize, Serialize};

/// Parameters of the simulated GPU.
///
/// The defaults mirror the NVIDIA Tesla C2075 (Fermi) used in the paper:
/// 14 SMs × 32 cores at 1.15 GHz, 6 GB GDDR5 at 144 GB/s, 48 KB shared
/// memory per SM, 32 shared-memory banks, 128-byte DRAM transactions.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// SM clock in GHz.
    pub clock_ghz: f64,
    /// Peak DRAM bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Size of one DRAM transaction in bytes (coalescing granularity).
    pub transaction_bytes: u64,
    /// Number of shared-memory banks (a warp access with all lanes in
    /// distinct banks completes in one replay).
    pub shared_banks: u32,
    /// Shared memory per SM in bytes (capacity checks for `SharedBuf`).
    pub shared_mem_bytes: u64,
    /// Effective host↔device PCIe bandwidth in GB/s (for the "Data Copy"
    /// row of Table I).
    pub pcie_gbps: f64,
}

impl GpuSpec {
    /// The paper's testbed: NVIDIA Tesla C2075 (Fermi).
    pub fn tesla_c2075() -> Self {
        GpuSpec {
            sm_count: 14,
            clock_ghz: 1.15,
            mem_bandwidth_gbps: 144.0,
            transaction_bytes: 128,
            shared_banks: 32,
            shared_mem_bytes: 48 * 1024,
            // PCIe 2.0 x16 ≈ 8 GB/s theoretical; ~4.3 GB/s effective for
            // large device→host copies on Fermi-era systems — this value
            // reproduces the paper's "Data Copy" row (0.46 s at N = 2^15,
            // Q = 2^13 for distance + index arrays).
            pcie_gbps: 4.3,
        }
    }

    /// A hypothetical smaller device, useful for tests that want memory
    /// bandwidth to bind earlier.
    pub fn small_test_device() -> Self {
        GpuSpec {
            sm_count: 2,
            clock_ghz: 1.0,
            mem_bandwidth_gbps: 16.0,
            transaction_bytes: 128,
            shared_banks: 32,
            shared_mem_bytes: 16 * 1024,
            pcie_gbps: 4.0,
        }
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        Self::tesla_c2075()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c2075_matches_paper() {
        let s = GpuSpec::tesla_c2075();
        assert_eq!(s.sm_count, 14);
        assert!((s.clock_ghz - 1.15).abs() < 1e-12);
        assert!((s.mem_bandwidth_gbps - 144.0).abs() < 1e-12);
        assert_eq!(s.transaction_bytes, 128);
    }

    #[test]
    fn default_is_c2075() {
        assert_eq!(GpuSpec::default().sm_count, GpuSpec::tesla_c2075().sm_count);
    }
}
