//! Simulated memory spaces with cost accounting.
//!
//! Three spaces, matching the CUDA memory hierarchy that the paper's
//! techniques are designed around:
//!
//! * [`GlobalBuf`] — device global memory shared by all warps. A warp-wide
//!   access costs one DRAM transaction per distinct 128-byte segment
//!   touched by active lanes (the Fermi coalescing rule).
//! * [`LaneLocal`] — per-thread arrays ("local memory"). CUDA interleaves
//!   local memory so that lane `l`'s element `i` lives at physical word
//!   `i * 32 + l`; consequently a *lockstep* access (all lanes at the same
//!   index) is one coalesced transaction, while a divergent access (lanes
//!   at different indices) scatters across segments. The per-thread k-NN
//!   queues live here, which is exactly why the paper's Aligned Merge and
//!   Buffered Search pay off.
//! * [`SharedBuf`] — per-warp shared memory with 32 banks; conflicting
//!   lanes replay. The intra-warp communication flag and candidate
//!   buffers live here.

use crate::{splat, Lanes, Mask, WarpCtx, WARP_SIZE};

/// Count the DRAM transactions needed to service one warp access given the
/// byte address touched by each active lane.
fn count_transactions(ctx: &WarpCtx, mask: Mask, byte_addrs: &Lanes<u64>) -> u64 {
    let tb = ctx.transaction_bytes().max(1);
    // At most 32 distinct segments; a tiny insertion-sorted array beats a
    // hash set at this size.
    let mut segs = [0u64; WARP_SIZE];
    let mut n = 0usize;
    for l in mask.lanes() {
        let seg = byte_addrs[l] / tb;
        if !segs[..n].contains(&seg) {
            segs[n] = seg;
            n += 1;
        }
    }
    n as u64
}

/// Shared-memory replay count for one warp access: lanes hitting the same
/// bank but different words serialize; lanes reading the same word
/// broadcast for free. Allocation-free: at most 32 lanes means at most
/// 32 distinct (bank, word) pairs to dedup with a linear scan.
fn count_bank_replays(ctx: &WarpCtx, mask: Mask, word_idxs: &Lanes<usize>) -> u64 {
    if !mask.any_lane() {
        return 0;
    }
    let banks = ctx.shared_banks().max(1) as usize;
    // Distinct words seen, and how many distinct words per bank.
    let mut words = [0usize; WARP_SIZE];
    let mut n_words = 0usize;
    let mut per_bank = [0u32; WARP_SIZE];
    let mut max_replays = 0u32;
    for l in mask.lanes() {
        let w = word_idxs[l];
        if !words[..n_words].contains(&w) {
            words[n_words] = w;
            n_words += 1;
            let bank = w % banks;
            // `banks` can exceed 32 in exotic configs; clamp the counter
            // index — distinct banks beyond the lane count cannot
            // conflict anyway.
            let slot = bank % WARP_SIZE;
            per_bank[slot] += 1;
            max_replays = max_replays.max(per_bank[slot]);
        }
    }
    u64::from(max_replays.max(1))
}

/// Panic when a shared access exceeds the configured bank-replay limit,
/// naming the hot bank and the conflicting lanes (sanitize-only check;
/// see [`WarpCtx::set_bank_conflict_limit`]).
#[cfg(feature = "sanitize")]
fn enforce_bank_limit(ctx: &WarpCtx, mask: Mask, idxs: &Lanes<usize>, replays: u64) {
    if let Some(limit) = ctx.bank_conflict_limit() {
        if replays > limit {
            let detail = describe_bank_conflict(ctx.shared_banks() as usize, mask, idxs)
                .unwrap_or_else(|| "no single bank dominates".to_string());
            panic!(
                "simt sanitizer: shared-memory access cost {replays} bank replays \
                 (limit {limit}): {detail}"
            );
        }
    }
}

/// Describe the hottest bank of one shared-memory warp access: the bank
/// index, the distinct words that map to it, and which active lanes hit
/// it. Returns `None` when the access is conflict-free (at most one
/// distinct word per bank). Used by the `sanitize` bank-conflict limit
/// and available to tests/reports that want to explain a replay count.
pub fn describe_bank_conflict(
    banks: usize,
    mask: Mask,
    word_idxs: &Lanes<usize>,
) -> Option<String> {
    let banks = banks.max(1);
    // Find the bank with the most distinct words (the replay bottleneck).
    let mut words = [0usize; WARP_SIZE];
    let mut n_words = 0usize;
    let mut per_bank = [0u32; WARP_SIZE];
    let mut hot_bank = 0usize;
    let mut hot_count = 0u32;
    for l in mask.lanes() {
        let w = word_idxs[l];
        if !words[..n_words].contains(&w) {
            words[n_words] = w;
            n_words += 1;
            let slot = (w % banks) % WARP_SIZE;
            per_bank[slot] += 1;
            if per_bank[slot] > hot_count {
                hot_count = per_bank[slot];
                hot_bank = slot;
            }
        }
    }
    if hot_count <= 1 {
        return None;
    }
    let mut lanes: Vec<String> = Vec::new();
    let mut hot_words: Vec<usize> = Vec::new();
    for l in mask.lanes() {
        let w = word_idxs[l];
        if (w % banks) % WARP_SIZE == hot_bank {
            lanes.push(format!("lane {l} (word {w})"));
            if !hot_words.contains(&w) {
                hot_words.push(w);
            }
        }
    }
    Some(format!(
        "bank {hot_bank} serialises {hot_count} distinct words {hot_words:?} requested by {}",
        lanes.join(", ")
    ))
}

/// Device global memory: a flat, typed buffer visible to every warp.
#[derive(Clone, Debug)]
pub struct GlobalBuf<T> {
    data: Vec<T>,
    #[cfg(feature = "sanitize")]
    sid: u64,
}

impl<T: Copy + Default + 'static> GlobalBuf<T> {
    /// Allocate `len` zero/default-initialised elements.
    pub fn new(len: usize) -> Self {
        GlobalBuf {
            data: vec![T::default(); len],
            #[cfg(feature = "sanitize")]
            sid: crate::sanitize::fresh_buf_id(),
        }
    }

    /// Wrap host data (models a host→device upload; the transfer itself is
    /// costed separately by the PCIe model, not here).
    pub fn from_vec(data: Vec<T>) -> Self {
        GlobalBuf {
            data,
            #[cfg(feature = "sanitize")]
            sid: crate::sanitize::fresh_buf_id(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Host-side view of the contents (no simulated cost).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Host-side mutable view (no simulated cost). Use for test setup and
    /// for uploading results between kernel phases.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Warp-wide gather: each active lane `l` reads element `idxs[l]`.
    /// Inactive lanes receive `T::default()`.
    ///
    /// # Panics
    /// If an active lane's index is out of bounds (the simulated kernel has
    /// a bug — fail loudly, as `cuda-memcheck` would).
    pub fn read(&self, ctx: &mut WarpCtx, mask: Mask, idxs: &Lanes<usize>) -> Lanes<T> {
        let esz = core::mem::size_of::<T>() as u64;
        let addrs: Lanes<u64> = core::array::from_fn(|l| idxs[l] as u64 * esz);
        let tx = count_transactions(ctx, mask, &addrs);
        ctx.record_global(mask, tx, mask.count() as u64 * esz);
        #[cfg(feature = "sanitize")]
        for l in mask.lanes() {
            use crate::sanitize::{AccessKind, MemSpace};
            ctx.san_access(MemSpace::Global, self.sid, idxs[l], l, AccessKind::Read);
        }
        let mut out = splat(T::default());
        for l in mask.lanes() {
            out[l] = self.data[idxs[l]];
        }
        // Injected transient DRAM corruption perturbs the *loaded* value
        // only; the stored data is unharmed, so a retry can succeed.
        #[cfg(feature = "fault")]
        for l in mask.lanes() {
            if let Some(bit) = ctx.fault_flip() {
                out[l] = crate::fault::corrupt(out[l], bit);
            }
        }
        out
    }

    /// Warp-wide scatter: each active lane `l` writes `vals[l]` to element
    /// `idxs[l]`. Writing the same element from two active lanes is a race
    /// on real hardware; here the highest lane wins (documented, tested) —
    /// and flagged by the `sanitize` race detector.
    pub fn write(&mut self, ctx: &mut WarpCtx, mask: Mask, idxs: &Lanes<usize>, vals: &Lanes<T>) {
        let esz = core::mem::size_of::<T>() as u64;
        let addrs: Lanes<u64> = core::array::from_fn(|l| idxs[l] as u64 * esz);
        let tx = count_transactions(ctx, mask, &addrs);
        ctx.record_global(mask, tx, mask.count() as u64 * esz);
        #[cfg(feature = "sanitize")]
        for l in mask.lanes() {
            use crate::sanitize::{AccessKind, MemSpace};
            ctx.san_access(MemSpace::Global, self.sid, idxs[l], l, AccessKind::Write);
        }
        for l in mask.lanes() {
            self.data[idxs[l]] = vals[l];
        }
    }

    /// Broadcast load: every active lane reads the *same* element. One
    /// transaction (plus the issue slot).
    pub fn read_broadcast(&self, ctx: &mut WarpCtx, mask: Mask, idx: usize) -> T {
        let esz = core::mem::size_of::<T>() as u64;
        ctx.record_global(mask, 1, esz);
        #[cfg(feature = "sanitize")]
        for l in mask.lanes() {
            use crate::sanitize::{AccessKind, MemSpace};
            ctx.san_access(MemSpace::Global, self.sid, idx, l, AccessKind::Read);
        }
        #[allow(unused_mut)]
        let mut v = self.data[idx];
        #[cfg(feature = "fault")]
        if let Some(bit) = ctx.fault_flip() {
            v = crate::fault::corrupt(v, bit);
        }
        v
    }
}

/// Per-thread "local memory" arrays for one warp, physically interleaved
/// with stride [`WARP_SIZE`] exactly as CUDA local memory is.
///
/// Logical layout: each lane owns `len_per_lane` elements. Lane `l`'s
/// element `i` is physical word `i * 32 + l`, so a lockstep access at a
/// uniform index is fully coalesced and a divergent access scatters.
#[derive(Clone, Debug)]
pub struct LaneLocal<T> {
    data: Vec<T>,
    len_per_lane: usize,
    #[cfg(feature = "sanitize")]
    sid: u64,
}

impl<T: Copy + Default + 'static> LaneLocal<T> {
    /// Allocate `len_per_lane` elements per lane, filled with `init`.
    pub fn new(len_per_lane: usize, init: T) -> Self {
        LaneLocal {
            data: vec![init; len_per_lane * WARP_SIZE],
            len_per_lane,
            #[cfg(feature = "sanitize")]
            sid: crate::sanitize::fresh_buf_id(),
        }
    }

    /// Elements owned by each lane.
    pub fn len_per_lane(&self) -> usize {
        self.len_per_lane
    }

    #[inline]
    fn phys(&self, lane: usize, idx: usize) -> usize {
        debug_assert!(
            idx < self.len_per_lane,
            "lane-local index {idx} out of bounds ({})",
            self.len_per_lane
        );
        idx * WARP_SIZE + lane
    }

    /// Warp-wide read: active lane `l` reads its own element `idxs[l]`.
    pub fn read(&self, ctx: &mut WarpCtx, mask: Mask, idxs: &Lanes<usize>) -> Lanes<T> {
        let esz = core::mem::size_of::<T>() as u64;
        let addrs: Lanes<u64> =
            core::array::from_fn(|l| self.phys(l, idxs[l].min(self.len_per_lane - 1)) as u64 * esz);
        let tx = count_transactions(ctx, mask, &addrs);
        ctx.record_global(mask, tx, mask.count() as u64 * esz);
        #[cfg(feature = "sanitize")]
        for l in mask.lanes() {
            use crate::sanitize::{AccessKind, MemSpace};
            ctx.san_access(
                MemSpace::LaneLocal,
                self.sid,
                self.phys(l, idxs[l]),
                l,
                AccessKind::Read,
            );
        }
        let mut out = splat(T::default());
        for l in mask.lanes() {
            out[l] = self.data[self.phys(l, idxs[l])];
        }
        #[cfg(feature = "fault")]
        for l in mask.lanes() {
            if let Some(bit) = ctx.fault_flip() {
                out[l] = crate::fault::corrupt(out[l], bit);
            }
        }
        out
    }

    /// Uniform-index read: every active lane reads its element `idx`.
    /// Coalesced by construction.
    pub fn read_uniform(&self, ctx: &mut WarpCtx, mask: Mask, idx: usize) -> Lanes<T> {
        self.read(ctx, mask, &splat(idx))
    }

    /// Warp-wide write: active lane `l` writes `vals[l]` to its element
    /// `idxs[l]`.
    pub fn write(&mut self, ctx: &mut WarpCtx, mask: Mask, idxs: &Lanes<usize>, vals: &Lanes<T>) {
        let esz = core::mem::size_of::<T>() as u64;
        let addrs: Lanes<u64> =
            core::array::from_fn(|l| self.phys(l, idxs[l].min(self.len_per_lane - 1)) as u64 * esz);
        let tx = count_transactions(ctx, mask, &addrs);
        ctx.record_global(mask, tx, mask.count() as u64 * esz);
        #[cfg(feature = "sanitize")]
        for l in mask.lanes() {
            use crate::sanitize::{AccessKind, MemSpace};
            ctx.san_access(
                MemSpace::LaneLocal,
                self.sid,
                self.phys(l, idxs[l]),
                l,
                AccessKind::Write,
            );
        }
        for l in mask.lanes() {
            let p = self.phys(l, idxs[l]);
            self.data[p] = vals[l];
        }
    }

    /// Uniform-index write.
    pub fn write_uniform(&mut self, ctx: &mut WarpCtx, mask: Mask, idx: usize, vals: &Lanes<T>) {
        self.write(ctx, mask, &splat(idx), vals)
    }

    /// Host-side read of one lane's element (no simulated cost) — for
    /// extracting results and for assertions in tests.
    pub fn peek(&self, lane: usize, idx: usize) -> T {
        self.data[self.phys(lane, idx)]
    }

    /// Host-side write of one lane's element (no simulated cost).
    pub fn poke(&mut self, lane: usize, idx: usize, val: T) {
        let p = self.phys(lane, idx);
        self.data[p] = val;
    }

    /// Host-side copy of one lane's entire array (no simulated cost).
    pub fn lane_vec(&self, lane: usize) -> Vec<T> {
        (0..self.len_per_lane).map(|i| self.peek(lane, i)).collect()
    }
}

/// Per-warp shared memory with a bank-conflict model.
#[derive(Clone, Debug)]
pub struct SharedBuf<T> {
    data: Vec<T>,
    #[cfg(feature = "sanitize")]
    sid: u64,
}

impl<T: Copy + Default> SharedBuf<T> {
    /// Allocate `len` default-initialised words.
    pub fn new(len: usize) -> Self {
        SharedBuf {
            data: vec![T::default(); len],
            #[cfg(feature = "sanitize")]
            sid: crate::sanitize::fresh_buf_id(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Warp-wide read with bank-conflict accounting.
    pub fn read(&self, ctx: &mut WarpCtx, mask: Mask, idxs: &Lanes<usize>) -> Lanes<T> {
        let replays = count_bank_replays(ctx, mask, idxs);
        ctx.record_shared(mask, replays);
        #[cfg(feature = "sanitize")]
        {
            enforce_bank_limit(ctx, mask, idxs, replays);
            for l in mask.lanes() {
                use crate::sanitize::{AccessKind, MemSpace};
                ctx.san_access(MemSpace::Shared, self.sid, idxs[l], l, AccessKind::Read);
            }
        }
        let mut out = splat(T::default());
        for l in mask.lanes() {
            out[l] = self.data[idxs[l]];
        }
        out
    }

    /// Warp-wide write with bank-conflict accounting. If several active
    /// lanes write the same word, the highest lane wins (matches CUDA's
    /// "one writer succeeds, which one is undefined" — we make it
    /// deterministic) — and the `sanitize` race detector flags it.
    pub fn write(&mut self, ctx: &mut WarpCtx, mask: Mask, idxs: &Lanes<usize>, vals: &Lanes<T>) {
        let replays = count_bank_replays(ctx, mask, idxs);
        ctx.record_shared(mask, replays);
        #[cfg(feature = "sanitize")]
        {
            enforce_bank_limit(ctx, mask, idxs, replays);
            for l in mask.lanes() {
                use crate::sanitize::{AccessKind, MemSpace};
                ctx.san_access(MemSpace::Shared, self.sid, idxs[l], l, AccessKind::Write);
            }
        }
        for l in mask.lanes() {
            self.data[idxs[l]] = vals[l];
        }
    }

    /// Broadcast read: all active lanes read word `idx` (one cycle).
    pub fn read_broadcast(&self, ctx: &mut WarpCtx, mask: Mask, idx: usize) -> T {
        ctx.record_shared(mask, 1);
        #[cfg(feature = "sanitize")]
        for l in mask.lanes() {
            use crate::sanitize::{AccessKind, MemSpace};
            ctx.san_access(MemSpace::Shared, self.sid, idx, l, AccessKind::Read);
        }
        self.data[idx]
    }

    /// One lane (or several, cooperating on the same value) sets word
    /// `idx`. Logged to the race detector as a single write by the lowest
    /// active lane: a multi-lane broadcast of one uniform value is the
    /// intended warp-cooperative idiom, not a race.
    pub fn write_broadcast(&mut self, ctx: &mut WarpCtx, mask: Mask, idx: usize, val: T) {
        ctx.record_shared(mask, 1);
        if mask.any_lane() {
            #[cfg(feature = "sanitize")]
            {
                use crate::sanitize::{AccessKind, MemSpace};
                let rep = mask.lanes().next().unwrap_or(0);
                ctx.san_access(
                    MemSpace::Shared,
                    self.sid,
                    idx,
                    rep,
                    AccessKind::BroadcastWrite,
                );
            }
            self.data[idx] = val;
        }
    }

    /// Host-side view (no simulated cost).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanes_from_fn;

    fn ctx() -> WarpCtx {
        WarpCtx::new(128, 32)
    }

    #[test]
    fn coalesced_f32_row_is_one_transaction() {
        let buf = GlobalBuf::<f32>::from_vec((0..64).map(|i| i as f32).collect());
        let mut c = ctx();
        let idx = lanes_from_fn(|l| l); // 32 × 4B contiguous = 128B
        let v = buf.read(&mut c, Mask::full(), &idx);
        assert_eq!(v[5], 5.0);
        assert_eq!(c.metrics().global_transactions, 1);
        assert_eq!(c.metrics().global_bytes, 128);
    }

    #[test]
    fn strided_access_scatters() {
        let buf = GlobalBuf::<f32>::from_vec(vec![0.0; 32 * 64]);
        let mut c = ctx();
        let idx = lanes_from_fn(|l| l * 64); // 256B apart → 32 segments
        buf.read(&mut c, Mask::full(), &idx);
        assert_eq!(c.metrics().global_transactions, 32);
    }

    #[test]
    fn partial_mask_reads_fewer_bytes() {
        let buf = GlobalBuf::<f32>::from_vec(vec![1.0; 64]);
        let mut c = ctx();
        let idx = lanes_from_fn(|l| l);
        let v = buf.read(&mut c, Mask::first(4), &idx);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[10], 0.0); // inactive lane got default
        assert_eq!(c.metrics().global_transactions, 1);
        assert_eq!(c.metrics().global_bytes, 16);
    }

    #[test]
    fn empty_mask_access_is_free() {
        let buf = GlobalBuf::<f32>::from_vec(vec![1.0; 4]);
        let mut c = ctx();
        buf.read(&mut c, Mask::empty(), &splat(0));
        assert_eq!(c.metrics().global_transactions, 0);
        assert_eq!(c.metrics().issued, 0);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let buf = GlobalBuf::<f32>::from_vec(vec![1.0; 4]);
        let mut c = ctx();
        buf.read(&mut c, Mask::single(0), &splat(99));
    }

    #[test]
    fn global_write_last_lane_wins() {
        let mut buf = GlobalBuf::<u32>::from_vec(vec![0; 4]);
        let mut c = ctx();
        // This is a deliberate intra-warp write-write race (the behaviour
        // under test is the deterministic highest-lane-wins resolution);
        // under `sanitize` we record rather than panic, and assert the
        // detector saw it.
        #[cfg(feature = "sanitize")]
        c.set_race_policy(crate::sanitize::RacePolicy::Record);
        let vals = lanes_from_fn(|l| l as u32);
        buf.write(&mut c, Mask::full(), &splat(2), &vals);
        assert_eq!(buf.as_slice()[2], 31);
        #[cfg(feature = "sanitize")]
        {
            let races = c.take_race_reports();
            assert_eq!(races.len(), 1, "one deduped report for the racy word");
            assert_eq!(races[0].kind, crate::sanitize::RaceKind::WriteWrite);
            assert_eq!(races[0].word, 2);
        }
    }

    #[test]
    fn lane_local_uniform_access_is_coalesced() {
        let buf = LaneLocal::<f32>::new(16, 0.0);
        let mut c = ctx();
        buf.read_uniform(&mut c, Mask::full(), 3);
        // 32 lanes × 4B at stride-1 physical layout = exactly 1 segment.
        assert_eq!(c.metrics().global_transactions, 1);
    }

    #[test]
    fn lane_local_divergent_access_scatters() {
        let buf = LaneLocal::<f32>::new(64, 0.0);
        let mut c = ctx();
        // Each lane reads a different logical index → physical stride 33.
        let idx = lanes_from_fn(|l| l);
        buf.read(&mut c, Mask::full(), &idx);
        assert!(c.metrics().global_transactions > 16);
    }

    #[test]
    fn lane_local_peek_poke_roundtrip() {
        let mut buf = LaneLocal::<u32>::new(8, 0);
        buf.poke(5, 3, 42);
        assert_eq!(buf.peek(5, 3), 42);
        assert_eq!(buf.peek(4, 3), 0); // neighbouring lane untouched
        assert_eq!(buf.lane_vec(5), vec![0, 0, 0, 42, 0, 0, 0, 0]);
    }

    #[test]
    fn lane_local_write_isolates_lanes() {
        let mut buf = LaneLocal::<u32>::new(4, 0);
        let mut c = ctx();
        let vals = lanes_from_fn(|l| l as u32 + 100);
        buf.write_uniform(&mut c, Mask::full(), 2, &vals);
        for l in 0..WARP_SIZE {
            assert_eq!(buf.peek(l, 2), l as u32 + 100);
            assert_eq!(buf.peek(l, 1), 0);
        }
    }

    #[test]
    fn shared_conflict_free_is_one_replay() {
        let buf = SharedBuf::<u32>::new(32);
        let mut c = ctx();
        let idx = lanes_from_fn(|l| l); // distinct banks
        buf.read(&mut c, Mask::full(), &idx);
        assert_eq!(c.metrics().shared_accesses, 1);
    }

    #[test]
    fn shared_same_word_broadcasts() {
        let buf = SharedBuf::<u32>::new(32);
        let mut c = ctx();
        buf.read(&mut c, Mask::full(), &splat(7));
        assert_eq!(c.metrics().shared_accesses, 1);
    }

    #[test]
    fn shared_bank_conflicts_replay() {
        let buf = SharedBuf::<u32>::new(64);
        let mut c = ctx();
        // Lanes 0..32 read words 0, 32, 0, 32, ... → two distinct words in
        // bank 0 for half the lanes → 2 replays.
        let idx = lanes_from_fn(|l| if l % 2 == 0 { 0 } else { 32 });
        buf.read(&mut c, Mask::full(), &idx);
        assert_eq!(c.metrics().shared_accesses, 2);
    }

    #[test]
    fn shared_flag_pattern() {
        // The paper's intra-warp communication flag: one lane raises it,
        // all lanes read it. The `warp_fence` marks the implicit lockstep
        // ordering between raise and read; it charges nothing, so the
        // metrics are identical with or without `sanitize`.
        let mut flag = SharedBuf::<u32>::new(1);
        let mut c = ctx();
        flag.write_broadcast(&mut c, Mask::single(13), 0, 1);
        c.warp_fence();
        let v = flag.read_broadcast(&mut c, Mask::full(), 0);
        assert_eq!(v, 1);
        assert_eq!(c.metrics().shared_accesses, 2);
    }

    #[test]
    fn bank_conflict_detail_names_lanes_and_bank() {
        // Words 0 and 32 both live in bank 0 → two distinct words there.
        let idx = lanes_from_fn(|l| if l % 2 == 0 { 0 } else { 32 });
        let msg = describe_bank_conflict(32, Mask::first(4), &idx)
            .expect("conflicting access must be described");
        assert!(msg.contains("bank 0"), "names the hot bank: {msg}");
        assert!(msg.contains("lane 1 (word 32)"), "names a lane+word: {msg}");
        assert!(msg.contains("[0, 32]"), "lists the serialised words: {msg}");
        // Conflict-free access has nothing to describe.
        assert!(describe_bank_conflict(32, Mask::full(), &lanes_from_fn(|l| l)).is_none());
        assert!(describe_bank_conflict(32, Mask::full(), &splat(7)).is_none());
    }

    #[cfg(feature = "sanitize")]
    #[test]
    fn bank_conflict_limit_panics_with_detail() {
        let buf = SharedBuf::<u32>::new(64);
        let mut c = ctx();
        c.set_bank_conflict_limit(Some(1));
        let idx = lanes_from_fn(|l| if l % 2 == 0 { 0 } else { 32 });
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            buf.read(&mut c, Mask::full(), &idx);
        }))
        .expect_err("2-replay access over a limit of 1 must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("2 bank replays"), "{msg}");
        assert!(msg.contains("bank 0"), "{msg}");
        assert!(msg.contains("lane 1"), "{msg}");
    }

    #[cfg(feature = "sanitize")]
    #[test]
    fn unfenced_shared_flag_is_reported() {
        // The same flag protocol as `shared_flag_pattern` but *without*
        // the fence: writer lane 13 and a different reader lane conflict.
        let mut flag = SharedBuf::<u32>::new(1);
        let mut c = ctx();
        c.set_race_policy(crate::sanitize::RacePolicy::Record);
        flag.write_broadcast(&mut c, Mask::single(13), 0, 1);
        flag.read_broadcast(&mut c, Mask::full(), 0);
        let races = c.take_race_reports();
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].kind, crate::sanitize::RaceKind::ReadWrite);
        assert_eq!(races[0].first_lane, 13);
        let text = races[0].to_string();
        assert!(
            text.contains("warp_fence"),
            "report suggests the fix: {text}"
        );
    }

    #[cfg(feature = "sanitize")]
    #[test]
    fn lane_local_cross_lane_conflict_impossible() {
        // The stride-32 interleave means lanes can never touch the same
        // physical word: divergent traffic stays race-free by construction.
        let mut buf = LaneLocal::<u32>::new(8, 0);
        let mut c = ctx();
        let idx = lanes_from_fn(|l| l % 8);
        let vals = lanes_from_fn(|l| l as u32);
        buf.write(&mut c, Mask::full(), &idx, &vals);
        buf.read(&mut c, Mask::full(), &lanes_from_fn(|l| (l + 1) % 8));
        assert!(c.race_reports().is_empty());
    }
}
