//! Intra-warp race sanitizer (compiled only under the `sanitize` feature).
//!
//! The kernels in this workspace are written in the *warp-synchronous*
//! style the paper's Fermi testbed allowed: lanes of a warp execute in
//! lockstep, so a value one lane writes to shared memory is visible to
//! every other lane at the next instruction — **provided the kernel
//! really is lockstep at that point**. The Aligned Merge shared flag and
//! the Buffered Search flush handshake both lean on this assumption, and
//! both break silently if a sync point is dropped (exactly the class of
//! bug Faiss's WarpSelect and RTop-K attribute their hairiest debugging
//! to).
//!
//! This module makes the assumption checkable. Execution is divided into
//! **epochs**: a new epoch starts at every warp barrier —
//! [`crate::WarpCtx::sync`], [`crate::WarpCtx::loop_head`], or the free
//! lockstep marker [`crate::WarpCtx::warp_fence`]. Every access the
//! [`crate::mem`] buffers service is logged `(buffer, word, lane, kind)`,
//! and two accesses to the same word by *different lanes within one
//! epoch* where at least one is a write constitute a race:
//!
//! * **write–write** — two lanes store to the same word with no barrier
//!   between them; on real hardware which value survives is undefined.
//! * **read–write** — one lane reads a word another lane wrote (or
//!   writes a word another lane read) inside the same epoch; the reader
//!   may observe either the old or the new value.
//!
//! [`crate::mem::SharedBuf::write_broadcast`] is the sanctioned
//! *cooperative* store (several lanes deliberately publishing one
//! uniform value); its writers do not conflict with each other, but the
//! published word still conflicts with reads or other writes in the same
//! epoch — which is precisely how a missing sync before a shared-flag
//! read is caught.
//!
//! Reports name the kernel span (set via [`crate::WarpCtx::mark`]), the
//! lanes, the memory space, the buffer and the word, and suggest the
//! fix. The default [`RacePolicy::Panic`] fails loudly like
//! `cuda-memcheck --tool racecheck`; tests that *expect* a race switch
//! to [`RacePolicy::Record`] and inspect
//! [`crate::WarpCtx::race_reports`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Memory space an access touched (for reports).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Device global memory ([`crate::mem::GlobalBuf`]).
    Global,
    /// Per-warp shared memory ([`crate::mem::SharedBuf`]).
    Shared,
    /// Interleaved per-thread local memory ([`crate::mem::LaneLocal`]).
    LaneLocal,
}

impl core::fmt::Display for MemSpace {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MemSpace::Global => write!(f, "global"),
            MemSpace::Shared => write!(f, "shared"),
            MemSpace::LaneLocal => write!(f, "lane-local"),
        }
    }
}

/// What kind of access is being logged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// A lane-scoped load.
    Read,
    /// A lane-scoped store.
    Write,
    /// A cooperative store of one uniform value
    /// ([`crate::mem::SharedBuf::write_broadcast`]): participating lanes
    /// do not conflict with each other.
    BroadcastWrite,
}

/// The flavour of conflict detected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RaceKind {
    /// Two lanes wrote the same word within one epoch.
    WriteWrite,
    /// One lane read a word another lane wrote within one epoch (either
    /// order — both mean the reader's value is timing-dependent).
    ReadWrite,
}

impl core::fmt::Display for RaceKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RaceKind::WriteWrite => write!(f, "write-write"),
            RaceKind::ReadWrite => write!(f, "read-write"),
        }
    }
}

/// One detected intra-warp race.
#[derive(Clone, Debug)]
pub struct RaceReport {
    /// Conflict flavour.
    pub kind: RaceKind,
    /// Memory space of the conflicting word.
    pub space: MemSpace,
    /// Identity of the buffer (allocation order within the process).
    pub buf_id: u64,
    /// Word index within the buffer.
    pub word: usize,
    /// The lane whose earlier access is part of the conflict.
    pub first_lane: usize,
    /// The lane whose later access completed the conflict.
    pub second_lane: usize,
    /// Whether the later access was a write (else it was a read).
    pub second_is_write: bool,
    /// Kernel span active when the conflict surfaced
    /// (see [`crate::WarpCtx::mark`]).
    pub span: &'static str,
    /// Epoch in which both accesses fell.
    pub epoch: u64,
}

impl core::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let (first_verb, second_verb) = match (self.kind, self.second_is_write) {
            (RaceKind::WriteWrite, _) => ("wrote", "wrote"),
            (RaceKind::ReadWrite, true) => ("read", "wrote"),
            (RaceKind::ReadWrite, false) => ("wrote", "read"),
        };
        write!(
            f,
            "simt sanitizer: {} race in span '{}': lane {} {} {} buffer #{} word {} \
             and lane {} {} it within the same warp-synchronous epoch ({}); \
             separate the accesses with ctx.warp_fence() (free lockstep marker) \
             or ctx.sync()",
            self.kind,
            self.span,
            self.first_lane,
            first_verb,
            self.space,
            self.buf_id,
            self.word,
            self.second_lane,
            second_verb,
            self.epoch,
        )
    }
}

/// What to do when a race is detected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RacePolicy {
    /// Panic immediately with the full report (default — fail like
    /// `cuda-memcheck`).
    #[default]
    Panic,
    /// Collect reports for later inspection via
    /// [`crate::WarpCtx::race_reports`] (for tests that seed violations).
    Record,
}

/// Per-word access state within the current epoch.
#[derive(Clone, Debug, Default)]
struct WordState {
    /// Epoch the state belongs to; stale states are lazily reset.
    epoch: u64,
    /// Lanes that wrote the word this epoch.
    writers: u32,
    /// Lanes that read the word this epoch.
    readers: u32,
    /// A conflict on this word was already reported this epoch
    /// (dedup: one actionable report per word per epoch, not 31).
    reported: bool,
}

/// The per-warp race detector owned by [`crate::WarpCtx`].
#[derive(Clone, Debug)]
pub(crate) struct Sanitizer {
    epoch: u64,
    span: &'static str,
    policy: RacePolicy,
    races: Vec<RaceReport>,
    log: HashMap<(MemSpace, u64, usize), WordState>,
}

impl Default for Sanitizer {
    fn default() -> Self {
        Sanitizer {
            epoch: 0,
            span: "<unmarked kernel>",
            policy: RacePolicy::default(),
            races: Vec::new(),
            log: HashMap::new(),
        }
    }
}

impl Sanitizer {
    /// Close the current epoch: subsequent accesses no longer conflict
    /// with anything logged before this point.
    pub(crate) fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Label subsequent reports with a kernel span name.
    pub(crate) fn mark(&mut self, span: &'static str) {
        self.span = span;
    }

    pub(crate) fn set_policy(&mut self, policy: RacePolicy) {
        self.policy = policy;
    }

    pub(crate) fn races(&self) -> &[RaceReport] {
        &self.races
    }

    pub(crate) fn take_races(&mut self) -> Vec<RaceReport> {
        core::mem::take(&mut self.races)
    }

    /// Log one lane's access and flag conflicts. `broadcast` writers are
    /// cooperative: they do not conflict with *other writers of the same
    /// call* — the caller models that by passing only the representative
    /// (lowest) participating lane.
    pub(crate) fn access(
        &mut self,
        space: MemSpace,
        buf_id: u64,
        word: usize,
        lane: usize,
        kind: AccessKind,
    ) {
        let epoch = self.epoch;
        let st = self.log.entry((space, buf_id, word)).or_default();
        if st.epoch != epoch {
            *st = WordState {
                epoch,
                ..WordState::default()
            };
        }
        let me = 1u32 << lane;
        let conflict = match kind {
            AccessKind::Read => {
                // Reading a word some *other* lane wrote this epoch.
                (st.writers & !me != 0).then(|| {
                    let first = (st.writers & !me).trailing_zeros() as usize;
                    (RaceKind::ReadWrite, first, false)
                })
            }
            AccessKind::Write | AccessKind::BroadcastWrite => {
                if st.writers & !me != 0 {
                    let first = (st.writers & !me).trailing_zeros() as usize;
                    Some((RaceKind::WriteWrite, first, true))
                } else if st.readers & !me != 0 {
                    let first = (st.readers & !me).trailing_zeros() as usize;
                    Some((RaceKind::ReadWrite, first, true))
                } else {
                    None
                }
            }
        };
        match kind {
            AccessKind::Read => st.readers |= me,
            AccessKind::Write | AccessKind::BroadcastWrite => st.writers |= me,
        }
        if let Some((race_kind, first_lane, second_is_write)) = conflict {
            if st.reported {
                return;
            }
            st.reported = true;
            let report = RaceReport {
                kind: race_kind,
                space,
                buf_id,
                word,
                first_lane,
                second_lane: lane,
                second_is_write,
                span: self.span,
                epoch,
            };
            match self.policy {
                RacePolicy::Panic => panic!("{report}"),
                RacePolicy::Record => self.races.push(report),
            }
        }
    }
}

static NEXT_BUF_ID: AtomicU64 = AtomicU64::new(0);

/// Allocate a process-unique buffer identity for race reports.
pub(crate) fn fresh_buf_id() -> u64 {
    NEXT_BUF_ID.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_lane_never_conflicts() {
        let mut s = Sanitizer::default();
        s.set_policy(RacePolicy::Record);
        s.access(MemSpace::Shared, 0, 3, 5, AccessKind::Write);
        s.access(MemSpace::Shared, 0, 3, 5, AccessKind::Read);
        s.access(MemSpace::Shared, 0, 3, 5, AccessKind::Write);
        assert!(s.races().is_empty());
    }

    #[test]
    fn cross_lane_ww_detected_and_deduped() {
        let mut s = Sanitizer::default();
        s.set_policy(RacePolicy::Record);
        s.access(MemSpace::Global, 1, 2, 0, AccessKind::Write);
        s.access(MemSpace::Global, 1, 2, 7, AccessKind::Write);
        s.access(MemSpace::Global, 1, 2, 9, AccessKind::Write);
        assert_eq!(s.races().len(), 1, "one report per word per epoch");
        let r = &s.races()[0];
        assert_eq!(r.kind, RaceKind::WriteWrite);
        assert_eq!((r.first_lane, r.second_lane), (0, 7));
    }

    #[test]
    fn epoch_bump_clears_conflicts() {
        let mut s = Sanitizer::default();
        s.set_policy(RacePolicy::Record);
        s.access(MemSpace::Shared, 0, 0, 3, AccessKind::Write);
        s.bump_epoch();
        s.access(MemSpace::Shared, 0, 0, 8, AccessKind::Read);
        assert!(s.races().is_empty(), "barrier separates the accesses");
    }

    #[test]
    fn read_then_write_conflicts() {
        let mut s = Sanitizer::default();
        s.set_policy(RacePolicy::Record);
        s.access(MemSpace::Shared, 0, 0, 3, AccessKind::Read);
        s.access(MemSpace::Shared, 0, 0, 4, AccessKind::Write);
        assert_eq!(s.races().len(), 1);
        assert_eq!(s.races()[0].kind, RaceKind::ReadWrite);
        assert!(s.races()[0].second_is_write);
    }

    #[test]
    fn report_message_names_lanes_word_and_span() {
        let mut s = Sanitizer::default();
        s.set_policy(RacePolicy::Record);
        s.mark("test::span");
        s.access(MemSpace::Shared, 4, 17, 2, AccessKind::Write);
        s.access(MemSpace::Shared, 4, 17, 11, AccessKind::Read);
        let msg = s.races()[0].to_string();
        assert!(msg.contains("lane 2"), "{msg}");
        assert!(msg.contains("lane 11"), "{msg}");
        assert!(msg.contains("word 17"), "{msg}");
        assert!(msg.contains("test::span"), "{msg}");
        assert!(msg.contains("warp_fence"), "{msg}");
    }
}
