//! Resilient kernel launch: watchdog, bounded retry, validation,
//! and honest accounting of the recovery cost.
//!
//! [`launch_resilient`] wraps [`crate::launch`]'s fan-out with the
//! machinery a production system puts around a GPU kernel:
//!
//! * **Warp isolation** — each warp attempt runs under `catch_unwind`,
//!   so one killed warp (an injected [`crate::fault::FaultSignal`], a
//!   `sanitize` race panic, a genuine kernel bug) cannot take the batch
//!   down. The failed attempt's metrics survive and are accounted as
//!   wasted work.
//! * **Watchdog** — a simulated-cycle deadline expressed as a per-warp
//!   issue-slot limit. Injected hangs are killed *at* their trigger
//!   point (the fault layer panics on the crossing issue); a kernel
//!   that genuinely overruns the limit is failed after the fact, which
//!   is the closest a deterministic simulator can get to pre-emption.
//! * **Bounded retry with exponential backoff** — on *simulated* time:
//!   attempt `i` adds `backoff_base_s · 2^(i-1)` seconds before
//!   re-launching, mirroring how a driver paces resubmission. Fault
//!   draws are keyed on `(warp, attempt)`, so a retry faces fresh,
//!   equally deterministic luck.
//! * **Validation** — a caller-supplied check runs on every produced
//!   result before it is accepted; a bit-flipped result that still
//!   "completes" is caught here and retried rather than delivered.
//!
//! The launcher never invents results: a warp that exhausts its
//! attempts reports `result: None` plus the full failure history, and
//! the caller (see `kselect`'s resilient selection) decides whether to
//! degrade to an exact host path or surface a per-query error.

use rayon::prelude::*;

use crate::fault::{FaultPlan, FaultSignal};
use crate::{GpuSpec, Metrics, WarpCtx};

/// Retry/watchdog configuration for [`launch_resilient`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Maximum kernel attempts per warp (≥ 1).
    pub max_attempts: u32,
    /// Simulated watchdog deadline as an issue-slot budget per warp
    /// attempt. `None` disables the post-hoc overrun check (injected
    /// hangs still kill at their trigger).
    pub watchdog_issue_limit: Option<u64>,
    /// First-retry backoff in simulated seconds; doubles per attempt.
    pub backoff_base_s: f64,
    /// Fault campaign to inject, if any. Kernel-level plans require the
    /// `fault` feature — [`launch_resilient`] refuses to run one in a
    /// build without the hooks rather than silently injecting nothing.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            watchdog_issue_limit: None,
            backoff_base_s: 1e-6,
            fault_plan: None,
        }
    }
}

impl RetryPolicy {
    /// Policy with a fault plan attached.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

/// Why one warp attempt was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WarpFailure {
    /// The kernel was killed mid-flight (injected abort or ECC-style trap).
    Abort { at_issued: u64 },
    /// The watchdog deadline expired (injected hang, or a genuine
    /// overrun of [`RetryPolicy::watchdog_issue_limit`]).
    WatchdogTimeout { at_issued: u64 },
    /// The kernel panicked for a non-injected reason (kernel bug,
    /// `sanitize` race report, out-of-bounds access).
    Panic { message: String },
    /// The kernel completed but its output failed the caller's check.
    Validation { detail: String },
}

impl WarpFailure {
    /// Stable kebab-case name for counters and reports.
    pub fn name(&self) -> &'static str {
        match self {
            WarpFailure::Abort { .. } => "abort",
            WarpFailure::WatchdogTimeout { .. } => "watchdog-timeout",
            WarpFailure::Panic { .. } => "panic",
            WarpFailure::Validation { .. } => "validation",
        }
    }
}

impl core::fmt::Display for WarpFailure {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WarpFailure::Abort { at_issued } => write!(f, "kernel abort at issue {at_issued}"),
            WarpFailure::WatchdogTimeout { at_issued } => {
                write!(f, "watchdog timeout at issue {at_issued}")
            }
            WarpFailure::Panic { message } => write!(f, "kernel panic: {message}"),
            WarpFailure::Validation { detail } => write!(f, "output validation failed: {detail}"),
        }
    }
}

/// The outcome of one warp across all its attempts.
#[derive(Clone, Debug)]
pub struct WarpRun<R> {
    /// The accepted result, or `None` when every attempt failed.
    pub result: Option<R>,
    /// Attempts consumed (1 = clean first run).
    pub attempts: u32,
    /// Failure per rejected attempt, in order.
    pub failures: Vec<WarpFailure>,
    /// Bit flips injected across all attempts of this warp.
    pub bitflips_injected: u64,
    /// Simulated backoff seconds this warp spent between attempts.
    pub backoff_s: f64,
}

/// Aggregate outcome of a resilient launch.
#[derive(Clone, Debug)]
pub struct ResilientLaunch<R> {
    /// Per-warp outcomes, ordered by warp id.
    pub runs: Vec<WarpRun<R>>,
    /// Metrics of the *accepted* attempts — the work that produced
    /// delivered results. With no faults this equals what
    /// [`crate::launch`] would have reported.
    pub metrics: Metrics,
    /// Metrics of rejected attempts: real simulated work, thrown away.
    pub wasted: Metrics,
    /// Total simulated backoff seconds across all warps.
    pub backoff_s: f64,
}

impl<R> ResilientLaunch<R> {
    /// Retries consumed beyond each warp's first attempt.
    pub fn total_retries(&self) -> u64 {
        self.runs.iter().map(|r| (r.attempts - 1) as u64).sum()
    }

    /// Warp ids whose every attempt failed.
    pub fn failed_warps(&self) -> Vec<usize> {
        self.runs
            .iter()
            .enumerate()
            .filter(|(_, r)| r.result.is_none())
            .map(|(w, _)| w)
            .collect()
    }

    /// Total bit flips injected across the launch.
    pub fn total_bitflips(&self) -> u64 {
        self.runs.iter().map(|r| r.bitflips_injected).sum()
    }
}

/// A resilient launch could not even start.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResilienceError {
    /// The policy carries a kernel-fault plan but the crate was built
    /// without the `fault` feature, so the hooks do not exist. Refusing
    /// is deliberate: silently running fault-free would make a fault
    /// campaign report false confidence.
    FaultsNotCompiled,
    /// `max_attempts` was zero.
    ZeroAttempts,
}

impl core::fmt::Display for ResilienceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ResilienceError::FaultsNotCompiled => f.write_str(
                "fault plan requires the `fault` feature (rebuild with --features fault)",
            ),
            ResilienceError::ZeroAttempts => f.write_str("RetryPolicy.max_attempts must be >= 1"),
        }
    }
}

impl std::error::Error for ResilienceError {}

/// Suppress the default panic-hook chatter for *injected* faults only.
/// Fault campaigns kill thousands of warps on purpose; printing a
/// backtrace per kill would bury real diagnostics. Genuine panics still
/// reach the previous hook untouched. Installed once per process.
fn silence_fault_signals() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<FaultSignal>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Execute `kernel` for `n_warps` warps with per-warp isolation, retry,
/// watchdog and output validation. See the module docs for semantics.
///
/// `validate` receives `(warp_id, &result)` for every completed attempt
/// and rejects it by returning `Err(detail)`; rejected attempts are
/// retried like any other failure. Results and fault draws depend only
/// on `(warp, attempt)`, never on host scheduling, so two runs with the
/// same policy are identical.
pub fn launch_resilient<R, K, V>(
    spec: &GpuSpec,
    n_warps: usize,
    policy: &RetryPolicy,
    kernel: K,
    validate: V,
) -> Result<ResilientLaunch<R>, ResilienceError>
where
    K: Fn(usize, &mut WarpCtx) -> R + Sync,
    V: Fn(usize, &R) -> Result<(), String> + Sync,
    R: Send,
{
    if policy.max_attempts == 0 {
        return Err(ResilienceError::ZeroAttempts);
    }
    let plan = policy.fault_plan.filter(|p| p.is_active());
    if plan.is_some_and(|p| p.wants_kernel_faults()) && !crate::fault::compiled() {
        return Err(ResilienceError::FaultsNotCompiled);
    }
    if plan.is_some() {
        silence_fault_signals();
    }

    let per_warp: Vec<(WarpRun<R>, Metrics, Metrics)> = (0..n_warps)
        .into_par_iter()
        .map(|w| run_warp(spec, w, policy, plan.as_ref(), &kernel, &validate))
        .collect();

    let mut runs = Vec::with_capacity(n_warps);
    let mut metrics = Metrics::new();
    let mut wasted = Metrics::new();
    let mut backoff_s = 0.0;
    for (run, good, bad) in per_warp {
        backoff_s += run.backoff_s;
        metrics.add(&good);
        wasted.add(&bad);
        runs.push(run);
    }
    Ok(ResilientLaunch {
        runs,
        metrics,
        wasted,
        backoff_s,
    })
}

/// [`launch_resilient`] with a launch gate: before each warp is
/// launched, `gate(warp_id, consumed, backoff_s)` is consulted with the
/// metrics of all work already executed (accepted *and* wasted
/// attempts) plus the simulated backoff spent so far. A `false` gate
/// skips the warp entirely — it consumes no issue slots and is recorded
/// as `WarpRun { result: None, attempts: 0, failures: [] }`; an
/// `attempts` count of zero is the stable marker for "never launched"
/// (real runs always consume at least one attempt).
///
/// Gating imposes an order on launches, so warps run **sequentially in
/// warp-id order** — the deterministic wave-sequential model a
/// deadline check needs ("work already consumed" must be well defined
/// at every boundary). Per-warp results, metrics and fault draws depend
/// only on `(warp, attempt)` exactly as in [`launch_resilient`], so
/// with an always-true gate the outcome is identical to the parallel
/// launcher, byte for byte.
pub fn launch_resilient_gated<R, K, V, G>(
    spec: &GpuSpec,
    n_warps: usize,
    policy: &RetryPolicy,
    kernel: K,
    validate: V,
    mut gate: G,
) -> Result<ResilientLaunch<R>, ResilienceError>
where
    K: Fn(usize, &mut WarpCtx) -> R + Sync,
    V: Fn(usize, &R) -> Result<(), String> + Sync,
    R: Send,
    G: FnMut(usize, &Metrics, f64) -> bool,
{
    if policy.max_attempts == 0 {
        return Err(ResilienceError::ZeroAttempts);
    }
    let plan = policy.fault_plan.filter(|p| p.is_active());
    if plan.is_some_and(|p| p.wants_kernel_faults()) && !crate::fault::compiled() {
        return Err(ResilienceError::FaultsNotCompiled);
    }
    if plan.is_some() {
        silence_fault_signals();
    }

    let mut runs = Vec::with_capacity(n_warps);
    let mut metrics = Metrics::new();
    let mut wasted = Metrics::new();
    let mut consumed = Metrics::new();
    let mut backoff_s = 0.0;
    for w in 0..n_warps {
        if !gate(w, &consumed, backoff_s) {
            runs.push(WarpRun {
                result: None,
                attempts: 0,
                failures: Vec::new(),
                bitflips_injected: 0,
                backoff_s: 0.0,
            });
            continue;
        }
        let (run, good, bad) = run_warp(spec, w, policy, plan.as_ref(), &kernel, &validate);
        consumed.add(&good);
        consumed.add(&bad);
        backoff_s += run.backoff_s;
        metrics.add(&good);
        wasted.add(&bad);
        runs.push(run);
    }
    Ok(ResilientLaunch {
        runs,
        metrics,
        wasted,
        backoff_s,
    })
}

/// All attempts of a single warp. Returns the run plus (accepted,
/// wasted) metrics.
fn run_warp<R, K, V>(
    spec: &GpuSpec,
    warp: usize,
    policy: &RetryPolicy,
    plan: Option<&FaultPlan>,
    kernel: &K,
    validate: &V,
) -> (WarpRun<R>, Metrics, Metrics)
where
    K: Fn(usize, &mut WarpCtx) -> R + Sync,
    V: Fn(usize, &R) -> Result<(), String> + Sync,
{
    let mut failures = Vec::new();
    #[cfg_attr(not(feature = "fault"), allow(unused_mut))]
    let mut bitflips = 0u64;
    let mut backoff_s = 0.0;
    let mut good = Metrics::new();
    let mut wasted = Metrics::new();

    for attempt in 0..policy.max_attempts {
        if attempt > 0 {
            backoff_s += policy.backoff_base_s * f64::from(1u32 << (attempt - 1).min(30));
        }
        let mut ctx = WarpCtx::for_spec(spec);
        #[cfg(feature = "fault")]
        if let Some(p) = plan {
            ctx.arm_faults(p.warp_faults(warp, attempt));
        }
        #[cfg(not(feature = "fault"))]
        let _ = plan;

        // The context lives outside the unwind boundary so a killed
        // attempt still surrenders its metrics (the simulated machine
        // did issue those slots before dying).
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| kernel(warp, &mut ctx)));

        #[cfg(feature = "fault")]
        {
            bitflips += ctx.bitflips_injected();
        }
        let issued = ctx.metrics().issued;

        let (result, failure) = match outcome {
            Err(payload) => (None, Some(classify_panic(payload))),
            Ok(r) => {
                if policy.watchdog_issue_limit.is_some_and(|lim| issued > lim) {
                    (
                        None,
                        Some(WarpFailure::WatchdogTimeout { at_issued: issued }),
                    )
                } else if let Err(detail) = validate(warp, &r) {
                    (None, Some(WarpFailure::Validation { detail }))
                } else {
                    (Some(r), None)
                }
            }
        };

        match failure {
            None => {
                good.add(&ctx.into_metrics());
                return (
                    WarpRun {
                        result,
                        attempts: attempt + 1,
                        failures,
                        bitflips_injected: bitflips,
                        backoff_s,
                    },
                    good,
                    wasted,
                );
            }
            Some(f) => {
                wasted.add(&ctx.into_metrics());
                failures.push(f);
            }
        }
    }

    (
        WarpRun {
            result: None,
            attempts: policy.max_attempts,
            failures,
            bitflips_injected: bitflips,
            backoff_s,
        },
        good,
        wasted,
    )
}

/// Turn a caught panic payload into a [`WarpFailure`].
fn classify_panic(payload: Box<dyn std::any::Any + Send>) -> WarpFailure {
    if let Some(sig) = payload.downcast_ref::<FaultSignal>() {
        return match sig.kind {
            crate::fault::FaultKind::Hang => WarpFailure::WatchdogTimeout {
                at_issued: sig.at_issued,
            },
            _ => WarpFailure::Abort {
                at_issued: sig.at_issued,
            },
        };
    }
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string());
    WarpFailure::Panic { message }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mask;

    fn spec() -> GpuSpec {
        GpuSpec::tesla_c2075()
    }

    fn ok_validate(_: usize, _: &u64) -> Result<(), String> {
        Ok(())
    }

    #[test]
    fn fault_free_matches_plain_launch() {
        let kernel = |w: usize, ctx: &mut WarpCtx| {
            ctx.op(Mask::full(), (w as u64 % 5) + 1);
            w as u64
        };
        let (plain, pm) = crate::launch(&spec(), 24, kernel);
        let res = launch_resilient(&spec(), 24, &RetryPolicy::default(), kernel, ok_validate)
            .expect("policy is valid");
        let results: Vec<u64> = res.runs.iter().map(|r| r.result.unwrap()).collect();
        assert_eq!(results, plain);
        assert_eq!(res.metrics, pm);
        assert_eq!(res.wasted, Metrics::new());
        assert_eq!(res.total_retries(), 0);
        assert_eq!(res.backoff_s, 0.0);
    }

    #[test]
    fn gated_with_open_gate_matches_parallel_launcher() {
        let kernel = |w: usize, ctx: &mut WarpCtx| {
            ctx.op(Mask::full(), (w as u64 % 5) + 1);
            w as u64
        };
        let par = launch_resilient(&spec(), 24, &RetryPolicy::default(), kernel, ok_validate)
            .expect("policy is valid");
        let gated = launch_resilient_gated(
            &spec(),
            24,
            &RetryPolicy::default(),
            kernel,
            ok_validate,
            |_, _, _| true,
        )
        .expect("policy is valid");
        let pr: Vec<Option<u64>> = par.runs.iter().map(|r| r.result).collect();
        let gr: Vec<Option<u64>> = gated.runs.iter().map(|r| r.result).collect();
        assert_eq!(pr, gr);
        assert_eq!(par.metrics, gated.metrics);
        assert_eq!(par.wasted, gated.wasted);
        assert_eq!(par.backoff_s, gated.backoff_s);
    }

    #[test]
    fn closed_gate_skips_remaining_warps_without_consuming_work() {
        let kernel = |w: usize, ctx: &mut WarpCtx| {
            ctx.op(Mask::full(), 3);
            w as u64
        };
        // Stop launching once two warps' worth of work has been issued.
        let mut seen = Vec::new();
        let res = launch_resilient_gated(
            &spec(),
            8,
            &RetryPolicy::default(),
            kernel,
            ok_validate,
            |w, consumed, _| {
                seen.push((w, consumed.issued));
                w < 2
            },
        )
        .expect("policy is valid");
        for (w, run) in res.runs.iter().enumerate() {
            if w < 2 {
                assert_eq!(run.result, Some(w as u64));
                assert_eq!(run.attempts, 1);
            } else {
                assert!(run.result.is_none());
                assert_eq!(run.attempts, 0, "gated-out warp marked by attempts == 0");
                assert!(run.failures.is_empty());
            }
        }
        // The gate saw monotonically accumulated consumption, frozen
        // once launches stopped.
        assert_eq!(seen.len(), 8);
        assert!(seen.windows(2).all(|p| p[0].1 <= p[1].1));
        assert_eq!(seen[2].1, seen[7].1);
        // Only the two launched warps' work is accounted.
        let (two, m) = crate::launch(&spec(), 2, kernel);
        assert_eq!(two.len(), 2);
        assert_eq!(res.metrics, m);
    }

    #[test]
    fn genuine_panic_is_isolated_and_reported() {
        let kernel = |w: usize, ctx: &mut WarpCtx| {
            ctx.op(Mask::full(), 2);
            assert!(w != 3, "warp 3 exploded");
            w as u64
        };
        let policy = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let res = launch_resilient(&spec(), 6, &policy, kernel, ok_validate).unwrap();
        assert_eq!(res.failed_warps(), vec![3]);
        assert_eq!(res.runs[3].attempts, 2);
        assert!(matches!(
            &res.runs[3].failures[0],
            WarpFailure::Panic { message } if message.contains("warp 3 exploded")
        ));
        // The other warps delivered, and the dead warp's issue slots are
        // accounted as waste (2 attempts × 2 ops).
        assert!(res
            .runs
            .iter()
            .enumerate()
            .all(|(w, r)| w == 3 || r.result.is_some()));
        assert_eq!(res.wasted.issued, 4);
    }

    #[test]
    fn validation_rejects_and_retries() {
        // Kernel result depends only on (warp); validation rejects odd
        // warps every time → they exhaust attempts with a Validation
        // failure history, never a silent wrong answer.
        let kernel = |w: usize, ctx: &mut WarpCtx| {
            ctx.op(Mask::full(), 1);
            w as u64
        };
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff_base_s: 1e-3,
            ..RetryPolicy::default()
        };
        let res = launch_resilient(&spec(), 4, &policy, kernel, |_, r| {
            if r % 2 == 1 {
                Err(format!("odd result {r}"))
            } else {
                Ok(())
            }
        })
        .unwrap();
        assert_eq!(res.failed_warps(), vec![1, 3]);
        assert_eq!(res.runs[1].failures.len(), 3);
        assert!(res.runs[1]
            .failures
            .iter()
            .all(|f| f.name() == "validation"));
        // Exponential backoff: 1e-3 + 2e-3 per failing warp.
        let expect = 2.0 * (1e-3 + 2e-3);
        assert!((res.backoff_s - expect).abs() < 1e-12, "{}", res.backoff_s);
    }

    #[test]
    fn watchdog_flags_overrun() {
        let kernel = |w: usize, ctx: &mut WarpCtx| {
            // Warp 2 issues far more than the deadline allows.
            let n = if w == 2 { 100 } else { 5 };
            ctx.op(Mask::full(), n);
            w
        };
        let policy = RetryPolicy {
            max_attempts: 2,
            watchdog_issue_limit: Some(50),
            ..RetryPolicy::default()
        };
        let res = launch_resilient(&spec(), 4, &policy, kernel, |_, _| Ok(())).unwrap();
        assert_eq!(res.failed_warps(), vec![2]);
        assert!(matches!(
            res.runs[2].failures[0],
            WarpFailure::WatchdogTimeout { at_issued: 100 }
        ));
    }

    #[test]
    fn zero_attempts_rejected() {
        let policy = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        let err = launch_resilient(&spec(), 1, &policy, |w, _| w, |_, _| Ok(()))
            .expect_err("zero attempts is invalid");
        assert_eq!(err, ResilienceError::ZeroAttempts);
    }

    #[test]
    fn kernel_fault_plan_requires_feature_or_runs() {
        let policy = RetryPolicy::default().with_faults(FaultPlan::seeded(1).with_aborts(1.0));
        let out = launch_resilient(
            &spec(),
            2,
            &policy,
            |w, ctx: &mut WarpCtx| {
                ctx.op(Mask::full(), 4096);
                w
            },
            |_, _| Ok(()),
        );
        if crate::fault::compiled() {
            // Hooks live: every warp aborts on every attempt.
            let res = out.unwrap();
            assert_eq!(res.failed_warps(), vec![0, 1]);
            assert!(res
                .runs
                .iter()
                .flat_map(|r| &r.failures)
                .all(|f| f.name() == "abort"));
        } else {
            assert_eq!(out.unwrap_err(), ResilienceError::FaultsNotCompiled);
        }
    }

    #[test]
    fn pcie_only_plan_runs_without_feature() {
        // PCIe faults are injected by the transfer model, not by kernel
        // hooks, so a PCIe-only plan is valid in any build.
        let policy = RetryPolicy::default().with_faults(FaultPlan::seeded(1).with_pcie(0.5, 0.5));
        let res = launch_resilient(
            &spec(),
            2,
            &policy,
            |w, _ctx: &mut WarpCtx| w,
            |_, _| Ok(()),
        )
        .unwrap();
        assert_eq!(res.failed_warps(), Vec::<usize>::new());
    }

    #[cfg(feature = "fault")]
    mod injected {
        use super::*;

        #[test]
        fn aborted_warps_recover_on_retry() {
            // 30% abort rate, 6 attempts (P[warp exhausts] ≈ 0.07%): the
            // plan is deterministic, so these exact assertions replay.
            let plan = FaultPlan::seeded(42).with_aborts(0.3);
            let policy = RetryPolicy {
                max_attempts: 6,
                ..RetryPolicy::default()
            }
            .with_faults(plan);
            let kernel = |w: usize, ctx: &mut WarpCtx| {
                for _ in 0..64 {
                    ctx.op(Mask::full(), 64);
                }
                w as u64
            };
            let res = launch_resilient(&spec(), 32, &policy, kernel, ok_validate).unwrap();
            assert!(res.total_retries() > 0, "campaign must actually inject");
            for (w, run) in res.runs.iter().enumerate() {
                assert_eq!(run.result, Some(w as u64), "warp {w} must recover");
            }
            // A recovered warp aborted first, so its killed attempt cost
            // real issue slots now accounted as waste.
            assert!(res.wasted.issued > 0, "killed attempts cost real work");
        }

        #[test]
        fn hangs_classify_as_watchdog() {
            let plan = FaultPlan::seeded(9).with_hangs(1.0);
            let policy = RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::default()
            }
            .with_faults(plan);
            let kernel = |w: usize, ctx: &mut WarpCtx| {
                for _ in 0..128 {
                    ctx.op(Mask::full(), 64);
                }
                w
            };
            let res = launch_resilient(&spec(), 4, &policy, kernel, |_, _| Ok(())).unwrap();
            assert_eq!(res.failed_warps().len(), 4);
            assert!(res
                .runs
                .iter()
                .flat_map(|r| &r.failures)
                .all(|f| f.name() == "watchdog-timeout"));
        }

        #[test]
        fn identical_policies_replay_identically() {
            let policy = RetryPolicy {
                max_attempts: 4,
                ..RetryPolicy::default()
            }
            .with_faults(FaultPlan::seeded(7).with_aborts(0.4).with_bitflips(0.01));
            let kernel = |w: usize, ctx: &mut WarpCtx| {
                let buf =
                    crate::mem::GlobalBuf::<u32>::from_vec((0..64).map(|i| i as u32).collect());
                let mut acc = 0u64;
                for i in 0..32 {
                    let v = buf.read_broadcast(ctx, Mask::full(), i);
                    ctx.op(Mask::full(), 1);
                    acc += u64::from(v);
                }
                acc + w as u64
            };
            let a = launch_resilient(&spec(), 16, &policy, kernel, |_, _| Ok(())).unwrap();
            let b = launch_resilient(&spec(), 16, &policy, kernel, |_, _| Ok(())).unwrap();
            assert_eq!(format!("{:?}", a.runs), format!("{:?}", b.runs));
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.wasted, b.wasted);
        }

        #[test]
        fn bitflips_surface_via_validation_not_silent_delivery() {
            // The kernel sums a buffer whose true sum is known. Bit flips
            // perturb loaded values; validation rejects any wrong sum. The
            // launcher must never deliver a wrong sum as a success.
            let data: Vec<u32> = (0..256).map(|i| i % 97).collect();
            let truth: u64 = data.iter().map(|&v| u64::from(v)).sum();
            let plan = FaultPlan::seeded(21).with_bitflips(0.02);
            let policy = RetryPolicy {
                max_attempts: 6,
                ..RetryPolicy::default()
            }
            .with_faults(plan);
            let kernel = |_w: usize, ctx: &mut WarpCtx| {
                let buf = crate::mem::GlobalBuf::<u32>::from_vec(data.clone());
                let mut acc = 0u64;
                for i in 0..256 {
                    acc += u64::from(buf.read_broadcast(ctx, Mask::full(), i));
                }
                acc
            };
            let res = launch_resilient(&spec(), 8, &policy, kernel, |_, &sum: &u64| {
                if sum == truth {
                    Ok(())
                } else {
                    Err(format!("sum {sum} != {truth}"))
                }
            })
            .unwrap();
            assert!(res.total_bitflips() > 0, "campaign must actually flip bits");
            for run in &res.runs {
                match run.result {
                    Some(sum) => assert_eq!(sum, truth, "delivered results are exact"),
                    None => assert!(!run.failures.is_empty(), "failures are named"),
                }
            }
        }
    }
}
