//! Deterministic, seeded fault injection for the simulator.
//!
//! Production GPU similarity-search systems treat partial failure as
//! normal: a warp can be killed by an ECC event, spin past its watchdog
//! deadline, read a flipped bit out of DRAM, or lose a PCIe transfer to
//! a replayed link. This module lets the simulator *manufacture* those
//! faults on demand so the recovery machinery around the kernels
//! ([`crate::resilient`], `kselect::gpu::resilient`) can be tested
//! deterministically.
//!
//! Design rules:
//!
//! * **Seeded and deterministic.** A [`FaultPlan`] is pure data; the
//!   faults a warp experiences are a function of `(seed, warp, attempt)`
//!   only, independent of host scheduling. The same plan replays the
//!   same failure byte-for-byte, and a *retry* (higher `attempt`) draws
//!   a fresh, equally deterministic fault stream — which is what makes
//!   bounded retry meaningful in simulation.
//! * **Zero-cost when off.** The plan and signal types always compile
//!   (they appear in `resilient` API signatures), but every hook in
//!   [`crate::WarpCtx`] and [`crate::mem`] is behind the `fault` cargo
//!   feature; a default build carries no checks in the hot paths and
//!   its metrics are bit-for-bit identical.
//! * **Composable.** Injection only perturbs execution through the same
//!   surfaces real faults would (a killed kernel, a late warp, a wrong
//!   loaded word), so it composes with the `sanitize` race detector and
//!   the `trace` counters without special cases.
//!
//! The PCIe stall/corruption half of the fault model lives with the
//! transfer model in `knn::pcie`, driven by the same plan through
//! [`FaultPlan::pcie_events`].

/// Which kind of fault fired. Carried by [`FaultSignal`] and used by the
/// recovery layers to label retries and per-query errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The warp's kernel was killed mid-flight (models an ECC abort or
    /// a device-side `trap`).
    Abort,
    /// The warp stopped making progress and was killed by the watchdog
    /// at its simulated-cycle deadline.
    Hang,
    /// A loaded word came back with a flipped bit (transient DRAM /
    /// interconnect corruption; the stored data is unharmed).
    BitFlip,
    /// A PCIe transfer stalled (link replay storm): delivered, but late.
    PcieStall,
    /// A PCIe transfer delivered corrupted payload (caught by checksum).
    PcieCorrupt,
}

impl FaultKind {
    /// Stable kebab-case name for reports and counters.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Abort => "abort",
            FaultKind::Hang => "hang",
            FaultKind::BitFlip => "bit-flip",
            FaultKind::PcieStall => "pcie-stall",
            FaultKind::PcieCorrupt => "pcie-corrupt",
        }
    }
}

impl core::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Panic payload thrown by an injected abort/hang so the resilient
/// launcher can tell injected faults from genuine kernel bugs. Thrown
/// via `std::panic::panic_any`, caught and downcast by
/// [`crate::resilient::launch_resilient`].
#[derive(Clone, Copy, Debug)]
pub struct FaultSignal {
    /// [`FaultKind::Abort`] or [`FaultKind::Hang`].
    pub kind: FaultKind,
    /// Warp the fault hit.
    pub warp: usize,
    /// Warp-issue count at which the fault fired.
    pub at_issued: u64,
}

/// True when the crate was built with the `fault` feature, i.e. the
/// injection hooks in [`crate::WarpCtx`]/[`crate::mem`] are live. A
/// [`FaultPlan`] handed to the launcher in a build without the feature
/// is an error, not a silent no-op — callers check this.
pub const fn compiled() -> bool {
    cfg!(feature = "fault")
}

/// SplitMix64: tiny, high-quality, allocation-free PRNG used for all
/// fault draws. Not the vendored `rand` on purpose — fault streams must
/// stay stable even if the workspace RNG evolves, and `simt` does not
/// depend on `rand` outside dev-dependencies.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SplitMix64(pub u64);

impl SplitMix64 {
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Mix several identifying values into one sub-seed, so each
/// (warp, attempt, purpose) tuple gets an independent stream.
fn substream(seed: u64, a: u64, b: u64, purpose: u64) -> SplitMix64 {
    let mut s = SplitMix64(
        seed ^ a.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ b.wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
            ^ purpose.wrapping_mul(0x1656_67b1_9e37_79f9),
    );
    // One warm-up step decorrelates nearby seeds.
    s.next();
    s
}

/// A deterministic fault campaign: which faults to inject, how often,
/// all derived from one seed.
///
/// Rates are probabilities: `abort_rate`/`hang_rate` are per
/// (warp, attempt); `bitflip_rate` is per loaded lane-word;
/// `pcie_stall_rate`/`pcie_corrupt_rate` are per transfer attempt.
/// Everything defaults to zero — an empty plan injects nothing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Master seed; every stream below derives from it.
    pub seed: u64,
    /// Probability a given warp attempt is killed mid-kernel.
    pub abort_rate: f64,
    /// Probability a given warp attempt hangs (killed by the watchdog).
    pub hang_rate: f64,
    /// Probability any single loaded lane-word has one bit flipped.
    pub bitflip_rate: f64,
    /// Probability a PCIe transfer attempt stalls (delivered late).
    pub pcie_stall_rate: f64,
    /// Probability a PCIe transfer attempt delivers corrupt payload.
    pub pcie_corrupt_rate: f64,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given seed.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            abort_rate: 0.0,
            hang_rate: 0.0,
            bitflip_rate: 0.0,
            pcie_stall_rate: 0.0,
            pcie_corrupt_rate: 0.0,
        }
    }

    /// Builder: set the per-(warp, attempt) kernel-abort probability.
    pub fn with_aborts(mut self, rate: f64) -> Self {
        self.abort_rate = rate;
        self
    }

    /// Builder: set the per-(warp, attempt) hang probability.
    pub fn with_hangs(mut self, rate: f64) -> Self {
        self.hang_rate = rate;
        self
    }

    /// Builder: set the per-loaded-word bit-flip probability.
    pub fn with_bitflips(mut self, rate: f64) -> Self {
        self.bitflip_rate = rate;
        self
    }

    /// Builder: set the PCIe stall / corruption probabilities.
    pub fn with_pcie(mut self, stall_rate: f64, corrupt_rate: f64) -> Self {
        self.pcie_stall_rate = stall_rate;
        self.pcie_corrupt_rate = corrupt_rate;
        self
    }

    /// True when the plan can inject at least one fault kind.
    pub fn is_active(&self) -> bool {
        self.abort_rate > 0.0
            || self.hang_rate > 0.0
            || self.bitflip_rate > 0.0
            || self.pcie_stall_rate > 0.0
            || self.pcie_corrupt_rate > 0.0
    }

    /// True when the plan injects kernel-level faults (which require the
    /// `fault` feature's hooks to take effect).
    pub fn wants_kernel_faults(&self) -> bool {
        self.abort_rate > 0.0 || self.hang_rate > 0.0 || self.bitflip_rate > 0.0
    }

    /// The faults one `(warp, attempt)` experiences. Pure function of
    /// the plan — host scheduling cannot change it.
    pub fn warp_faults(&self, warp: usize, attempt: u32) -> WarpFaults {
        let mut s = substream(self.seed, warp as u64, attempt as u64, 0xA);
        // Abort / hang trigger points: drawn in [1, 4096] issue slots so
        // the fault lands inside any realistic kernel body. If both
        // fire, the earlier trigger wins at runtime.
        let abort_at = (s.unit() < self.abort_rate).then(|| 1 + (s.next() % 4096));
        let hang_at = (s.unit() < self.hang_rate).then(|| 1 + (s.next() % 4096));
        WarpFaults {
            warp,
            abort_at,
            hang_at,
            bitflip_rate: self.bitflip_rate,
            flips: substream(self.seed, warp as u64, attempt as u64, 0xB),
            bitflips_injected: 0,
        }
    }

    /// The fault outcome of one PCIe transfer attempt:
    /// `(stalled, corrupted)`. `transfer` numbers the logical transfer
    /// within a pipeline run; `attempt` its retry.
    pub fn pcie_events(&self, transfer: u64, attempt: u32) -> (bool, bool) {
        let mut s = substream(self.seed, transfer, attempt as u64, 0xC);
        let stalled = s.unit() < self.pcie_stall_rate;
        let corrupted = s.unit() < self.pcie_corrupt_rate;
        (stalled, corrupted)
    }
}

/// The armed fault state for one warp attempt, installed into a
/// [`crate::WarpCtx`] by the resilient launcher (`fault` feature only).
#[derive(Clone, Debug)]
pub struct WarpFaults {
    warp: usize,
    abort_at: Option<u64>,
    hang_at: Option<u64>,
    bitflip_rate: f64,
    flips: SplitMix64,
    bitflips_injected: u64,
}

impl WarpFaults {
    /// Called from the issue path: fires the armed abort/hang once the
    /// warp's issue count crosses the trigger. Panics with a
    /// [`FaultSignal`] payload — the injected fault "kills" the warp
    /// exactly as a device-side trap would, and the resilient launcher
    /// catches and classifies it.
    #[inline]
    pub fn on_issue(&mut self, issued: u64) {
        let trig = |t: Option<u64>| t.is_some_and(|at| issued >= at);
        // The earlier trigger wins when both are armed.
        let (abort, hang) = (
            self.abort_at.unwrap_or(u64::MAX),
            self.hang_at.unwrap_or(u64::MAX),
        );
        if trig(self.abort_at) && abort <= hang {
            let sig = FaultSignal {
                kind: FaultKind::Abort,
                warp: self.warp,
                at_issued: issued,
            };
            std::panic::panic_any(sig);
        }
        if trig(self.hang_at) {
            let sig = FaultSignal {
                kind: FaultKind::Hang,
                warp: self.warp,
                at_issued: issued,
            };
            std::panic::panic_any(sig);
        }
    }

    /// Draw the bit-flip decision for one loaded lane-word: `Some(bit)`
    /// flips that bit (0..32) of the loaded value. Advances the stream
    /// exactly once per call, so the flip sequence is a pure function of
    /// load order — which the lockstep execution model fixes.
    #[inline]
    pub fn draw_bitflip(&mut self) -> Option<u32> {
        if self.bitflip_rate <= 0.0 {
            return None;
        }
        if self.flips.unit() < self.bitflip_rate {
            self.bitflips_injected += 1;
            Some((self.flips.next() % 32) as u32)
        } else {
            None
        }
    }

    /// How many bit flips this attempt has injected so far.
    pub fn bitflips_injected(&self) -> u64 {
        self.bitflips_injected
    }

    /// True when no fault of any kind is armed (the hooks can skip all
    /// per-issue work).
    pub fn is_inert(&self) -> bool {
        self.abort_at.is_none() && self.hang_at.is_none() && self.bitflip_rate <= 0.0
    }
}

/// Flip bit `bit` of a loaded value's 32-bit pattern. Only the types the
/// simulated buffers actually store are corruptible; anything else is
/// returned unchanged (a flipped pointer-sized index would break the
/// *simulator*, not the simulated kernel, so indices larger than 32 bits
/// are corrupted in their low word only).
pub fn corrupt<T: Copy + 'static>(v: T, bit: u32) -> T {
    use core::any::Any;
    let mut v = v;
    let any: &mut dyn Any = &mut v;
    if let Some(x) = any.downcast_mut::<f32>() {
        *x = f32::from_bits(x.to_bits() ^ (1 << (bit % 32)));
    } else if let Some(x) = any.downcast_mut::<u32>() {
        *x ^= 1 << (bit % 32);
    } else if let Some(x) = any.downcast_mut::<i32>() {
        *x ^= 1 << (bit % 32);
    } else if let Some(x) = any.downcast_mut::<u64>() {
        *x ^= 1 << (bit % 32);
    } else if let Some(x) = any.downcast_mut::<usize>() {
        *x ^= 1 << (bit % 32);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        let plan = FaultPlan::seeded(7)
            .with_aborts(0.5)
            .with_hangs(0.5)
            .with_bitflips(0.1);
        for warp in 0..16 {
            for attempt in 0..3 {
                let mut a = plan.warp_faults(warp, attempt);
                let mut b = plan.warp_faults(warp, attempt);
                assert_eq!(format!("{a:?}"), format!("{b:?}"));
                // Bit-flip streams replay identically too.
                let da: Vec<Option<u32>> = (0..64).map(|_| a.draw_bitflip()).collect();
                let db: Vec<Option<u32>> = (0..64).map(|_| b.draw_bitflip()).collect();
                assert_eq!(da, db);
            }
        }
    }

    #[test]
    fn attempts_draw_independent_faults() {
        // With a 50% abort rate, some attempts must differ from attempt 0
        // across a handful of warps — retries are not doomed to repeat
        // the same fault.
        let plan = FaultPlan::seeded(3).with_aborts(0.5);
        let differs = (0..32).any(|w| {
            let a0 = format!("{:?}", plan.warp_faults(w, 0));
            let a1 = format!("{:?}", plan.warp_faults(w, 1));
            a0 != a1
        });
        assert!(differs);
    }

    #[test]
    fn rates_scale_fault_frequency() {
        let count = |rate: f64| {
            let plan = FaultPlan::seeded(11).with_aborts(rate);
            (0..1000)
                .filter(|&w| !plan.warp_faults(w, 0).is_inert())
                .count()
        };
        assert_eq!(count(0.0), 0);
        let lo = count(0.1);
        let hi = count(0.9);
        assert!((50..200).contains(&lo), "lo = {lo}");
        assert!((800..980).contains(&hi), "hi = {hi}");
    }

    #[test]
    fn corrupt_flips_exactly_one_bit() {
        let x = 1.5f32;
        let y: f32 = corrupt(x, 3);
        assert_eq!((x.to_bits() ^ y.to_bits()).count_ones(), 1);
        assert_eq!(corrupt(corrupt(x, 7), 7), x, "flip is an involution");
        let u: u32 = corrupt(0u32, 31);
        assert_eq!(u, 1 << 31);
        // Unknown types pass through unchanged.
        #[derive(Clone, Copy, PartialEq, Debug)]
        struct Opaque(u8);
        assert_eq!(corrupt(Opaque(9), 1), Opaque(9));
    }

    #[test]
    fn pcie_events_deterministic_and_rate_bound() {
        let plan = FaultPlan::seeded(5).with_pcie(0.5, 0.25);
        assert_eq!(plan.pcie_events(0, 0), plan.pcie_events(0, 0));
        let stalls = (0..1000).filter(|&t| plan.pcie_events(t, 0).0).count();
        let corrupts = (0..1000).filter(|&t| plan.pcie_events(t, 0).1).count();
        assert!((400..600).contains(&stalls), "stalls = {stalls}");
        assert!((180..330).contains(&corrupts), "corrupts = {corrupts}");
        assert_eq!(FaultPlan::seeded(1).pcie_events(0, 0), (false, false));
    }

    #[test]
    fn signal_trigger_ordering() {
        // A warp with both faults armed fires the earlier one.
        let plan = FaultPlan::seeded(2).with_aborts(1.0).with_hangs(1.0);
        let wf = plan.warp_faults(0, 0);
        let first = wf.abort_at.unwrap().min(wf.hang_at.unwrap());
        let sig = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut wf = plan.warp_faults(0, 0);
            for issued in 0..10_000 {
                wf.on_issue(issued);
            }
        }))
        .expect_err("armed faults must fire");
        let sig = sig.downcast_ref::<FaultSignal>().expect("typed signal");
        assert_eq!(sig.at_issued, first);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(FaultKind::Abort.name(), "abort");
        assert_eq!(FaultKind::Hang.to_string(), "hang");
        assert_eq!(FaultKind::BitFlip.name(), "bit-flip");
        assert_eq!(FaultKind::PcieStall.name(), "pcie-stall");
        assert_eq!(FaultKind::PcieCorrupt.name(), "pcie-corrupt");
    }
}
