//! Active-lane masks.
//!
//! A [`Mask`] is a 32-bit set: bit `l` set means lane `l` participates in
//! the current instruction. SIMT control flow is expressed by narrowing
//! masks (branches) and re-widening them (reconvergence).

use crate::{Lanes, WARP_SIZE};

/// A set of active lanes within one warp.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mask(u32);

impl Mask {
    /// All 32 lanes active.
    #[inline]
    pub const fn full() -> Self {
        Mask(u32::MAX)
    }

    /// No lane active.
    #[inline]
    pub const fn empty() -> Self {
        Mask(0)
    }

    /// The first `n` lanes active (`n` is clamped to the warp size).
    /// Used for partially-filled trailing warps.
    #[inline]
    pub fn first(n: usize) -> Self {
        if n >= WARP_SIZE {
            Self::full()
        } else {
            Mask((1u32 << n) - 1)
        }
    }

    /// A mask with exactly one lane active.
    #[inline]
    pub fn single(lane: usize) -> Self {
        debug_assert!(lane < WARP_SIZE);
        Mask(1 << lane)
    }

    /// Construct from the raw bitset.
    #[inline]
    pub const fn from_bits(bits: u32) -> Self {
        Mask(bits)
    }

    /// The raw bitset.
    #[inline]
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Keep only lanes for which `pred` holds. This is the fundamental
    /// branch operation: `mask.filter(...)` is the "then" mask and
    /// `mask & !taken` the "else" mask.
    #[inline]
    pub fn filter<F: FnMut(usize) -> bool>(self, mut pred: F) -> Self {
        let mut out = 0u32;
        let mut bits = self.0;
        while bits != 0 {
            let l = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if pred(l) {
                out |= 1 << l;
            }
        }
        Mask(out)
    }

    /// Narrow by a per-lane boolean register.
    #[inline]
    pub fn and_lanes(self, preds: &Lanes<bool>) -> Self {
        self.filter(|l| preds[l])
    }

    /// Is lane `l` active?
    #[inline]
    pub fn get(self, lane: usize) -> bool {
        (self.0 >> lane) & 1 == 1
    }

    /// Activate lane `l`.
    #[inline]
    #[must_use]
    pub fn with(self, lane: usize) -> Self {
        Mask(self.0 | (1 << lane))
    }

    /// Deactivate lane `l`.
    #[inline]
    #[must_use]
    pub fn without(self, lane: usize) -> Self {
        Mask(self.0 & !(1 << lane))
    }

    /// Number of active lanes.
    #[inline]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Any lane active? (Pure query — the *instruction* `__any()` is
    /// [`crate::WarpCtx::any`], which also charges an issue slot.)
    #[inline]
    pub fn any_lane(self) -> bool {
        self.0 != 0
    }

    /// All 32 lanes active?
    #[inline]
    pub fn all_lanes(self) -> bool {
        self.0 == u32::MAX
    }

    /// Lowest active lane, if any.
    #[inline]
    pub fn first_lane(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// Iterate over active lane indices in ascending order.
    #[inline]
    pub fn lanes(self) -> LaneIter {
        LaneIter(self.0)
    }
}

impl core::ops::BitAnd for Mask {
    type Output = Mask;
    #[inline]
    fn bitand(self, rhs: Mask) -> Mask {
        Mask(self.0 & rhs.0)
    }
}

impl core::ops::BitOr for Mask {
    type Output = Mask;
    #[inline]
    fn bitor(self, rhs: Mask) -> Mask {
        Mask(self.0 | rhs.0)
    }
}

impl core::ops::Not for Mask {
    type Output = Mask;
    #[inline]
    fn not(self) -> Mask {
        Mask(!self.0)
    }
}

impl core::ops::Sub for Mask {
    type Output = Mask;
    /// Set difference: lanes in `self` but not in `rhs`.
    #[inline]
    fn sub(self, rhs: Mask) -> Mask {
        Mask(self.0 & !rhs.0)
    }
}

impl core::fmt::Debug for Mask {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Mask({:032b})", self.0)
    }
}

/// Iterator over active lanes of a [`Mask`].
pub struct LaneIter(u32);

impl Iterator for LaneIter {
    type Item = usize;
    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let l = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(l)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for LaneIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_and_empty() {
        assert_eq!(Mask::full().count(), 32);
        assert!(Mask::full().all_lanes());
        assert_eq!(Mask::empty().count(), 0);
        assert!(!Mask::empty().any_lane());
        assert_eq!(Mask::empty().first_lane(), None);
    }

    #[test]
    fn first_n() {
        assert_eq!(Mask::first(0), Mask::empty());
        assert_eq!(Mask::first(32), Mask::full());
        assert_eq!(Mask::first(40), Mask::full());
        let m = Mask::first(5);
        assert_eq!(m.count(), 5);
        assert!(m.get(4));
        assert!(!m.get(5));
    }

    #[test]
    fn filter_splits_mask() {
        let m = Mask::full();
        let even = m.filter(|l| l % 2 == 0);
        let odd = m - even;
        assert_eq!(even.count(), 16);
        assert_eq!(odd.count(), 16);
        assert_eq!(even | odd, Mask::full());
        assert_eq!(even & odd, Mask::empty());
    }

    #[test]
    fn lane_iteration_ascending() {
        let m = Mask::single(3) | Mask::single(17) | Mask::single(31);
        let lanes: Vec<usize> = m.lanes().collect();
        assert_eq!(lanes, vec![3, 17, 31]);
        assert_eq!(m.first_lane(), Some(3));
    }

    #[test]
    fn with_without() {
        let m = Mask::empty().with(7);
        assert!(m.get(7));
        assert!(!m.without(7).get(7));
    }

    #[test]
    fn and_lanes_narrows() {
        let mut preds = [false; WARP_SIZE];
        preds[2] = true;
        preds[9] = true;
        let m = Mask::full().and_lanes(&preds);
        assert_eq!(m.count(), 2);
        assert!(m.get(2) && m.get(9));
        // narrowing an already-narrow mask
        let m2 = Mask::single(9).and_lanes(&preds);
        assert_eq!(m2, Mask::single(9));
    }
}
