//! # simt — a software SIMT GPU simulator
//!
//! This crate is the execution substrate for the IPDPS 2015 paper
//! *"Efficient Selection Algorithm for Fast k-NN Search on GPU"* (Tang,
//! Huang, Eyers, Mills, Guo). The paper's techniques are architectural:
//! they win (or lose) through **branch divergence**, **memory coalescing**
//! and **intra-warp communication**. This simulator models exactly those
//! three effects so that GPU kernels can be written, validated and measured
//! in pure Rust.
//!
//! ## Execution model
//!
//! A *warp* is 32 lanes executing in lockstep. Kernels are written
//! warp-wide: per-lane registers are `[T; 32]` arrays ([`Lanes`]), and every
//! operation takes an active-lane [`Mask`] and charges a [`Metrics`]
//! accumulator through the [`WarpCtx`]:
//!
//! * **ALU work** — [`WarpCtx::op`] charges one warp issue slot regardless
//!   of how many lanes are active; active lanes additionally count towards
//!   `lane_work`. SIMT efficiency = `lane_work / (issued × 32)`.
//! * **Divergence** — a data-dependent branch splits the mask. The kernel
//!   executes *both* live paths under their sub-masks (charging both), and
//!   records the split with [`WarpCtx::diverge`]. A divergent loop keeps the
//!   whole warp in the loop until *no* lane needs another iteration
//!   ([`WarpCtx::loop_head`] per iteration).
//! * **Memory** — [`mem::GlobalBuf`] (device global memory) counts one DRAM
//!   transaction per distinct 128-byte segment touched by the warp;
//!   [`mem::LaneLocal`] (per-thread "local memory") is physically
//!   interleaved with stride 32 like CUDA local memory, so lockstep
//!   same-index access coalesces to a single transaction while divergent
//!   access scatters; [`mem::SharedBuf`] models shared memory with
//!   bank-conflict replays.
//!
//! ## Timing model
//!
//! [`timing::TimingModel`] converts aggregated [`Metrics`] into simulated
//! seconds with a deliberately simple analytic model (issue throughput
//! across SMs vs. DRAM bandwidth, whichever binds). The Tesla C2075 preset
//! matches the paper's testbed. Absolute seconds are *not* the point —
//! relative shape is; every constant lives in one struct.
//!
//! ## Fidelity and limitations
//!
//! The simulator models exactly the three effects the reproduced paper's
//! techniques target, and deliberately nothing more:
//!
//! * **No cache hierarchy.** Lane-local (per-thread) traffic is charged
//!   straight to DRAM. On the modelled Fermi part this is close to the
//!   truth for k-NN queues: with tens of resident warps per SM the
//!   aggregate queue footprint (k × 8 B × 32 lanes × warps) is megabytes
//!   against 16 KB of L1 and 768 KB of L2, so hit rates are negligible.
//!   Workloads with genuinely cache-resident state would be over-charged.
//! * **No occupancy model.** Warps are costed independently and the SM
//!   count divides total cycles; shared-memory pressure reducing resident
//!   warps (and therefore latency hiding) is not modelled — which is why
//!   the buffer-size ablation in the parent workspace grows monotonically
//!   where real hardware would eventually turn down.
//! * **Effective, not cycle-accurate, latency.** A DRAM transaction costs
//!   a fixed post-hiding stall plus bandwidth time; there is no MSHR,
//!   row-buffer, or interconnect model.
//! * **Warp-synchronous programming model.** Kernels express reconvergence
//!   manually through masks; there is no PC-based reconvergence-stack
//!   divergence model. For the reproduced algorithms (structured control
//!   flow only) the two coincide.
//!
//! ## Correctness tooling
//!
//! The warp-synchronous style relies on implicit lockstep ordering that
//! is easy to break silently. Building with the **`sanitize`** feature
//! turns on the [`sanitize`] intra-warp race detector: every
//! [`mem`]-buffer access is logged into epochs delimited by
//! [`WarpCtx::sync`], [`WarpCtx::loop_head`] and the free lockstep
//! marker [`WarpCtx::warp_fence`], and cross-lane same-word conflicts
//! within an epoch fail with a report naming the span, lanes and
//! address. Without the feature every hook compiles to nothing — the
//! hot paths and metrics are bit-for-bit identical to an
//! unsanitized build.
//!
//! ## Writing a kernel
//!
//! ```
//! use simt::{launch, GpuSpec, Lanes, Mask, WARP_SIZE};
//! use simt::mem::GlobalBuf;
//!
//! // Sum 4 values per lane from global memory.
//! let spec = GpuSpec::tesla_c2075();
//! let data = GlobalBuf::<f32>::from_vec((0..128).map(|i| i as f32).collect());
//! let (sums, metrics) = launch(&spec, 1, |warp_id, ctx| {
//!     let mask = Mask::full();
//!     let mut acc: Lanes<f32> = [0.0; WARP_SIZE];
//!     for step in 0..4 {
//!         let idx: Lanes<usize> =
//!             core::array::from_fn(|l| step * WARP_SIZE + (warp_id * WARP_SIZE + l));
//!         let v = data.read(ctx, mask, &idx);
//!         ctx.op(mask, 1); // the add
//!         for l in mask.lanes() { acc[l] += v[l]; }
//!     }
//!     acc
//! });
//! assert_eq!(sums[0][0], 0.0 + 32.0 + 64.0 + 96.0);
//! assert_eq!(metrics.global_transactions, 4); // fully coalesced
//! ```

pub mod fault;
pub mod launch;
pub mod mask;
pub mod mem;
pub mod metrics;
pub mod report;
pub mod resilient;
#[cfg(feature = "sanitize")]
pub mod sanitize;
pub mod spec;
pub mod timing;
#[cfg(feature = "trace")]
pub mod tracing;
pub mod warp;

pub use fault::{FaultKind, FaultPlan, FaultSignal};
pub use launch::{launch, launch_seq};
pub use mask::Mask;
pub use metrics::Metrics;
pub use report::{comparison_table, KernelReport};
pub use resilient::{
    launch_resilient, launch_resilient_gated, ResilienceError, ResilientLaunch, RetryPolicy,
    WarpFailure,
};
pub use spec::GpuSpec;
pub use timing::TimingModel;
pub use warp::WarpCtx;

/// Number of lanes in a warp. Fixed at 32 to match NVIDIA hardware
/// (the paper's Tesla C2075) and to let [`Mask`] be a `u32` bitset.
pub const WARP_SIZE: usize = 32;

/// One register's worth of per-lane values: index `l` belongs to lane `l`.
pub type Lanes<T> = [T; WARP_SIZE];

/// Build a [`Lanes`] array by evaluating `f` for each lane index.
#[inline]
pub fn lanes_from_fn<T, F: FnMut(usize) -> T>(f: F) -> Lanes<T> {
    core::array::from_fn(f)
}

/// Broadcast a single value to all lanes.
#[inline]
pub fn splat<T: Copy>(v: T) -> Lanes<T> {
    [v; WARP_SIZE]
}
